//! # distapprox
//!
//! A full reproduction of **“Automated Circuit Approximation Method Driven
//! by Data Distribution”** (Vasicek, Mrazek, Sekanina — DATE 2019) as a
//! Rust workspace: WMED-driven Cartesian-Genetic-Programming circuit
//! approximation, plus every substrate the paper's evaluation needs —
//! gate-level bit-parallel simulation, arithmetic circuit generators, a
//! 45 nm cost model, an image-filter pipeline and a trainable/quantizable
//! neural-network stack.
//!
//! This crate is the facade: it re-exports the component crates under
//! stable names and offers a [`prelude`] for the common experiment
//! vocabulary.
//!
//! ## Quick start
//!
//! Evolve a 4-bit multiplier tailored to a half-normal operand
//! distribution (see `examples/quickstart.rs` for the narrated version):
//!
//! ```
//! use distapprox::prelude::*;
//!
//! let pmf = Pmf::half_normal(4, 3.0);
//! let cfg = FlowConfig {
//!     width: 4,
//!     thresholds: vec![0.01],
//!     iterations: 200,
//!     threads: 1,
//!     activity_blocks: 8,
//!     ..FlowConfig::default()
//! };
//! let result = evolve_circuits(&pmf, &cfg)?;
//! let best = &result.circuits[0];
//! assert!(best.stats.wmed <= 0.01);
//! # Ok::<(), distapprox::core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Deterministic PRNG ([`apx_rng`]).
pub use apx_rng as rng;

/// Persistent scoped worker pool ([`apx_pool`]).
pub use apx_pool as pool;

/// Gate-level netlists and bit-parallel simulation ([`apx_gates`]).
pub use apx_gates as gates;

/// Arithmetic circuit generators and functional tables ([`apx_arith`]).
pub use apx_arith as arith;

/// Probability mass functions ([`apx_dist`]).
pub use apx_dist as dist;

/// Error metrics, WMED evaluator ([`apx_metrics`]).
pub use apx_metrics as metrics;

/// 45 nm technology cost model ([`apx_techlib`]).
pub use apx_techlib as techlib;

/// Cartesian Genetic Programming ([`apx_cgp`]).
pub use apx_cgp as cgp;

/// Baseline approximate-multiplier library ([`apx_approxlib`]).
pub use apx_approxlib as approxlib;

/// Image-processing substrate ([`apx_imgproc`]).
pub use apx_imgproc as imgproc;

/// Synthetic digit datasets ([`apx_datasets`]).
pub use apx_datasets as datasets;

/// Neural-network substrate ([`apx_nn`]).
pub use apx_nn as nn;

/// The paper's WMED-driven approximation flow ([`apx_core`]).
pub use apx_core as core;

/// The common experiment vocabulary in one import.
pub mod prelude {
    pub use apx_approxlib::{Family, MultiplierLibrary};
    pub use apx_arith::{
        array_multiplier, baugh_wooley_multiplier, broken_array_multiplier, truncated_multiplier,
        OpTable,
    };
    pub use apx_cgp::{Chromosome, EvolutionConfig, FunctionSet};
    pub use apx_core::{
        cross_wmed, default_thresholds, error_heatmap, evolve_circuits, mac_metrics,
        pareto_indices, run_sweep, table1_thresholds, Eq1Fitness, EvolvedCircuit, FlowConfig,
        FlowResult, Shard, SweepConfig, SweepDist, SweepResult,
    };
    pub use apx_dist::Pmf;
    pub use apx_gates::{Netlist, NetlistBuilder};
    pub use apx_metrics::{table_stats, CircuitEvaluator, ErrorStats};
    pub use apx_rng::Xoshiro256;
    pub use apx_techlib::{area_of, delay_of, estimate_under_pmf, TechLibrary};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_work() {
        use crate::prelude::*;
        let nl = array_multiplier(2);
        assert_eq!(area_of(&nl, &TechLibrary::unit()), nl.active_gate_count() as f64);
    }
}
