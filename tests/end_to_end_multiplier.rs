//! Integration: the full distribution-driven multiplier flow
//! (CGP × metrics × techlib × approxlib working together).

use distapprox::prelude::*;

fn flow(width: u32, pmf: &Pmf, budget: f64, iterations: u64, seed: u64) -> EvolvedCircuit {
    let cfg = FlowConfig {
        width,
        thresholds: vec![budget],
        iterations,
        seed,
        threads: 2,
        activity_blocks: 8,
        ..FlowConfig::default()
    };
    evolve_circuits(pmf, &cfg)
        .expect("flow runs")
        .circuits
        .into_iter()
        .next()
        .expect("one multiplier")
}

#[test]
fn evolved_multiplier_respects_budget_and_shrinks() {
    let pmf = Pmf::half_normal(5, 6.0);
    let budget = 5e-3;
    let m = flow(5, &pmf, budget, 800, 1);
    assert!(m.stats.wmed <= budget);
    let exact = array_multiplier(5);
    let tech = TechLibrary::nangate45();
    assert!(
        area_of(&m.netlist, &tech) < area_of(&exact.compact(), &tech),
        "approximation should be smaller than the exact seed"
    );
}

#[test]
fn distribution_tailoring_beats_mismatched_evaluation() {
    // Evolve for a half-normal distribution; its WMED under that
    // distribution must be no worse than under the uniform metric
    // (it concentrated its errors on unlikely operands).
    let width = 5;
    let d2 = Pmf::half_normal(width, 6.0);
    let m = flow(width, &d2, 1e-2, 800, 3);
    let wmeds = cross_wmed(&m.netlist, width, false, &[d2, Pmf::uniform(width)]).unwrap();
    assert!(wmeds[0] <= 1e-2, "in-distribution budget respected");
    assert!(
        wmeds[0] <= wmeds[1] + 1e-12,
        "tailored WMED {} should not exceed uniform MED {}",
        wmeds[0],
        wmeds[1]
    );
}

#[test]
fn evolved_chromosomes_round_trip_through_text() {
    let pmf = Pmf::uniform(4);
    let m = flow(4, &pmf, 1e-2, 300, 5);
    let text = m.chromosome.to_text();
    let back = Chromosome::from_text(&text).expect("parses back");
    let ex = distapprox::gates::Exhaustive::new(8);
    assert_eq!(
        ex.output_table(&back.decode_active()),
        ex.output_table(&m.netlist),
        "serialized chromosome encodes the same function"
    );
}

#[test]
fn pareto_front_of_library_multipliers_is_sane() {
    let lib = MultiplierLibrary::evoapprox_like(6);
    let exact = OpTable::exact_mul(6, false);
    let pmf = Pmf::uniform(6);
    let tech = TechLibrary::nangate45();
    let points: Vec<(f64, f64)> = lib
        .iter()
        .map(|e| {
            let stats = table_stats(&e.table, &exact, &pmf);
            (stats.wmed, area_of(&e.netlist, &tech))
        })
        .collect();
    let front = pareto_indices(&points);
    assert!(!front.is_empty());
    // The exact multiplier (error 0) is always on the front.
    let exact_idx =
        lib.iter().position(|e| e.name == "exact_array").expect("library has the exact entry");
    assert!(front.contains(&exact_idx));
    // The front is strictly decreasing in area along increasing error.
    for pair in front.windows(2) {
        assert!(points[pair[1]].0 >= points[pair[0]].0);
        assert!(points[pair[1]].1 < points[pair[0]].1);
    }
}

#[test]
fn zero_threshold_reproduces_exact_seed() {
    let pmf = Pmf::uniform(4);
    let cfg = FlowConfig {
        width: 4,
        thresholds: vec![0.0],
        iterations: 50,
        threads: 1,
        activity_blocks: 4,
        ..FlowConfig::default()
    };
    let result = evolve_circuits(&pmf, &cfg).unwrap();
    let m = &result.circuits[0];
    assert_eq!(m.stats.max_abs_error, 0);
    assert_eq!(m.stats.error_rate, 0.0);
}
