//! Failure injection: malformed inputs must produce clean errors (or
//! documented panics), never silent corruption (DESIGN.md §8).

use distapprox::cgp::CgpError;
use distapprox::core::CoreError;
use distapprox::dist::PmfError;
use distapprox::gates::{GateKind, Netlist, NetlistError, Node, SignalId};
use distapprox::prelude::*;

#[test]
fn structurally_broken_netlists_are_rejected() {
    // Forward reference.
    let nodes = vec![Node { kind: GateKind::And, a: SignalId(0), b: SignalId(7) }];
    assert!(matches!(
        Netlist::new(2, nodes, vec![SignalId(2)]),
        Err(NetlistError::ForwardReference { .. })
    ));
    // Output pointing nowhere.
    assert!(matches!(
        Netlist::new(2, vec![], vec![SignalId(5)]),
        Err(NetlistError::InvalidOutput { .. })
    ));
    // No outputs at all.
    assert!(matches!(Netlist::new(2, vec![], vec![]), Err(NetlistError::NoOutputs)));
}

#[test]
fn degenerate_distributions_are_rejected() {
    assert!(matches!(Pmf::from_weights(4, vec![0.0; 16]), Err(PmfError::EmptySupport)));
    assert!(matches!(
        Pmf::from_weights(4, vec![f64::NAN; 16]),
        Err(PmfError::InvalidWeight { .. })
    ));
    assert!(matches!(Pmf::from_weights(4, vec![1.0; 7]), Err(PmfError::BadLength(7))));
    assert!(Pmf::from_samples_i64(8, &[], true).is_err());
    // Samples from the other encoding's exclusive range are rejected, not
    // silently folded onto an aliasing bucket.
    assert!(matches!(
        Pmf::from_samples_i64(8, &[200], true),
        Err(PmfError::SampleOutOfRange { index: 0, value: 200 })
    ));
    assert!(matches!(
        Pmf::from_samples_i64(8, &[-1], false),
        Err(PmfError::SampleOutOfRange { index: 0, value: -1 })
    ));
}

#[test]
fn malformed_chromosome_text_is_rejected_not_panicking() {
    for text in [
        "",
        "garbage",
        "cgp 2 1",                                // short header
        "cgp 2 1 1\nfuncs and",                   // missing genes
        "cgp 2 1 1\nfuncs and\ngenes 0 1 0",      // too few genes
        "cgp 2 1 1\nfuncs and\ngenes 9 9 9 9",    // out-of-bound genes
        "cgp 2 1 1\nfuncs waffle\ngenes 0 1 0 2", // unknown gate
        "cgp 0 0 0\nfuncs and\ngenes",            // zero dimensions
    ] {
        assert!(
            matches!(
                Chromosome::from_text(text),
                Err(CgpError::Parse(_) | CgpError::EmptyFunctionSet)
            ),
            "accepted malformed text: {text:?}"
        );
    }
}

#[test]
fn flow_configuration_errors_are_structured() {
    let pmf = Pmf::uniform(8);
    let bad_cfgs = [
        FlowConfig { thresholds: vec![], ..FlowConfig::default() },
        FlowConfig { iterations: 0, ..FlowConfig::default() },
        FlowConfig { width: 6, ..FlowConfig::default() }, // pmf width mismatch
    ];
    for cfg in bad_cfgs {
        match evolve_circuits(&pmf, &cfg) {
            Err(CoreError::BadConfig(msg)) => assert!(!msg.is_empty()),
            other => panic!("expected BadConfig, got {other:?}"),
        }
    }
}

#[test]
fn evaluator_rejects_mismatched_widths_cleanly() {
    let err = CircuitEvaluator::new(8, false, &Pmf::uniform(4)).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains('4') && msg.contains('8'), "unhelpful message: {msg}");
}

#[test]
fn table_construction_errors_are_reported() {
    use distapprox::arith::{OpTable, TableError};
    let nl = array_multiplier(4);
    assert!(matches!(OpTable::from_netlist(&nl, 6, false), Err(TableError::InputArity { .. })));
    assert!(matches!(OpTable::from_netlist(&nl, 0, false), Err(TableError::BadWidth(0))));
}

#[test]
fn seeded_grid_too_small_is_an_error_not_truncation() {
    let nl = array_multiplier(8);
    let err =
        Chromosome::from_netlist(&nl, &FunctionSet::standard(), nl.gate_count() - 1).unwrap_err();
    match err {
        CgpError::GridTooSmall { needed, cols } => {
            assert_eq!(needed, nl.gate_count());
            assert_eq!(cols, nl.gate_count() - 1);
        }
        other => panic!("expected GridTooSmall, got {other:?}"),
    }
}

#[test]
fn errors_implement_std_error_with_sources() {
    fn assert_error<E: std::error::Error + Send + Sync + 'static>(_: &E) {}
    let e1 = Netlist::new(1, vec![], vec![]).unwrap_err();
    assert_error(&e1);
    let e2 = Pmf::from_weights(2, vec![0.0; 4]).unwrap_err();
    assert_error(&e2);
    let e3: CoreError = CgpError::EmptyFunctionSet.into();
    assert_error(&e3);
    assert!(std::error::Error::source(&e3).is_some());
}
