//! Integration: approximate multipliers inside the Gaussian image filter
//! (arith × imgproc × techlib — the paper's Fig. 5 pipeline).

use distapprox::imgproc::{average_filter_psnr, convolve3x3, convolve3x3_exact, synth, Kernel3};
use distapprox::prelude::*;

#[test]
fn filter_quality_degrades_monotonically_with_truncation() {
    let images = synth::test_images(6, 32, 32, 77);
    let kernel = Kernel3::gaussian(1.0);
    let mut last_psnr = f64::INFINITY;
    for k in [2u32, 6, 9, 12] {
        let table = OpTable::from_netlist(&truncated_multiplier(8, k), 8, false).unwrap();
        let psnr = average_filter_psnr(&images, &kernel, &table, 90.0);
        assert!(
            psnr <= last_psnr + 1e-9,
            "PSNR should not improve with deeper truncation: k={k}, {psnr} vs {last_psnr}"
        );
        last_psnr = psnr;
    }
    assert!(last_psnr < 40.0, "12-column truncation must visibly hurt");
}

#[test]
fn coefficient_aware_multiplier_beats_generic_one_in_the_filter() {
    // A multiplier exact for small x (the kernel coefficients) but broken
    // for large x preserves filtering almost perfectly; a multiplier with
    // the same overall MED spread uniformly does not. This is the paper's
    // central claim, testable without any evolution.
    let images = synth::test_images(8, 32, 32, 13);
    let kernel = Kernel3::gaussian(1.0);
    let max_coeff = *kernel.coeffs().iter().max().unwrap() as i64;

    // "Tailored": exact products when x is a plausible coefficient.
    let tailored = OpTable::from_fn(8, true, |x, y| {
        if x <= max_coeff {
            x * y
        } else {
            (x * y) & !0xFFF // garbage for non-coefficients
        }
    });
    // "Generic": moderate truncation everywhere.
    let generic = OpTable::from_fn(8, true, |x, y| (x * y) & !0x3F);

    // Make them comparable: unsigned tables for the filter path.
    let tailored_u =
        OpTable::from_fn(8, false, |x, y| if x <= max_coeff { x * y } else { (x * y) & !0xFFF });
    let generic_u = OpTable::from_fn(8, false, |x, y| (x * y) & !0x3F);
    let psnr_tailored = average_filter_psnr(&images, &kernel, &tailored_u, 90.0);
    let psnr_generic = average_filter_psnr(&images, &kernel, &generic_u, 90.0);
    assert!(
        psnr_tailored > psnr_generic + 10.0,
        "tailored {psnr_tailored} dB vs generic {psnr_generic} dB"
    );
    // ... even though under the *uniform* metric the tailored one is worse.
    let exact = OpTable::exact_mul(8, true);
    let med_tailored = table_stats(&tailored, &exact, &Pmf::uniform(8)).med;
    let med_generic = table_stats(&generic, &exact, &Pmf::uniform(8)).med;
    assert!(med_tailored > med_generic);
}

#[test]
fn evolved_filter_multiplier_keeps_constant_regions_flat() {
    // The Gaussian filter maps constant images to themselves when products
    // with the actual coefficients are exact.
    let kernel = Kernel3::gaussian(1.0);
    let img = distapprox::imgproc::GrayImage::from_fn(16, 16, |_, _| 137);
    let exact_out = convolve3x3_exact(&img, &kernel);
    assert_eq!(exact_out, img);
    let table = OpTable::exact_mul(8, false);
    assert_eq!(convolve3x3(&img, &kernel, &table), img);
}
