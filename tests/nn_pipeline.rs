//! Integration: the neural-network case study (datasets × nn × core),
//! miniature version of the paper's §V pipeline.

use distapprox::core::nn_flow::{evaluate_multiplier, prepare_case, CaseConfig, CaseKind};
use distapprox::prelude::*;

fn tiny_case() -> distapprox::core::nn_flow::CaseStudy {
    prepare_case(&CaseConfig {
        kind: CaseKind::Mlp { hidden: 24 },
        train_n: 350,
        test_n: 120,
        calib_n: 32,
        epochs: 12,
        lr: 0.03,
        seed: 41,
    })
}

#[test]
fn weight_distribution_drives_a_working_wmed_search() {
    let case = tiny_case();
    // Fig. 6 top: trained weight distributions concentrate near zero.
    let near: f64 = (-10i64..=10).map(|v| case.weight_pmf.prob_of(v)).sum();
    assert!(near > 0.4, "weight mass near zero = {near}");

    // Evolve a signed multiplier under the measured distribution.
    let cfg = FlowConfig {
        width: 8,
        signed: true,
        thresholds: vec![5e-4],
        iterations: 600,
        threads: 2,
        activity_blocks: 8,
        seed: 4,
        ..FlowConfig::default()
    };
    let result = evolve_circuits(&case.weight_pmf, &cfg).unwrap();
    let m = &result.circuits[0];
    assert!(m.stats.wmed <= 5e-4);

    // Integrate it into the classifier: accuracy should stay close to the
    // exact-multiplier reference at this gentle WMED level (Table I shows
    // ~0 drop up to 0.5 %).
    let table = OpTable::from_netlist(&m.netlist, 8, true).unwrap();
    let acc = evaluate_multiplier(&case, &table, 0);
    assert!(
        acc.initial_delta > -0.10,
        "gentle approximation lost too much accuracy: {}",
        acc.initial_delta
    );
}

#[test]
fn accuracy_monotone_in_wmed_level_and_finetuning_recovers() {
    let case = tiny_case();
    let mild =
        OpTable::from_netlist(&distapprox::arith::baugh_wooley_broken(8, 8, 5), 8, true).unwrap();
    let harsh =
        OpTable::from_netlist(&distapprox::arith::baugh_wooley_broken(8, 8, 8), 8, true).unwrap();
    let acc_mild = evaluate_multiplier(&case, &mild, 0);
    let acc_harsh = evaluate_multiplier(&case, &harsh, 2);
    assert!(
        acc_mild.initial >= acc_harsh.initial,
        "mild {} vs harsh {}",
        acc_mild.initial,
        acc_harsh.initial
    );
    // Table I's key effect: fine-tuning recovers a degraded network.
    assert!(
        acc_harsh.finetuned >= acc_harsh.initial,
        "fine-tuning should not hurt: {} -> {}",
        acc_harsh.initial,
        acc_harsh.finetuned
    );
}

#[test]
fn mac_power_savings_follow_multiplier_savings() {
    let case = tiny_case();
    let exact = baugh_wooley_multiplier(8);
    let approx = distapprox::arith::baugh_wooley_broken(8, 7, 8);
    let acc_width = distapprox::arith::mac::accumulator_width(8, 784);
    let mac =
        distapprox::core::mac_metrics(&approx, &exact, 8, acc_width, true, &case.weight_pmf, 12, 9);
    assert!(mac.rel_area < 0.0, "area saving expected, got {}", mac.rel_area);
    assert!(mac.estimate.pdp_fj() < mac.reference.pdp_fj(), "PDP saving expected");
}

#[test]
fn lenet_case_prepares_and_classifies_above_chance() {
    // Small LeNet on the SVHN-like set: slower, so tiny sizes — this is a
    // smoke test of the full conv pipeline, not a benchmark.
    let case = prepare_case(&CaseConfig {
        kind: CaseKind::LeNet,
        train_n: 220,
        test_n: 60,
        calib_n: 24,
        epochs: 6,
        lr: 0.03,
        seed: 12,
    });
    assert!(
        case.quantized_accuracy > 0.2,
        "LeNet should beat chance even at toy scale, got {}",
        case.quantized_accuracy
    );
    let exact = OpTable::exact_mul(8, true);
    let acc = evaluate_multiplier(&case, &exact, 0);
    assert_eq!(acc.initial, case.quantized_accuracy);
}
