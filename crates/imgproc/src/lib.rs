//! Image-processing substrate for the approximate Gaussian-filter study.
//!
//! Case study 1 of the paper validates its distribution-driven multipliers
//! inside a 3×3 Gaussian image filter (Fig. 5): nine constant coefficients
//! multiply the pixels of a window, the products are summed and rescaled.
//! This crate provides everything that experiment needs:
//!
//! * [`GrayImage`] — 8-bit grayscale images;
//! * [`synth::test_images`] — 25 deterministic synthetic scenes standing in
//!   for the paper's image set (offline substitution; see ARCHITECTURE.md);
//! * [`noise::add_gaussian`] — noise injection for denoising scenarios;
//! * [`Kernel3`] — integer Gaussian kernels whose coefficients sum to 256,
//!   so the hardware divide is a plain 8-bit shift (the paper's "sum has to
//!   be less than 256" constraint);
//! * [`convolve3x3`] — convolution through an arbitrary multiplier
//!   [`OpTable`], exactly how an approximate ASIC datapath executes it;
//! * [`psnr`] / [`ssim`] — quality metrics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod filter;
mod image;
mod kernel;
pub mod noise;
pub mod synth;

pub use filter::{convolve3x3, convolve3x3_exact};
pub use image::GrayImage;
pub use kernel::Kernel3;

use apx_arith::OpTable;

/// Mean squared error between two images of equal size.
///
/// # Panics
///
/// Panics if dimensions differ.
#[must_use]
pub fn mse(a: &GrayImage, b: &GrayImage) -> f64 {
    assert_eq!(a.width(), b.width(), "width mismatch");
    assert_eq!(a.height(), b.height(), "height mismatch");
    let n = (a.width() * a.height()) as f64;
    a.pixels()
        .iter()
        .zip(b.pixels())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        / n
}

/// Peak signal-to-noise ratio in dB (`+∞` for identical images).
///
/// # Panics
///
/// Panics if dimensions differ.
#[must_use]
pub fn psnr(a: &GrayImage, b: &GrayImage) -> f64 {
    let m = mse(a, b);
    if m == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / m).log10()
    }
}

/// PSNR clamped to `cap` dB — the paper's figures saturate near-exact
/// filters at a finite value.
#[must_use]
pub fn psnr_capped(a: &GrayImage, b: &GrayImage, cap: f64) -> f64 {
    psnr(a, b).min(cap)
}

/// Mean structural similarity over 8×8 tiles (simplified SSIM, `k1=0.01`,
/// `k2=0.03`, no Gaussian window).
///
/// # Panics
///
/// Panics if dimensions differ or the images are smaller than 8×8.
#[must_use]
pub fn ssim(a: &GrayImage, b: &GrayImage) -> f64 {
    assert_eq!(a.width(), b.width(), "width mismatch");
    assert_eq!(a.height(), b.height(), "height mismatch");
    assert!(a.width() >= 8 && a.height() >= 8, "images must be at least 8x8");
    const C1: f64 = (0.01 * 255.0) * (0.01 * 255.0);
    const C2: f64 = (0.03 * 255.0) * (0.03 * 255.0);
    let mut total = 0.0;
    let mut tiles = 0usize;
    for ty in (0..a.height() - 7).step_by(8) {
        for tx in (0..a.width() - 7).step_by(8) {
            let (mut ma, mut mb) = (0.0f64, 0.0f64);
            for y in ty..ty + 8 {
                for x in tx..tx + 8 {
                    ma += a.get(x, y) as f64;
                    mb += b.get(x, y) as f64;
                }
            }
            ma /= 64.0;
            mb /= 64.0;
            let (mut va, mut vb, mut cov) = (0.0f64, 0.0f64, 0.0f64);
            for y in ty..ty + 8 {
                for x in tx..tx + 8 {
                    let da = a.get(x, y) as f64 - ma;
                    let db = b.get(x, y) as f64 - mb;
                    va += da * da;
                    vb += db * db;
                    cov += da * db;
                }
            }
            va /= 63.0;
            vb /= 63.0;
            cov /= 63.0;
            total += ((2.0 * ma * mb + C1) * (2.0 * cov + C2))
                / ((ma * ma + mb * mb + C1) * (va + vb + C2));
            tiles += 1;
        }
    }
    total / tiles as f64
}

/// Average PSNR of an approximate filter against the exact filter over an
/// image set — the quantity plotted in the paper's Fig. 5 (capped at
/// `cap` dB per image).
///
/// # Panics
///
/// Panics if `images` is empty or the table is not an 8-bit unsigned
/// operator.
#[must_use]
pub fn average_filter_psnr(
    images: &[GrayImage],
    kernel: &Kernel3,
    table: &OpTable,
    cap: f64,
) -> f64 {
    assert!(!images.is_empty(), "need at least one image");
    let mut total = 0.0;
    for img in images {
        let exact = convolve3x3_exact(img, kernel);
        let approx = convolve3x3(img, kernel, table);
        total += psnr_capped(&exact, &approx, cap);
    }
    total / images.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_rng::Xoshiro256;

    #[test]
    fn mse_and_psnr_basics() {
        let a = GrayImage::from_fn(16, 16, |x, y| (x * 16 + y) as u8);
        assert_eq!(mse(&a, &a), 0.0);
        assert_eq!(psnr(&a, &a), f64::INFINITY);
        assert_eq!(psnr_capped(&a, &a, 80.0), 80.0);
        let b = GrayImage::from_fn(16, 16, |x, y| (x * 16 + y) as u8 / 2 + 10);
        let a2 = GrayImage::from_fn(16, 16, |x, y| (x * 16 + y) as u8 / 2);
        assert!((mse(&a2, &b) - 100.0).abs() < 1e-9);
        let p = psnr(&a2, &b);
        assert!(p > 27.0 && p < 29.0, "psnr {p}");
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let mut rng = Xoshiro256::from_seed(8);
        let clean = synth::test_images(1, 32, 32, 1).pop().unwrap();
        let slightly = noise::add_gaussian(&clean, 5.0, &mut rng);
        let very = noise::add_gaussian(&clean, 25.0, &mut rng);
        assert!(psnr(&clean, &slightly) > psnr(&clean, &very));
    }

    #[test]
    fn ssim_identity_is_one() {
        let img = synth::test_images(1, 32, 32, 2).pop().unwrap();
        assert!((ssim(&img, &img) - 1.0).abs() < 1e-9);
        let mut rng = Xoshiro256::from_seed(4);
        let noisy = noise::add_gaussian(&img, 30.0, &mut rng);
        assert!(ssim(&img, &noisy) < 0.95);
    }

    #[test]
    fn average_filter_psnr_exact_table_is_capped() {
        let images = synth::test_images(3, 24, 24, 3);
        let kernel = Kernel3::gaussian(1.0);
        let exact = OpTable::exact_mul(8, false);
        assert_eq!(average_filter_psnr(&images, &kernel, &exact, 80.0), 80.0);
    }
}
