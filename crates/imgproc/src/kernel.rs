//! Integer convolution kernels.

/// A 3×3 integer kernel whose coefficients sum to exactly 256, so the
/// normalizing division is the 8-bit right shift a hardware datapath
/// would use.
///
/// Coefficient layout is row-major:
/// `[c00, c01, c02, c10, c11, c12, c20, c21, c22]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Kernel3 {
    coeffs: [u8; 9],
}

impl Kernel3 {
    /// Number of fractional bits of the fixed-point weights (sum = 2^8).
    pub const SHIFT: u32 = 8;

    /// Builds the discrete Gaussian kernel for standard deviation `sigma`,
    /// quantized to 8-bit coefficients summing to exactly 256.
    ///
    /// Small `sigma` concentrates weight in the centre (the paper's
    /// close-to-zero surrounding coefficients); large `sigma` approaches a
    /// box filter.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0`.
    #[must_use]
    pub fn gaussian(sigma: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        let mut raw = [0.0f64; 9];
        let mut total = 0.0;
        for dy in -1i32..=1 {
            for dx in -1i32..=1 {
                let r2 = (dx * dx + dy * dy) as f64;
                let v = (-r2 / (2.0 * sigma * sigma)).exp();
                raw[((dy + 1) * 3 + (dx + 1)) as usize] = v;
                total += v;
            }
        }
        let mut coeffs = [0i32; 9];
        let mut sum = 0i32;
        for (c, &v) in coeffs.iter_mut().zip(&raw) {
            *c = ((v / total) * 256.0).round() as i32;
            sum += *c;
        }
        // Force the sum to exactly 256 by adjusting the centre coefficient.
        coeffs[4] += 256 - sum;
        assert!(
            coeffs.iter().all(|&c| (0..=255).contains(&c)),
            "coefficients must fit u8 (sigma too extreme)"
        );
        let mut out = [0u8; 9];
        for (o, &c) in out.iter_mut().zip(&coeffs) {
            *o = c as u8;
        }
        Kernel3 { coeffs: out }
    }

    /// Builds a kernel from explicit coefficients.
    ///
    /// # Panics
    ///
    /// Panics unless the coefficients sum to exactly 256.
    #[must_use]
    pub fn from_coeffs(coeffs: [u8; 9]) -> Self {
        let sum: u32 = coeffs.iter().map(|&c| c as u32).sum();
        assert_eq!(sum, 256, "kernel coefficients must sum to 256");
        Kernel3 { coeffs }
    }

    /// The coefficients, row-major.
    #[must_use]
    pub fn coeffs(&self) -> &[u8; 9] {
        &self.coeffs
    }

    /// Coefficient for offset `(dx, dy)` with `dx, dy ∈ {-1, 0, 1}`.
    ///
    /// # Panics
    ///
    /// Panics if an offset is outside `-1..=1`.
    #[must_use]
    pub fn at(&self, dx: i32, dy: i32) -> u8 {
        assert!((-1..=1).contains(&dx) && (-1..=1).contains(&dy), "offset out of range");
        self.coeffs[((dy + 1) * 3 + (dx + 1)) as usize]
    }

    /// The distinct coefficient values (useful for building the operand
    /// distribution of the filter's multipliers).
    #[must_use]
    pub fn distinct_coeffs(&self) -> Vec<u8> {
        let mut v = self.coeffs.to_vec();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_sums_to_256_and_is_symmetric() {
        for sigma in [0.5, 0.8, 1.0, 1.5, 3.0] {
            let k = Kernel3::gaussian(sigma);
            let sum: u32 = k.coeffs().iter().map(|&c| c as u32).sum();
            assert_eq!(sum, 256, "sigma={sigma}");
            assert_eq!(k.at(-1, 0), k.at(1, 0));
            assert_eq!(k.at(0, -1), k.at(0, 1));
            assert_eq!(k.at(-1, -1), k.at(1, 1));
            assert!(k.at(0, 0) >= k.at(1, 0), "centre dominates");
            assert!(k.at(1, 0) >= k.at(1, 1), "edge beats corner");
        }
    }

    #[test]
    fn small_sigma_concentrates_centre() {
        let tight = Kernel3::gaussian(0.5);
        let wide = Kernel3::gaussian(2.0);
        assert!(tight.at(0, 0) > wide.at(0, 0));
        assert!(tight.at(1, 1) < wide.at(1, 1));
    }

    #[test]
    fn paper_constraint_coefficients_below_256() {
        // "nine constants whose sum has to be less than [or equal] 256".
        let k = Kernel3::gaussian(1.0);
        assert!(k.coeffs().iter().all(|&c| c < 255));
        // σ=1: the classic small coefficients away from the centre.
        assert!(k.at(1, 1) < 32, "corner coeff {}", k.at(1, 1));
    }

    #[test]
    fn distinct_coeffs_of_symmetric_kernel() {
        let k = Kernel3::gaussian(1.0);
        // centre, edge, corner -> 3 distinct values.
        assert_eq!(k.distinct_coeffs().len(), 3);
    }

    #[test]
    fn from_coeffs_validates_sum() {
        let k = Kernel3::from_coeffs([16, 32, 16, 32, 64, 32, 16, 32, 16]);
        assert_eq!(k.at(0, 0), 64);
    }

    #[test]
    #[should_panic(expected = "sum to 256")]
    fn bad_sum_panics() {
        let _ = Kernel3::from_coeffs([1; 9]);
    }
}
