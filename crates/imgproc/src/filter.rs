//! 3×3 convolution through a pluggable multiplier.

use crate::{GrayImage, Kernel3};
use apx_arith::OpTable;

/// Convolves `img` with `kernel`, computing every `coefficient × pixel`
/// product through `table` — the coefficient is operand A (the
/// distribution operand of the paper) and the pixel operand B.
///
/// Accumulation and the final `>> 8` rescale (with rounding) are exact, as
/// in the hardware filter where only multipliers are approximated. Borders
/// replicate. The result is clamped to `0..=255`.
///
/// # Panics
///
/// Panics unless `table` is an unsigned 8-bit operator.
#[must_use]
pub fn convolve3x3(img: &GrayImage, kernel: &Kernel3, table: &OpTable) -> GrayImage {
    assert_eq!(table.width(), 8, "filter needs an 8-bit multiplier");
    assert!(!table.is_signed(), "filter operands are unsigned");
    GrayImage::from_fn(img.width(), img.height(), |x, y| {
        let mut acc: i64 = 0;
        for dy in -1i32..=1 {
            for dx in -1i32..=1 {
                let coeff = kernel.at(dx, dy);
                if coeff == 0 {
                    continue;
                }
                let pix = img.get_clamped(x as isize + dx as isize, y as isize + dy as isize);
                acc += table.get(coeff as i64, pix as i64);
            }
        }
        // Round-to-nearest 8-bit rescale, clamped to the pixel range.
        ((acc + 128) >> Kernel3::SHIFT).clamp(0, 255) as u8
    })
}

/// Reference convolution with exact integer products.
#[must_use]
pub fn convolve3x3_exact(img: &GrayImage, kernel: &Kernel3) -> GrayImage {
    GrayImage::from_fn(img.width(), img.height(), |x, y| {
        let mut acc: i64 = 0;
        for dy in -1i32..=1 {
            for dx in -1i32..=1 {
                let coeff = kernel.at(dx, dy) as i64;
                let pix = img.get_clamped(x as isize + dx as isize, y as isize + dy as isize);
                acc += coeff * pix as i64;
            }
        }
        ((acc + 128) >> Kernel3::SHIFT).clamp(0, 255) as u8
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{noise, psnr, synth};
    use apx_arith::truncated_multiplier;
    use apx_rng::Xoshiro256;

    #[test]
    fn exact_table_matches_reference() {
        let img = synth::test_images(1, 20, 20, 5).pop().unwrap();
        let kernel = Kernel3::gaussian(1.0);
        let exact_table = OpTable::exact_mul(8, false);
        assert_eq!(convolve3x3(&img, &kernel, &exact_table), convolve3x3_exact(&img, &kernel));
    }

    #[test]
    fn constant_image_is_preserved() {
        let img = GrayImage::from_fn(10, 10, |_, _| 200);
        let kernel = Kernel3::gaussian(1.0);
        let out = convolve3x3_exact(&img, &kernel);
        // Kernel sums to 256 -> a constant image maps to itself exactly.
        assert_eq!(out, img);
    }

    #[test]
    fn filter_smooths_gaussian_noise() {
        let mut rng = Xoshiro256::from_seed(17);
        let clean = GrayImage::from_fn(48, 48, |x, _| (x * 5) as u8);
        let noisy = noise::add_gaussian(&clean, 20.0, &mut rng);
        let filtered = convolve3x3_exact(&noisy, &Kernel3::gaussian(1.0));
        assert!(
            psnr(&clean, &filtered) > psnr(&clean, &noisy) + 2.0,
            "filtering should improve PSNR: {} vs {}",
            psnr(&clean, &filtered),
            psnr(&clean, &noisy)
        );
    }

    #[test]
    fn approximate_multiplier_degrades_gracefully() {
        let img = synth::test_images(1, 24, 24, 9).pop().unwrap();
        let kernel = Kernel3::gaussian(1.0);
        let exact = convolve3x3_exact(&img, &kernel);
        let mild = OpTable::from_netlist(&truncated_multiplier(8, 4), 8, false).unwrap();
        let harsh = OpTable::from_netlist(&truncated_multiplier(8, 10), 8, false).unwrap();
        let p_mild = psnr(&exact, &convolve3x3(&img, &kernel, &mild));
        let p_harsh = psnr(&exact, &convolve3x3(&img, &kernel, &harsh));
        assert!(p_mild > p_harsh, "mild {p_mild} dB vs harsh {p_harsh} dB");
        assert!(p_mild > 30.0, "mild truncation should stay reasonable");
    }

    #[test]
    #[should_panic(expected = "8-bit multiplier")]
    fn wrong_table_width_panics() {
        let img = GrayImage::new(4, 4);
        let _ = convolve3x3(&img, &Kernel3::gaussian(1.0), &OpTable::exact_mul(4, false));
    }
}
