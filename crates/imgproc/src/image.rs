//! 8-bit grayscale images.

/// An 8-bit grayscale image, row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl GrayImage {
    /// A black image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is 0.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        GrayImage { width, height, pixels: vec![0; width * height] }
    }

    /// Builds an image from a pixel function `f(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is 0.
    #[must_use]
    pub fn from_fn<F>(width: usize, height: usize, mut f: F) -> Self
    where
        F: FnMut(usize, usize) -> u8,
    {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        let mut pixels = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                pixels.push(f(x, y));
            }
        }
        GrayImage { width, height, pixels }
    }

    /// Wraps raw row-major pixel data.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height` or a dimension is 0.
    #[must_use]
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<u8>) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        assert_eq!(pixels.len(), width * height, "pixel buffer size mismatch");
        GrayImage { width, height, pixels }
    }

    /// Image width in pixels.
    #[inline]
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    #[must_use]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Pixel at `(x, y)` with replicate-border semantics: out-of-range
    /// coordinates clamp to the nearest edge (signed inputs allowed).
    #[inline]
    #[must_use]
    pub fn get_clamped(&self, x: isize, y: isize) -> u8 {
        let xc = x.clamp(0, self.width as isize - 1) as usize;
        let yc = y.clamp(0, self.height as isize - 1) as usize;
        self.pixels[yc * self.width + xc]
    }

    /// Sets pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: u8) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x] = value;
    }

    /// Raw pixels, row-major.
    #[must_use]
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Mean pixel intensity.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.pixels.iter().map(|&p| p as f64).sum::<f64>() / self.pixels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_fills_row_major() {
        let img = GrayImage::from_fn(3, 2, |x, y| (10 * y + x) as u8);
        assert_eq!(img.pixels(), &[0, 1, 2, 10, 11, 12]);
        assert_eq!(img.get(2, 1), 12);
    }

    #[test]
    fn clamped_access_replicates_borders() {
        let img = GrayImage::from_fn(2, 2, |x, y| (y * 2 + x) as u8);
        assert_eq!(img.get_clamped(-5, -5), 0);
        assert_eq!(img.get_clamped(5, 0), 1);
        assert_eq!(img.get_clamped(1, 9), 3);
    }

    #[test]
    fn set_and_mean() {
        let mut img = GrayImage::new(2, 2);
        img.set(0, 0, 100);
        img.set(1, 1, 100);
        assert!((img.mean() - 50.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_get_panics() {
        let _ = GrayImage::new(2, 2).get(2, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_panics() {
        let _ = GrayImage::new(0, 5);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn bad_buffer_panics() {
        let _ = GrayImage::from_pixels(2, 2, vec![0; 3]);
    }
}
