//! Noise injection.

use crate::GrayImage;
use apx_rng::Xoshiro256;

/// Adds zero-mean Gaussian noise with standard deviation `sigma`, clamping
/// to the 8-bit pixel range.
#[must_use]
pub fn add_gaussian(img: &GrayImage, sigma: f64, rng: &mut Xoshiro256) -> GrayImage {
    GrayImage::from_fn(img.width(), img.height(), |x, y| {
        let v = img.get(x, y) as f64 + rng.normal(0.0, sigma);
        v.round().clamp(0.0, 255.0) as u8
    })
}

/// Salt-and-pepper noise: each pixel independently becomes 0 or 255 with
/// probability `p / 2` each.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
#[must_use]
pub fn add_salt_pepper(img: &GrayImage, p: f64, rng: &mut Xoshiro256) -> GrayImage {
    assert!((0.0..=1.0).contains(&p), "probability outside [0,1]");
    GrayImage::from_fn(img.width(), img.height(), |x, y| {
        if rng.bernoulli(p) {
            if rng.bernoulli(0.5) {
                0
            } else {
                255
            }
        } else {
            img.get(x, y)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_noise_statistics() {
        let mut rng = Xoshiro256::from_seed(2);
        let img = GrayImage::from_fn(64, 64, |_, _| 128);
        let noisy = add_gaussian(&img, 10.0, &mut rng);
        let mean = noisy.mean();
        assert!((mean - 128.0).abs() < 1.0, "mean {mean}");
        let var: f64 = noisy.pixels().iter().map(|&p| (p as f64 - mean).powi(2)).sum::<f64>()
            / noisy.pixels().len() as f64;
        assert!((var.sqrt() - 10.0).abs() < 1.0, "std {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_keeps_image() {
        let mut rng = Xoshiro256::from_seed(3);
        let img = GrayImage::from_fn(8, 8, |x, y| (x * y) as u8);
        // sigma must be > 0 for normal(); emulate by negligible sigma.
        let noisy = add_gaussian(&img, 1e-9, &mut rng);
        assert_eq!(noisy, img);
    }

    #[test]
    fn salt_pepper_rate() {
        let mut rng = Xoshiro256::from_seed(4);
        let img = GrayImage::from_fn(100, 100, |_, _| 128);
        let noisy = add_salt_pepper(&img, 0.1, &mut rng);
        let extreme = noisy.pixels().iter().filter(|&&p| p == 0 || p == 255).count();
        let rate = extreme as f64 / 10_000.0;
        assert!((rate - 0.1).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let img = GrayImage::from_fn(16, 16, |x, y| (x + y) as u8);
        let a = add_gaussian(&img, 5.0, &mut Xoshiro256::from_seed(7));
        let b = add_gaussian(&img, 5.0, &mut Xoshiro256::from_seed(7));
        assert_eq!(a, b);
    }
}
