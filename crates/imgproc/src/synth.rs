//! Deterministic synthetic test scenes.
//!
//! The paper averages filter PSNR over 25 photographs we cannot ship in an
//! offline reproduction. These procedurally generated scenes provide the
//! same role: a diverse, reproducible set of pixel statistics (smooth
//! gradients, hard edges, periodic texture, band-limited noise).

use crate::GrayImage;
use apx_rng::Xoshiro256;

/// Generates `count` deterministic scenes of size `width × height`.
///
/// Scene kinds cycle through linear gradients, radial gradients,
/// checkerboards, circles on gradients, sinusoidal plaids and smooth value
/// noise, each instance varied by the seeded RNG. Equal arguments always
/// produce identical images.
///
/// # Panics
///
/// Panics if `count == 0` or a dimension is smaller than 8.
#[must_use]
pub fn test_images(count: usize, width: usize, height: usize, seed: u64) -> Vec<GrayImage> {
    assert!(count > 0, "need at least one image");
    assert!(width >= 8 && height >= 8, "scenes must be at least 8x8");
    let mut rng = Xoshiro256::from_seed(seed ^ 0x5CE9E5);
    (0..count)
        .map(|i| {
            let mut sub = rng.fork(i as u64);
            match i % 6 {
                0 => linear_gradient(width, height, &mut sub),
                1 => radial_gradient(width, height, &mut sub),
                2 => checkerboard(width, height, &mut sub),
                3 => circles(width, height, &mut sub),
                4 => plaid(width, height, &mut sub),
                _ => value_noise(width, height, &mut sub),
            }
        })
        .collect()
}

fn linear_gradient(w: usize, h: usize, rng: &mut Xoshiro256) -> GrayImage {
    let angle = rng.f64() * std::f64::consts::TAU;
    let (dx, dy) = (angle.cos(), angle.sin());
    let offset = rng.f64() * 128.0;
    let span = (w as f64 * dx.abs() + h as f64 * dy.abs()).max(1.0);
    GrayImage::from_fn(w, h, |x, y| {
        let t = (x as f64 * dx + y as f64 * dy) / span;
        ((offset + t.abs() * 255.0) % 256.0) as u8
    })
}

fn radial_gradient(w: usize, h: usize, rng: &mut Xoshiro256) -> GrayImage {
    let cx = rng.f64() * w as f64;
    let cy = rng.f64() * h as f64;
    let scale = 255.0 / ((w * w + h * h) as f64).sqrt();
    let invert = rng.bernoulli(0.5);
    GrayImage::from_fn(w, h, |x, y| {
        let d = ((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2)).sqrt();
        let v = (d * scale).min(255.0) as u8;
        if invert {
            255 - v
        } else {
            v
        }
    })
}

fn checkerboard(w: usize, h: usize, rng: &mut Xoshiro256) -> GrayImage {
    let cell = 2 + rng.gen_range(6);
    let lo = rng.gen_range(64) as u8;
    let hi = 192 + rng.gen_range(64) as u8;
    GrayImage::from_fn(w, h, |x, y| if ((x / cell) + (y / cell)) % 2 == 0 { lo } else { hi })
}

fn circles(w: usize, h: usize, rng: &mut Xoshiro256) -> GrayImage {
    let n = 3 + rng.gen_range(4);
    let shapes: Vec<(f64, f64, f64, u8)> = (0..n)
        .map(|_| {
            (
                rng.f64() * w as f64,
                rng.f64() * h as f64,
                (3 + rng.gen_range(w / 3)) as f64,
                (rng.gen_range(200) + 55) as u8,
            )
        })
        .collect();
    let bg = rng.gen_range(100) as u8;
    GrayImage::from_fn(w, h, |x, y| {
        for &(cx, cy, r, v) in &shapes {
            if (x as f64 - cx).powi(2) + (y as f64 - cy).powi(2) <= r * r {
                return v;
            }
        }
        bg + (x % 7) as u8
    })
}

fn plaid(w: usize, h: usize, rng: &mut Xoshiro256) -> GrayImage {
    let fx = 0.05 + rng.f64() * 0.4;
    let fy = 0.05 + rng.f64() * 0.4;
    let phase = rng.f64() * std::f64::consts::TAU;
    GrayImage::from_fn(w, h, |x, y| {
        let v = ((x as f64 * fx).sin() + (y as f64 * fy + phase).sin()) * 0.25 + 0.5;
        (v * 255.0).clamp(0.0, 255.0) as u8
    })
}

/// Smooth band-limited noise: bilinear interpolation of a coarse random
/// lattice (a simple value-noise octave).
fn value_noise(w: usize, h: usize, rng: &mut Xoshiro256) -> GrayImage {
    let cell = 4 + rng.gen_range(5);
    let gw = w / cell + 2;
    let gh = h / cell + 2;
    let lattice: Vec<f64> = (0..gw * gh).map(|_| rng.f64()).collect();
    GrayImage::from_fn(w, h, |x, y| {
        let gx = x / cell;
        let gy = y / cell;
        let tx = (x % cell) as f64 / cell as f64;
        let ty = (y % cell) as f64 / cell as f64;
        let at = |i: usize, j: usize| lattice[j * gw + i];
        let top = at(gx, gy) * (1.0 - tx) + at(gx + 1, gy) * tx;
        let bot = at(gx, gy + 1) * (1.0 - tx) + at(gx + 1, gy + 1) * tx;
        ((top * (1.0 - ty) + bot * ty) * 255.0) as u8
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = test_images(25, 32, 32, 42);
        let b = test_images(25, 32, 32, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 25);
    }

    #[test]
    fn seeds_matter() {
        let a = test_images(4, 16, 16, 1);
        let b = test_images(4, 16, 16, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn scenes_are_diverse() {
        let images = test_images(6, 32, 32, 7);
        // All six scene kinds pairwise distinct.
        for i in 0..images.len() {
            for j in i + 1..images.len() {
                assert_ne!(images[i], images[j], "scenes {i} and {j} identical");
            }
        }
    }

    #[test]
    fn scenes_have_nontrivial_content() {
        for (i, img) in test_images(12, 32, 32, 3).iter().enumerate() {
            let mean = img.mean();
            assert!(mean > 1.0 && mean < 254.0, "scene {i} degenerate mean {mean}");
            let distinct: std::collections::BTreeSet<u8> = img.pixels().iter().copied().collect();
            assert!(distinct.len() >= 2, "scene {i} is constant");
        }
    }
}
