//! A small reduced ordered binary decision diagram (ROBDD) package.
//!
//! This is the substrate for the `symbolic` evaluator backend in
//! `apx_metrics`: it has to represent the characteristic functions of
//! approximate-vs-exact output differences and answer *model-count*
//! queries about them exactly, and it has to do so without external
//! dependencies (the workspace builds offline, like `apx_verify`).
//!
//! Design notes:
//!
//! - One [`Bdd`] value is a whole manager: an append-only node table
//!   with the two terminals at fixed indices, a unique table enforcing
//!   canonicity, and an apply cache. Node handles are plain `u32`
//!   indices ([`NodeId`]); they stay valid until [`Bdd::clear`].
//! - [`Bdd::apply`] takes the two-input truth table of the connective
//!   as a 4-bit opcode, so every binary gate in `apx_gates` maps onto
//!   a single code path (mirroring how the bit-parallel engine drives
//!   one word-wise kernel per gate kind).
//! - Model counting is memoized per node and answers "how many
//!   assignments of variables `from..nvars` satisfy this subfunction"
//!   — the primitive the symbolic engine uses both for whole rows and
//!   for 64-lane blocks (after [`Bdd::descend`]ing the block prefix).
//!
//! The variable order is fixed at construction: callers choose the
//! order by how they map problem bits to variable indices (variable 0
//! is the root-most level).

/// Handle to a node in a [`Bdd`] manager.
///
/// `0` and `1` are the constant-false and constant-true terminals of
/// every manager; all other ids are decision nodes. Handles are only
/// meaningful for the manager that produced them and are invalidated
/// by [`Bdd::clear`].
pub type NodeId = u32;

/// The constant-false terminal (in every manager).
pub const FALSE: NodeId = 0;
/// The constant-true terminal (in every manager).
pub const TRUE: NodeId = 1;

/// 4-bit truth-table opcodes for [`Bdd::apply`].
///
/// Bit `(a << 1) | b` of the opcode is the connective's output for
/// inputs `(a, b)`.
pub mod opcode {
    /// `a AND b`.
    pub const AND: u8 = 0b1000;
    /// `a OR b`.
    pub const OR: u8 = 0b1110;
    /// `a XOR b`.
    pub const XOR: u8 = 0b0110;
    /// `NOT a` (ignores `b`).
    pub const NOT_A: u8 = 0b0011;
    /// `a AND NOT b`.
    pub const AND_NOT_B: u8 = 0b0100;
}

/// A decision node: branch variable plus low (variable = 0) and high
/// (variable = 1) successors. Terminals use `var == nvars` so the
/// "skipped levels" arithmetic in counting needs no special cases.
#[derive(Clone, Copy, Debug)]
struct Node {
    var: u32,
    lo: NodeId,
    hi: NodeId,
}

/// Open-addressed `u64 -> u32` map with key `0` reserved as "empty".
///
/// The std `HashMap` would work, but the unique and apply tables are
/// the innermost loops of every symbolic evaluation; a flat
/// power-of-two table with a strong multiplicative hash keeps probes
/// short and allocation-free on the hot path.
struct U64Map {
    keys: Vec<u64>,
    vals: Vec<u32>,
    len: usize,
}

impl U64Map {
    fn with_capacity(cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(64);
        U64Map { keys: vec![0; cap], vals: vec![0; cap], len: 0 }
    }

    fn clear(&mut self) {
        self.keys.iter_mut().for_each(|k| *k = 0);
        self.len = 0;
    }

    #[inline]
    fn slot(keys: &[u64], key: u64) -> usize {
        // splitmix64-style finalizer: full-width avalanche so the low
        // bits used for masking depend on every key bit.
        let mut h = key;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        (h as usize) & (keys.len() - 1)
    }

    #[inline]
    fn get(&self, key: u64) -> Option<u32> {
        debug_assert_ne!(key, 0);
        let mask = self.keys.len() - 1;
        let mut i = Self::slot(&self.keys, key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.vals[i]);
            }
            if k == 0 {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    #[inline]
    fn insert(&mut self, key: u64, val: u32) {
        debug_assert_ne!(key, 0);
        if self.len * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = Self::slot(&self.keys, key);
        loop {
            let k = self.keys[i];
            if k == 0 {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return;
            }
            if k == key {
                self.vals[i] = val;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let old_keys = std::mem::take(&mut self.keys);
        let old_vals = std::mem::take(&mut self.vals);
        self.keys = vec![0; old_keys.len() * 2];
        self.vals = vec![0; old_keys.len() * 2];
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != 0 {
                self.insert(k, v);
            }
        }
    }
}

/// Memoized model count: `u64::MAX` marks "not computed yet". Real
/// counts stay below `2^nvars <= 2^MAX_VARS`, far from the sentinel.
const COUNT_UNSET: u64 = u64::MAX;

/// Hard cap on variables per manager. The symbolic evaluator needs at
/// most 33 (an 8-bit MAC has `4w + 1 = 33` input bits); the cap keeps
/// packed table keys and count shifts trivially in range.
pub const MAX_VARS: u32 = 48;

/// Node-id ceiling implied by the packed unique-table key layout
/// (`var:6 | lo:29 | hi:29`).
const MAX_NODES: usize = 1 << 29;

/// An ROBDD manager: node table, unique table, apply cache, count memo.
pub struct Bdd {
    nvars: u32,
    nodes: Vec<Node>,
    unique: U64Map,
    cache: U64Map,
    counts: Vec<u64>,
}

impl Bdd {
    /// New manager over variables `0..nvars` (variable 0 is root-most).
    ///
    /// # Panics
    /// If `nvars` exceeds [`MAX_VARS`].
    #[must_use]
    pub fn new(nvars: u32) -> Self {
        assert!(nvars <= MAX_VARS, "Bdd supports at most {MAX_VARS} variables, got {nvars}");
        let terminals =
            [Node { var: nvars, lo: FALSE, hi: FALSE }, Node { var: nvars, lo: TRUE, hi: TRUE }];
        Bdd {
            nvars,
            nodes: terminals.to_vec(),
            unique: U64Map::with_capacity(1 << 12),
            cache: U64Map::with_capacity(1 << 12),
            counts: vec![0, 1],
        }
    }

    /// Number of variables this manager was created with.
    #[must_use]
    pub fn num_vars(&self) -> u32 {
        self.nvars
    }

    /// Live node count (including the two terminals).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Drops every node except the terminals, invalidating all handles.
    ///
    /// Capacity is retained, so a caller that builds one diagram per
    /// weighted operand value pays the allocation cost once.
    pub fn clear(&mut self) {
        self.nodes.truncate(2);
        self.counts.clear();
        self.counts.extend_from_slice(&[0, 1]);
        self.unique.clear();
        self.cache.clear();
    }

    /// The terminal for `value`.
    #[must_use]
    pub fn constant(value: bool) -> NodeId {
        if value {
            TRUE
        } else {
            FALSE
        }
    }

    /// The single-variable function `v`.
    ///
    /// # Panics
    /// If `v` is out of range.
    pub fn var(&mut self, v: u32) -> NodeId {
        assert!(v < self.nvars, "variable {v} out of range (nvars = {})", self.nvars);
        self.mk(v, FALSE, TRUE)
    }

    #[inline]
    fn var_of(&self, f: NodeId) -> u32 {
        self.nodes[f as usize].var
    }

    /// Canonical node constructor: reduction plus unique-table sharing.
    fn mk(&mut self, var: u32, lo: NodeId, hi: NodeId) -> NodeId {
        if lo == hi {
            return lo;
        }
        debug_assert!(var < self.var_of(lo) && var < self.var_of(hi));
        let key = (u64::from(var) << 58) | (u64::from(lo) << 29) | u64::from(hi);
        if let Some(id) = self.unique.get(key) {
            return id;
        }
        assert!(self.nodes.len() < MAX_NODES, "BDD node table overflow");
        let id = self.nodes.len() as NodeId;
        self.nodes.push(Node { var, lo, hi });
        self.counts.push(COUNT_UNSET);
        self.unique.insert(key, id);
        id
    }

    /// Combines `f` and `g` under the 4-bit truth-table opcode `tt`
    /// (see [`opcode`]): bit `(a << 1) | b` of `tt` is the output for
    /// input values `(a, b)`.
    pub fn apply(&mut self, f: NodeId, g: NodeId, tt: u8) -> NodeId {
        debug_assert!(tt < 16);
        if f <= 1 && g <= 1 {
            return NodeId::from(tt >> ((f << 1) | g) & 1);
        }
        let key = (u64::from(f) << 33) | (u64::from(g) << 4) | u64::from(tt);
        if let Some(id) = self.cache.get(key) {
            return id;
        }
        let (vf, vg) = (self.var_of(f), self.var_of(g));
        let m = vf.min(vg);
        let (f0, f1) =
            if vf == m { (self.nodes[f as usize].lo, self.nodes[f as usize].hi) } else { (f, f) };
        let (g0, g1) =
            if vg == m { (self.nodes[g as usize].lo, self.nodes[g as usize].hi) } else { (g, g) };
        let lo = self.apply(f0, g0, tt);
        let hi = self.apply(f1, g1, tt);
        let r = self.mk(m, lo, hi);
        self.cache.insert(key, r);
        r
    }

    /// `f AND g`.
    pub fn and(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.apply(f, g, opcode::AND)
    }

    /// `f OR g`.
    pub fn or(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.apply(f, g, opcode::OR)
    }

    /// `f XOR g`.
    pub fn xor(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.apply(f, g, opcode::XOR)
    }

    /// `NOT f`.
    pub fn not(&mut self, f: NodeId) -> NodeId {
        self.apply(f, f, opcode::NOT_A)
    }

    /// Evaluates `f` under a complete assignment.
    #[must_use]
    pub fn eval(&self, f: NodeId, assign: impl Fn(u32) -> bool) -> bool {
        let mut n = f;
        while n > 1 {
            let node = self.nodes[n as usize];
            n = if assign(node.var) { node.hi } else { node.lo };
        }
        n == TRUE
    }

    /// Follows the assignment for every variable `< to_var`, returning
    /// the node that represents `f` restricted to that prefix. The
    /// result's branch variable is `>= to_var`.
    #[must_use]
    pub fn descend(&self, f: NodeId, to_var: u32, assign: impl Fn(u32) -> bool) -> NodeId {
        let mut n = f;
        while self.var_of(n) < to_var {
            let node = self.nodes[n as usize];
            n = if assign(node.var) { node.hi } else { node.lo };
        }
        n
    }

    /// Number of satisfying assignments of variables `from..nvars`.
    ///
    /// `f`'s branch variable must be `>= from` (true for anything
    /// returned by [`Bdd::descend`] with `to_var = from`). Counts are
    /// memoized per node, so repeated block queries against the same
    /// diagram are cheap.
    ///
    /// # Panics
    /// If `f` branches on a variable above `from`.
    pub fn count_from(&mut self, f: NodeId, from: u32) -> u64 {
        let v = self.var_of(f);
        assert!(v >= from, "count_from: node branches on var {v} above the requested level {from}");
        self.count(f) << (v - from)
    }

    /// Memoized count over variables `var(f)..nvars`.
    fn count(&mut self, f: NodeId) -> u64 {
        let memo = self.counts[f as usize];
        if memo != COUNT_UNSET {
            return memo;
        }
        let Node { var, lo, hi } = self.nodes[f as usize];
        let cl = self.count(lo) << (self.var_of(lo) - var - 1);
        let ch = self.count(hi) << (self.var_of(hi) - var - 1);
        let c = cl + ch;
        self.counts[f as usize] = c;
        c
    }

    /// Canonical export of the subgraph reachable from `roots`.
    ///
    /// Decision nodes are renumbered by first visit of a deterministic
    /// depth-first walk (roots in order, low child before high); the
    /// terminals keep ids `0` and `1`. Returns the renumbered nodes as
    /// `(var, lo, hi)` triples (index `k` holds new id `k + 2`) plus the
    /// renumbered roots.
    ///
    /// Because ROBDDs are canonical per manager and the walk order
    /// depends only on the reachable graph shape, two plane lists
    /// representing the same function vector under the same variable
    /// order export *identical* data — whatever order their nodes were
    /// interned in. That makes the export a canonical function identity,
    /// the substrate for `apx_verify`'s functional digest.
    #[must_use]
    pub fn export_planes(&self, roots: &[NodeId]) -> (Vec<(u32, NodeId, NodeId)>, Vec<NodeId>) {
        const UNSEEN: NodeId = NodeId::MAX;
        let mut remap: Vec<NodeId> = vec![UNSEEN; self.nodes.len()];
        remap[FALSE as usize] = FALSE;
        remap[TRUE as usize] = TRUE;
        let mut order: Vec<NodeId> = Vec::new();
        let mut stack: Vec<NodeId> = Vec::new();
        for &root in roots {
            stack.push(root);
            while let Some(n) = stack.pop() {
                if remap[n as usize] != UNSEEN {
                    continue;
                }
                remap[n as usize] = (2 + order.len()) as NodeId;
                order.push(n);
                let node = self.nodes[n as usize];
                stack.push(node.hi);
                stack.push(node.lo);
            }
        }
        let triples = order
            .iter()
            .map(|&old| {
                let node = self.nodes[old as usize];
                (node.var, remap[node.lo as usize], remap[node.hi as usize])
            })
            .collect();
        (triples, roots.iter().map(|&r| remap[r as usize]).collect())
    }

    /// Maximum of the little-endian plane vector (`planes[k]` is output
    /// bit `k`) over *all* variable assignments: a greedy most-significant
    /// -bit-first descent that keeps the satisfiable restriction — the
    /// max-sat primitive behind `apx_verify`'s exact range pass.
    ///
    /// # Panics
    /// If more than 64 planes are given.
    pub fn max_value(&mut self, planes: &[NodeId]) -> u64 {
        assert!(planes.len() <= 64, "plane vectors are u64-valued");
        let mut reach = TRUE;
        let mut val = 0u64;
        for (k, &p) in planes.iter().enumerate().rev() {
            let t = self.and(reach, p);
            if t != FALSE {
                val |= 1u64 << k;
                reach = t;
            }
        }
        val
    }

    /// Minimum of the little-endian plane vector over all assignments —
    /// the dual of [`Bdd::max_value`] (greedily zero each bit instead).
    ///
    /// # Panics
    /// If more than 64 planes are given.
    pub fn min_value(&mut self, planes: &[NodeId]) -> u64 {
        assert!(planes.len() <= 64, "plane vectors are u64-valued");
        let mut reach = TRUE;
        let mut val = 0u64;
        for (k, &p) in planes.iter().enumerate().rev() {
            let np = self.not(p);
            let t = self.and(reach, np);
            if t == FALSE {
                // Every assignment consistent with the prefix has this
                // bit set; `reach AND p` equals `reach`, already minimal.
                val |= 1u64 << k;
            } else {
                reach = t;
            }
        }
        val
    }

    /// One satisfying assignment of `f` (variables the chosen path does
    /// not constrain default to `false`), or `None` for the constant-
    /// false terminal.
    ///
    /// Reduction guarantees every decision node has a non-FALSE child
    /// (`lo == hi` collapses in [`Bdd::mk`]), so greedily following the
    /// first non-FALSE child always reaches TRUE.
    #[must_use]
    pub fn some_model(&self, f: NodeId) -> Option<Vec<bool>> {
        if f == FALSE {
            return None;
        }
        let mut assign = vec![false; self.nvars as usize];
        let mut n = f;
        while n > 1 {
            let node = self.nodes[n as usize];
            if node.lo != FALSE {
                n = node.lo;
            } else {
                assign[node.var as usize] = true;
                n = node.hi;
            }
        }
        Some(assign)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_rng::Xoshiro256;

    /// Truth-table oracle alongside a BDD built by the same ops.
    fn random_pair(bdd: &mut Bdd, nvars: u32, ops: usize, seed: u64) -> (NodeId, Vec<bool>) {
        let n = 1usize << nvars;
        let mut rng = Xoshiro256::from_seed(seed);
        let mut funcs: Vec<(NodeId, Vec<bool>)> = (0..nvars)
            .map(|v| {
                let table = (0..n).map(|x| (x >> v) & 1 == 1).collect();
                (bdd.var(v), table)
            })
            .collect();
        for _ in 0..ops {
            let a = rng.gen_range(funcs.len());
            let b = rng.gen_range(funcs.len());
            let tt = rng.gen_range(16) as u8;
            let id = bdd.apply(funcs[a].0, funcs[b].0, tt);
            let table = (0..n)
                .map(|x| {
                    let bit = (usize::from(funcs[a].1[x]) << 1) | usize::from(funcs[b].1[x]);
                    tt >> bit & 1 == 1
                })
                .collect();
            funcs.push((id, table));
        }
        funcs.pop().unwrap()
    }

    #[test]
    fn terminals_and_variables() {
        let mut bdd = Bdd::new(3);
        assert_eq!(Bdd::constant(false), FALSE);
        assert_eq!(Bdd::constant(true), TRUE);
        let x = bdd.var(1);
        assert!(bdd.eval(x, |v| v == 1));
        assert!(!bdd.eval(x, |v| v != 1));
        // Canonicity: the same variable is the same node.
        assert_eq!(x, bdd.var(1));
    }

    #[test]
    fn apply_matches_truth_tables() {
        for seed in 0..20 {
            let mut bdd = Bdd::new(6);
            let (id, table) = random_pair(&mut bdd, 6, 40, 0xB0D0 + seed);
            for (x, want) in table.iter().enumerate() {
                assert_eq!(bdd.eval(id, |v| (x >> v) & 1 == 1), *want, "seed {seed} x {x}");
            }
        }
    }

    #[test]
    fn counting_matches_enumeration() {
        for seed in 0..20 {
            let mut bdd = Bdd::new(8);
            let (id, table) = random_pair(&mut bdd, 8, 60, 0xC0DE + seed);
            let want = table.iter().filter(|b| **b).count() as u64;
            assert_eq!(bdd.count_from(id, 0), want, "seed {seed}");
        }
    }

    #[test]
    fn descend_then_count_partitions_the_space() {
        // Counting each prefix block and summing must reproduce the
        // global count — the exact query pattern of the symbolic
        // evaluator's per-block accumulation.
        for seed in 0..10 {
            let mut bdd = Bdd::new(9);
            let (id, _) = random_pair(&mut bdd, 9, 50, 0x5EED + seed);
            let total = bdd.count_from(id, 0);
            let split = 3u32;
            let mut sum = 0;
            for block in 0u32..1 << split {
                let sub = bdd.descend(id, split, |v| (block >> v) & 1 == 1);
                sum += bdd.count_from(sub, split);
            }
            assert_eq!(sum, total, "seed {seed}");
        }
    }

    #[test]
    fn clear_resets_and_reuses() {
        let mut bdd = Bdd::new(4);
        let x = bdd.var(0);
        let y = bdd.var(1);
        let f = bdd.and(x, y);
        assert_eq!(bdd.count_from(f, 0), 4);
        bdd.clear();
        assert_eq!(bdd.num_nodes(), 2);
        let x = bdd.var(0);
        let y = bdd.var(1);
        let g = bdd.or(x, y);
        assert_eq!(bdd.count_from(g, 0), 12);
    }

    #[test]
    fn reduction_collapses_redundant_tests() {
        let mut bdd = Bdd::new(2);
        let x = bdd.var(0);
        let nx = bdd.not(x);
        let tauto = bdd.or(x, nx);
        assert_eq!(tauto, TRUE);
        let contra = bdd.and(x, nx);
        assert_eq!(contra, FALSE);
    }

    #[test]
    #[should_panic(expected = "count_from")]
    fn count_above_descended_level_panics() {
        let mut bdd = Bdd::new(4);
        let x = bdd.var(0);
        // x branches on var 0, which is above level 2.
        bdd.count_from(x, 2);
    }

    #[test]
    fn extreme_values_match_enumeration() {
        // Random 3-plane vectors over 6 variables against a brute-force
        // min/max over all 64 assignments.
        for seed in 0..20 {
            let mut bdd = Bdd::new(6);
            let mut planes = Vec::new();
            let mut tables = Vec::new();
            for k in 0..3 {
                let (id, table) = random_pair(&mut bdd, 6, 25, 0xE57 + seed * 8 + k);
                planes.push(id);
                tables.push(table);
            }
            let values: Vec<u64> = (0..64)
                .map(|x| tables.iter().enumerate().map(|(k, t)| u64::from(t[x]) << k).sum::<u64>())
                .collect();
            let want_max = *values.iter().max().unwrap();
            let want_min = *values.iter().min().unwrap();
            assert_eq!(bdd.max_value(&planes), want_max, "seed {seed}");
            assert_eq!(bdd.min_value(&planes), want_min, "seed {seed}");
        }
    }

    #[test]
    fn some_model_satisfies_and_false_has_none() {
        let mut bdd = Bdd::new(5);
        assert_eq!(bdd.some_model(FALSE), None);
        assert_eq!(bdd.some_model(TRUE), Some(vec![false; 5]));
        for seed in 0..20 {
            let (id, table) = random_pair(&mut bdd, 5, 30, 0x50DE + seed);
            match bdd.some_model(id) {
                None => assert_eq!(id, FALSE),
                Some(assign) => {
                    let x: usize =
                        assign.iter().enumerate().map(|(v, &b)| usize::from(b) << v).sum();
                    assert!(table[x], "seed {seed}: model {assign:?} does not satisfy");
                }
            }
            bdd.clear();
        }
    }

    #[test]
    fn export_is_canonical_across_interning_orders() {
        // Build the same two functions in managers that intern nodes in
        // different orders: the exports must be identical.
        let build = |flip: bool| {
            let mut bdd = Bdd::new(4);
            if flip {
                // Intern unrelated clutter first to shift raw node ids.
                let a = bdd.var(3);
                let b = bdd.var(2);
                let _ = bdd.xor(a, b);
            }
            let x = bdd.var(0);
            let y = bdd.var(1);
            let z = bdd.var(2);
            let f = bdd.and(x, y);
            let g = bdd.or(f, z);
            bdd.export_planes(&[f, g])
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn export_remaps_terminals_and_roots_consistently() {
        let mut bdd = Bdd::new(3);
        let x = bdd.var(0);
        let (triples, roots) = bdd.export_planes(&[FALSE, x, TRUE, x]);
        assert_eq!(roots, vec![FALSE, 2, TRUE, 2]);
        assert_eq!(triples, vec![(0, FALSE, TRUE)]);
    }
}
