//! Gate-level netlist representation and fast bit-parallel simulation.
//!
//! This crate is the lowest-level substrate of the `distapprox`
//! reproduction: every circuit manipulated by the CGP-based approximation
//! flow — exact multipliers, truncated/broken-array baselines, evolved
//! candidates — is a [`Netlist`]: a topologically ordered list of two-input
//! gates over a set of primary inputs.
//!
//! Simulation is *bit-parallel*: every signal is a `u64` word whose 64 bits
//! carry 64 independent input vectors. Exhaustively evaluating an 8×8-bit
//! multiplier (2^16 input vectors) therefore costs `1024 × gates` word
//! operations — a few hundred microseconds — which is what makes
//! evolutionary circuit approximation practical in pure Rust.
//!
//! # Examples
//!
//! Build a 1-bit full adder and simulate it exhaustively:
//!
//! ```
//! use apx_gates::{NetlistBuilder, Exhaustive};
//!
//! let mut b = NetlistBuilder::new(3); // a, b, cin
//! let (a, bi, cin) = (b.input(0), b.input(1), b.input(2));
//! let axb = b.xor(a, bi);
//! let sum = b.xor(axb, cin);
//! let ab = b.and(a, bi);
//! let cc = b.and(axb, cin);
//! let carry = b.or(ab, cc);
//! b.outputs(&[sum, carry]);
//! let adder = b.finish().expect("valid netlist");
//!
//! let table = Exhaustive::new(3).output_table(&adder);
//! // inputs (a,b,cin) = (1,1,0) -> index 0b011 = 3 -> sum=0 carry=1 -> 0b10
//! assert_eq!(table[3], 0b10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod blif;
mod dot;
mod error;
mod gate;
mod level;
mod netlist;
mod sim;

pub use analysis::{ActivityReport, NetlistStats};
pub use blif::to_blif;
pub use dot::to_dot;
pub use error::NetlistError;
pub use gate::GateKind;
pub use level::{fanout_cone, AsapSchedule};
pub use netlist::{Netlist, NetlistBuilder, Node, SignalId};
pub use sim::{unpack_lanes, BlockSim, Exhaustive};
