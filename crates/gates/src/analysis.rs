//! Structural and statistical netlist analysis.
//!
//! [`NetlistStats`] summarizes structure (gate histogram, depth, fan-out);
//! [`ActivityReport`] estimates per-node switching activity from sampled
//! stimuli, which the technology library turns into dynamic power.

use crate::{BlockSim, GateKind, Netlist};
use apx_rng::Xoshiro256;

/// Structural summary of a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    /// Gates by kind (index = `GateKind` discriminant order in [`GateKind::ALL`]).
    pub kind_counts: [usize; GateKind::ALL.len()],
    /// Gates in the live output cone.
    pub active_gates: usize,
    /// All gates, including dead genetic material.
    pub total_gates: usize,
    /// Logic depth of the deepest output (unit delays).
    pub depth: u32,
    /// Maximum fan-out over all signals.
    pub max_fanout: usize,
}

impl NetlistStats {
    /// Computes statistics for `netlist` (only *active* gates are counted in
    /// `kind_counts` — dead nodes cost nothing in hardware).
    #[must_use]
    pub fn of(netlist: &Netlist) -> Self {
        let active = netlist.active_mask();
        let ni = netlist.num_inputs();
        let mut kind_counts = [0usize; GateKind::ALL.len()];
        let mut fanout = vec![0usize; netlist.num_signals()];
        for (k, node) in netlist.nodes().iter().enumerate() {
            if !active[ni + k] {
                continue;
            }
            let idx =
                GateKind::ALL.iter().position(|&g| g == node.kind).expect("every kind is in ALL");
            kind_counts[idx] += 1;
            match node.kind.arity() {
                0 => {}
                1 => fanout[node.a.index()] += 1,
                _ => {
                    fanout[node.a.index()] += 1;
                    fanout[node.b.index()] += 1;
                }
            }
        }
        for out in netlist.outputs() {
            fanout[out.index()] += 1;
        }
        NetlistStats {
            kind_counts,
            active_gates: netlist.active_gate_count(),
            total_gates: netlist.gate_count(),
            depth: netlist.depth(),
            max_fanout: fanout.into_iter().max().unwrap_or(0),
        }
    }

    /// Count of active gates of `kind`.
    #[must_use]
    pub fn count(&self, kind: GateKind) -> usize {
        let idx = GateKind::ALL.iter().position(|&g| g == kind).unwrap();
        self.kind_counts[idx]
    }
}

/// Per-node switching-activity estimate.
///
/// `toggle_rate[s]` is the probability that signal `s` changes value between
/// two consecutive stimulus vectors; `one_prob[s]` is its static probability
/// of being 1. Both are estimated by Monte-Carlo simulation with a
/// caller-provided stimulus generator, so non-uniform application input
/// distributions (the whole point of the paper) are honoured.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityReport {
    /// Per-signal probability of logic 1.
    pub one_prob: Vec<f64>,
    /// Per-signal toggle probability between consecutive vectors.
    pub toggle_rate: Vec<f64>,
    /// Number of stimulus vectors used.
    pub samples: usize,
}

impl ActivityReport {
    /// Estimates switching activity of `netlist` under a stimulus source.
    ///
    /// `stimulus` is called once per 64-vector block and must fill one word
    /// per primary input (lane `l` = vector `l` of the block). Consecutive
    /// lanes are treated as consecutive points in time, which matches the
    /// data-streaming operation of a MAC array or filter pipeline.
    ///
    /// `blocks` controls accuracy; 64 × `blocks` vectors are simulated.
    ///
    /// # Panics
    ///
    /// Panics if `blocks == 0`.
    #[must_use]
    pub fn estimate<F>(netlist: &Netlist, blocks: usize, mut stimulus: F) -> Self
    where
        F: FnMut(&mut [u64]),
    {
        assert!(blocks > 0, "need at least one stimulus block");
        let n_sig = netlist.num_signals();
        let mut ones = vec![0u64; n_sig];
        let mut toggles = vec![0u64; n_sig];
        let mut prev_last_bits: Option<Vec<bool>> = None;
        let mut sim = BlockSim::new(netlist);
        let mut inputs = vec![0u64; netlist.num_inputs()];
        for _ in 0..blocks {
            stimulus(&mut inputs);
            sim.run(netlist, &inputs);
            let words = sim.signal_words();
            for (s, &w) in words.iter().enumerate() {
                ones[s] += w.count_ones() as u64;
                // Toggles inside the block: XOR with self shifted by one lane.
                let shifted = w >> 1;
                let within = (w ^ shifted) & (u64::MAX >> 1);
                toggles[s] += within.count_ones() as u64;
            }
            // Toggle across the block boundary.
            if let Some(prev) = &prev_last_bits {
                for (s, &w) in words.iter().enumerate() {
                    if prev[s] != (w & 1 == 1) {
                        toggles[s] += 1;
                    }
                }
            }
            prev_last_bits = Some(words.iter().map(|&w| (w >> 63) & 1 == 1).collect());
        }
        let samples = blocks * 64;
        let transitions = (samples - 1) as f64;
        ActivityReport {
            one_prob: ones.iter().map(|&c| c as f64 / samples as f64).collect(),
            toggle_rate: toggles.iter().map(|&c| c as f64 / transitions).collect(),
            samples,
        }
    }

    /// Estimates activity under *uniform random* stimuli.
    #[must_use]
    pub fn estimate_uniform(netlist: &Netlist, blocks: usize, rng: &mut Xoshiro256) -> Self {
        Self::estimate(netlist, blocks, |inputs| {
            for w in inputs.iter_mut() {
                *w = rng.next_u64();
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn xor_and_netlist() -> Netlist {
        let mut b = NetlistBuilder::new(2);
        let (x, y) = (b.input(0), b.input(1));
        let s = b.xor(x, y);
        let c = b.and(x, y);
        b.outputs(&[s, c]);
        b.finish().unwrap()
    }

    #[test]
    fn stats_count_kinds_and_depth() {
        let nl = xor_and_netlist();
        let stats = NetlistStats::of(&nl);
        assert_eq!(stats.count(GateKind::Xor), 1);
        assert_eq!(stats.count(GateKind::And), 1);
        assert_eq!(stats.count(GateKind::Or), 0);
        assert_eq!(stats.depth, 1);
        assert_eq!(stats.active_gates, 2);
        assert_eq!(stats.total_gates, 2);
        // inputs 0 and 1 each feed two gates.
        assert_eq!(stats.max_fanout, 2);
    }

    #[test]
    fn stats_ignore_dead_gates() {
        let mut b = NetlistBuilder::new(2);
        let (x, y) = (b.input(0), b.input(1));
        let live = b.and(x, y);
        let _dead = b.xor(x, y);
        b.outputs(&[live]);
        let nl = b.finish().unwrap();
        let stats = NetlistStats::of(&nl);
        assert_eq!(stats.count(GateKind::Xor), 0);
        assert_eq!(stats.active_gates, 1);
        assert_eq!(stats.total_gates, 2);
    }

    #[test]
    fn uniform_activity_of_xor_is_half() {
        let nl = xor_and_netlist();
        let mut rng = Xoshiro256::from_seed(11);
        let report = ActivityReport::estimate_uniform(&nl, 256, &mut rng);
        // XOR of two uniform bits: P(1) = 0.5, toggle rate 0.5.
        let xor_sig = 2; // first node
        assert!((report.one_prob[xor_sig] - 0.5).abs() < 0.02);
        assert!((report.toggle_rate[xor_sig] - 0.5).abs() < 0.02);
        // AND of two uniform bits: P(1) = 0.25, toggle = 2*0.25*0.75 = 0.375.
        let and_sig = 3;
        assert!((report.one_prob[and_sig] - 0.25).abs() < 0.02);
        assert!((report.toggle_rate[and_sig] - 0.375).abs() < 0.02);
    }

    #[test]
    fn constant_stimulus_never_toggles() {
        let nl = xor_and_netlist();
        let report = ActivityReport::estimate(&nl, 8, |inputs| {
            inputs[0] = !0;
            inputs[1] = !0;
        });
        for s in 0..nl.num_signals() {
            assert_eq!(report.toggle_rate[s], 0.0, "signal {s}");
        }
        assert_eq!(report.one_prob[0], 1.0);
    }

    #[test]
    fn activity_sample_count() {
        let nl = xor_and_netlist();
        let mut rng = Xoshiro256::from_seed(1);
        let report = ActivityReport::estimate_uniform(&nl, 4, &mut rng);
        assert_eq!(report.samples, 256);
    }
}
