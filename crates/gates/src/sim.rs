//! Bit-parallel (64-lane) netlist simulation.
//!
//! A *block* is a batch of 64 input vectors. Within a block, every signal of
//! the circuit is one `u64`; bit `l` of the word is the signal's value in
//! lane `l`. [`BlockSim`] evaluates one block; [`Exhaustive`] enumerates all
//! `2^n` input vectors of an `n`-input circuit block by block using the
//! classic counting bit-planes (input bit `i` toggles with period `2^(i+1)`).

use crate::Netlist;

/// Constant bit-plane patterns for the six lowest input bits.
///
/// `PATTERNS[i]` holds, for every lane `l` in `0..64`, bit `i` of `l`.
const PATTERNS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Reusable single-block simulator.
///
/// Holds a scratch buffer sized to the netlist so repeated evaluations (the
/// CGP hot loop) never reallocate.
///
/// # Examples
///
/// ```
/// use apx_gates::{NetlistBuilder, BlockSim};
///
/// let mut b = NetlistBuilder::new(2);
/// let (x, y) = (b.input(0), b.input(1));
/// let s = b.xor(x, y);
/// b.outputs(&[s]);
/// let nl = b.finish().unwrap();
///
/// let mut sim = BlockSim::new(&nl);
/// let out = sim.run(&nl, &[0b1010, 0b1100]).to_vec();
/// assert_eq!(out[0] & 0xF, 0b0110);
/// ```
#[derive(Debug, Clone)]
pub struct BlockSim {
    values: Vec<u64>,
    outputs: Vec<u64>,
}

impl BlockSim {
    /// Creates a simulator sized for `netlist`.
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        BlockSim { values: vec![0; netlist.num_signals()], outputs: vec![0; netlist.num_outputs()] }
    }

    /// Evaluates one 64-lane block and returns the output words.
    ///
    /// `inputs[i]` carries primary input `i` for all 64 lanes. The returned
    /// slice has one word per primary output and remains valid until the
    /// next call.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != netlist.num_inputs()` or if the simulator
    /// was created for a differently shaped netlist.
    pub fn run(&mut self, netlist: &Netlist, inputs: &[u64]) -> &[u64] {
        assert_eq!(inputs.len(), netlist.num_inputs(), "input arity mismatch");
        self.values.resize(netlist.num_signals(), 0);
        self.outputs.resize(netlist.num_outputs(), 0);
        self.values[..inputs.len()].copy_from_slice(inputs);
        let ni = netlist.num_inputs();
        for (k, node) in netlist.nodes().iter().enumerate() {
            let a = self.values[node.a.index()];
            let b = self.values[node.b.index()];
            self.values[ni + k] = node.kind.eval_words(a, b);
        }
        for (o, out) in netlist.outputs().iter().enumerate() {
            self.outputs[o] = self.values[out.index()];
        }
        &self.outputs
    }

    /// Value words of *all* signals from the latest [`BlockSim::run`] call.
    ///
    /// Useful for switching-activity analysis where internal nodes matter.
    #[must_use]
    pub fn signal_words(&self) -> &[u64] {
        &self.values
    }
}

/// Exhaustive input enumeration for an `n`-input circuit.
///
/// Input vectors are numbered `v = 0 .. 2^n`; bit `i` of `v` drives primary
/// input `i`. Vector `v` lives in block `v / 64`, lane `v % 64` (for
/// `n >= 6`; smaller circuits fit in the low lanes of a single block).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exhaustive {
    num_inputs: usize,
}

impl Exhaustive {
    /// Creates an enumerator for `num_inputs` primary inputs.
    ///
    /// The struct itself is pure block/lane arithmetic, so the cap only
    /// has to keep `2^n` inside `usize`; materializing the full table
    /// ([`Exhaustive::output_table`]) has its own, tighter memory bound.
    /// The 33-bit ceiling matches the widest symbolically evaluable
    /// component (an 8-bit MAC has `4w + 1 = 33` input bits).
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs > 33`.
    #[must_use]
    pub fn new(num_inputs: usize) -> Self {
        assert!(num_inputs <= 33, "exhaustive enumeration limited to 33 inputs");
        Exhaustive { num_inputs }
    }

    /// Number of 64-lane blocks needed to cover all input vectors.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        if self.num_inputs < 6 {
            1
        } else {
            1usize << (self.num_inputs - 6)
        }
    }

    /// Number of *valid* lanes in a block (< 64 only when `n < 6`).
    #[must_use]
    pub fn lanes_per_block(&self) -> usize {
        if self.num_inputs < 6 {
            1usize << self.num_inputs
        } else {
            64
        }
    }

    /// Total number of input vectors (`2^n`).
    #[must_use]
    pub fn num_vectors(&self) -> usize {
        1usize << self.num_inputs
    }

    /// The word driving input bit `i` in block `block`.
    #[inline]
    #[must_use]
    pub fn input_word(&self, bit: usize, block: usize) -> u64 {
        debug_assert!(bit < self.num_inputs);
        if bit < 6 {
            PATTERNS[bit]
        } else if (block >> (bit - 6)) & 1 == 1 {
            !0
        } else {
            0
        }
    }

    /// Fills `out` (length `num_inputs`) with all input words for `block`.
    pub fn fill_inputs(&self, block: usize, out: &mut [u64]) {
        debug_assert_eq!(out.len(), self.num_inputs);
        for (bit, word) in out.iter_mut().enumerate() {
            *word = self.input_word(bit, block);
        }
    }

    /// Computes the full output table of `netlist`.
    ///
    /// Entry `v` packs the output bits for input vector `v` into a `u64`
    /// (output 0 in bit 0). Requires `netlist.num_outputs() <= 64`.
    ///
    /// # Panics
    ///
    /// Panics if the netlist arity does not match, it has more than 64
    /// outputs, or the circuit has more than 30 inputs (the full table
    /// would not fit in memory).
    #[must_use]
    pub fn output_table(&self, netlist: &Netlist) -> Vec<u64> {
        assert_eq!(netlist.num_inputs(), self.num_inputs, "arity mismatch");
        assert!(netlist.num_outputs() <= 64, "more than 64 outputs");
        assert!(self.num_inputs <= 30, "full output table limited to 30 inputs");
        let mut sim = BlockSim::new(netlist);
        let mut inputs = vec![0u64; self.num_inputs];
        let lanes = self.lanes_per_block();
        let mut table = vec![0u64; self.num_vectors()];
        let mut lane_buf = vec![0u64; lanes];
        for block in 0..self.num_blocks() {
            self.fill_inputs(block, &mut inputs);
            let out_words = sim.run(netlist, &inputs);
            unpack_lanes(out_words, lanes, &mut lane_buf);
            let base = block * lanes;
            table[base..base + lanes].copy_from_slice(&lane_buf);
        }
        table
    }
}

/// Transposes per-output words into per-lane packed values.
///
/// `words[k]` is the bit-plane of output `k`; after the call, `out[l]` holds
/// the packed output value of lane `l` (output `k` in bit `k`).
///
/// # Panics
///
/// Panics if `lanes > 64`, `words.len() > 64`, or `out.len() < lanes`.
pub fn unpack_lanes(words: &[u64], lanes: usize, out: &mut [u64]) {
    assert!(lanes <= 64 && words.len() <= 64 && out.len() >= lanes);
    out[..lanes].fill(0);
    for (k, &w) in words.iter().enumerate() {
        let mut rem = w;
        if lanes < 64 {
            rem &= (1u64 << lanes) - 1;
        }
        // Iterate set bits only: outputs are often sparse per block.
        while rem != 0 {
            let l = rem.trailing_zeros() as usize;
            out[l] |= 1u64 << k;
            rem &= rem - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GateKind, NetlistBuilder};
    use apx_rng::Xoshiro256;

    fn ripple2_adder() -> Netlist {
        // 2-bit + 2-bit -> 3-bit ripple adder built from adder helpers.
        let mut b = NetlistBuilder::new(4);
        let (a0, a1, b0, b1) = (b.input(0), b.input(1), b.input(2), b.input(3));
        let (s0, c0) = b.half_adder(a0, b0);
        let (s1, c1) = b.full_adder(a1, b1, c0);
        b.outputs(&[s0, s1, c1]);
        b.finish().unwrap()
    }

    #[test]
    fn patterns_encode_lane_bits() {
        for (bit, &pattern) in PATTERNS.iter().enumerate() {
            for lane in 0..64u64 {
                let expect = (lane >> bit) & 1;
                let got = (pattern >> lane) & 1;
                assert_eq!(got, expect, "bit {bit} lane {lane}");
            }
        }
    }

    #[test]
    fn exhaustive_adder_table_is_correct() {
        let nl = ripple2_adder();
        let table = Exhaustive::new(4).output_table(&nl);
        for v in 0..16u64 {
            let a = v & 3;
            let b = (v >> 2) & 3;
            assert_eq!(table[v as usize], a + b, "{a}+{b}");
        }
    }

    #[test]
    fn block_sim_matches_bool_eval_on_random_netlists() {
        let mut rng = Xoshiro256::from_seed(404);
        for trial in 0..20 {
            let ni = 3 + rng.gen_range(4); // 3..=6 inputs
            let n_nodes = 5 + rng.gen_range(30);
            let mut b = NetlistBuilder::new(ni);
            for k in 0..n_nodes {
                let limit = ni + k;
                let kind = *rng.choose(&GateKind::ALL).unwrap();
                let a = crate::SignalId(rng.gen_range(limit) as u32);
                let bb = crate::SignalId(rng.gen_range(limit) as u32);
                b.push(kind, a, bb);
            }
            let total = ni + n_nodes;
            let outs: Vec<crate::SignalId> =
                (0..4).map(|_| crate::SignalId(rng.gen_range(total) as u32)).collect();
            b.outputs(&outs);
            let nl = b.finish().unwrap();
            let ex = Exhaustive::new(ni);
            let table = ex.output_table(&nl);
            for (v, &table_word) in table.iter().enumerate() {
                let bits: Vec<bool> = (0..ni).map(|i| (v >> i) & 1 == 1).collect();
                let outs = nl.eval_bool(&bits);
                let packed: u64 = outs.iter().enumerate().map(|(k, &o)| (o as u64) << k).sum();
                assert_eq!(table_word, packed, "trial {trial}, vector {v}");
            }
        }
    }

    #[test]
    fn small_circuit_single_block() {
        let ex = Exhaustive::new(3);
        assert_eq!(ex.num_blocks(), 1);
        assert_eq!(ex.lanes_per_block(), 8);
        let ex8 = Exhaustive::new(8);
        assert_eq!(ex8.num_blocks(), 4);
        assert_eq!(ex8.lanes_per_block(), 64);
    }

    #[test]
    fn unpack_lanes_round_trip() {
        let mut rng = Xoshiro256::from_seed(7);
        let words: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
        let mut lanes = vec![0u64; 64];
        unpack_lanes(&words, 64, &mut lanes);
        for (l, &lane) in lanes.iter().enumerate() {
            for (k, w) in words.iter().enumerate() {
                assert_eq!((lane >> k) & 1, (w >> l) & 1);
            }
        }
    }

    #[test]
    fn signal_words_exposes_internal_nodes() {
        let nl = ripple2_adder();
        let mut sim = BlockSim::new(&nl);
        sim.run(&nl, &[0, 0, 0, 0]);
        assert_eq!(sim.signal_words().len(), nl.num_signals());
    }

    #[test]
    fn high_bit_planes_select_blocks() {
        let ex = Exhaustive::new(8);
        // bit 6 pattern: all-ones in odd blocks.
        assert_eq!(ex.input_word(6, 0), 0);
        assert_eq!(ex.input_word(6, 1), !0);
        assert_eq!(ex.input_word(7, 1), 0);
        assert_eq!(ex.input_word(7, 2), !0);
    }
}
