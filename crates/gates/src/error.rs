//! Error types for netlist construction and validation.

use crate::SignalId;
use std::fmt;

/// Structural error detected while building or validating a [`crate::Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A node operand references the node itself or a later signal.
    ForwardReference {
        /// Index of the offending node.
        node: usize,
        /// The out-of-range operand.
        operand: SignalId,
    },
    /// A primary output references a signal that does not exist.
    InvalidOutput {
        /// Index of the offending output.
        output: usize,
        /// The out-of-range signal.
        signal: SignalId,
    },
    /// The netlist declares no primary outputs.
    NoOutputs,
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ForwardReference { node, operand } => write!(
                f,
                "node {node} references signal {} which is not strictly earlier",
                operand.0
            ),
            NetlistError::InvalidOutput { output, signal } => {
                write!(f, "output {output} references nonexistent signal {}", signal.0)
            }
            NetlistError::NoOutputs => write!(f, "netlist declares no outputs"),
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetlistError::ForwardReference { node: 3, operand: SignalId(9) };
        assert!(e.to_string().contains("node 3"));
        assert!(e.to_string().contains('9'));
        assert!(!NetlistError::NoOutputs.to_string().is_empty());
    }
}
