//! BLIF (Berkeley Logic Interchange Format) export.
//!
//! Lets evolved circuits flow into standard EDA tools (ABC, Yosys,
//! academic synthesis flows) for independent verification or real
//! technology mapping. Only the live cone is emitted — dead CGP genes are
//! genetic material, not hardware.

use crate::{GateKind, Netlist};
use std::fmt::Write as _;

/// Renders the active cone of `netlist` as a BLIF model named `name`.
///
/// Signals are named `i<k>` (primary inputs), `n<k>` (gate outputs) and
/// `o<k>` (primary outputs, emitted as buffer `.names` so outputs may tap
/// any signal). Gate functions are written as PLA-style cover tables.
///
/// # Examples
///
/// ```
/// use apx_gates::{NetlistBuilder, to_blif};
///
/// let mut b = NetlistBuilder::new(2);
/// let s = b.xor(b.input(0), b.input(1));
/// b.outputs(&[s]);
/// let blif = to_blif(&b.finish().unwrap(), "xor2");
/// assert!(blif.contains(".model xor2"));
/// assert!(blif.contains(".names i0 i1 n0"));
/// ```
#[must_use]
pub fn to_blif(netlist: &Netlist, name: &str) -> String {
    let compact = netlist.compact();
    let ni = compact.num_inputs();
    let sig_name = |s: crate::SignalId| -> String {
        if s.index() < ni {
            format!("i{}", s.index())
        } else {
            format!("n{}", s.index() - ni)
        }
    };
    let mut out = String::new();
    let _ = writeln!(out, ".model {name}");
    let inputs: Vec<String> = (0..ni).map(|i| format!("i{i}")).collect();
    let _ = writeln!(out, ".inputs {}", inputs.join(" "));
    let outputs: Vec<String> = (0..compact.num_outputs()).map(|o| format!("o{o}")).collect();
    let _ = writeln!(out, ".outputs {}", outputs.join(" "));
    for (k, node) in compact.nodes().iter().enumerate() {
        let y = format!("n{k}");
        let a = sig_name(node.a);
        let b = sig_name(node.b);
        match node.kind {
            GateKind::Const0 => {
                let _ = writeln!(out, ".names {y}");
            }
            GateKind::Const1 => {
                let _ = writeln!(out, ".names {y}\n1");
            }
            GateKind::Buf => {
                let _ = writeln!(out, ".names {a} {y}\n1 1");
            }
            GateKind::Not => {
                let _ = writeln!(out, ".names {a} {y}\n0 1");
            }
            _ => {
                let _ = writeln!(out, ".names {a} {b} {y}");
                for (bits, label) in [(0b00u8, "00"), (0b01, "10"), (0b10, "01"), (0b11, "11")] {
                    // label is "<a><b>" in BLIF input order; bits encode
                    // (a = bit0, b = bit1) for eval_bool.
                    let va = bits & 1 == 1;
                    let vb = bits & 2 == 2;
                    if node.kind.eval_bool(va, vb) {
                        let _ = writeln!(out, "{label} 1");
                    }
                }
            }
        }
    }
    for (o, sig) in compact.outputs().iter().enumerate() {
        let _ = writeln!(out, ".names {} o{o}\n1 1", sig_name(*sig));
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    /// Minimal BLIF interpreter: parses the output of `to_blif` and
    /// evaluates it, cross-checking the export end to end.
    fn eval_blif(blif: &str, inputs: &[bool]) -> Vec<bool> {
        use std::collections::HashMap;
        let mut values: HashMap<String, bool> = HashMap::new();
        for (i, &v) in inputs.iter().enumerate() {
            values.insert(format!("i{i}"), v);
        }
        let mut outputs: Vec<String> = Vec::new();
        let lines: Vec<&str> = blif.lines().collect();
        let mut idx = 0;
        while idx < lines.len() {
            let line = lines[idx];
            if let Some(rest) = line.strip_prefix(".outputs ") {
                outputs = rest.split_whitespace().map(str::to_owned).collect();
            } else if let Some(rest) = line.strip_prefix(".names ") {
                let names: Vec<&str> = rest.split_whitespace().collect();
                let (ins, target) = names.split_at(names.len() - 1);
                let mut result = false;
                let mut j = idx + 1;
                while j < lines.len() && !lines[j].starts_with('.') {
                    let mut parts = lines[j].split_whitespace();
                    let pattern = parts.next().unwrap_or("");
                    if ins.is_empty() {
                        // constant-1 cover is a bare "1" line
                        if pattern == "1" {
                            result = true;
                        }
                    } else {
                        let matches = pattern.chars().zip(ins).all(|(c, name)| {
                            let v = *values.get(*name).expect("defined before use");
                            match c {
                                '1' => v,
                                '0' => !v,
                                _ => true,
                            }
                        });
                        if matches {
                            result = true;
                        }
                    }
                    j += 1;
                }
                values.insert(target[0].to_owned(), result);
                idx = j;
                continue;
            }
            idx += 1;
        }
        outputs.iter().map(|o| *values.get(o).expect("output defined")).collect()
    }

    #[test]
    fn blif_round_trips_through_interpreter() {
        let nl = {
            let mut b = NetlistBuilder::new(3);
            let (x, y, c) = (b.input(0), b.input(1), b.input(2));
            let (s, co) = b.full_adder(x, y, c);
            let _dead = b.nor(x, y);
            b.outputs(&[s, co]);
            b.finish().unwrap()
        };
        let blif = to_blif(&nl, "fa");
        for v in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|i| (v >> i) & 1 == 1).collect();
            assert_eq!(eval_blif(&blif, &bits), nl.eval_bool(&bits), "v={v}");
        }
        // Dead node was compacted away.
        assert!(!blif.contains("nor"));
    }

    #[test]
    fn blif_handles_constants_and_inverters() {
        let nl = {
            let mut b = NetlistBuilder::new(1);
            let one = b.const1();
            let zero = b.const0();
            let inv = b.not(b.input(0));
            b.outputs(&[one, zero, inv]);
            b.finish().unwrap()
        };
        let blif = to_blif(&nl, "consts");
        assert_eq!(eval_blif(&blif, &[false]), vec![true, false, true]);
        assert_eq!(eval_blif(&blif, &[true]), vec![true, false, false]);
    }

    #[test]
    fn blif_exports_multiplier_structure() {
        let nl = {
            let mut b = NetlistBuilder::new(4);
            let (a0, a1, b0, b1) = (b.input(0), b.input(1), b.input(2), b.input(3));
            let p0 = b.and(a0, b0);
            let x = b.and(a1, b0);
            let y = b.and(a0, b1);
            let (p1, c) = b.half_adder(x, y);
            let top = b.and(a1, b1);
            let (p2, p3) = b.half_adder(top, c);
            b.outputs(&[p0, p1, p2, p3]);
            b.finish().unwrap()
        };
        let blif = to_blif(&nl, "mul2");
        for v in 0..16u32 {
            let bits: Vec<bool> = (0..4).map(|i| (v >> i) & 1 == 1).collect();
            let outs = eval_blif(&blif, &bits);
            let got: u32 = outs.iter().enumerate().map(|(k, &o)| (o as u32) << k).sum();
            let a = v & 3;
            let b = (v >> 2) & 3;
            assert_eq!(got, a * b, "{a}*{b}");
        }
    }
}
