//! ASAP levelization and fanout-cone extraction.
//!
//! A [`Netlist`] stores its gates in topological order, which is enough to
//! simulate it, but the evaluation engine in `apx_metrics` wants two more
//! structural views:
//!
//! * an **ASAP schedule** — nodes grouped by the earliest level at which
//!   they can fire (all primary inputs are level 0, a gate's level is one
//!   past its deepest operand). Iterating the schedule level by level is a
//!   valid topological order with the extra property that every node of a
//!   level only reads strictly earlier levels, which is what lets the
//!   bit-parallel engine batch gate operations over tiles of simulation
//!   blocks without any intra-level hazards;
//! * a **fanout cone** — given a set of changed nodes, the set of nodes
//!   whose value can differ because of the change. This is the incremental
//!   re-evaluation primitive: a CGP mutation touches a handful of nodes,
//!   and only their forward closure has to be re-simulated against cached
//!   level outputs.

use crate::Netlist;

/// ASAP (as-soon-as-possible) schedule of a netlist.
///
/// Nodes are grouped by logic level; level `l` contains every node whose
/// deepest operand sits at level `l - 1` (primary inputs are level 0).
/// Within a level nodes are kept in netlist order, so iterating the
/// schedule level by level visits nodes in a deterministic topological
/// order.
///
/// # Examples
///
/// ```
/// use apx_gates::{AsapSchedule, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new(2);
/// let (x, y) = (b.input(0), b.input(1));
/// let n = b.nand(x, y);      // level 1
/// let s = b.xor(n, y);       // level 2
/// b.outputs(&[s]);
/// let nl = b.finish().unwrap();
///
/// let sched = AsapSchedule::of(&nl);
/// assert_eq!(sched.num_levels(), 2);
/// assert_eq!(sched.level(0), &[0]); // the nand
/// assert_eq!(sched.level(1), &[1]); // the xor
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsapSchedule {
    /// Node indices (not signal ids) grouped by level; `levels[0]` holds
    /// the nodes of logic level 1 (level 0 is the primary inputs).
    levels: Vec<Vec<u32>>,
    /// Per-node ASAP level (`1..`), indexed by node index.
    level_of: Vec<u32>,
}

impl AsapSchedule {
    /// Levelizes `netlist`.
    #[must_use]
    pub fn of(netlist: &Netlist) -> Self {
        let ni = netlist.num_inputs();
        // Signal level: inputs are 0, node output = 1 + max(operand levels)
        // over the operands the gate actually reads (constants sit at 1).
        let mut sig_level = vec![0u32; netlist.num_signals()];
        let mut level_of = Vec::with_capacity(netlist.gate_count());
        let mut levels: Vec<Vec<u32>> = Vec::new();
        for (k, node) in netlist.nodes().iter().enumerate() {
            let lvl = match node.kind.arity() {
                0 => 1,
                1 => sig_level[node.a.index()] + 1,
                _ => sig_level[node.a.index()].max(sig_level[node.b.index()]) + 1,
            };
            sig_level[ni + k] = lvl;
            level_of.push(lvl);
            let slot = (lvl - 1) as usize;
            if slot >= levels.len() {
                levels.resize_with(slot + 1, Vec::new);
            }
            levels[slot].push(k as u32);
        }
        AsapSchedule { levels, level_of }
    }

    /// Number of levels (the netlist's logic depth over *all* nodes).
    #[must_use]
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Node indices of level `l + 1` (level 0 is the primary inputs and
    /// holds no nodes, so `level(0)` returns the first gate level).
    #[must_use]
    pub fn level(&self, l: usize) -> &[u32] {
        &self.levels[l]
    }

    /// ASAP level of node `k` (always `>= 1`).
    #[must_use]
    pub fn level_of(&self, k: usize) -> u32 {
        self.level_of[k]
    }

    /// Iterates all node indices level by level (a topological order).
    pub fn iter_nodes(&self) -> impl Iterator<Item = u32> + '_ {
        self.levels.iter().flat_map(|l| l.iter().copied())
    }
}

/// Forward closure of a set of changed nodes.
///
/// Returns the sorted node indices whose output word can change when the
/// definitions of `sources` change: the sources themselves plus every node
/// that transitively reads one of them. Because a [`Netlist`] is
/// topologically ordered this is a single forward scan — no reverse
/// adjacency is ever materialized.
///
/// Nodes whose gate ignores an operand slot (unary gates, constants) do
/// not propagate taint through the ignored slot.
///
/// # Panics
///
/// Panics if a source index is out of range.
///
/// # Examples
///
/// ```
/// use apx_gates::{fanout_cone, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new(2);
/// let (x, y) = (b.input(0), b.input(1));
/// let a = b.and(x, y);   // node 0
/// let o = b.or(x, y);    // node 1 (independent of node 0)
/// let s = b.xor(a, y);   // node 2 (reads node 0)
/// b.outputs(&[o, s]);
/// let nl = b.finish().unwrap();
///
/// assert_eq!(fanout_cone(&nl, &[0]), vec![0, 2]);
/// assert_eq!(fanout_cone(&nl, &[1]), vec![1]);
/// ```
#[must_use]
pub fn fanout_cone(netlist: &Netlist, sources: &[u32]) -> Vec<u32> {
    let ni = netlist.num_inputs();
    let mut dirty = vec![false; netlist.num_signals()];
    let mut first = usize::MAX;
    for &s in sources {
        let k = s as usize;
        assert!(k < netlist.gate_count(), "source node {k} out of range");
        dirty[ni + k] = true;
        first = first.min(k);
    }
    let mut cone = Vec::new();
    if first == usize::MAX {
        return cone;
    }
    for (k, node) in netlist.nodes().iter().enumerate().skip(first) {
        let sig = ni + k;
        let tainted = dirty[sig]
            || match node.kind.arity() {
                0 => false,
                1 => dirty[node.a.index()],
                _ => dirty[node.a.index()] || dirty[node.b.index()],
            };
        if tainted {
            dirty[sig] = true;
            cone.push(k as u32);
        }
    }
    cone
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GateKind, NetlistBuilder, SignalId};
    use apx_rng::Xoshiro256;

    fn random_netlist(rng: &mut Xoshiro256, ni: usize, n_nodes: usize) -> Netlist {
        let mut b = NetlistBuilder::new(ni);
        for k in 0..n_nodes {
            let limit = ni + k;
            let kind = *rng.choose(&GateKind::ALL).unwrap();
            let a = SignalId(rng.gen_range(limit) as u32);
            let bb = SignalId(rng.gen_range(limit) as u32);
            b.push(kind, a, bb);
        }
        let total = ni + n_nodes;
        let outs: Vec<SignalId> = (0..4).map(|_| SignalId(rng.gen_range(total) as u32)).collect();
        b.outputs(&outs);
        b.finish().unwrap()
    }

    #[test]
    fn schedule_covers_every_node_once_in_topological_order() {
        let mut rng = Xoshiro256::from_seed(11);
        for _ in 0..20 {
            let nl = random_netlist(&mut rng, 4, 40);
            let sched = AsapSchedule::of(&nl);
            let order: Vec<u32> = sched.iter_nodes().collect();
            assert_eq!(order.len(), nl.gate_count());
            let mut seen = vec![false; nl.gate_count()];
            for &k in &order {
                let node = &nl.nodes()[k as usize];
                // Operands must already be available: a primary input or a
                // node scheduled at a strictly earlier level.
                for (slot, op) in [node.a, node.b].into_iter().enumerate() {
                    if slot >= node.kind.arity() {
                        continue;
                    }
                    if op.index() >= nl.num_inputs() {
                        let src = op.index() - nl.num_inputs();
                        assert!(seen[src], "node {k} fired before operand {src}");
                        assert!(sched.level_of(src) < sched.level_of(k as usize));
                    }
                }
                seen[k as usize] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn schedule_levels_match_netlist_depths() {
        // `depths()` assigns constants depth 0 (they cost no gate delay);
        // the schedule still fires them at level 1. Restrict the comparison
        // to constant-free netlists, where the two notions coincide.
        let mut rng = Xoshiro256::from_seed(12);
        let kinds: Vec<GateKind> = GateKind::ALL.into_iter().filter(|k| k.arity() > 0).collect();
        for _ in 0..10 {
            let nl = {
                let mut b = NetlistBuilder::new(5);
                for k in 0..30 {
                    let limit = 5 + k;
                    let kind = *rng.choose(&kinds).unwrap();
                    let a = SignalId(rng.gen_range(limit) as u32);
                    let bb = SignalId(rng.gen_range(limit) as u32);
                    b.push(kind, a, bb);
                }
                let outs: Vec<SignalId> =
                    (0..4).map(|_| SignalId(rng.gen_range(35) as u32)).collect();
                b.outputs(&outs);
                b.finish().unwrap()
            };
            let sched = AsapSchedule::of(&nl);
            let depths = nl.depths();
            for k in 0..nl.gate_count() {
                assert_eq!(sched.level_of(k), depths[nl.num_inputs() + k], "node {k}");
            }
            assert_eq!(
                sched.num_levels() as u32,
                (0..nl.gate_count()).map(|k| sched.level_of(k)).max().unwrap_or(0)
            );
        }
    }

    #[test]
    fn fanout_cone_matches_brute_force_resimulation() {
        // A node belongs to the cone of {s} iff flipping s's definition can
        // change it; over-approximation is structural, so check the cone is
        // closed and sound: every node outside the cone reads only clean
        // signals.
        let mut rng = Xoshiro256::from_seed(13);
        for _ in 0..20 {
            let nl = random_netlist(&mut rng, 4, 30);
            let src = rng.gen_range(nl.gate_count()) as u32;
            let cone = fanout_cone(&nl, &[src]);
            assert!(cone.contains(&src));
            assert!(cone.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            let in_cone = |s: SignalId| {
                s.index() >= nl.num_inputs()
                    && cone.contains(&((s.index() - nl.num_inputs()) as u32))
            };
            for (k, node) in nl.nodes().iter().enumerate() {
                if cone.contains(&(k as u32)) {
                    continue;
                }
                let arity = node.kind.arity();
                assert!(arity == 0 || !in_cone(node.a), "clean node {k} reads dirty a");
                assert!(arity < 2 || !in_cone(node.b), "clean node {k} reads dirty b");
            }
        }
    }

    #[test]
    fn fanout_cone_of_nothing_is_empty() {
        let mut rng = Xoshiro256::from_seed(14);
        let nl = random_netlist(&mut rng, 4, 10);
        assert!(fanout_cone(&nl, &[]).is_empty());
    }

    #[test]
    fn unary_gates_do_not_propagate_through_ignored_slot() {
        let mut b = NetlistBuilder::new(1);
        let x = b.input(0);
        let n0 = b.and(x, x); // node 0
                              // Node 1: Not reads only slot a (= x); slot b points at node 0 but
                              // is ignored.
        let n1 = b.push(GateKind::Not, x, n0);
        b.outputs(&[n1]);
        let nl = b.finish().unwrap();
        assert_eq!(fanout_cone(&nl, &[0]), vec![0], "Not's b slot is dead");
    }
}
