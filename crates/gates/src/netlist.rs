//! The netlist intermediate representation.

use crate::{GateKind, NetlistError};

/// Identifier of a signal inside a [`Netlist`].
///
/// Signals `0 .. num_inputs` are primary inputs; signal `num_inputs + k` is
/// the output of node `k`. The numbering matches the addressing scheme of
/// Cartesian Genetic Programming (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub u32);

impl SignalId {
    /// Raw index as `usize`.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for SignalId {
    fn from(v: u32) -> Self {
        SignalId(v)
    }
}

/// One two-input gate instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Node {
    /// Boolean function computed by the node.
    pub kind: GateKind,
    /// First operand.
    pub a: SignalId,
    /// Second operand (ignored by unary/constant gates, must still be valid).
    pub b: SignalId,
}

/// A combinational circuit: topologically ordered two-input gates.
///
/// Invariants (checked by [`NetlistBuilder::finish`] and [`Netlist::validate`]):
///
/// * every node's operands refer to primary inputs or to *earlier* nodes
///   (the list is a topological order; no feedback is representable);
/// * every output refers to a valid signal;
/// * there is at least one output.
///
/// The structure intentionally permits *redundant* (dead) nodes — CGP relies
/// on inactive genetic material for neutral drift. Use [`Netlist::compact`]
/// to strip dead nodes before cost estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    num_inputs: usize,
    nodes: Vec<Node>,
    outputs: Vec<SignalId>,
}

impl Netlist {
    /// Creates a netlist from raw parts, validating all invariants.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] if an operand or output references a signal
    /// that does not exist or is not strictly earlier in the order, or if
    /// `outputs` is empty.
    pub fn new(
        num_inputs: usize,
        nodes: Vec<Node>,
        outputs: Vec<SignalId>,
    ) -> Result<Self, NetlistError> {
        let nl = Netlist { num_inputs, nodes, outputs };
        nl.validate()?;
        Ok(nl)
    }

    /// Number of primary inputs.
    #[inline]
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of primary outputs.
    #[inline]
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// All gate instances in topological order.
    #[inline]
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Primary output signals.
    #[inline]
    #[must_use]
    pub fn outputs(&self) -> &[SignalId] {
        &self.outputs
    }

    /// Total number of gate instances, including dead ones.
    #[inline]
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of signals (inputs + node outputs).
    #[inline]
    #[must_use]
    pub fn num_signals(&self) -> usize {
        self.num_inputs + self.nodes.len()
    }

    /// Checks all structural invariants.
    ///
    /// # Errors
    ///
    /// See [`Netlist::new`].
    pub fn validate(&self) -> Result<(), NetlistError> {
        if self.outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }
        for (k, node) in self.nodes.iter().enumerate() {
            let limit = (self.num_inputs + k) as u32;
            if node.a.0 >= limit {
                return Err(NetlistError::ForwardReference { node: k, operand: node.a });
            }
            if node.b.0 >= limit {
                return Err(NetlistError::ForwardReference { node: k, operand: node.b });
            }
        }
        let total = self.num_signals() as u32;
        for (k, out) in self.outputs.iter().enumerate() {
            if out.0 >= total {
                return Err(NetlistError::InvalidOutput { output: k, signal: *out });
            }
        }
        Ok(())
    }

    /// Marks signals in the transitive fan-in of the outputs.
    ///
    /// Returns one flag per signal (inputs first, then nodes). A node whose
    /// flag is `false` is dead genetic material and contributes nothing to
    /// function, area or power.
    #[must_use]
    pub fn active_mask(&self) -> Vec<bool> {
        let mut active = vec![false; self.num_signals()];
        for out in &self.outputs {
            active[out.index()] = true;
        }
        for k in (0..self.nodes.len()).rev() {
            let sig = self.num_inputs + k;
            if active[sig] {
                let node = &self.nodes[k];
                match node.kind.arity() {
                    0 => {}
                    1 => active[node.a.index()] = true,
                    _ => {
                        active[node.a.index()] = true;
                        active[node.b.index()] = true;
                    }
                }
            }
        }
        active
    }

    /// Number of *live* gates (transitive fan-in of the outputs).
    #[must_use]
    pub fn active_gate_count(&self) -> usize {
        self.active_mask()[self.num_inputs..].iter().filter(|&&a| a).count()
    }

    /// Returns an equivalent netlist with all dead nodes removed.
    ///
    /// Outputs, inputs and the functions computed are unchanged; only
    /// inactive nodes disappear and node indices are renumbered.
    #[must_use]
    pub fn compact(&self) -> Netlist {
        let active = self.active_mask();
        let mut remap = vec![u32::MAX; self.num_signals()];
        for (i, slot) in remap.iter_mut().enumerate().take(self.num_inputs) {
            *slot = i as u32;
        }
        let mut nodes = Vec::with_capacity(self.active_gate_count());
        for (k, node) in self.nodes.iter().enumerate() {
            let sig = self.num_inputs + k;
            if !active[sig] {
                continue;
            }
            let map = |s: SignalId, used: bool| -> SignalId {
                if used {
                    SignalId(remap[s.index()])
                } else {
                    // Unused operand slots of unary/const gates may point at
                    // dead signals; retarget them to input 0 (or signal 0).
                    SignalId(0)
                }
            };
            let arity = node.kind.arity();
            let new_node =
                Node { kind: node.kind, a: map(node.a, arity >= 1), b: map(node.b, arity >= 2) };
            remap[sig] = (self.num_inputs + nodes.len()) as u32;
            nodes.push(new_node);
        }
        let outputs = self.outputs.iter().map(|o| SignalId(remap[o.index()])).collect();
        Netlist { num_inputs: self.num_inputs, nodes, outputs }
    }

    /// Evaluates the netlist on a single Boolean input vector.
    ///
    /// Intended for cross-checking the bit-parallel simulator and for tiny
    /// circuits; use [`crate::Exhaustive`] / [`crate::BlockSim`] for
    /// anything performance-sensitive.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    #[must_use]
    pub fn eval_bool(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs, "input arity mismatch");
        let mut values = Vec::with_capacity(self.num_signals());
        values.extend_from_slice(inputs);
        for node in &self.nodes {
            let a = values[node.a.index()];
            let b = values[node.b.index()];
            values.push(node.kind.eval_bool(a, b));
        }
        self.outputs.iter().map(|o| values[o.index()]).collect()
    }

    /// Per-signal logic depth (primary inputs are depth 0).
    ///
    /// Dead nodes still get a depth; use together with
    /// [`Netlist::active_mask`] when only the live cone matters.
    #[must_use]
    pub fn depths(&self) -> Vec<u32> {
        let mut depth = vec![0u32; self.num_signals()];
        for (k, node) in self.nodes.iter().enumerate() {
            let sig = self.num_inputs + k;
            depth[sig] = match node.kind.arity() {
                0 => 0,
                1 => depth[node.a.index()] + 1,
                _ => depth[node.a.index()].max(depth[node.b.index()]) + 1,
            };
        }
        depth
    }

    /// Logic depth of the deepest primary output (unit gate delay).
    #[must_use]
    pub fn depth(&self) -> u32 {
        let depths = self.depths();
        self.outputs.iter().map(|o| depths[o.index()]).max().unwrap_or(0)
    }
}

/// Incremental constructor for [`Netlist`] (non-consuming builder).
///
/// Gate helper methods ([`NetlistBuilder::and`], [`NetlistBuilder::xor`], …)
/// append a node and return its output [`SignalId`], which makes structural
/// generators (adders, multiplier arrays) read like dataflow descriptions.
///
/// # Examples
///
/// ```
/// use apx_gates::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new(2);
/// let (x, y) = (b.input(0), b.input(1));
/// let s = b.xor(x, y);
/// b.outputs(&[s]);
/// let xor_gate = b.finish().unwrap();
/// assert_eq!(xor_gate.gate_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    num_inputs: usize,
    nodes: Vec<Node>,
    outputs: Vec<SignalId>,
}

impl NetlistBuilder {
    /// Starts a netlist with `num_inputs` primary inputs.
    #[must_use]
    pub fn new(num_inputs: usize) -> Self {
        NetlistBuilder { num_inputs, nodes: Vec::new(), outputs: Vec::new() }
    }

    /// Signal id of primary input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_inputs`.
    #[must_use]
    pub fn input(&self, i: usize) -> SignalId {
        assert!(i < self.num_inputs, "input index out of range");
        SignalId(i as u32)
    }

    /// Appends a node computing `kind(a, b)` and returns its output signal.
    pub fn push(&mut self, kind: GateKind, a: SignalId, b: SignalId) -> SignalId {
        let id = SignalId((self.num_inputs + self.nodes.len()) as u32);
        self.nodes.push(Node { kind, a, b });
        id
    }

    /// Constant-0 signal (adds a `Const0` node).
    pub fn const0(&mut self) -> SignalId {
        let z = SignalId(0);
        self.push(GateKind::Const0, z, z)
    }

    /// Constant-1 signal (adds a `Const1` node).
    pub fn const1(&mut self) -> SignalId {
        let z = SignalId(0);
        self.push(GateKind::Const1, z, z)
    }

    /// `!a`.
    pub fn not(&mut self, a: SignalId) -> SignalId {
        self.push(GateKind::Not, a, a)
    }

    /// `a & b`.
    pub fn and(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.push(GateKind::And, a, b)
    }

    /// `!(a & b)`.
    pub fn nand(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.push(GateKind::Nand, a, b)
    }

    /// `a | b`.
    pub fn or(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.push(GateKind::Or, a, b)
    }

    /// `!(a | b)`.
    pub fn nor(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.push(GateKind::Nor, a, b)
    }

    /// `a ^ b`.
    pub fn xor(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.push(GateKind::Xor, a, b)
    }

    /// `!(a ^ b)`.
    pub fn xnor(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.push(GateKind::Xnor, a, b)
    }

    /// `a & !b`.
    pub fn and_not(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.push(GateKind::AndNotB, a, b)
    }

    /// Majority of three signals (carry logic): `ab | ac | bc`.
    pub fn majority(&mut self, a: SignalId, b: SignalId, c: SignalId) -> SignalId {
        let ab = self.and(a, b);
        let axb = self.xor(a, b);
        let c_sel = self.and(axb, c);
        self.or(ab, c_sel)
    }

    /// Full adder: returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: SignalId, b: SignalId, cin: SignalId) -> (SignalId, SignalId) {
        let axb = self.xor(a, b);
        let sum = self.xor(axb, cin);
        let ab = self.and(a, b);
        let cc = self.and(axb, cin);
        let carry = self.or(ab, cc);
        (sum, carry)
    }

    /// Half adder: returns `(sum, carry)`.
    pub fn half_adder(&mut self, a: SignalId, b: SignalId) -> (SignalId, SignalId) {
        (self.xor(a, b), self.and(a, b))
    }

    /// Instantiates `netlist` as a sub-circuit.
    ///
    /// `input_map[i]` supplies the signal that drives the sub-circuit's
    /// primary input `i`. All nodes of `netlist` are copied (with operands
    /// remapped) and the sub-circuit's output signals are returned. This is
    /// how composite datapaths (e.g. a MAC = multiplier + accumulator adder)
    /// are assembled from independently generated blocks.
    ///
    /// # Panics
    ///
    /// Panics if `input_map.len() != netlist.num_inputs()` or if an entry of
    /// `input_map` is not yet a valid signal in the builder.
    pub fn embed(&mut self, netlist: &Netlist, input_map: &[SignalId]) -> Vec<SignalId> {
        assert_eq!(input_map.len(), netlist.num_inputs(), "embed: input map arity mismatch");
        let current = (self.num_inputs + self.nodes.len()) as u32;
        for sig in input_map {
            assert!(sig.0 < current, "embed: input map references future signal");
        }
        let inner_inputs = netlist.num_inputs();
        let mut remap: Vec<SignalId> = Vec::with_capacity(netlist.num_signals());
        remap.extend_from_slice(input_map);
        for node in netlist.nodes() {
            let a = remap[node.a.index()];
            let b = remap[node.b.index()];
            let new_id = self.push(node.kind, a, b);
            remap.push(new_id);
        }
        debug_assert_eq!(remap.len(), inner_inputs + netlist.gate_count());
        netlist.outputs().iter().map(|o| remap[o.index()]).collect()
    }

    /// Declares the primary outputs (replacing any previous declaration).
    pub fn outputs(&mut self, outs: &[SignalId]) -> &mut Self {
        self.outputs = outs.to_vec();
        self
    }

    /// Number of nodes appended so far.
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.nodes.len()
    }

    /// Finalizes and validates the netlist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] if outputs were never declared or any
    /// invariant fails (see [`Netlist::new`]).
    pub fn finish(&self) -> Result<Netlist, NetlistError> {
        Netlist::new(self.num_inputs, self.nodes.clone(), self.outputs.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder_netlist() -> Netlist {
        let mut b = NetlistBuilder::new(3);
        let (x, y, c) = (b.input(0), b.input(1), b.input(2));
        let (s, co) = b.full_adder(x, y, c);
        b.outputs(&[s, co]);
        b.finish().unwrap()
    }

    #[test]
    fn full_adder_truth_table() {
        let nl = full_adder_netlist();
        for v in 0..8u32 {
            let bits = [(v & 1) == 1, (v & 2) == 2, (v & 4) == 4];
            let out = nl.eval_bool(&bits);
            let expect = bits.iter().filter(|&&x| x).count() as u32;
            let got = out[0] as u32 + ((out[1] as u32) << 1);
            assert_eq!(got, expect, "popcount mismatch for {v:03b}");
        }
    }

    #[test]
    fn validate_rejects_forward_reference() {
        let nodes = vec![Node { kind: GateKind::And, a: SignalId(0), b: SignalId(5) }];
        let err = Netlist::new(2, nodes, vec![SignalId(2)]).unwrap_err();
        assert!(matches!(err, NetlistError::ForwardReference { .. }));
    }

    #[test]
    fn validate_rejects_bad_output() {
        let err = Netlist::new(2, vec![], vec![SignalId(9)]).unwrap_err();
        assert!(matches!(err, NetlistError::InvalidOutput { .. }));
    }

    #[test]
    fn validate_rejects_no_outputs() {
        let err = Netlist::new(2, vec![], vec![]).unwrap_err();
        assert!(matches!(err, NetlistError::NoOutputs));
    }

    #[test]
    fn self_reference_is_forward_reference() {
        // Node 0's output is signal 2; referencing it from itself is illegal.
        let nodes = vec![Node { kind: GateKind::And, a: SignalId(2), b: SignalId(0) }];
        assert!(Netlist::new(2, nodes, vec![SignalId(2)]).is_err());
    }

    #[test]
    fn active_mask_finds_dead_nodes() {
        let mut b = NetlistBuilder::new(2);
        let (x, y) = (b.input(0), b.input(1));
        let live = b.and(x, y);
        let _dead = b.or(x, y);
        b.outputs(&[live]);
        let nl = b.finish().unwrap();
        assert_eq!(nl.gate_count(), 2);
        assert_eq!(nl.active_gate_count(), 1);
        let mask = nl.active_mask();
        assert!(mask[live.index()]);
        assert!(!mask[3]); // the OR node
    }

    #[test]
    fn compact_preserves_function() {
        let mut b = NetlistBuilder::new(3);
        let (x, y, c) = (b.input(0), b.input(1), b.input(2));
        let _dead1 = b.nor(x, y);
        let (s, co) = b.full_adder(x, y, c);
        let _dead2 = b.xnor(s, co);
        b.outputs(&[s, co]);
        let nl = b.finish().unwrap();
        let compacted = nl.compact();
        assert!(compacted.gate_count() < nl.gate_count());
        assert_eq!(compacted.gate_count(), compacted.active_gate_count());
        for v in 0..8u32 {
            let bits = [(v & 1) == 1, (v & 2) == 2, (v & 4) == 4];
            assert_eq!(nl.eval_bool(&bits), compacted.eval_bool(&bits));
        }
        compacted.validate().expect("compacted netlist stays valid");
    }

    #[test]
    fn depth_of_full_adder() {
        let nl = full_adder_netlist();
        // sum path: xor -> xor = 2; carry path: xor -> and -> or = 3.
        assert_eq!(nl.depth(), 3);
    }

    #[test]
    fn majority_gate_votes() {
        let mut b = NetlistBuilder::new(3);
        let (x, y, c) = (b.input(0), b.input(1), b.input(2));
        let m = b.majority(x, y, c);
        b.outputs(&[m]);
        let nl = b.finish().unwrap();
        for v in 0..8u32 {
            let bits = [(v & 1) == 1, (v & 2) == 2, (v & 4) == 4];
            let expect = bits.iter().filter(|&&x| x).count() >= 2;
            assert_eq!(nl.eval_bool(&bits)[0], expect);
        }
    }

    #[test]
    fn embed_composes_circuits() {
        // Embed a full adder twice to build a 2-bit ripple adder.
        let fa = full_adder_netlist();
        let mut b = NetlistBuilder::new(4); // a0 a1 b0 b1
        let zero = b.const0();
        let lo = b.embed(&fa, &[SignalId(0), SignalId(2), zero]);
        let hi = b.embed(&fa, &[SignalId(1), SignalId(3), lo[1]]);
        b.outputs(&[lo[0], hi[0], hi[1]]);
        let nl = b.finish().unwrap();
        for v in 0..16u32 {
            let bits: Vec<bool> = (0..4).map(|i| (v >> i) & 1 == 1).collect();
            let a = v & 3;
            let bb = (v >> 2) & 3;
            let out = nl.eval_bool(&bits);
            let got = out[0] as u32 + ((out[1] as u32) << 1) + ((out[2] as u32) << 2);
            assert_eq!(got, a + bb, "{a}+{bb}");
        }
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn embed_rejects_wrong_arity() {
        let fa = full_adder_netlist();
        let mut b = NetlistBuilder::new(2);
        let x = b.input(0);
        b.embed(&fa, &[x, x]);
    }

    #[test]
    fn outputs_may_tap_primary_inputs() {
        let mut b = NetlistBuilder::new(2);
        let x = b.input(0);
        b.outputs(&[x]);
        let nl = b.finish().unwrap();
        assert_eq!(nl.eval_bool(&[true, false]), vec![true]);
        assert_eq!(nl.active_gate_count(), 0);
    }
}
