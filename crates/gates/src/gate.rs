//! Two-input gate primitives.

use std::fmt;
use std::str::FromStr;

/// The kind (Boolean function) of a netlist node.
///
/// The set covers all practically used one- and two-input standard cells:
/// constants, buffer/inverter, the six symmetric two-input functions and the
/// four asymmetric inhibition/implication functions. This is the universe
/// from which CGP function sets (Γ in the paper) are drawn.
///
/// Unary gates ([`GateKind::Buf`], [`GateKind::Not`]) and constants read
/// only their first operand slot; the second operand is ignored but must
/// still be a valid signal so that every node is uniformly binary — exactly
/// the convention Cartesian Genetic Programming uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum GateKind {
    /// Constant logic 0.
    Const0,
    /// Constant logic 1.
    Const1,
    /// Buffer: `a`.
    Buf,
    /// Inverter: `!a`.
    Not,
    /// `a & b`.
    And,
    /// `!(a & b)`.
    Nand,
    /// `a | b`.
    Or,
    /// `!(a | b)`.
    Nor,
    /// `a ^ b`.
    Xor,
    /// `!(a ^ b)`.
    Xnor,
    /// Inhibition: `a & !b`.
    AndNotB,
    /// Inhibition: `!a & b`.
    AndNotA,
    /// Implication: `a | !b`.
    OrNotB,
    /// Implication: `!a | b`.
    OrNotA,
}

impl GateKind {
    /// All gate kinds, in discriminant order.
    pub const ALL: [GateKind; 14] = [
        GateKind::Const0,
        GateKind::Const1,
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::AndNotB,
        GateKind::AndNotA,
        GateKind::OrNotB,
        GateKind::OrNotA,
    ];

    /// Evaluates the gate on 64 input vectors at once.
    ///
    /// Each bit position of `a`/`b` is an independent simulation lane.
    #[inline]
    #[must_use]
    pub fn eval_words(self, a: u64, b: u64) -> u64 {
        match self {
            GateKind::Const0 => 0,
            GateKind::Const1 => !0,
            GateKind::Buf => a,
            GateKind::Not => !a,
            GateKind::And => a & b,
            GateKind::Nand => !(a & b),
            GateKind::Or => a | b,
            GateKind::Nor => !(a | b),
            GateKind::Xor => a ^ b,
            GateKind::Xnor => !(a ^ b),
            GateKind::AndNotB => a & !b,
            GateKind::AndNotA => !a & b,
            GateKind::OrNotB => a | !b,
            GateKind::OrNotA => !a | b,
        }
    }

    /// Evaluates the gate on a single pair of Boolean values.
    #[inline]
    #[must_use]
    pub fn eval_bool(self, a: bool, b: bool) -> bool {
        let to = |x: bool| if x { !0u64 } else { 0 };
        self.eval_words(to(a), to(b)) & 1 == 1
    }

    /// Number of operands the gate actually reads (0, 1 or 2).
    #[must_use]
    pub fn arity(self) -> usize {
        match self {
            GateKind::Const0 | GateKind::Const1 => 0,
            GateKind::Buf | GateKind::Not => 1,
            _ => 2,
        }
    }

    /// Whether swapping the operands leaves the function unchanged.
    #[must_use]
    pub fn is_symmetric(self) -> bool {
        !matches!(self, GateKind::AndNotB | GateKind::AndNotA | GateKind::OrNotB | GateKind::OrNotA)
    }

    /// Canonical lowercase name (`"nand"`, `"xor"`, …).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GateKind::Const0 => "const0",
            GateKind::Const1 => "const1",
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Nand => "nand",
            GateKind::Or => "or",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::AndNotB => "andnb",
            GateKind::AndNotA => "andna",
            GateKind::OrNotB => "ornb",
            GateKind::OrNotA => "orna",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown gate name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGateError(String);

impl fmt::Display for ParseGateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown gate kind `{}`", self.0)
    }
}

impl std::error::Error for ParseGateError {}

impl FromStr for GateKind {
    type Err = ParseGateError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        GateKind::ALL
            .iter()
            .copied()
            .find(|k| k.name() == s)
            .ok_or_else(|| ParseGateError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_words_matches_truth_tables() {
        // lanes: bit0=(a=0,b=0) bit1=(a=1,b=0) bit2=(a=0,b=1) bit3=(a=1,b=1)
        let a = 0b1010u64;
        let b = 0b1100u64;
        let cases = [
            (GateKind::And, 0b1000),
            (GateKind::Nand, 0b0111),
            (GateKind::Or, 0b1110),
            (GateKind::Nor, 0b0001),
            (GateKind::Xor, 0b0110),
            (GateKind::Xnor, 0b1001),
            (GateKind::AndNotB, 0b0010),
            (GateKind::AndNotA, 0b0100),
            (GateKind::OrNotB, 0b1011),
            (GateKind::OrNotA, 0b1101),
            (GateKind::Buf, 0b1010),
            (GateKind::Not, !0b1010u64),
            (GateKind::Const0, 0),
            (GateKind::Const1, !0),
        ];
        for (kind, expect) in cases {
            assert_eq!(kind.eval_words(a, b) & 0xF, expect & 0xF, "gate {kind} wrong");
        }
    }

    #[test]
    fn eval_bool_consistent_with_words() {
        for kind in GateKind::ALL {
            for (a, b) in [(false, false), (true, false), (false, true), (true, true)] {
                let w = kind.eval_words(if a { !0 } else { 0 }, if b { !0 } else { 0 }) & 1 == 1;
                assert_eq!(kind.eval_bool(a, b), w, "{kind} mismatch at ({a},{b})");
            }
        }
    }

    #[test]
    fn symmetry_flags_are_correct() {
        for kind in GateKind::ALL {
            let sym = (0..4).all(|i| {
                let a = i & 1 == 1;
                let b = i & 2 == 2;
                kind.eval_bool(a, b) == kind.eval_bool(b, a)
            });
            // For unary/const gates symmetry check must account for
            // operand-a-only reads: Buf/Not are not symmetric functions of
            // (a, b) but is_symmetric() reports true since b is ignored in
            // hardware terms. Skip those.
            if kind.arity() == 2 {
                assert_eq!(kind.is_symmetric(), sym, "{kind}");
            }
        }
    }

    #[test]
    fn name_round_trips() {
        for kind in GateKind::ALL {
            let parsed: GateKind = kind.name().parse().expect("parse back");
            assert_eq!(parsed, kind);
        }
        assert!("bogus".parse::<GateKind>().is_err());
    }

    #[test]
    fn arity_reflects_reads() {
        assert_eq!(GateKind::Const0.arity(), 0);
        assert_eq!(GateKind::Not.arity(), 1);
        assert_eq!(GateKind::Nand.arity(), 2);
    }
}
