//! Graphviz DOT export for visual inspection of evolved circuits.

use crate::Netlist;
use std::fmt::Write as _;

/// Renders `netlist` as a Graphviz `digraph`.
///
/// Dead nodes are drawn dashed so the effect of CGP's neutral genetic
/// material is visible. The output is deterministic, making it usable in
/// golden-file tests.
///
/// # Examples
///
/// ```
/// use apx_gates::{NetlistBuilder, to_dot};
///
/// let mut b = NetlistBuilder::new(2);
/// let s = b.xor(b.input(0), b.input(1));
/// b.outputs(&[s]);
/// let dot = to_dot(&b.finish().unwrap(), "xor");
/// assert!(dot.starts_with("digraph xor"));
/// ```
#[must_use]
pub fn to_dot(netlist: &Netlist, name: &str) -> String {
    let active = netlist.active_mask();
    let ni = netlist.num_inputs();
    let mut s = String::new();
    let _ = writeln!(s, "digraph {name} {{");
    let _ = writeln!(s, "  rankdir=LR;");
    for i in 0..ni {
        let _ = writeln!(s, "  s{i} [shape=triangle,label=\"in{i}\"];");
    }
    for (k, node) in netlist.nodes().iter().enumerate() {
        let sig = ni + k;
        let style = if active[sig] { "solid" } else { "dashed" };
        let _ = writeln!(s, "  s{sig} [shape=box,style={style},label=\"{}\"];", node.kind);
        match node.kind.arity() {
            0 => {}
            1 => {
                let _ = writeln!(s, "  s{} -> s{sig};", node.a.0);
            }
            _ => {
                let _ = writeln!(s, "  s{} -> s{sig};", node.a.0);
                let _ = writeln!(s, "  s{} -> s{sig};", node.b.0);
            }
        }
    }
    for (o, out) in netlist.outputs().iter().enumerate() {
        let _ = writeln!(s, "  o{o} [shape=invtriangle,label=\"out{o}\"];");
        let _ = writeln!(s, "  s{} -> o{o};", out.0);
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    #[test]
    fn dot_contains_all_elements() {
        let mut b = NetlistBuilder::new(2);
        let (x, y) = (b.input(0), b.input(1));
        let live = b.and(x, y);
        let _dead = b.or(x, y);
        b.outputs(&[live]);
        let dot = to_dot(&b.finish().unwrap(), "g");
        assert!(dot.contains("in0") && dot.contains("in1"));
        assert!(dot.contains("and") && dot.contains("or"));
        assert!(dot.contains("style=dashed"), "dead node must be dashed");
        assert!(dot.contains("out0"));
        assert!(dot.ends_with("}\n"));
    }
}
