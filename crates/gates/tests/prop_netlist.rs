//! Property-based tests on netlist invariants.

use apx_gates::{Exhaustive, GateKind, Netlist, NetlistBuilder, NetlistStats, SignalId};
use proptest::prelude::*;

/// Strategy: an arbitrary valid netlist with `ni` inputs.
fn arb_netlist(ni: usize, max_nodes: usize) -> impl Strategy<Value = Netlist> {
    let node_count = 1..=max_nodes;
    node_count
        .prop_flat_map(move |n| {
            let genes = proptest::collection::vec((any::<u32>(), any::<u32>(), 0usize..14), n);
            let outs = proptest::collection::vec(any::<u32>(), 1..=4);
            (genes, outs).prop_map(move |(genes, outs)| {
                let mut b = NetlistBuilder::new(ni);
                for (k, (a, bb, f)) in genes.iter().enumerate() {
                    let limit = (ni + k) as u32;
                    let kind = GateKind::ALL[*f];
                    b.push(kind, SignalId(a % limit), SignalId(bb % limit));
                }
                let total = (ni + genes.len()) as u32;
                let outputs: Vec<SignalId> = outs.iter().map(|o| SignalId(o % total)).collect();
                b.outputs(&outputs);
                b.finish().expect("constructed within bounds")
            })
        })
        .prop_filter("non-trivial", |nl| nl.gate_count() > 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compact_preserves_function(nl in arb_netlist(4, 24)) {
        let compacted = nl.compact();
        prop_assert!(compacted.gate_count() <= nl.gate_count());
        prop_assert_eq!(compacted.gate_count(), compacted.active_gate_count());
        let ex = Exhaustive::new(4);
        prop_assert_eq!(ex.output_table(&nl), ex.output_table(&compacted));
    }

    #[test]
    fn active_mask_is_consistent_with_stats(nl in arb_netlist(5, 20)) {
        let stats = NetlistStats::of(&nl);
        prop_assert_eq!(stats.active_gates, nl.active_gate_count());
        let kind_total: usize = stats.kind_counts.iter().sum();
        prop_assert_eq!(kind_total, stats.active_gates);
        prop_assert!(stats.active_gates <= stats.total_gates);
    }

    #[test]
    fn exhaustive_table_matches_bool_eval(nl in arb_netlist(4, 16)) {
        let table = Exhaustive::new(4).output_table(&nl);
        for (v, &table_word) in table.iter().enumerate() {
            let bits: Vec<bool> = (0..4).map(|i| (v >> i) & 1 == 1).collect();
            let outs = nl.eval_bool(&bits);
            let packed: u64 = outs.iter().enumerate().map(|(k, &o)| (o as u64) << k).sum();
            prop_assert_eq!(table_word, packed);
        }
    }

    #[test]
    fn depth_bounds_active_gate_count(nl in arb_netlist(4, 24)) {
        // Depth can never exceed the number of active gates.
        let depths = nl.depths();
        let max_out_depth = nl.outputs().iter().map(|o| depths[o.index()]).max().unwrap();
        prop_assert!(max_out_depth as usize <= nl.active_gate_count());
    }

    #[test]
    fn embed_is_functionally_transparent(nl in arb_netlist(3, 12)) {
        // Embedding a netlist behind pass-through inputs preserves it.
        let mut b = NetlistBuilder::new(3);
        let inputs: Vec<SignalId> = (0..3).map(|i| b.input(i)).collect();
        let outs = b.embed(&nl, &inputs);
        b.outputs(&outs);
        let wrapped = b.finish().unwrap();
        let ex = Exhaustive::new(3);
        prop_assert_eq!(ex.output_table(&nl), ex.output_table(&wrapped));
    }
}
