//! Offline, API-compatible subset of the [`proptest`] property-testing
//! crate.
//!
//! This workspace builds in environments without network access, so the
//! real `proptest` cannot be fetched from crates.io. This crate implements
//! the slice of its API the test suites actually use — the [`proptest!`]
//! macro, [`Strategy`] with `prop_map` / `prop_flat_map` / `prop_filter`,
//! integer/float range strategies, [`any`], tuple strategies and
//! [`collection::vec`] — on top of the workspace's deterministic
//! [`apx_rng::Xoshiro256`] generator.
//!
//! Differences from the real crate (deliberate, to stay small):
//!
//! * no shrinking — a failing case reports its inputs via the assertion
//!   message only;
//! * generation is deterministic per test (seeded from the test name), so
//!   failures always reproduce;
//! * strategies are plain value generators, not value trees.
//!
//! [`proptest`]: https://docs.rs/proptest

use apx_rng::Xoshiro256;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The deterministic random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: Xoshiro256,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Self { inner: Xoshiro256::from_seed(seed) }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.f64()
    }

    /// Uniform integer in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.inner.gen_range(bound as usize) as u64
    }
}

/// Error raised by a single generated test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion; the test panics with this message.
    Fail(String),
    /// The case was rejected (`prop_assume!` / filter); it is re-drawn.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with the given message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (skipped, re-drawn) case.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// FNV-1a hash of the test name — the deterministic per-test seed.
#[must_use]
pub fn seed_of(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives the generate/run loop of one `proptest!` test function.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
}

impl TestRunner {
    /// A runner for the named test.
    #[must_use]
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        Self { config, name }
    }

    /// Runs `f` until `config.cases` cases were accepted.
    ///
    /// # Panics
    ///
    /// Panics when a case fails, or when rejection (via `prop_assume!`)
    /// starves generation.
    pub fn run<F>(&mut self, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::from_seed(seed_of(self.name));
        let mut accepted = 0u32;
        let max_attempts = self.config.cases.saturating_mul(20).max(1024);
        let mut attempts = 0u32;
        while accepted < self.config.cases {
            attempts += 1;
            assert!(
                attempts <= max_attempts,
                "proptest '{}': too many rejected cases ({accepted} accepted of {} wanted)",
                self.name,
                self.config.cases
            );
            match f(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{}' failed at case {accepted}: {msg}", self.name)
                }
            }
        }
    }
}

/// A generator of values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value and runs the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Re-draws until `f` accepts the value.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, f }
    }

    /// Boxes the strategy behind a trait object.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 10000 consecutive samples", self.whence)
    }
}

/// See [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn StrategyObject<Value = T>>);

/// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
trait StrategyObject {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> StrategyObject for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Types with a canonical "uniform over the whole domain" strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for the full domain of `T` (`any::<u64>()` etc.).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy of `T` — every value equally likely.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + i128::from(rng.below(span))) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi as i128 - lo as i128 + 1;
                if span > i128::from(u64::MAX) {
                    // Full 64-bit domain (e.g. `0u64..=u64::MAX`): every
                    // bit pattern is in range, so draw one directly.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + i128::from(rng.below(span as u64))) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3), (A.0, B.1, C.2, D.3, E.4));

/// A single fixed value (`Just(x)`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A `Vec` of values drawn from `elem`, with a length drawn from
    /// `size` (a fixed `usize`, `a..b` or `a..=b`).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

/// The common import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Defines property-based test functions.
///
/// Supports the standard shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u32..10, v in proptest::collection::vec(0.0f64..1.0, 16)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg(::core::default::Default::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::new(config, stringify!($name));
                runner.run(|prop_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), prop_rng);)*
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} at {}:{}",
                ::core::stringify!($cond),
                ::core::file!(),
                ::core::line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} — {} at {}:{}",
                ::core::stringify!($cond),
                ::std::format!($($fmt)+),
                ::core::file!(),
                ::core::line!()
            )));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} == {}` (left: {:?}, right: {:?}) at {}:{}",
                ::core::stringify!($a),
                ::core::stringify!($b),
                left,
                right,
                ::core::file!(),
                ::core::line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} == {}` (left: {:?}, right: {:?}) — {} at {}:{}",
                ::core::stringify!($a),
                ::core::stringify!($b),
                left,
                right,
                ::std::format!($($fmt)+),
                ::core::file!(),
                ::core::line!()
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} != {}` (both: {:?}) at {}:{}",
                ::core::stringify!($a),
                ::core::stringify!($b),
                left,
                ::core::file!(),
                ::core::line!()
            )));
        }
    }};
}

/// Skips (re-draws) the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(::core::stringify!(
                $cond
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (-5i64..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn full_domain_inclusive_ranges_do_not_overflow() {
        let mut rng = TestRng::from_seed(11);
        let mut any_high = false;
        for _ in 0..64 {
            let u = (0u64..=u64::MAX).generate(&mut rng);
            any_high |= u > u64::MAX / 2;
            let _ = (i64::MIN..=i64::MAX).generate(&mut rng);
            let b = (0u8..=u8::MAX).generate(&mut rng);
            let _ = b; // full u8 domain: every pattern valid
        }
        assert!(any_high, "full-domain draws should cover the upper half");
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let v = crate::collection::vec(0u8..4, 3..=7).generate(&mut rng);
            assert!((3..=7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
            let fixed = crate::collection::vec(any::<u64>(), 5usize).generate(&mut rng);
            assert_eq!(fixed.len(), 5);
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::from_seed(3);
        let s = (1usize..=4)
            .prop_flat_map(|n| crate::collection::vec(0u32..10, n))
            .prop_map(|v| v.len())
            .prop_filter("nonempty", |&n| n > 0);
        for _ in 0..100 {
            let n = s.generate(&mut rng);
            assert!((1..=4).contains(&n));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = TestRng::from_seed(9);
        let mut b = TestRng::from_seed(9);
        let s = (0u64..1_000_000, 0.0f64..1.0);
        for _ in 0..50 {
            assert_eq!(s.0.generate(&mut a), s.0.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0u32..100, v in crate::collection::vec(0i8..8, 0..5)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(x, 13);
        }
    }
}
