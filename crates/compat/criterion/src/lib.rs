//! Offline, API-compatible subset of the [`criterion`] benchmark harness.
//!
//! The workspace builds without network access, so the real `criterion`
//! cannot be fetched from crates.io. This crate implements the slice of
//! its API the benches in `crates/bench/benches/` use — [`Criterion`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`] and the [`criterion_group!`] / [`criterion_main!`]
//! macros — with a simple warm-up + timed-batch measurement loop.
//!
//! Results are printed as `group/function ... <mean> ns/iter` lines. The
//! statistical machinery of the real crate (outlier classification,
//! bootstrap confidence intervals, HTML reports) is intentionally absent;
//! the benches exist to keep hot paths honest, and CI only compile-checks
//! them (`cargo bench --no-run`).
//!
//! [`criterion`]: https://docs.rs/criterion

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
///
/// Re-exported so benches may use either `criterion::black_box` or
/// `std::hint::black_box` interchangeably.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver (a stub of the real criterion struct).
#[derive(Debug)]
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { measurement_time: Duration::from_millis(200) }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 100 }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures one benchmark function.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            budget: self.criterion.measurement_time,
            samples: self.sample_size,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        println!(
            "{}/{id:<40} {:>12.1} ns/iter ({} iterations)",
            self.name, bencher.mean_ns, bencher.iters
        );
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs the measured routine.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    samples: usize,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f`, first warming up, then running timed batches until the
    /// sample or time budget is exhausted.
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        // Warm-up and per-iteration cost estimate.
        let warmup = Instant::now();
        std_black_box(f());
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        // Pick an iteration count that fits the measurement budget.
        let per_sample =
            (self.budget.as_nanos() / self.samples.max(1) as u128).max(1).min(u128::from(u64::MAX));
        let batch = (per_sample / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            total += start.elapsed();
            iters += batch;
            if total >= self.budget {
                break;
            }
        }
        self.iters = iters;
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("compat");
        group.sample_size(5);
        group.bench_function("sum_1000", |b| b.iter(|| (0u64..1000).sum::<u64>()));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_measures_something() {
        benches();
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
