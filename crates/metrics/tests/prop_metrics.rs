//! Property-based tests on error-metric invariants.

use apx_arith::{OpTable, Operator};
use apx_dist::Pmf;
use apx_gates::{GateKind, Netlist, Node, SignalId};
use apx_metrics::{table_stats, CircuitEvaluator, ErrorStats, EvalBackend};
use apx_rng::Xoshiro256;
use proptest::prelude::*;

/// Random multiplier-arity netlist. Operands always point strictly
/// earlier, so validation passes by construction; any node the outputs
/// never reach is dead — the same inactive genetic material CGP's neutral
/// drift accumulates, which the evaluators must tolerate.
fn random_netlist(width: u32, gates: usize, seed: u64) -> Netlist {
    let mut rng = Xoshiro256::from_seed(seed);
    let ni = 2 * width as usize;
    let mut nodes = Vec::with_capacity(gates);
    for k in 0..gates {
        nodes.push(random_node(ni + k, &mut rng));
    }
    let total = ni + gates;
    let outputs = (0..ni).map(|_| SignalId(rng.gen_range(total) as u32)).collect();
    Netlist::new(ni, nodes, outputs).expect("operands always precede consumers")
}

/// Random node whose operands are drawn from the `sigs` earlier signals.
fn random_node(sigs: usize, rng: &mut Xoshiro256) -> Node {
    Node {
        kind: GateKind::ALL[rng.gen_range(GateKind::ALL.len())],
        a: SignalId(rng.gen_range(sigs) as u32),
        b: SignalId(rng.gen_range(sigs) as u32),
    }
}

/// Asserts two [`ErrorStats`] are equal down to the last mantissa bit.
fn assert_stats_identical(a: &ErrorStats, b: &ErrorStats) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.med.to_bits(), b.med.to_bits());
    prop_assert_eq!(a.wmed.to_bits(), b.wmed.to_bits());
    prop_assert_eq!(a.wce.to_bits(), b.wce.to_bits());
    prop_assert_eq!(a.error_rate.to_bits(), b.error_rate.to_bits());
    prop_assert_eq!(a.mred.to_bits(), b.mred.to_bits());
    prop_assert_eq!(a.max_abs_error, b.max_abs_error);
    Ok(())
}

/// Random netlist with `op`'s arity at `width` (same construction as
/// [`random_netlist`], generalized beyond multipliers).
fn random_op_netlist(op: Operator, width: u32, gates: usize, seed: u64) -> Netlist {
    let mut rng = Xoshiro256::from_seed(seed);
    let ni = op.num_inputs(width);
    let no = op.num_outputs(width);
    let mut nodes = Vec::with_capacity(gates);
    for k in 0..gates {
        nodes.push(random_node(ni + k, &mut rng));
    }
    let total = ni + gates;
    let outputs = (0..no).map(|_| SignalId(rng.gen_range(total) as u32)).collect();
    Netlist::new(ni, nodes, outputs).expect("operands always precede consumers")
}

/// A seed-circuit mutant: `mutations` random node rewrites applied to
/// `op`'s exact circuit — the realistic CGP workload (mostly-correct
/// arithmetic structure), as opposed to [`random_op_netlist`]'s garbage
/// logic.
fn mutated_seed(op: Operator, width: u32, signed: bool, mutations: usize, seed: u64) -> Netlist {
    let mut rng = Xoshiro256::from_seed(seed);
    let base = op.seed_circuit(width, signed);
    let ni = base.num_inputs();
    let mut nodes = base.nodes().to_vec();
    for _ in 0..mutations {
        let k = rng.gen_range(nodes.len());
        nodes[k] = random_node(ni + k, &mut rng);
    }
    Netlist::new(ni, nodes, base.outputs().to_vec()).expect("mutation preserves topology")
}

/// The three PMF families the backend-equivalence contract is tested
/// under: uniform, a discretized normal, and a "measured-lumpy" mass
/// with a handful of spikes (the shape real application histograms
/// take — most encodings never occur).
fn pmf_flavor(width: u32, signed: bool, flavor: u8, salt: u64) -> Pmf {
    let n = 1usize << width;
    match flavor % 3 {
        0 => Pmf::uniform(width),
        1 if signed => Pmf::signed_normal(width, 1.0, f64::from(1u32 << (width - 1)) / 2.0),
        1 => Pmf::normal(width, f64::from(1u32 << (width - 1)), f64::from(width)),
        _ => {
            let mut rng = Xoshiro256::from_seed(salt);
            let mut weights = vec![0.0f64; n];
            for _ in 0..4 {
                weights[rng.gen_range(n)] += 1.0 + rng.gen_range(7) as f64;
            }
            Pmf::from_weights(width, weights).expect("spikes guarantee positive mass")
        }
    }
}

/// Random approximate 4-bit multiplier: exact product XOR a bounded
/// perturbation selected by the proptest input.
fn perturbed_table(mask: u8, salt: u64) -> OpTable {
    OpTable::from_fn(4, false, |a, b| {
        let exact = a * b;
        // Deterministic pseudo-random perturbation per entry.
        let h = (a as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((b as u64).wrapping_mul(0xBF58476D1CE4E5B9))
            .wrapping_add(salt);
        exact ^ ((h as i64) & (mask as i64))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wmed_is_bounded_by_wce(mask in 0u8..32, salt in any::<u64>(),
                              weights in proptest::collection::vec(0.0f64..5.0, 16)) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let pmf = Pmf::from_weights(4, weights).unwrap();
        let approx = perturbed_table(mask, salt);
        let exact = OpTable::exact_mul(4, false);
        let s = table_stats(&approx, &exact, &pmf);
        prop_assert!(s.wmed <= s.wce + 1e-12);
        prop_assert!(s.med <= s.wce + 1e-12);
        prop_assert!(s.wmed >= 0.0 && s.med >= 0.0);
        prop_assert!((0.0..=1.0).contains(&s.error_rate));
    }

    #[test]
    fn zero_error_rate_iff_exact(mask in 0u8..16, salt in any::<u64>()) {
        let approx = perturbed_table(mask, salt);
        let exact = OpTable::exact_mul(4, false);
        let s = table_stats(&approx, &exact, &Pmf::uniform(4));
        prop_assert_eq!(s.error_rate == 0.0, s.max_abs_error == 0);
        prop_assert_eq!(s.med == 0.0, s.max_abs_error == 0);
    }

    #[test]
    fn wmed_is_linear_in_the_distribution(
        mask in 1u8..32,
        salt in any::<u64>(),
        wa in proptest::collection::vec(0.1f64..5.0, 16),
        wb in proptest::collection::vec(0.1f64..5.0, 16),
        t in 0.0f64..=1.0,
    ) {
        // WMED = Σ_x D(x)·row(x) is linear in D, so mixing distributions
        // mixes WMEDs.
        let a = Pmf::from_weights(4, wa).unwrap();
        let b = Pmf::from_weights(4, wb).unwrap();
        let approx = perturbed_table(mask, salt);
        let exact = OpTable::exact_mul(4, false);
        let wmed_a = table_stats(&approx, &exact, &a).wmed;
        let wmed_b = table_stats(&approx, &exact, &b).wmed;
        let wmed_mix = table_stats(&approx, &exact, &a.mix(&b, t)).wmed;
        let expect = (1.0 - t) * wmed_a + t * wmed_b;
        prop_assert!((wmed_mix - expect).abs() < 1e-12,
            "mix {wmed_mix} vs convex {expect}");
    }

    #[test]
    fn netlist_evaluator_agrees_with_tables(trunc in 0u32..8) {
        let nl = apx_arith::truncated_multiplier(4, trunc);
        let pmf = Pmf::half_normal(4, 3.0);
        let eval = CircuitEvaluator::new(4, false, &pmf).unwrap();
        let approx = OpTable::from_netlist(&nl, 4, false).unwrap();
        let exact = OpTable::exact_mul(4, false);
        let expect = table_stats(&approx, &exact, &pmf);
        let got = eval.stats(&nl);
        prop_assert!((got.wmed - expect.wmed).abs() < 1e-12);
        prop_assert!((got.wce - expect.wce).abs() < 1e-12);
        prop_assert!((got.mred - expect.mred).abs() < 1e-9);
    }

    #[test]
    fn bounded_evaluation_never_lies(trunc in 1u32..8, limit_scale in 0.1f64..3.0) {
        let nl = apx_arith::truncated_multiplier(4, trunc);
        let eval = CircuitEvaluator::new(4, false, &Pmf::uniform(4)).unwrap();
        let truth = eval.wmed(&nl);
        let limit = truth * limit_scale;
        match eval.wmed_bounded(&nl, limit) {
            Some(v) => {
                prop_assert!((v - truth).abs() < 1e-12);
                prop_assert!(truth <= limit + 1e-15);
            }
            None => prop_assert!(truth > limit),
        }
    }

    /// The backend seam's core contract: on any netlist — dead nodes,
    /// constant outputs, garbage logic included — the scalar reference and
    /// the bit-parallel engine produce identical `ErrorStats` down to the
    /// last bit, and identical bounded verdicts.
    #[test]
    fn scalar_and_bitpar_stats_bit_identical(
        width in 2u32..=6,
        signed in any::<bool>(),
        gates in 1usize..48,
        seed in any::<u64>(),
        limit_scale in 0.0f64..2.0,
    ) {
        let nl = random_netlist(width, gates, seed);
        let pmf = Pmf::half_normal(width, f64::from(1u32 << (width - 1)));
        let fast =
            CircuitEvaluator::with_backend(width, signed, &pmf, EvalBackend::BitParallel).unwrap();
        let slow = CircuitEvaluator::with_backend(width, signed, &pmf, EvalBackend::Scalar).unwrap();
        assert_stats_identical(&fast.stats(&nl), &slow.stats(&nl))?;
        // Bounded verdicts (feasible value and abort decision alike).
        let limit = limit_scale * fast.stats(&nl).wmed;
        prop_assert_eq!(
            fast.wmed_bounded(&nl, limit).map(f64::to_bits),
            slow.wmed_bounded(&nl, limit).map(f64::to_bits)
        );
    }

    /// The incremental protocol's core contract: a delta evaluation against
    /// a cached parent state — through arbitrary chains of single-node
    /// mutations and commits — returns exactly what a from-scratch bounded
    /// evaluation of the child returns, abort decision included.
    #[test]
    fn delta_matches_full_over_mutation_chains(
        trunc in 0u32..8,
        signed in any::<bool>(),
        seed in any::<u64>(),
        limit_scale in 0.0f64..2.0,
    ) {
        let w = 6u32;
        let ni = 2 * w as usize;
        let pmf = Pmf::half_normal(w, 16.0);
        let eval =
            CircuitEvaluator::with_backend(w, signed, &pmf, EvalBackend::BitParallel).unwrap();
        let mut base = apx_arith::truncated_multiplier(w, trunc);
        let mut state = eval.new_state(&base);
        let mut rng = Xoshiro256::from_seed(seed);
        let limit = limit_scale * (eval.wmed(&base) + 1e-4);
        for _ in 0..12 {
            let k = rng.gen_range(base.gate_count());
            let mut nodes = base.nodes().to_vec();
            nodes[k] = random_node(ni + k, &mut rng);
            let child = Netlist::new(ni, nodes, base.outputs().to_vec()).unwrap();
            // A superset changed list (extra indices whose definition is
            // unchanged) must be harmless — equality pruning absorbs them.
            let mut changed = vec![k as u32];
            if rng.bernoulli(0.3) {
                changed.push(rng.gen_range(base.gate_count()) as u32);
            }
            let got = eval.wmed_bounded_delta(&mut state, &child, &changed, limit);
            let want = eval.wmed_bounded(&child, limit);
            prop_assert_eq!(got.map(f64::to_bits), want.map(f64::to_bits));
            if rng.bernoulli(0.5) {
                eval.commit_state(&mut state, &child, &changed);
                base = child;
            }
        }
    }
}

proptest! {
    // The symbolic cases build BDDs per weighted operand value; fewer,
    // fatter cases keep the suite fast in debug builds.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole contract of the symbolic backend: on every operator,
    /// width, signedness and PMF family the exhaustive backends can reach,
    /// the ROBDD model counter returns the same `ErrorStats`, the same
    /// WMED and the same bounded verdict down to the last mantissa bit —
    /// on garbage random netlists and realistic seed-circuit mutants
    /// alike.
    #[test]
    fn symbolic_is_bit_identical_to_enumeration(
        op_idx in 0usize..3,
        width_raw in 2u32..=8,
        signed in any::<bool>(),
        gates in 1usize..40,
        mutations in 1usize..6,
        seed in any::<u64>(),
        flavor in 0u8..3,
        limit_scale in 0.0f64..2.0,
    ) {
        let op = [Operator::Mul, Operator::Add, Operator::Mac][op_idx];
        // Clamp to the width range *all* backends support (mac: 2..=4).
        let width = width_raw.min(op.max_width(EvalBackend::BitParallel));
        let pmf = pmf_flavor(width, signed, flavor, seed);
        let fast =
            CircuitEvaluator::for_operator_with_backend(op, width, signed, &pmf, EvalBackend::BitParallel)
                .unwrap();
        let slow =
            CircuitEvaluator::for_operator_with_backend(op, width, signed, &pmf, EvalBackend::Scalar)
                .unwrap();
        let sym =
            CircuitEvaluator::for_operator_with_backend(op, width, signed, &pmf, EvalBackend::Symbolic)
                .unwrap();
        for nl in [
            random_op_netlist(op, width, gates, seed),
            mutated_seed(op, width, signed, mutations, seed),
        ] {
            let want = fast.wmed(&nl);
            prop_assert_eq!(want.to_bits(), sym.wmed(&nl).to_bits(), "wmed {op} w{width}");
            prop_assert_eq!(want.to_bits(), slow.wmed(&nl).to_bits(), "scalar {op} w{width}");
            let limit = limit_scale * want;
            prop_assert_eq!(
                fast.wmed_bounded(&nl, limit).map(f64::to_bits),
                sym.wmed_bounded(&nl, limit).map(f64::to_bits),
                "bounded {op} w{width}"
            );
            assert_stats_identical(&fast.stats(&nl), &sym.stats(&nl))?;
        }
    }
}

/// Appends a `Const0` node and routes output bit 0 through it — the
/// canonical one-bit truncation whose WMED has a closed form.
fn zero_output_bit0(nl: &Netlist) -> Netlist {
    let ni = nl.num_inputs();
    let mut nodes = nl.nodes().to_vec();
    let zero = SignalId((ni + nodes.len()) as u32);
    nodes.push(Node { kind: GateKind::Const0, a: SignalId(0), b: SignalId(0) });
    let mut outputs = nl.outputs().to_vec();
    outputs[0] = zero;
    Netlist::new(ni, nodes, outputs).expect("appending a node preserves validity")
}

/// Width-12 multipliers: far beyond the exhaustive backends (a 2^24-vector
/// domain), exactly scored by the symbolic engine. The exact seed must
/// come back 0.0; zeroing output bit 0 of the product loses exactly 1
/// whenever `x0 ∧ y0`. With the distribution mass split evenly between
/// `x = 1` (odd: bit-0 errors on the `2^11` odd `y`) and `x = 2` (even:
/// never errs), the closed-form WMED is `0.5 · 2^11 / (2^12 · 2^24) =
/// 2^-26` — dyadic, hence f64-exact. The two-spike PMF keeps this variant
/// fast enough for debug builds (the engine only visits weighted rows);
/// [`symbolic_wide_multiplier_uniform_full_pass`] covers the full domain.
#[test]
fn symbolic_wide_multiplier_matches_closed_form() {
    let mut weights = vec![0.0f64; 1 << 12];
    weights[1] = 1.0;
    weights[2] = 1.0;
    let pmf = Pmf::from_weights(12, weights).unwrap();
    let eval = CircuitEvaluator::with_backend(12, false, &pmf, EvalBackend::Symbolic).unwrap();
    let seed = Operator::Mul.seed_circuit(12, false);
    assert_eq!(eval.wmed(&seed), 0.0);
    let truncated = zero_output_bit0(&seed);
    let expect = (0.25f64) / (1u64 << 24) as f64;
    assert_eq!(eval.wmed(&truncated).to_bits(), expect.to_bits());
    // The bounded analogue aborts below the closed form and completes
    // above it.
    assert_eq!(eval.wmed_bounded(&truncated, expect / 2.0), None);
    assert_eq!(
        eval.wmed_bounded(&truncated, expect * 2.0).map(f64::to_bits),
        Some(expect.to_bits())
    );
}

/// The full-domain version: uniform PMF (every one of the 4096 operand
/// values weighted) and the complete wide-statistics pass. Runs in
/// release only — a debug build spends minutes rebuilding the 12×12
/// multiplier's BDDs 4096 times over.
#[test]
#[cfg_attr(debug_assertions, ignore = "slow without optimizations; release CI covers it")]
fn symbolic_wide_multiplier_uniform_full_pass() {
    let pmf = Pmf::uniform(12);
    let eval = CircuitEvaluator::with_backend(12, false, &pmf, EvalBackend::Symbolic).unwrap();
    let truncated = zero_output_bit0(&Operator::Mul.seed_circuit(12, false));
    let expect = (0.25f64) / (1u64 << 24) as f64;
    assert_eq!(eval.wmed(&truncated).to_bits(), expect.to_bits());
    let stats = eval.stats(&truncated);
    assert_eq!(stats.wmed.to_bits(), expect.to_bits());
    assert_eq!(stats.max_abs_error, 1);
    assert_eq!(stats.error_rate, 0.25);
    assert!(stats.mred.is_nan(), "mred is NaN on the wide-stats path");
}

/// Same closed form for the adder: output bit 0 of `x + y` is `x0 ⊕ y0`,
/// set on half of all pairs, so zeroing it gives WMED `(1/2) / 2^13 =
/// 2^-14` at width 12 under a uniform PMF.
#[test]
fn symbolic_wide_adder_matches_closed_form() {
    let op = Operator::Add;
    let pmf = Pmf::uniform(12);
    let eval =
        CircuitEvaluator::for_operator_with_backend(op, 12, false, &pmf, EvalBackend::Symbolic)
            .unwrap();
    let seed = op.seed_circuit(12, false);
    assert_eq!(eval.wmed(&seed), 0.0);
    let truncated = zero_output_bit0(&seed);
    let expect = 0.5f64 / (1u64 << 13) as f64;
    assert_eq!(eval.wmed(&truncated).to_bits(), expect.to_bits());
    let stats = eval.stats(&truncated);
    assert_eq!(stats.wmed.to_bits(), expect.to_bits());
    assert_eq!(stats.max_abs_error, 1);
    assert_eq!(stats.error_rate, 0.5);
    assert!(stats.mred.is_nan(), "mred is NaN on the wide-stats path");
}

/// The 8-bit MAC (33 netlist inputs — the widest evaluable point of the
/// whole system) scores its own seed as exactly zero error.
#[test]
fn symbolic_eight_bit_mac_seed_is_exact() {
    let op = Operator::Mac;
    let pmf = Pmf::half_normal(8, 48.0);
    let eval =
        CircuitEvaluator::for_operator_with_backend(op, 8, false, &pmf, EvalBackend::Symbolic)
            .unwrap();
    let seed = op.seed_circuit(8, false);
    assert_eq!(eval.wmed(&seed), 0.0);
}
