//! Property-based tests on error-metric invariants.

use apx_arith::OpTable;
use apx_dist::Pmf;
use apx_metrics::{table_stats, MultEvaluator};
use proptest::prelude::*;

/// Random approximate 4-bit multiplier: exact product XOR a bounded
/// perturbation selected by the proptest input.
fn perturbed_table(mask: u8, salt: u64) -> OpTable {
    OpTable::from_fn(4, false, |a, b| {
        let exact = a * b;
        // Deterministic pseudo-random perturbation per entry.
        let h = (a as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((b as u64).wrapping_mul(0xBF58476D1CE4E5B9))
            .wrapping_add(salt);
        exact ^ ((h as i64) & (mask as i64))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wmed_is_bounded_by_wce(mask in 0u8..32, salt in any::<u64>(),
                              weights in proptest::collection::vec(0.0f64..5.0, 16)) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let pmf = Pmf::from_weights(4, weights).unwrap();
        let approx = perturbed_table(mask, salt);
        let exact = OpTable::exact_mul(4, false);
        let s = table_stats(&approx, &exact, &pmf);
        prop_assert!(s.wmed <= s.wce + 1e-12);
        prop_assert!(s.med <= s.wce + 1e-12);
        prop_assert!(s.wmed >= 0.0 && s.med >= 0.0);
        prop_assert!((0.0..=1.0).contains(&s.error_rate));
    }

    #[test]
    fn zero_error_rate_iff_exact(mask in 0u8..16, salt in any::<u64>()) {
        let approx = perturbed_table(mask, salt);
        let exact = OpTable::exact_mul(4, false);
        let s = table_stats(&approx, &exact, &Pmf::uniform(4));
        prop_assert_eq!(s.error_rate == 0.0, s.max_abs_error == 0);
        prop_assert_eq!(s.med == 0.0, s.max_abs_error == 0);
    }

    #[test]
    fn wmed_is_linear_in_the_distribution(
        mask in 1u8..32,
        salt in any::<u64>(),
        wa in proptest::collection::vec(0.1f64..5.0, 16),
        wb in proptest::collection::vec(0.1f64..5.0, 16),
        t in 0.0f64..=1.0,
    ) {
        // WMED = Σ_x D(x)·row(x) is linear in D, so mixing distributions
        // mixes WMEDs.
        let a = Pmf::from_weights(4, wa).unwrap();
        let b = Pmf::from_weights(4, wb).unwrap();
        let approx = perturbed_table(mask, salt);
        let exact = OpTable::exact_mul(4, false);
        let wmed_a = table_stats(&approx, &exact, &a).wmed;
        let wmed_b = table_stats(&approx, &exact, &b).wmed;
        let wmed_mix = table_stats(&approx, &exact, &a.mix(&b, t)).wmed;
        let expect = (1.0 - t) * wmed_a + t * wmed_b;
        prop_assert!((wmed_mix - expect).abs() < 1e-12,
            "mix {wmed_mix} vs convex {expect}");
    }

    #[test]
    fn netlist_evaluator_agrees_with_tables(trunc in 0u32..8) {
        let nl = apx_arith::truncated_multiplier(4, trunc);
        let pmf = Pmf::half_normal(4, 3.0);
        let eval = MultEvaluator::new(4, false, &pmf).unwrap();
        let approx = OpTable::from_netlist(&nl, 4, false).unwrap();
        let exact = OpTable::exact_mul(4, false);
        let expect = table_stats(&approx, &exact, &pmf);
        let got = eval.stats(&nl);
        prop_assert!((got.wmed - expect.wmed).abs() < 1e-12);
        prop_assert!((got.wce - expect.wce).abs() < 1e-12);
        prop_assert!((got.mred - expect.mred).abs() < 1e-9);
    }

    #[test]
    fn bounded_evaluation_never_lies(trunc in 1u32..8, limit_scale in 0.1f64..3.0) {
        let nl = apx_arith::truncated_multiplier(4, trunc);
        let eval = MultEvaluator::new(4, false, &Pmf::uniform(4)).unwrap();
        let truth = eval.wmed(&nl);
        let limit = truth * limit_scale;
        match eval.wmed_bounded(&nl, limit) {
            Some(v) => {
                prop_assert!((v - truth).abs() < 1e-12);
                prop_assert!(truth <= limit + 1e-15);
            }
            None => prop_assert!(truth > limit),
        }
    }
}
