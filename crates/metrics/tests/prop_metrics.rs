//! Property-based tests on error-metric invariants.

use apx_arith::OpTable;
use apx_dist::Pmf;
use apx_gates::{GateKind, Netlist, Node, SignalId};
use apx_metrics::{table_stats, CircuitEvaluator, ErrorStats, EvalBackend};
use apx_rng::Xoshiro256;
use proptest::prelude::*;

/// Random multiplier-arity netlist. Operands always point strictly
/// earlier, so validation passes by construction; any node the outputs
/// never reach is dead — the same inactive genetic material CGP's neutral
/// drift accumulates, which the evaluators must tolerate.
fn random_netlist(width: u32, gates: usize, seed: u64) -> Netlist {
    let mut rng = Xoshiro256::from_seed(seed);
    let ni = 2 * width as usize;
    let mut nodes = Vec::with_capacity(gates);
    for k in 0..gates {
        nodes.push(random_node(ni + k, &mut rng));
    }
    let total = ni + gates;
    let outputs = (0..ni).map(|_| SignalId(rng.gen_range(total) as u32)).collect();
    Netlist::new(ni, nodes, outputs).expect("operands always precede consumers")
}

/// Random node whose operands are drawn from the `sigs` earlier signals.
fn random_node(sigs: usize, rng: &mut Xoshiro256) -> Node {
    Node {
        kind: GateKind::ALL[rng.gen_range(GateKind::ALL.len())],
        a: SignalId(rng.gen_range(sigs) as u32),
        b: SignalId(rng.gen_range(sigs) as u32),
    }
}

/// Asserts two [`ErrorStats`] are equal down to the last mantissa bit.
fn assert_stats_identical(a: &ErrorStats, b: &ErrorStats) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.med.to_bits(), b.med.to_bits());
    prop_assert_eq!(a.wmed.to_bits(), b.wmed.to_bits());
    prop_assert_eq!(a.wce.to_bits(), b.wce.to_bits());
    prop_assert_eq!(a.error_rate.to_bits(), b.error_rate.to_bits());
    prop_assert_eq!(a.mred.to_bits(), b.mred.to_bits());
    prop_assert_eq!(a.max_abs_error, b.max_abs_error);
    Ok(())
}

/// Random approximate 4-bit multiplier: exact product XOR a bounded
/// perturbation selected by the proptest input.
fn perturbed_table(mask: u8, salt: u64) -> OpTable {
    OpTable::from_fn(4, false, |a, b| {
        let exact = a * b;
        // Deterministic pseudo-random perturbation per entry.
        let h = (a as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((b as u64).wrapping_mul(0xBF58476D1CE4E5B9))
            .wrapping_add(salt);
        exact ^ ((h as i64) & (mask as i64))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wmed_is_bounded_by_wce(mask in 0u8..32, salt in any::<u64>(),
                              weights in proptest::collection::vec(0.0f64..5.0, 16)) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let pmf = Pmf::from_weights(4, weights).unwrap();
        let approx = perturbed_table(mask, salt);
        let exact = OpTable::exact_mul(4, false);
        let s = table_stats(&approx, &exact, &pmf);
        prop_assert!(s.wmed <= s.wce + 1e-12);
        prop_assert!(s.med <= s.wce + 1e-12);
        prop_assert!(s.wmed >= 0.0 && s.med >= 0.0);
        prop_assert!((0.0..=1.0).contains(&s.error_rate));
    }

    #[test]
    fn zero_error_rate_iff_exact(mask in 0u8..16, salt in any::<u64>()) {
        let approx = perturbed_table(mask, salt);
        let exact = OpTable::exact_mul(4, false);
        let s = table_stats(&approx, &exact, &Pmf::uniform(4));
        prop_assert_eq!(s.error_rate == 0.0, s.max_abs_error == 0);
        prop_assert_eq!(s.med == 0.0, s.max_abs_error == 0);
    }

    #[test]
    fn wmed_is_linear_in_the_distribution(
        mask in 1u8..32,
        salt in any::<u64>(),
        wa in proptest::collection::vec(0.1f64..5.0, 16),
        wb in proptest::collection::vec(0.1f64..5.0, 16),
        t in 0.0f64..=1.0,
    ) {
        // WMED = Σ_x D(x)·row(x) is linear in D, so mixing distributions
        // mixes WMEDs.
        let a = Pmf::from_weights(4, wa).unwrap();
        let b = Pmf::from_weights(4, wb).unwrap();
        let approx = perturbed_table(mask, salt);
        let exact = OpTable::exact_mul(4, false);
        let wmed_a = table_stats(&approx, &exact, &a).wmed;
        let wmed_b = table_stats(&approx, &exact, &b).wmed;
        let wmed_mix = table_stats(&approx, &exact, &a.mix(&b, t)).wmed;
        let expect = (1.0 - t) * wmed_a + t * wmed_b;
        prop_assert!((wmed_mix - expect).abs() < 1e-12,
            "mix {wmed_mix} vs convex {expect}");
    }

    #[test]
    fn netlist_evaluator_agrees_with_tables(trunc in 0u32..8) {
        let nl = apx_arith::truncated_multiplier(4, trunc);
        let pmf = Pmf::half_normal(4, 3.0);
        let eval = CircuitEvaluator::new(4, false, &pmf).unwrap();
        let approx = OpTable::from_netlist(&nl, 4, false).unwrap();
        let exact = OpTable::exact_mul(4, false);
        let expect = table_stats(&approx, &exact, &pmf);
        let got = eval.stats(&nl);
        prop_assert!((got.wmed - expect.wmed).abs() < 1e-12);
        prop_assert!((got.wce - expect.wce).abs() < 1e-12);
        prop_assert!((got.mred - expect.mred).abs() < 1e-9);
    }

    #[test]
    fn bounded_evaluation_never_lies(trunc in 1u32..8, limit_scale in 0.1f64..3.0) {
        let nl = apx_arith::truncated_multiplier(4, trunc);
        let eval = CircuitEvaluator::new(4, false, &Pmf::uniform(4)).unwrap();
        let truth = eval.wmed(&nl);
        let limit = truth * limit_scale;
        match eval.wmed_bounded(&nl, limit) {
            Some(v) => {
                prop_assert!((v - truth).abs() < 1e-12);
                prop_assert!(truth <= limit + 1e-15);
            }
            None => prop_assert!(truth > limit),
        }
    }

    /// The backend seam's core contract: on any netlist — dead nodes,
    /// constant outputs, garbage logic included — the scalar reference and
    /// the bit-parallel engine produce identical `ErrorStats` down to the
    /// last bit, and identical bounded verdicts.
    #[test]
    fn scalar_and_bitpar_stats_bit_identical(
        width in 2u32..=6,
        signed in any::<bool>(),
        gates in 1usize..48,
        seed in any::<u64>(),
        limit_scale in 0.0f64..2.0,
    ) {
        let nl = random_netlist(width, gates, seed);
        let pmf = Pmf::half_normal(width, f64::from(1u32 << (width - 1)));
        let fast =
            CircuitEvaluator::with_backend(width, signed, &pmf, EvalBackend::BitParallel).unwrap();
        let slow = CircuitEvaluator::with_backend(width, signed, &pmf, EvalBackend::Scalar).unwrap();
        assert_stats_identical(&fast.stats(&nl), &slow.stats(&nl))?;
        // Bounded verdicts (feasible value and abort decision alike).
        let limit = limit_scale * fast.stats(&nl).wmed;
        prop_assert_eq!(
            fast.wmed_bounded(&nl, limit).map(f64::to_bits),
            slow.wmed_bounded(&nl, limit).map(f64::to_bits)
        );
    }

    /// The incremental protocol's core contract: a delta evaluation against
    /// a cached parent state — through arbitrary chains of single-node
    /// mutations and commits — returns exactly what a from-scratch bounded
    /// evaluation of the child returns, abort decision included.
    #[test]
    fn delta_matches_full_over_mutation_chains(
        trunc in 0u32..8,
        signed in any::<bool>(),
        seed in any::<u64>(),
        limit_scale in 0.0f64..2.0,
    ) {
        let w = 6u32;
        let ni = 2 * w as usize;
        let pmf = Pmf::half_normal(w, 16.0);
        let eval =
            CircuitEvaluator::with_backend(w, signed, &pmf, EvalBackend::BitParallel).unwrap();
        let mut base = apx_arith::truncated_multiplier(w, trunc);
        let mut state = eval.new_state(&base);
        let mut rng = Xoshiro256::from_seed(seed);
        let limit = limit_scale * (eval.wmed(&base) + 1e-4);
        for _ in 0..12 {
            let k = rng.gen_range(base.gate_count());
            let mut nodes = base.nodes().to_vec();
            nodes[k] = random_node(ni + k, &mut rng);
            let child = Netlist::new(ni, nodes, base.outputs().to_vec()).unwrap();
            // A superset changed list (extra indices whose definition is
            // unchanged) must be harmless — equality pruning absorbs them.
            let mut changed = vec![k as u32];
            if rng.bernoulli(0.3) {
                changed.push(rng.gen_range(base.gate_count()) as u32);
            }
            let got = eval.wmed_bounded_delta(&mut state, &child, &changed, limit);
            let want = eval.wmed_bounded(&child, limit);
            prop_assert_eq!(got.map(f64::to_bits), want.map(f64::to_bits));
            if rng.bernoulli(0.5) {
                eval.commit_state(&mut state, &child, &changed);
                base = child;
            }
        }
    }
}
