//! Property-based tests on the operator-generic evaluator: adder and MAC
//! scoring checked against independent functional golden models
//! ([`apx_arith::adders_approx::loa_model`],
//! [`apx_arith::adders_approx::truncated_adder_model`],
//! [`apx_arith::mac::mac_model`]), on both evaluation backends.

use apx_arith::adders_approx::{loa_model, truncated_adder_model};
use apx_arith::mac::{mac_model, mac_unit};
use apx_arith::{
    baugh_wooley_broken, lower_or_adder, sign_extend, truncated_adder, truncated_multiplier,
    OpTable, Operator,
};
use apx_dist::Pmf;
use apx_gates::{GateKind, Netlist, Node, SignalId};
use apx_metrics::{CircuitEvaluator, ErrorStats, EvalBackend};
use apx_rng::Xoshiro256;
use proptest::prelude::*;

/// Random netlist of arbitrary arity (cf. `prop_metrics::random_netlist`,
/// which is fixed to multiplier arity). Operands always point strictly
/// earlier, so validation passes by construction; unreachable nodes are
/// the inactive genetic material the evaluators must tolerate.
fn random_netlist(ni: usize, no: usize, gates: usize, seed: u64) -> Netlist {
    let mut rng = Xoshiro256::from_seed(seed);
    let mut nodes = Vec::with_capacity(gates);
    for k in 0..gates {
        nodes.push(random_node(ni + k, &mut rng));
    }
    let total = ni + gates;
    let outputs = (0..no).map(|_| SignalId(rng.gen_range(total) as u32)).collect();
    Netlist::new(ni, nodes, outputs).expect("operands always precede consumers")
}

/// Random node whose operands are drawn from the `sigs` earlier signals.
fn random_node(sigs: usize, rng: &mut Xoshiro256) -> Node {
    Node {
        kind: GateKind::ALL[rng.gen_range(GateKind::ALL.len())],
        a: SignalId(rng.gen_range(sigs) as u32),
        b: SignalId(rng.gen_range(sigs) as u32),
    }
}

/// Asserts two [`ErrorStats`] are equal down to the last mantissa bit.
fn assert_stats_identical(a: &ErrorStats, b: &ErrorStats) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.med.to_bits(), b.med.to_bits());
    prop_assert_eq!(a.wmed.to_bits(), b.wmed.to_bits());
    prop_assert_eq!(a.wce.to_bits(), b.wce.to_bits());
    prop_assert_eq!(a.error_rate.to_bits(), b.error_rate.to_bits());
    prop_assert_eq!(a.mred.to_bits(), b.mred.to_bits());
    prop_assert_eq!(a.max_abs_error, b.max_abs_error);
    Ok(())
}

/// Evaluators for one operator instance on both backends.
fn both_backends(
    op: Operator,
    width: u32,
    signed: bool,
    pmf: &Pmf,
) -> (CircuitEvaluator, CircuitEvaluator) {
    let fast = CircuitEvaluator::for_operator_with_backend(
        op,
        width,
        signed,
        pmf,
        EvalBackend::BitParallel,
    )
    .unwrap();
    let slow =
        CircuitEvaluator::for_operator_with_backend(op, width, signed, pmf, EvalBackend::Scalar)
            .unwrap();
    (fast, slow)
}

/// Reference WMED of an unsigned `width`-bit adder given its functional
/// model, computed straight from the definition:
/// `Σ_a D(a) · Σ_b |(a+b) − model(a,b)| / (2^w · 2^(w+1))`.
fn adder_wmed(width: u32, pmf: &Pmf, model: impl Fn(u64, u64) -> u64) -> f64 {
    let n = 1u64 << width;
    let norm = f64::from(1u32 << width) * f64::from(1u32 << (width + 1));
    let mut wmed = 0.0;
    for a in 0..n {
        let mut row = 0u64;
        for b in 0..n {
            row += (a + b).abs_diff(model(a, b));
        }
        wmed += pmf.prob(a as usize) * row as f64;
    }
    wmed / norm
}

/// Reference WMED of a `width`-bit MAC built around the multiplier behind
/// `table`, brute-forced over the full `a × b × acc` grid via
/// [`mac_model`]. The exact reference is computed independently as the
/// wrap-around `acc + a·b` in `n = 2w + 1` accumulator bits.
fn mac_wmed(table: &OpTable, width: u32, signed: bool, pmf: &Pmf) -> f64 {
    let n = 2 * width + 1;
    let mask_n = (1u64 << n) - 1;
    let na = 1u64 << width;
    let interp = |raw: u64, bits: u32| if signed { sign_extend(raw, bits) } else { raw as i64 };
    // free = ni − w = (2w + n) − w = 3w + 1 enumeration bits besides `a`.
    let norm = (1u64 << (3 * width + 1)) as f64 * (1u64 << n) as f64;
    let mut wmed = 0.0;
    for a_raw in 0..na {
        let a = interp(a_raw, width);
        let mut row = 0u64;
        for b_raw in 0..na {
            let b = interp(b_raw, width);
            for acc_raw in 0..=mask_n {
                let acc = interp(acc_raw, n);
                let exact = interp(acc.wrapping_add(a * b) as u64 & mask_n, n);
                row += exact.abs_diff(mac_model(table, a, b, acc, n));
            }
        }
        wmed += pmf.prob(a_raw as usize) * row as f64;
    }
    wmed / norm
}

/// Every operator's exact seed circuit scores a perfect zero on both
/// backends, signed and unsigned — the invariant seeded evolution and the
/// library's `Family::Exact` entries stand on.
#[test]
fn exact_seeds_score_zero_on_both_backends() {
    for op in Operator::ALL {
        for signed in [false, true] {
            for width in 2..=4u32 {
                let pmf = Pmf::half_normal(width, f64::from(1u32 << (width - 1)));
                let seed = op.seed_circuit(width, signed);
                let (fast, slow) = both_backends(op, width, signed, &pmf);
                for (name, eval) in [("bitpar", &fast), ("scalar", &slow)] {
                    let s = eval.stats(&seed);
                    assert_eq!(s.max_abs_error, 0, "{op} w={width} signed={signed} {name}");
                    assert_eq!(s.wmed, 0.0, "{op} w={width} signed={signed} {name}");
                    assert_eq!(s.error_rate, 0.0, "{op} w={width} signed={signed} {name}");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The adder evaluator agrees with the LOA golden model on the full
    /// `k` ladder, both backends, to within float round-off.
    #[test]
    fn adder_evaluator_matches_the_loa_golden_model(
        width in 2u32..=6,
        k_sel in 0u32..16,
        scale in 0.5f64..4.0,
    ) {
        let k = k_sel % (width + 1);
        let pmf = Pmf::half_normal(width, scale * f64::from(width));
        let expect = adder_wmed(width, &pmf, |a, b| loa_model(width, k, a, b));
        let nl = lower_or_adder(width, k);
        let (fast, slow) = both_backends(Operator::Add, width, false, &pmf);
        let got = fast.wmed(&nl);
        prop_assert!((got - expect).abs() < 1e-12, "w={width} k={k}: {got} vs {expect}");
        prop_assert_eq!(got.to_bits(), slow.wmed(&nl).to_bits());
        assert_stats_identical(&fast.stats(&nl), &slow.stats(&nl))?;
    }

    /// Same contract for the truncated-adder golden model; `k == 0` must
    /// score an exact zero.
    #[test]
    fn adder_evaluator_matches_the_truncated_golden_model(
        width in 2u32..=6,
        k_sel in 0u32..16,
        scale in 0.5f64..4.0,
    ) {
        let k = k_sel % (width + 1);
        let pmf = Pmf::half_normal(width, scale * f64::from(width));
        let expect = adder_wmed(width, &pmf, |a, b| truncated_adder_model(k, a, b));
        let nl = truncated_adder(width, k);
        let (fast, slow) = both_backends(Operator::Add, width, false, &pmf);
        let got = fast.wmed(&nl);
        prop_assert!((got - expect).abs() < 1e-12, "w={width} k={k}: {got} vs {expect}");
        if k == 0 {
            prop_assert_eq!(got, 0.0);
        }
        prop_assert_eq!(got.to_bits(), slow.wmed(&nl).to_bits());
    }

    /// The MAC evaluator agrees with a brute-force [`mac_model`] sweep for
    /// an unsigned MAC built around a truncated multiplier.
    #[test]
    fn mac_evaluator_matches_the_golden_model(
        width in 2u32..=3,
        trunc_sel in 0u32..16,
        scale in 0.5f64..4.0,
    ) {
        let trunc = trunc_sel % (2 * width + 1);
        let n = Operator::Mac.acc_width(width);
        let pmf = Pmf::half_normal(width, scale * f64::from(width));
        let mul = truncated_multiplier(width, trunc);
        let table = OpTable::from_netlist(&mul, width, false).unwrap();
        let expect = mac_wmed(&table, width, false, &pmf);
        let mac = mac_unit(&mul, width, n, false);
        let (fast, slow) = both_backends(Operator::Mac, width, false, &pmf);
        let got = fast.wmed(&mac);
        prop_assert!((got - expect).abs() < 1e-12, "w={width} trunc={trunc}: {got} vs {expect}");
        prop_assert_eq!(got.to_bits(), slow.wmed(&mac).to_bits());
    }

    /// Signed variant: a broken-carry Baugh-Wooley multiplier inside the
    /// MAC, scored against the same brute-force model in two's complement.
    #[test]
    fn signed_mac_evaluator_matches_the_golden_model(
        width in 2u32..=3,
        hbl_sel in 0u32..8,
        vbl_sel in 0u32..8,
        scale in 0.5f64..4.0,
    ) {
        let hbl = hbl_sel % (width + 1);
        let vbl = vbl_sel % (2 * width + 1);
        let n = Operator::Mac.acc_width(width);
        let pmf = Pmf::half_normal(width, scale * f64::from(width));
        let mul = baugh_wooley_broken(width, hbl, vbl);
        let table = OpTable::from_netlist(&mul, width, true).unwrap();
        let expect = mac_wmed(&table, width, true, &pmf);
        let mac = mac_unit(&mul, width, n, true);
        let (fast, slow) = both_backends(Operator::Mac, width, true, &pmf);
        let got = fast.wmed(&mac);
        prop_assert!(
            (got - expect).abs() < 1e-12,
            "w={width} hbl={hbl} vbl={vbl}: {got} vs {expect}"
        );
        prop_assert_eq!(got.to_bits(), slow.wmed(&mac).to_bits());
    }

    /// The backend seam's contract extends to every operator arity: on
    /// arbitrary netlists — dead nodes, garbage logic included — scalar
    /// and bit-parallel stats are identical to the last bit, and so are
    /// bounded verdicts.
    #[test]
    fn operator_backends_bit_identical_on_random_netlists(
        op_sel in 0usize..3,
        w_sel in 0u32..8,
        signed in any::<bool>(),
        gates in 1usize..48,
        seed in any::<u64>(),
        limit_scale in 0.0f64..2.0,
    ) {
        let op = Operator::ALL[op_sel];
        // Mac instances carry the accumulator operand: keep ni <= 20.
        let width = if op == Operator::Mac { 2 + w_sel % 3 } else { 2 + w_sel % 5 };
        let nl = random_netlist(op.num_inputs(width), op.num_outputs(width), gates, seed);
        let pmf = Pmf::half_normal(width, f64::from(1u32 << (width - 1)));
        let (fast, slow) = both_backends(op, width, signed, &pmf);
        assert_stats_identical(&fast.stats(&nl), &slow.stats(&nl))?;
        let limit = limit_scale * fast.stats(&nl).wmed;
        prop_assert_eq!(
            fast.wmed_bounded(&nl, limit).map(f64::to_bits),
            slow.wmed_bounded(&nl, limit).map(f64::to_bits)
        );
    }
}
