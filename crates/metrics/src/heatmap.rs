//! Error heat maps (Fig. 4 of the paper).

use std::fmt;

/// Per-input-pair normalized absolute error of a two-operand circuit.
///
/// Row index is the raw encoding of the distribution operand `x`, column
/// index the raw encoding of the free operand `y`; values are
/// `|exact − approx| / 2^(2w)`. Produced by
/// [`crate::CircuitEvaluator::error_matrix`].
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorMatrix {
    width: u32,
    n: usize,
    data: Vec<f64>,
}

impl ErrorMatrix {
    /// Wraps raw data (row-major, `2^width × 2^width`).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != 4^width`.
    #[must_use]
    pub fn new(width: u32, data: Vec<f64>) -> Self {
        let n = 1usize << width;
        assert_eq!(data.len(), n * n, "error matrix must be 2^w x 2^w");
        ErrorMatrix { width, n, data }
    }

    /// Operand width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Domain size per axis (`2^width`).
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Normalized error at `(x_raw, y_raw)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn get(&self, x_raw: usize, y_raw: usize) -> f64 {
        self.data[x_raw * self.n + y_raw]
    }

    /// Mean normalized error over the whole matrix (equals the MED).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Largest normalized error (equals the normalized WCE).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }

    /// Mean error of one `x` row — how gently the circuit treats operand
    /// value `x` (the quantity the paper's heat maps visualize).
    ///
    /// # Panics
    ///
    /// Panics if `x_raw` is out of range.
    #[must_use]
    pub fn row_mean(&self, x_raw: usize) -> f64 {
        let row = &self.data[x_raw * self.n..(x_raw + 1) * self.n];
        row.iter().sum::<f64>() / self.n as f64
    }

    /// Downsamples to a `k × k` grid of cell means (for compact rendering).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or larger than the matrix.
    #[must_use]
    pub fn downsample(&self, k: usize) -> Vec<Vec<f64>> {
        assert!(k > 0 && k <= self.n, "downsample factor out of range");
        let cell = self.n / k;
        let mut grid = vec![vec![0.0f64; k]; k];
        for (gx, row) in grid.iter_mut().enumerate() {
            for (gy, out) in row.iter_mut().enumerate() {
                let mut sum = 0.0;
                for x in gx * cell..(gx + 1) * cell {
                    for y in gy * cell..(gy + 1) * cell {
                        sum += self.get(x, y);
                    }
                }
                *out = sum / (cell * cell) as f64;
            }
        }
        grid
    }

    /// Renders a `k × k` ASCII heat map (` .:-=+*#%@` ramp, row `x = 0` on
    /// top), normalized to the matrix maximum.
    #[must_use]
    pub fn to_ascii(&self, k: usize) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let grid = self.downsample(k);
        let max = grid.iter().flatten().copied().fold(0.0f64, f64::max).max(f64::MIN_POSITIVE);
        let mut s = String::with_capacity(k * (k + 1));
        for row in &grid {
            for &v in row {
                let idx = ((v / max) * (RAMP.len() - 1) as f64).round() as usize;
                s.push(RAMP[idx.min(RAMP.len() - 1)] as char);
            }
            s.push('\n');
        }
        s
    }
}

impl fmt::Display for ErrorMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_ascii(16.min(self.n)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_matrix() -> ErrorMatrix {
        // error grows with x.
        let n = 16;
        let mut data = vec![0.0; n * n];
        for x in 0..n {
            for y in 0..n {
                data[x * n + y] = x as f64 / n as f64;
            }
        }
        ErrorMatrix::new(4, data)
    }

    #[test]
    fn mean_and_max() {
        let m = gradient_matrix();
        assert!((m.mean() - 7.5 / 16.0).abs() < 1e-12);
        assert!((m.max() - 15.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn row_mean_tracks_rows() {
        let m = gradient_matrix();
        assert_eq!(m.row_mean(0), 0.0);
        assert!((m.row_mean(8) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn downsample_averages_cells() {
        let m = gradient_matrix();
        let g = m.downsample(4);
        assert_eq!(g.len(), 4);
        // first band covers x in 0..4 -> mean 1.5/16
        assert!((g[0][0] - 1.5 / 16.0).abs() < 1e-12);
        assert!((g[3][3] - 13.5 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn ascii_has_expected_shape() {
        let m = gradient_matrix();
        let art = m.to_ascii(4);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == 4));
        // Last row is the hottest -> '@'.
        assert!(lines[3].contains('@'));
        // Display uses the same ramp.
        assert!(!format!("{m}").is_empty());
    }

    #[test]
    #[should_panic(expected = "2^w x 2^w")]
    fn wrong_size_panics() {
        let _ = ErrorMatrix::new(4, vec![0.0; 10]);
    }
}
