//! The simulation engines behind [`crate::CircuitEvaluator`].
//!
//! Three evaluation strategies live here, all producing bit-identical
//! numbers (every per-block error sum is an exact `u64`, and callers share
//! one floating-point accumulation order):
//!
//! * **tile evaluation** — the netlist is walked node-major over a tile of
//!   [`TILE`] simulation blocks at once, so each gate dispatches once and
//!   then runs a tight, auto-vectorizable loop of word ops;
//! * a **bit-sliced error kernel** ([`abs_err_sum`]) — instead of unpacking
//!   64 lanes and subtracting per lane, the per-block `Σ|exact − got|` is
//!   computed directly on the output bit-planes with a ripple-borrow
//!   subtract and per-plane popcounts;
//! * **incremental re-evaluation** ([`WmedState`]) — a full grid of cached
//!   signal rows (every signal × every weighted block) lets a mutated
//!   netlist be re-scored by simulating only the fanout cone of the changed
//!   nodes, reading everything else from the cache.
//!
//! The scalar reference interpreter ([`ScalarSim`]) evaluates one operand
//! pair at a time and exists so property tests and the CI smoke run can
//! cross-check the fast paths against an independent implementation.

use apx_arith::{EvalBackend, Operator};
use apx_gates::{fanout_cone, unpack_lanes, BlockSim, Exhaustive, Netlist};
use apx_gates::{GateKind, SignalId};

use crate::symbolic::monolithic_planes;

/// Simulation blocks processed per tile in the bounded-WMED hot path.
///
/// Small enough that an early abort (most CGP offspring bust the error
/// budget within a few high-weight blocks) wastes little work, large enough
/// that the per-gate dispatch amortizes and the inner word loops vectorize.
pub(crate) const TILE: usize = 16;

/// Tiles the incremental path simulates tile-by-tile before switching to
/// node-major bulk simulation of the remaining positions.
///
/// Infeasible offspring overwhelmingly bust the error budget within the
/// first few (highest-weight) tiles, where per-tile simulation keeps the
/// wasted work small; offspring that survive this prefix almost always run
/// to completion, and for them one gate dispatch per node over the whole
/// remaining row is far cheaper than re-dispatching every node in every
/// tile.
const BULK_AFTER: usize = 4;

/// Upper bound on error-kernel planes: `2·width + 1` at the maximum
/// supported operand width of 10.
pub(crate) const MAX_PLANES: usize = 21;

/// All-zero tile, the source slice for zero-extension planes.
static ZERO_TILE: [u64; TILE] = [0; TILE];

/// Evaluates one gate over a row of simulation words.
///
/// `a`/`b`/`dst` have equal length; each element is one 64-lane block.
/// The gate function is matched once, outside the element loop.
#[inline]
fn eval_row(kind: GateKind, a: &[u64], b: &[u64], dst: &mut [u64]) {
    macro_rules! bin {
        ($f:expr) => {{
            let f: fn(u64, u64) -> u64 = $f;
            for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                *d = f(x, y);
            }
        }};
    }
    match kind {
        GateKind::Const0 => dst.fill(0),
        GateKind::Const1 => dst.fill(!0u64),
        GateKind::Buf => dst.copy_from_slice(a),
        GateKind::Not => {
            for (d, &x) in dst.iter_mut().zip(a) {
                *d = !x;
            }
        }
        GateKind::And => bin!(|x, y| x & y),
        GateKind::Nand => bin!(|x, y| !(x & y)),
        GateKind::Or => bin!(|x, y| x | y),
        GateKind::Nor => bin!(|x, y| !(x | y)),
        GateKind::Xor => bin!(|x, y| x ^ y),
        GateKind::Xnor => bin!(|x, y| !(x ^ y)),
        GateKind::AndNotB => bin!(|x, y| x & !y),
        GateKind::AndNotA => bin!(|x, y| !x & y),
        GateKind::OrNotB => bin!(|x, y| x | !y),
        GateKind::OrNotA => bin!(|x, y| !x | y),
    }
}

/// Evaluates one gate over a row in place, reporting whether any word
/// changed.
///
/// `dst` holds the old row on entry and the fresh one on return; the
/// change check folds into the same pass (one read-modify-write stream
/// instead of simulate-into-scratch + compare + copy), which is what the
/// commit path wants: a changed row gets rewritten anyway, so the early
/// exit a `!=` comparison offers buys nothing there.
#[inline]
fn eval_row_diff(kind: GateKind, a: &[u64], b: &[u64], dst: &mut [u64]) -> bool {
    macro_rules! unary {
        ($f:expr) => {{
            let f: fn(u64) -> u64 = $f;
            let mut diff = 0u64;
            for (d, &x) in dst.iter_mut().zip(a) {
                let v = f(x);
                diff |= v ^ *d;
                *d = v;
            }
            diff != 0
        }};
    }
    macro_rules! bin {
        ($f:expr) => {{
            let f: fn(u64, u64) -> u64 = $f;
            let mut diff = 0u64;
            for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                let v = f(x, y);
                diff |= v ^ *d;
                *d = v;
            }
            diff != 0
        }};
    }
    match kind {
        GateKind::Const0 => unary!(|_| 0),
        GateKind::Const1 => unary!(|_| !0u64),
        GateKind::Buf => unary!(|x| x),
        GateKind::Not => unary!(|x| !x),
        GateKind::And => bin!(|x, y| x & y),
        GateKind::Nand => bin!(|x, y| !(x & y)),
        GateKind::Or => bin!(|x, y| x | y),
        GateKind::Nor => bin!(|x, y| !(x | y)),
        GateKind::Xor => bin!(|x, y| x ^ y),
        GateKind::Xnor => bin!(|x, y| !(x ^ y)),
        GateKind::AndNotB => bin!(|x, y| x & !y),
        GateKind::AndNotA => bin!(|x, y| !x & y),
        GateKind::OrNotB => bin!(|x, y| x | !y),
        GateKind::OrNotA => bin!(|x, y| !x | y),
    }
}

/// Bit-sliced `Σ_lanes |exact − got|` over one 64-lane block.
///
/// `exact` and `got` hold `planes` bit-planes of the two `planes`-bit
/// two's-complement values (bit `l` of plane `k` is bit `k` of lane `l`).
/// The difference of a `2w`-bit product and a (sign-extended) `2w`-bit
/// circuit output always fits `2w + 1` two's-complement bits, so with
/// `planes = 2w + 1` the modular ripple-borrow subtraction below recovers
/// the true signed difference of every lane:
///
/// `Σ|d| = Σ_k 2^k·pc(d_k ⊕ s) + pc(s)`
///
/// where `s = d_{P−1}` is the per-lane sign mask and `pc` is popcount: a
/// non-negative lane contributes its value `Σ 2^k·d_k` unchanged, while a
/// negative lane's absolute value is its two's complement `¬U + 1`, i.e.
/// each plane bit flipped (`d_k ⊕ 1`) plus one — the `pc(s)` term.
#[inline]
pub(crate) fn abs_err_sum(exact: &[u64], got: &[u64], planes: usize) -> u64 {
    debug_assert!((1..=MAX_PLANES).contains(&planes));
    let mut d = [0u64; MAX_PLANES];
    let mut borrow = 0u64;
    for ((dk, &e), &g) in d.iter_mut().zip(&exact[..planes]).zip(&got[..planes]) {
        let x = e ^ g;
        *dk = x ^ borrow;
        borrow = (!e & g) | (!x & borrow);
    }
    let s = d[planes - 1];
    let mut sum = u64::from(s.count_ones());
    for (k, &dk) in d.iter().enumerate().take(planes) {
        sum += u64::from((dk ^ s).count_ones()) << k;
    }
    sum
}

/// Per-tile error terms with a compile-time plane count.
///
/// `got_tile` holds the tile's output bit-planes plane-major
/// (`got_tile[k · TILE + t]`, sign-extension plane included); `exact` is the
/// evaluator's block-major exact-product planes. Writes
/// `weight · Σ|exact − got|` for each column into `terms` — exactly the
/// `f64` the scalar-indexed path computes, just with the plane loops
/// unrolled and the gather branch-free.
#[inline]
fn tile_terms<const P: usize>(
    exact_planes: &[u64],
    got_tile: &[u64; MAX_PLANES * TILE],
    ordered_tile: &[(u32, f64)],
    terms: &mut [f64; TILE],
) {
    for (t, &(block, weight)) in ordered_tile.iter().enumerate() {
        let exact = &exact_planes[block as usize * P..][..P];
        let mut d = [0u64; P];
        let mut borrow = 0u64;
        for k in 0..P {
            let e = exact[k];
            let g = got_tile[k * TILE + t];
            let x = e ^ g;
            d[k] = x ^ borrow;
            borrow = (!e & g) | (!x & borrow);
        }
        let s = d[P - 1];
        let mut sum = u64::from(s.count_ones());
        for (k, &dk) in d.iter().enumerate() {
            sum += u64::from((dk ^ s).count_ones()) << k;
        }
        terms[t] = weight * sum as f64;
    }
}

/// Column-major variant of [`tile_terms`] for full tiles.
///
/// Processes the tile plane-by-plane with the 16 columns side by side, so
/// the 16 independent ripple-borrow chains pipeline (and auto-vectorize)
/// instead of serializing one column at a time. `exact_tile` is the
/// evaluator's tile-major exact-plane copy for this tile; `srcs[k]` is
/// plane `k`'s 16 output words, referenced straight from wherever they
/// live (cached rows, scratch, bulk grid) — the kernel reads every word
/// exactly once, so staging them into a contiguous buffer first would be
/// pure overhead. The arithmetic per column is identical to
/// [`tile_terms`], so every term is the same exact `f64`.
#[inline]
fn tile_terms_colmajor<const P: usize>(
    exact_tile: &[u64],
    srcs: &[&[u64]; MAX_PLANES],
    ordered_tile: &[(u32, f64)],
    terms: &mut [f64; TILE],
) {
    let mut d = [[0u64; TILE]; P];
    let mut borrow = [0u64; TILE];
    for k in 0..P {
        let e = &exact_tile[k * TILE..][..TILE];
        let g = &srcs[k][..TILE];
        let dk = &mut d[k];
        for t in 0..TILE {
            let x = e[t] ^ g[t];
            dk[t] = x ^ borrow[t];
            borrow[t] = (!e[t] & g[t]) | (!x & borrow[t]);
        }
    }
    let s = d[P - 1];
    let mut sum = [0u64; TILE];
    for t in 0..TILE {
        sum[t] = u64::from(s[t].count_ones());
    }
    for (k, dk) in d.iter().enumerate() {
        for t in 0..TILE {
            sum[t] += u64::from((dk[t] ^ s[t]).count_ones()) << k;
        }
    }
    for (t, &(_, weight)) in ordered_tile.iter().enumerate() {
        terms[t] = weight * sum[t] as f64;
    }
}

/// [`tile_terms_colmajor`] dispatched over the supported plane counts;
/// callers fall back to [`tile_terms_dyn`] for partial tail tiles and
/// unsupported counts.
fn tile_terms_colmajor_dyn(
    planes: usize,
    exact_tile: &[u64],
    srcs: &[&[u64]; MAX_PLANES],
    ordered_tile: &[(u32, f64)],
    terms: &mut [f64; TILE],
) -> bool {
    match planes {
        13 => tile_terms_colmajor::<13>(exact_tile, srcs, ordered_tile, terms),
        15 => tile_terms_colmajor::<15>(exact_tile, srcs, ordered_tile, terms),
        17 => tile_terms_colmajor::<17>(exact_tile, srcs, ordered_tile, terms),
        19 => tile_terms_colmajor::<19>(exact_tile, srcs, ordered_tile, terms),
        21 => tile_terms_colmajor::<21>(exact_tile, srcs, ordered_tile, terms),
        _ => return false,
    }
    true
}

/// [`tile_terms`] dispatched over the supported plane counts
/// (`2·width + 1` for widths 6–10); the generic fallback covers any other
/// count with identical arithmetic.
fn tile_terms_dyn(
    planes: usize,
    exact_planes: &[u64],
    got_tile: &[u64; MAX_PLANES * TILE],
    ordered_tile: &[(u32, f64)],
    terms: &mut [f64; TILE],
) {
    match planes {
        13 => tile_terms::<13>(exact_planes, got_tile, ordered_tile, terms),
        15 => tile_terms::<15>(exact_planes, got_tile, ordered_tile, terms),
        17 => tile_terms::<17>(exact_planes, got_tile, ordered_tile, terms),
        19 => tile_terms::<19>(exact_planes, got_tile, ordered_tile, terms),
        21 => tile_terms::<21>(exact_planes, got_tile, ordered_tile, terms),
        _ => {
            for (t, &(block, weight)) in ordered_tile.iter().enumerate() {
                let exact = &exact_planes[block as usize * planes..][..planes];
                let mut got = [0u64; MAX_PLANES];
                for k in 0..planes {
                    got[k] = got_tile[k * TILE + t];
                }
                terms[t] = weight * abs_err_sum(exact, &got, planes) as f64;
            }
        }
    }
}

/// Shared shape/lookup context for the width ≥ 6 engine paths.
///
/// Borrowed from the evaluator's fields for the duration of one call; keeps
/// the engine functions at a sane arity.
pub(crate) struct EngineCtx<'a> {
    /// The arithmetic operator whose reference function errors are
    /// measured against.
    pub op: Operator,
    /// Operand width in bits.
    pub width: u32,
    /// Two's-complement interpretation of operands and outputs.
    pub signed: bool,
    /// Netlist output bits (`op.num_outputs(width)`).
    pub out_bits: u32,
    /// `(block, weight)` in decreasing weight order, zero weights removed.
    pub ordered: &'a [(u32, f64)],
    /// `exact_planes[block·planes + k]`: bit-plane `k` of the exact
    /// outputs of `block`'s 64 lanes.
    pub exact_planes: &'a [u64],
    /// Tile-major exact planes in weighted-position order
    /// (`exact_tiles[(tile·planes + k)·TILE + t]`).
    pub exact_tiles: &'a [u64],
    /// `input_rows[i·n_pos + pos]`: input `i`'s word at block position
    /// `pos` (position-ordered, like the cached state rows).
    pub input_rows: &'a [u64],
    /// Error-kernel planes: `out_bits + 1`.
    pub planes: usize,
}

impl EngineCtx<'_> {
    /// Gathers the `planes` output bit-planes of tile column `t` into `got`.
    #[inline]
    fn gather_got(
        &self,
        got: &mut [u64; MAX_PLANES],
        read: impl Fn(usize) -> u64,
        outs: &[SignalId],
    ) {
        for (g, o) in got.iter_mut().zip(outs) {
            *g = read(o.index());
        }
        // Sign-extension plane: one bit above a signed output replicates
        // its top bit; unsigned outputs are zero-extended.
        got[self.planes - 1] = if self.signed { got[self.planes - 2] } else { 0 };
    }

    /// Builds the per-plane source-slice table for a dense tile: plane `j`
    /// is output `j`'s words wherever they currently live (`src` maps a
    /// signal index to its slice for this tile), and the sign-extension
    /// plane replicates the top output plane when signed (zero-extension
    /// otherwise — [`ZERO_TILE`]).
    #[inline]
    fn dense_srcs<'b>(
        &self,
        outs: &[SignalId],
        src: impl Fn(usize) -> &'b [u64],
    ) -> [&'b [u64]; MAX_PLANES] {
        let mut srcs: [&[u64]; MAX_PLANES] = [&ZERO_TILE; MAX_PLANES];
        for (s, o) in srcs.iter_mut().zip(outs) {
            *s = src(o.index());
        }
        srcs[self.planes - 1] = if self.signed { srcs[self.planes - 2] } else { &ZERO_TILE };
        srcs
    }

    /// Error terms for a dense tile at `pos`: the column-major kernel for
    /// full tiles, the column-at-a-time fallback for the tail.
    #[inline]
    fn dense_tile_terms(
        &self,
        pos: usize,
        tcount: usize,
        srcs: &[&[u64]; MAX_PLANES],
        terms: &mut [f64; TILE],
    ) {
        if tcount == TILE {
            let exact_tile =
                &self.exact_tiles[(pos / TILE) * self.planes * TILE..][..self.planes * TILE];
            if tile_terms_colmajor_dyn(
                self.planes,
                exact_tile,
                srcs,
                &self.ordered[pos..pos + TILE],
                terms,
            ) {
                return;
            }
        }
        // Tail tiles and unsupported plane counts: stage into a plane-major
        // buffer for the column-at-a-time fallback.
        let mut got_tile = [0u64; MAX_PLANES * TILE];
        for k in 0..self.planes {
            got_tile[k * TILE..][..tcount].copy_from_slice(&srcs[k][..tcount]);
        }
        tile_terms_dyn(
            self.planes,
            self.exact_planes,
            &got_tile,
            &self.ordered[pos..pos + tcount],
            terms,
        );
    }

    /// Bit-parallel bounded WMED: raw weighted error over `ordered`, or
    /// `None` once the running total exceeds `raw_limit`.
    pub(crate) fn wmed_raw_bitpar(&self, nl: &Netlist, raw_limit: f64) -> Option<f64> {
        let ni = nl.num_inputs();
        let outs = nl.outputs();
        let mut vals = vec![0u64; nl.num_signals() * TILE];
        let mut terms = [0.0f64; TILE];
        let mut total = 0.0f64;
        let mut pos = 0;
        let n_pos = self.ordered.len();
        while pos < n_pos {
            let tcount = TILE.min(n_pos - pos);
            for i in 0..ni {
                vals[i * TILE..][..tcount]
                    .copy_from_slice(&self.input_rows[i * n_pos + pos..][..tcount]);
            }
            for (k, node) in nl.nodes().iter().enumerate() {
                let (pre, rest) = vals.split_at_mut((ni + k) * TILE);
                let a = &pre[node.a.index() * TILE..][..TILE];
                let b = &pre[node.b.index() * TILE..][..TILE];
                eval_row(node.kind, a, b, &mut rest[..TILE]);
            }
            let srcs = self.dense_srcs(outs, |sig| &vals[sig * TILE..][..tcount]);
            self.dense_tile_terms(pos, tcount, &srcs, &mut terms);
            for &term in &terms[..tcount] {
                total += term;
                if total > raw_limit {
                    return None;
                }
            }
            pos += tcount;
        }
        Some(total)
    }

    /// Scalar reference bounded WMED: same block order, same accumulation,
    /// one operand vector at a time.
    pub(crate) fn wmed_raw_scalar(&self, nl: &Netlist, raw_limit: f64) -> Option<f64> {
        let mut sim = ScalarSim::default();
        let mut total = 0.0f64;
        for &(block, weight) in self.ordered {
            let mut err = 0u64;
            for lane in 0..64u64 {
                let v = u64::from(block) * 64 + lane;
                let exact = self.op.exact_value(self.width, self.signed, v);
                let got = interpret(self.signed, sim.run_packed(nl, self.width, v), self.out_bits);
                err += (exact - got).unsigned_abs();
            }
            total += weight * err as f64;
            if total > raw_limit {
                return None;
            }
        }
        Some(total)
    }

    /// Builds the cached full-grid state for `base` (every signal row over
    /// every weighted block position, plus the per-block error terms).
    pub(crate) fn new_state(&self, base: &Netlist) -> WmedState {
        let n_pos = self.ordered.len();
        let num_signals = base.num_signals();
        let ni = base.num_inputs();
        let mut rows = vec![0u64; num_signals * n_pos];
        rows[..ni * n_pos].copy_from_slice(&self.input_rows[..ni * n_pos]);
        let mut state = WmedState {
            rows,
            n_pos,
            num_signals,
            ni,
            gate_count: base.gate_count(),
            scratch: vec![0u64; num_signals * TILE],
            bulk: vec![0u64; num_signals * n_pos],
            dirty: vec![false; num_signals],
            needed: vec![false; num_signals],
            def_changed: vec![false; base.gate_count()],
            touched: Vec::new(),
            block_err: vec![0.0; n_pos],
            // Sentinel no real output list matches, so the first commit
            // always computes the error terms.
            out_sigs: vec![u32::MAX],
        };
        // Simulate every node over its full row; operands always precede
        // their consumer, so in-place forward order is safe.
        let all: Vec<u32> = (0..base.gate_count() as u32).collect();
        self.commit(&mut state, base, &all);
        state
    }

    /// Recomputes every cached per-block error term from the (current)
    /// cached rows under output list `outs`, and records that list.
    fn refresh_block_err(&self, state: &mut WmedState, outs: &[SignalId]) {
        let n_pos = state.n_pos;
        let mut terms = [0.0f64; TILE];
        let mut pos = 0;
        while pos < n_pos {
            let tcount = TILE.min(n_pos - pos);
            let srcs = self.dense_srcs(outs, |sig| &state.rows[sig * n_pos + pos..][..tcount]);
            self.dense_tile_terms(pos, tcount, &srcs, &mut terms);
            state.block_err[pos..pos + tcount].copy_from_slice(&terms[..tcount]);
            pos += tcount;
        }
        state.out_sigs.clear();
        state.out_sigs.extend(outs.iter().map(|o| o.index() as u32));
    }

    /// Bounded WMED of `child` against the cached state of its parent.
    ///
    /// `changed` lists the nodes whose definition differs from the state's
    /// base netlist (an empty list re-scores the base itself from cache).
    /// Only the needed part of the changed nodes' fanout cone is simulated,
    /// into scratch rows; the cached rows are left untouched, so the state
    /// still describes the base afterwards.
    ///
    /// The walk is hybrid: the first [`BULK_AFTER`] (highest-weight) tiles
    /// are simulated tile-by-tile so an early abort wastes little work,
    /// then the survivors switch to one node-major pass over all remaining
    /// positions (one gate dispatch per node instead of one per node per
    /// tile) before accumulating the remaining tiles in order.
    ///
    /// Two prunings keep near-neutral offspring cheap without perturbing a
    /// single bit of the result:
    ///
    /// * **equality pruning** — a re-simulated row that matches the cached
    ///   base row stops the dirtiness propagation (readers use the cached
    ///   copy of the identical value);
    /// * **cached error terms** — a tile whose outputs are all clean (and
    ///   whose output list matches the base's) skips the gather/kernel work
    ///   and accumulates the stored `weight · err` terms, which are the
    ///   exact `f64` values the full path would recompute.
    pub(crate) fn wmed_raw_delta(
        &self,
        state: &mut WmedState,
        child: &Netlist,
        changed: &[u32],
        raw_limit: f64,
    ) -> Option<f64> {
        state.check_shape(child);
        let ni = state.ni;
        let n_pos = state.n_pos;
        let cone = fanout_cone(child, changed);
        state.def_changed.fill(false);
        for &k in changed {
            state.def_changed[k as usize] = true;
        }
        state.needed.fill(false);
        for o in child.outputs() {
            state.needed[o.index()] = true;
        }
        for (k, node) in child.nodes().iter().enumerate().rev() {
            if !state.needed[ni + k] {
                continue;
            }
            match node.kind.arity() {
                0 => {}
                1 => state.needed[node.a.index()] = true,
                _ => {
                    state.needed[node.a.index()] = true;
                    state.needed[node.b.index()] = true;
                }
            }
        }
        let sim_nodes: Vec<u32> =
            cone.iter().copied().filter(|&k| state.needed[ni + k as usize]).collect();
        let outs = child.outputs();
        let terms_valid = outs.len() == state.out_sigs.len()
            && outs.iter().zip(&state.out_sigs).all(|(o, &s)| o.index() as u32 == s);
        state.dirty.fill(false);
        state.touched.clear();
        let mut got = [0u64; MAX_PLANES];
        let mut terms = [0.0f64; TILE];
        let mut total = 0.0f64;
        let mut pos = 0;
        let bulk_start = (BULK_AFTER * TILE).min(n_pos);
        while pos < bulk_start {
            let tcount = TILE.min(bulk_start - pos);
            for &k in &sim_nodes {
                let k = k as usize;
                let node = &child.nodes()[k];
                let (a_sig, b_sig) = (node.a.index(), node.b.index());
                // Only re-simulate where the child can actually differ in
                // this tile: a changed definition or a dirty operand.
                if !(state.def_changed[k] || state.dirty[a_sig] || state.dirty[b_sig]) {
                    continue;
                }
                let (pre, rest) = state.scratch.split_at_mut((ni + k) * TILE);
                // A dirty operand's fresh row is in scratch (it is earlier
                // in `sim_nodes`, so already computed); clean operands read
                // the cached base rows.
                let a = if state.dirty[a_sig] {
                    &pre[a_sig * TILE..][..tcount]
                } else {
                    &state.rows[a_sig * n_pos + pos..][..tcount]
                };
                let b = if state.dirty[b_sig] {
                    &pre[b_sig * TILE..][..tcount]
                } else {
                    &state.rows[b_sig * n_pos + pos..][..tcount]
                };
                eval_row(node.kind, a, b, &mut rest[..tcount]);
                // Equality pruning: a row identical to the cached one need
                // not (must not, for speed) propagate dirtiness.
                if rest[..tcount] != state.rows[(ni + k) * n_pos + pos..][..tcount] {
                    state.dirty[ni + k] = true;
                    state.touched.push((ni + k) as u32);
                }
            }
            // Columns whose outputs are all bit-identical to the base can
            // accumulate the cached term (the same `f64` the kernel would
            // recompute); only genuinely differing columns pay for the
            // gather + error kernel.
            let mut col_diff: u32 = if terms_valid { 0 } else { !0 };
            if terms_valid {
                for o in outs {
                    let sig = o.index();
                    if state.dirty[sig] {
                        let fresh = &state.scratch[sig * TILE..][..tcount];
                        let cached = &state.rows[sig * n_pos + pos..][..tcount];
                        for t in 0..tcount {
                            col_diff |= u32::from(fresh[t] != cached[t]) << t;
                        }
                        // Past the sparse cutoff the exact mask no longer
                        // matters — the dense branch kernels every column.
                        if col_diff.count_ones() > 4 {
                            break;
                        }
                    }
                }
            }
            if col_diff == 0 {
                // Fully clean tile: cached terms only.
                for t in 0..tcount {
                    total += state.block_err[pos + t];
                    if total > raw_limit {
                        return None;
                    }
                }
            } else if col_diff.count_ones() <= 4 {
                // A few differing columns: kernel just those, cached terms
                // for the rest.
                for t in 0..tcount {
                    if col_diff & (1 << t) == 0 {
                        total += state.block_err[pos + t];
                    } else {
                        let (block, weight) = self.ordered[pos + t];
                        self.gather_got(
                            &mut got,
                            |sig| {
                                if state.dirty[sig] {
                                    state.scratch[sig * TILE + t]
                                } else {
                                    state.rows[sig * n_pos + pos + t]
                                }
                            },
                            outs,
                        );
                        let exact =
                            &self.exact_planes[block as usize * self.planes..][..self.planes];
                        let err = abs_err_sum(exact, &got, self.planes);
                        total += weight * err as f64;
                    }
                    if total > raw_limit {
                        return None;
                    }
                }
            } else {
                // Dense tile: unrolled kernel over in-place sources. Clean
                // columns recompute to exactly their cached term, so no
                // masking is needed.
                let srcs = self.dense_srcs(outs, |sig| {
                    if state.dirty[sig] {
                        &state.scratch[sig * TILE..][..tcount]
                    } else {
                        &state.rows[sig * n_pos + pos..][..tcount]
                    }
                });
                self.dense_tile_terms(pos, tcount, &srcs, &mut terms);
                for &term in &terms[..tcount] {
                    total += term;
                    if total > raw_limit {
                        return None;
                    }
                }
            }
            // Dirtiness is per tile; clear only what this tile set.
            for &s in &state.touched {
                state.dirty[s as usize] = false;
            }
            state.touched.clear();
            pos += tcount;
        }
        if pos == n_pos {
            return Some(total);
        }
        // Bulk phase: node-major passes over geometrically growing chunks
        // of the remaining positions. Fresh rows go into the bulk grid
        // (same `sig · n_pos + pos` indexing as the cached rows, valid only
        // where `dirty` is set); each chunk's tiles are then accumulated in
        // the same order with the same three branches, so every `f64` term
        // — and therefore the abort decision — is identical to the
        // tile-by-tile path's. Growing chunks keep the wasted simulation
        // small when a mid-grid abort does happen while letting survivors
        // amortize gate dispatch over long rows.
        let mut chunk_tiles = 2 * BULK_AFTER;
        while pos < n_pos {
            let chunk_start = pos;
            let chunk_end = (chunk_start + chunk_tiles * TILE).min(n_pos);
            let rest = chunk_end - chunk_start;
            for &k in &sim_nodes {
                let k = k as usize;
                let node = &child.nodes()[k];
                let (a_sig, b_sig) = (node.a.index(), node.b.index());
                if !(state.def_changed[k] || state.dirty[a_sig] || state.dirty[b_sig]) {
                    continue;
                }
                let (pre, tail) = state.bulk.split_at_mut((ni + k) * n_pos);
                let a = if state.dirty[a_sig] {
                    &pre[a_sig * n_pos + chunk_start..][..rest]
                } else {
                    &state.rows[a_sig * n_pos + chunk_start..][..rest]
                };
                let b = if state.dirty[b_sig] {
                    &pre[b_sig * n_pos + chunk_start..][..rest]
                } else {
                    &state.rows[b_sig * n_pos + chunk_start..][..rest]
                };
                eval_row(node.kind, a, b, &mut tail[chunk_start..chunk_end]);
                if !state.dirty[ni + k]
                    && tail[chunk_start..chunk_end]
                        != state.rows[(ni + k) * n_pos + chunk_start..][..rest]
                {
                    state.dirty[ni + k] = true;
                    state.touched.push((ni + k) as u32);
                }
            }
            while pos < chunk_end {
                let tcount = TILE.min(chunk_end - pos);
                let mut col_diff: u32 = if terms_valid { 0 } else { !0 };
                if terms_valid {
                    for o in outs {
                        let sig = o.index();
                        if state.dirty[sig] {
                            let fresh = &state.bulk[sig * n_pos + pos..][..tcount];
                            let cached = &state.rows[sig * n_pos + pos..][..tcount];
                            for t in 0..tcount {
                                col_diff |= u32::from(fresh[t] != cached[t]) << t;
                            }
                            if col_diff.count_ones() > 4 {
                                break;
                            }
                        }
                    }
                }
                if col_diff == 0 {
                    for t in 0..tcount {
                        total += state.block_err[pos + t];
                        if total > raw_limit {
                            return None;
                        }
                    }
                } else if col_diff.count_ones() <= 4 {
                    for t in 0..tcount {
                        if col_diff & (1 << t) == 0 {
                            total += state.block_err[pos + t];
                        } else {
                            let (block, weight) = self.ordered[pos + t];
                            self.gather_got(
                                &mut got,
                                |sig| {
                                    if state.dirty[sig] {
                                        state.bulk[sig * n_pos + pos + t]
                                    } else {
                                        state.rows[sig * n_pos + pos + t]
                                    }
                                },
                                outs,
                            );
                            let exact =
                                &self.exact_planes[block as usize * self.planes..][..self.planes];
                            let err = abs_err_sum(exact, &got, self.planes);
                            total += weight * err as f64;
                        }
                        if total > raw_limit {
                            return None;
                        }
                    }
                } else {
                    let srcs = self.dense_srcs(outs, |sig| {
                        if state.dirty[sig] {
                            &state.bulk[sig * n_pos + pos..][..tcount]
                        } else {
                            &state.rows[sig * n_pos + pos..][..tcount]
                        }
                    });
                    self.dense_tile_terms(pos, tcount, &srcs, &mut terms);
                    for &term in &terms[..tcount] {
                        total += term;
                        if total > raw_limit {
                            return None;
                        }
                    }
                }
                pos += tcount;
            }
            chunk_tiles *= 2;
        }
        for &s in &state.touched {
            state.dirty[s as usize] = false;
        }
        state.touched.clear();
        Some(total)
    }

    /// Rebases the state onto `child`: re-simulates the full fanout cone of
    /// `changed` (dead nodes included — a stale cached row for a currently
    /// dead node would poison a later delta that reactivates it) in place,
    /// with the same equality pruning as the delta path, and refreshes the
    /// cached per-block error terms when the outputs were affected.
    pub(crate) fn commit(&self, state: &mut WmedState, child: &Netlist, changed: &[u32]) {
        state.check_shape(child);
        let ni = state.ni;
        let n_pos = state.n_pos;
        state.def_changed.fill(false);
        for &k in changed {
            state.def_changed[k as usize] = true;
        }
        // `dirty` marks rows that actually changed; propagation stops at
        // rows that re-simulate to their cached value. The re-simulation is
        // one fused in-place pass per node (operand signals always precede
        // their consumer, so splitting the row grid at the node's own row
        // borrows both cleanly): the fresh value overwrites the cached row
        // while the xor against the old value detects a change, instead of
        // simulating into a scratch row, comparing, and copying back.
        state.dirty.fill(false);
        for &k in &fanout_cone(child, changed) {
            let k = k as usize;
            let node = &child.nodes()[k];
            if !(state.def_changed[k] || state.dirty[node.a.index()] || state.dirty[node.b.index()])
            {
                continue;
            }
            let (pre, tail) = state.rows.split_at_mut((ni + k) * n_pos);
            let a = &pre[node.a.index() * n_pos..][..n_pos];
            let b = &pre[node.b.index() * n_pos..][..n_pos];
            if eval_row_diff(node.kind, a, b, &mut tail[..n_pos]) {
                state.dirty[ni + k] = true;
            }
        }
        let outs = child.outputs();
        let terms_valid = outs.len() == state.out_sigs.len()
            && outs.iter().zip(&state.out_sigs).all(|(o, &s)| o.index() as u32 == s);
        if !terms_valid || outs.iter().any(|o| state.dirty[o.index()]) {
            self.refresh_block_err(state, outs);
        }
    }
}

#[inline]
fn interpret(signed: bool, raw: u64, bits: u32) -> i64 {
    if signed {
        apx_arith::sign_extend(raw, bits)
    } else {
        raw as i64
    }
}

/// Cached full-grid simulation state for incremental WMED re-evaluation.
///
/// Created by [`crate::CircuitEvaluator::new_state`] for a *base* netlist;
/// [`crate::CircuitEvaluator::wmed_bounded_delta`] scores single-mutation
/// children against it without touching the cache, and
/// [`crate::CircuitEvaluator::commit_state`] rebases it when a child is
/// promoted. The contract: the state always holds, for every signal of the
/// base netlist and every weighted block, the exact simulation word — so a
/// delta only ever recomputes the changed nodes' fanout cone.
pub struct WmedState {
    /// `rows[sig · n_pos + pos]`: signal `sig`'s word at weighted block
    /// position `pos` (positions index the evaluator's `ordered_blocks`).
    rows: Vec<u64>,
    n_pos: usize,
    num_signals: usize,
    ni: usize,
    gate_count: usize,
    /// Per-tile scratch rows for dirty signals (`scratch[sig · TILE + t]`).
    scratch: Vec<u64>,
    /// Full-row scratch grid for the delta path's bulk phase
    /// (`bulk[sig · n_pos + pos]`, valid only where `dirty` is set).
    bulk: Vec<u64>,
    dirty: Vec<bool>,
    needed: Vec<bool>,
    /// Per-node scratch flag: definition differs from the base.
    def_changed: Vec<bool>,
    /// Signals marked dirty in the current tile (for cheap clearing).
    touched: Vec<u32>,
    /// `weight · err` of the base at each block position — the exact `f64`
    /// terms the accumulation loop adds, so clean tiles skip the kernel.
    block_err: Vec<f64>,
    /// The output signal list `block_err` was computed under.
    out_sigs: Vec<u32>,
}

impl WmedState {
    fn check_shape(&self, nl: &Netlist) {
        assert_eq!(nl.num_inputs(), self.ni, "state/netlist input arity mismatch");
        assert_eq!(nl.gate_count(), self.gate_count, "state/netlist gate count mismatch");
        assert_eq!(nl.num_signals(), self.num_signals, "state/netlist signal count mismatch");
    }

    /// Approximate heap footprint in bytes (dominated by the cached rows).
    #[must_use]
    pub fn bytes(&self) -> usize {
        (self.rows.len() + self.bulk.len() + self.scratch.len() + self.block_err.len()) * 8
            + self.dirty.len()
            + self.needed.len()
            + self.def_changed.len()
    }
}

impl std::fmt::Debug for WmedState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WmedState")
            .field("num_signals", &self.num_signals)
            .field("n_pos", &self.n_pos)
            .field("bytes", &self.bytes())
            .finish()
    }
}

/// Scalar reference interpreter: evaluates one operand pair per call on a
/// reusable `bool` buffer.
#[derive(Debug, Default)]
pub(crate) struct ScalarSim {
    vals: Vec<bool>,
}

impl ScalarSim {
    /// Packed output of `nl` on enumeration vector `v` (netlist input
    /// `i < w` — the weighted operand — reads enumeration bit `free + i`
    /// where `free = ni − w`; every later input `i ≥ w` reads bit `i − w`
    /// — the same top/bottom operand split the bit-parallel path uses).
    pub(crate) fn run_packed(&mut self, nl: &Netlist, width: u32, v: u64) -> u64 {
        let w = width as usize;
        let ni = nl.num_inputs();
        let free = ni - w;
        self.vals.clear();
        self.vals.resize(nl.num_signals(), false);
        for i in 0..ni {
            let ebit = if i < w { free + i } else { i - w };
            self.vals[i] = (v >> ebit) & 1 == 1;
        }
        for (k, node) in nl.nodes().iter().enumerate() {
            let a = self.vals[node.a.index()];
            let b = self.vals[node.b.index()];
            self.vals[ni + k] = node.kind.eval_bool(a, b);
        }
        nl.outputs().iter().enumerate().map(|(j, o)| u64::from(self.vals[o.index()]) << j).sum()
    }
}

/// Backend-dispatched per-lane output reader for the exhaustive statistics
/// paths (`stats`, `error_matrix`, the small-width WMED loop).
///
/// Fills a lane buffer with the packed output value of every lane of a
/// block; all backends produce identical buffers, which is what makes the
/// statistics surfaces backend-agnostic bit for bit. The symbolic backend
/// contributes a monolithic-BDD lane oracle: the netlist is converted to
/// output BDDs over its raw inputs once, then each lane is a constant-time
/// descent — functionally just another interpreter here (these paths are
/// exhaustive by definition), but exercising the same gate-to-BDD
/// translation the wide-width engine relies on.
pub(crate) struct LaneReader {
    backend: EvalBackend,
    sim: BlockSim,
    scalar: ScalarSim,
    sym: Option<(apx_bdd::Bdd, Vec<apx_bdd::NodeId>)>,
    inputs: Vec<u64>,
}

impl LaneReader {
    pub(crate) fn new(backend: EvalBackend, nl: &Netlist) -> Self {
        LaneReader {
            backend,
            sim: BlockSim::new(nl),
            scalar: ScalarSim::default(),
            sym: (backend == EvalBackend::Symbolic).then(|| monolithic_planes(nl)),
            inputs: vec![0u64; nl.num_inputs()],
        }
    }

    /// Reads all lanes of `block` into `lane_buf[..lanes]`.
    pub(crate) fn read_block(
        &mut self,
        nl: &Netlist,
        ex: &Exhaustive,
        width: u32,
        block: usize,
        lane_buf: &mut [u64],
    ) {
        let w = width as usize;
        let ni = nl.num_inputs();
        let free = ni - w;
        let lanes = ex.lanes_per_block();
        match self.backend {
            EvalBackend::BitParallel => {
                for i in 0..ni {
                    let ebit = if i < w { free + i } else { i - w };
                    self.inputs[i] = ex.input_word(ebit, block);
                }
                let out_words = self.sim.run(nl, &self.inputs);
                unpack_lanes(out_words, lanes, lane_buf);
            }
            EvalBackend::Scalar => {
                for (lane, slot) in lane_buf.iter_mut().enumerate().take(lanes) {
                    let v = (block * 64 + lane) as u64;
                    *slot = self.scalar.run_packed(nl, width, v);
                }
            }
            EvalBackend::Symbolic => {
                let (bdd, planes) = self.sym.as_ref().expect("symbolic readers carry BDD planes");
                for (lane, slot) in lane_buf.iter_mut().enumerate().take(lanes) {
                    let v = (block * 64 + lane) as u64;
                    // Netlist input i reads the same enumeration bit the
                    // other backends assign it (see `ScalarSim::run_packed`).
                    let assign = |i: u32| {
                        let i = i as usize;
                        let ebit = if i < w { free + i } else { i - w };
                        (v >> ebit) & 1 == 1
                    };
                    *slot = planes
                        .iter()
                        .enumerate()
                        .map(|(j, &p)| u64::from(bdd.eval(p, assign)) << j)
                        .sum();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_err_sum_matches_per_lane_subtraction() {
        // Random P-bit two's-complement pairs whose difference fits P bits.
        let mut rng = apx_rng::Xoshiro256::from_seed(99);
        for planes in [5usize, 13, 17, MAX_PLANES] {
            let half = 1i64 << (planes - 1);
            let mut exact = [0u64; MAX_PLANES];
            let mut got = [0u64; MAX_PLANES];
            let mut expect = 0u64;
            for lane in 0..64u64 {
                // Pick e, g with |e - g| < 2^(P-1) so the difference fits.
                let e = rng.gen_range(half as usize) as i64 - half / 2;
                let g = e + (rng.gen_range(half as usize) as i64 - half / 2) / 2;
                expect += (e - g).unsigned_abs();
                for k in 0..planes {
                    exact[k] |= (((e as u64) >> k) & 1) << lane;
                    got[k] |= (((g as u64) >> k) & 1) << lane;
                }
            }
            assert_eq!(abs_err_sum(&exact, &got, planes), expect, "planes={planes}");
        }
    }

    #[test]
    fn eval_row_agrees_with_eval_words() {
        let a = [0x0123_4567_89AB_CDEFu64, !0, 0, 0xAAAA_5555_AAAA_5555];
        let b = [0xFEDC_BA98_7654_3210u64, 0, !0, 0x0F0F_F0F0_0F0F_F0F0];
        let mut dst = [0u64; 4];
        for kind in GateKind::ALL {
            eval_row(kind, &a, &b, &mut dst);
            for t in 0..4 {
                assert_eq!(dst[t], kind.eval_words(a[t], b[t]), "{kind} col {t}");
            }
        }
    }
}
