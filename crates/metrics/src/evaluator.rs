//! The CGP hot path: exhaustive WMED evaluation of multiplier netlists.

use crate::stats::ErrorStats;
use apx_arith::sign_extend;
use apx_dist::Pmf;
use apx_gates::{unpack_lanes, BlockSim, Exhaustive, Netlist};
use std::fmt;

/// Error constructing a [`MultEvaluator`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvaluatorError {
    /// Operand width outside the supported range `1..=10`.
    BadWidth(u32),
    /// The PMF is defined over a different operand width.
    PmfWidthMismatch {
        /// Evaluator operand width.
        width: u32,
        /// PMF width.
        pmf_width: u32,
    },
}

impl fmt::Display for EvaluatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvaluatorError::BadWidth(w) => write!(f, "operand width {w} outside 1..=10"),
            EvaluatorError::PmfWidthMismatch { width, pmf_width } => {
                write!(f, "pmf width {pmf_width} does not match operand width {width}")
            }
        }
    }
}

impl std::error::Error for EvaluatorError {}

/// Exhaustive error evaluator for `width`-bit multiplier netlists under a
/// data distribution `D` on the first operand.
///
/// Built once per (width, signedness, distribution) and reused for every
/// candidate circuit of a CGP run. The evaluator
///
/// * enumerates input vectors with the distribution operand in the **high**
///   bits, so for `width >= 6` each 64-lane simulation block has a single
///   `x` value and a single weight `D(x)`;
/// * pre-sorts blocks by decreasing weight and skips zero-weight blocks;
/// * offers [`MultEvaluator::wmed_bounded`], which abandons a candidate as
///   soon as its running weighted error exceeds the fitness threshold
///   (Eq. 1 only needs the comparison, not the exact value).
///
/// # Examples
///
/// ```
/// use apx_arith::{array_multiplier, truncated_multiplier};
/// use apx_dist::Pmf;
/// use apx_metrics::MultEvaluator;
///
/// let eval = MultEvaluator::new(8, false, &Pmf::half_normal(8, 48.0))?;
/// assert_eq!(eval.wmed(&array_multiplier(8)), 0.0);
/// assert!(eval.wmed(&truncated_multiplier(8, 8)) > 0.0);
/// # Ok::<(), apx_metrics::EvaluatorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultEvaluator {
    width: u32,
    signed: bool,
    weights: Vec<f64>,
    ex: Exhaustive,
    /// `(block index, weight of the block's x value)`, zero-weight blocks
    /// removed, sorted by decreasing weight. Empty for `width < 6` (the
    /// whole domain fits one block; weights are applied per lane instead).
    ordered_blocks: Vec<(u32, f64)>,
    /// Normalizer `1 / (2^w · 2^(2w))`.
    norm: f64,
}

impl MultEvaluator {
    /// Creates an evaluator for `width`-bit (optionally signed) multipliers
    /// weighted by `pmf` on the first operand.
    ///
    /// # Errors
    ///
    /// Returns [`EvaluatorError`] on unsupported widths or a PMF of the
    /// wrong width.
    pub fn new(width: u32, signed: bool, pmf: &Pmf) -> Result<Self, EvaluatorError> {
        if width == 0 || width > 10 {
            return Err(EvaluatorError::BadWidth(width));
        }
        if pmf.width() != width {
            return Err(EvaluatorError::PmfWidthMismatch { width, pmf_width: pmf.width() });
        }
        let ex = Exhaustive::new(2 * width as usize);
        let weights: Vec<f64> = pmf.iter().collect();
        let mut ordered_blocks = Vec::new();
        if width >= 6 {
            let blocks_per_x = 1u32 << (width - 6);
            for block in 0..ex.num_blocks() as u32 {
                let x_raw = (block / blocks_per_x) as usize;
                let w = weights[x_raw];
                if w > 0.0 {
                    ordered_blocks.push((block, w));
                }
            }
            ordered_blocks.sort_by(|a, b| b.1.total_cmp(&a.1));
        }
        let norm = 1.0 / ((1u64 << width) as f64 * (1u64 << (2 * width)) as f64);
        Ok(MultEvaluator { width, signed, weights, ex, ordered_blocks, norm })
    }

    /// Operand width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Whether operands/results are interpreted as two's complement.
    #[must_use]
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    fn check_arity(&self, netlist: &Netlist) {
        assert_eq!(
            netlist.num_inputs(),
            2 * self.width as usize,
            "multiplier must have 2*width inputs"
        );
        assert_eq!(
            netlist.num_outputs(),
            2 * self.width as usize,
            "multiplier must have 2*width outputs"
        );
    }

    /// Fills the simulation input words for `block`.
    ///
    /// Netlist inputs `0..w` (operand A = the distribution operand `x`) are
    /// driven by the *high* enumeration bits, inputs `w..2w` (operand B =
    /// `y`) by the low bits, so `x` is constant within a block when
    /// `width >= 6`.
    fn fill_inputs(&self, block: usize, inputs: &mut [u64]) {
        let w = self.width as usize;
        for i in 0..w {
            inputs[i] = self.ex.input_word(w + i, block);
            inputs[w + i] = self.ex.input_word(i, block);
        }
    }

    #[inline]
    fn interpret(&self, raw: u64, bits: u32) -> i64 {
        if self.signed {
            sign_extend(raw, bits)
        } else {
            raw as i64
        }
    }

    /// Sum of absolute errors over the 64 lanes of `block` (raw LSBs).
    fn block_abs_error(
        &self,
        netlist: &Netlist,
        sim: &mut BlockSim,
        inputs: &mut [u64],
        lane_buf: &mut [u64],
        block: usize,
    ) -> u64 {
        let w = self.width;
        let mask = (1u64 << w) - 1;
        self.fill_inputs(block, inputs);
        let out_words = sim.run(netlist, inputs);
        let lanes = self.ex.lanes_per_block();
        unpack_lanes(out_words, lanes, lane_buf);
        let base = (block * 64) as u64;
        let mut sum = 0u64;
        for (lane, &out_raw) in lane_buf.iter().enumerate().take(lanes) {
            let v = base + lane as u64;
            let x = self.interpret(v >> w, w);
            let y = self.interpret(v & mask, w);
            let got = self.interpret(out_raw, 2 * w);
            sum += (x * y - got).unsigned_abs();
        }
        sum
    }

    /// Exact WMED of `netlist` under the evaluator's distribution.
    ///
    /// # Panics
    ///
    /// Panics if the netlist does not have `2·width` inputs and outputs.
    #[must_use]
    pub fn wmed(&self, netlist: &Netlist) -> f64 {
        self.wmed_impl(netlist, f64::INFINITY).expect("unbounded evaluation always completes")
    }

    /// WMED with early abort: returns `None` as soon as the running
    /// weighted error proves the result exceeds `limit`.
    ///
    /// This is the fitness primitive of Eq. 1 — most offspring violate the
    /// error budget and are rejected after a handful of high-weight blocks.
    ///
    /// # Panics
    ///
    /// Panics if the netlist does not have `2·width` inputs and outputs.
    #[must_use]
    pub fn wmed_bounded(&self, netlist: &Netlist, limit: f64) -> Option<f64> {
        self.wmed_impl(netlist, limit)
    }

    fn wmed_impl(&self, netlist: &Netlist, limit: f64) -> Option<f64> {
        self.check_arity(netlist);
        let mut sim = BlockSim::new(netlist);
        let mut inputs = vec![0u64; 2 * self.width as usize];
        let mut lane_buf = vec![0u64; 64];
        let mut total = 0.0f64;
        // `limit` in normalized units -> raw weighted-error budget.
        let raw_limit = if limit.is_finite() { limit / self.norm } else { f64::INFINITY };
        if self.width >= 6 {
            for &(block, weight) in &self.ordered_blocks {
                let err = self.block_abs_error(
                    netlist,
                    &mut sim,
                    &mut inputs,
                    &mut lane_buf,
                    block as usize,
                );
                total += weight * err as f64;
                if total > raw_limit {
                    return None;
                }
            }
        } else {
            // Small domain: weights vary per lane inside the block(s).
            let w = self.width;
            let mask = (1u64 << w) - 1;
            let lanes = self.ex.lanes_per_block();
            for block in 0..self.ex.num_blocks() {
                self.fill_inputs(block, &mut inputs);
                let out_words = sim.run(netlist, &inputs);
                unpack_lanes(out_words, lanes, &mut lane_buf);
                let base = (block * 64) as u64;
                for (lane, &out_raw) in lane_buf.iter().enumerate().take(lanes) {
                    let v = base + lane as u64;
                    let x_raw = v >> w;
                    let weight = self.weights[x_raw as usize];
                    if weight == 0.0 {
                        continue;
                    }
                    let x = self.interpret(x_raw, w);
                    let y = self.interpret(v & mask, w);
                    let got = self.interpret(out_raw, 2 * w);
                    total += weight * (x * y - got).unsigned_abs() as f64;
                }
                if total > raw_limit {
                    return None;
                }
            }
        }
        // total = Σ_x D(x) Σ_y |err|; WMED = total / (2^w · 2^(2w)) = total·norm.
        Some(total * self.norm)
    }

    /// Full error statistics (one exhaustive pass, no skipping).
    ///
    /// # Panics
    ///
    /// Panics if the netlist does not have `2·width` inputs and outputs.
    #[must_use]
    pub fn stats(&self, netlist: &Netlist) -> ErrorStats {
        self.check_arity(netlist);
        let w = self.width;
        let mask = (1u64 << w) - 1;
        let range = (1u64 << (2 * w)) as f64;
        let mut sim = BlockSim::new(netlist);
        let mut inputs = vec![0u64; 2 * w as usize];
        let mut lane_buf = vec![0u64; 64];
        let lanes = self.ex.lanes_per_block();
        let mut sum_abs = 0.0f64;
        let mut sum_weighted = 0.0f64;
        let mut sum_rel = 0.0f64;
        let mut nonzero = 0u64;
        let mut max_abs = 0i64;
        for block in 0..self.ex.num_blocks() {
            self.fill_inputs(block, &mut inputs);
            let out_words = sim.run(netlist, &inputs);
            unpack_lanes(out_words, lanes, &mut lane_buf);
            let base = (block * 64) as u64;
            for (lane, &out_raw) in lane_buf.iter().enumerate().take(lanes) {
                let v = base + lane as u64;
                let x_raw = v >> w;
                let x = self.interpret(x_raw, w);
                let y = self.interpret(v & mask, w);
                let exact = x * y;
                let got = self.interpret(out_raw, 2 * w);
                let err = (exact - got).abs();
                if err != 0 {
                    nonzero += 1;
                }
                max_abs = max_abs.max(err);
                let err_f = err as f64;
                sum_abs += err_f;
                sum_weighted += self.weights[x_raw as usize] * err_f;
                sum_rel += err_f / (exact.abs().max(1) as f64);
            }
        }
        let total = self.ex.num_vectors() as f64;
        let n = (1u64 << w) as f64;
        ErrorStats {
            med: sum_abs / total / range,
            wmed: sum_weighted / n / range,
            wce: max_abs as f64 / range,
            error_rate: nonzero as f64 / total,
            mred: sum_rel / total,
            max_abs_error: max_abs,
        }
    }

    /// Batch re-scoring: full [`MultEvaluator::stats`] for every netlist,
    /// fanned out over an [`apx_pool`] worker pool.
    ///
    /// This is the component-library primitive: re-pricing a whole library
    /// of already-built multipliers under a *new* data distribution is one
    /// exhaustive pass per candidate and no evolution at all, so a sweep
    /// can consult hundreds of prior designs for less than the cost of a
    /// single CGP run. Results come back in input order and each slot is
    /// bit-identical to a sequential [`MultEvaluator::stats`] call — the
    /// thread count can never change a reported WMED.
    ///
    /// # Panics
    ///
    /// Panics if any netlist does not have `2·width` inputs and outputs
    /// (re-raising the worker's panic message).
    #[must_use]
    pub fn stats_batch(&self, netlists: &[Netlist], threads: usize) -> Vec<ErrorStats> {
        let tasks: Vec<&Netlist> = netlists.iter().collect();
        apx_pool::scope_map(threads.max(1), tasks, |_, nl| self.stats(nl))
            .unwrap_or_else(|p| panic!("stats_batch candidate {}: {}", p.index, p.message))
    }

    /// Per-input-pair normalized absolute error (Fig. 4's heat-map data).
    ///
    /// # Panics
    ///
    /// Panics if the netlist does not have `2·width` inputs and outputs.
    #[must_use]
    pub fn error_matrix(&self, netlist: &Netlist) -> crate::ErrorMatrix {
        self.check_arity(netlist);
        let w = self.width;
        let mask = (1u64 << w) - 1;
        let n = 1usize << w;
        let range = (1u64 << (2 * w)) as f64;
        let mut data = vec![0.0f64; n * n];
        let mut sim = BlockSim::new(netlist);
        let mut inputs = vec![0u64; 2 * w as usize];
        let mut lane_buf = vec![0u64; 64];
        let lanes = self.ex.lanes_per_block();
        for block in 0..self.ex.num_blocks() {
            self.fill_inputs(block, &mut inputs);
            let out_words = sim.run(netlist, &inputs);
            unpack_lanes(out_words, lanes, &mut lane_buf);
            let base = (block * 64) as u64;
            for (lane, &out_raw) in lane_buf.iter().enumerate().take(lanes) {
                let v = base + lane as u64;
                let x_raw = v >> w;
                let y_raw = v & mask;
                let x = self.interpret(x_raw, w);
                let y = self.interpret(y_raw, w);
                let got = self.interpret(out_raw, 2 * w);
                // Matrix is indexed (row = x encoding, col = y encoding).
                data[(x_raw as usize) * n + y_raw as usize] = (x * y - got).abs() as f64 / range;
            }
        }
        crate::ErrorMatrix::new(w, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table_stats;
    use apx_arith::{
        array_multiplier, baugh_wooley_broken, baugh_wooley_multiplier, broken_array_multiplier,
        truncated_multiplier, OpTable,
    };

    #[test]
    fn evaluator_matches_table_stats_unsigned() {
        let pmf = Pmf::half_normal(4, 3.0);
        let eval = MultEvaluator::new(4, false, &pmf).unwrap();
        let exact = OpTable::exact_mul(4, false);
        for nl in
            [truncated_multiplier(4, 3), broken_array_multiplier(4, 3, 2), array_multiplier(4)]
        {
            let table = OpTable::from_netlist(&nl, 4, false).unwrap();
            let expect = table_stats(&table, &exact, &pmf);
            let got = eval.stats(&nl);
            assert!((got.wmed - expect.wmed).abs() < 1e-12, "wmed");
            assert!((got.med - expect.med).abs() < 1e-12, "med");
            assert!((got.wce - expect.wce).abs() < 1e-12, "wce");
            assert!((got.error_rate - expect.error_rate).abs() < 1e-12, "er");
            assert!((eval.wmed(&nl) - expect.wmed).abs() < 1e-12, "wmed fast path");
        }
    }

    #[test]
    fn evaluator_matches_table_stats_signed() {
        let pmf = Pmf::signed_normal(4, 0.0, 3.0);
        let eval = MultEvaluator::new(4, true, &pmf).unwrap();
        let exact = OpTable::exact_mul(4, true);
        for nl in [baugh_wooley_multiplier(4), baugh_wooley_broken(4, 3, 2)] {
            let table = OpTable::from_netlist(&nl, 4, true).unwrap();
            let expect = table_stats(&table, &exact, &pmf);
            let got = eval.wmed(&nl);
            assert!((got - expect.wmed).abs() < 1e-12, "got {got} expect {}", expect.wmed);
        }
    }

    #[test]
    fn eight_bit_fast_path_matches_table() {
        let pmf = Pmf::normal(8, 127.0, 32.0);
        let eval = MultEvaluator::new(8, false, &pmf).unwrap();
        let nl = broken_array_multiplier(8, 6, 5);
        let table = OpTable::from_netlist(&nl, 8, false).unwrap();
        let exact = OpTable::exact_mul(8, false);
        let expect = table_stats(&table, &exact, &pmf);
        assert!((eval.wmed(&nl) - expect.wmed).abs() < 1e-9);
    }

    #[test]
    fn exact_multiplier_has_zero_wmed() {
        let eval = MultEvaluator::new(8, false, &Pmf::uniform(8)).unwrap();
        assert_eq!(eval.wmed(&array_multiplier(8)), 0.0);
    }

    #[test]
    fn bounded_eval_aborts_above_limit() {
        let pmf = Pmf::uniform(8);
        let eval = MultEvaluator::new(8, false, &pmf).unwrap();
        let bad = truncated_multiplier(8, 12);
        let true_wmed = eval.wmed(&bad);
        assert!(true_wmed > 1e-4);
        assert_eq!(eval.wmed_bounded(&bad, true_wmed / 10.0), None);
        // A generous limit returns the exact value.
        let got = eval.wmed_bounded(&bad, true_wmed * 2.0).unwrap();
        assert!((got - true_wmed).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_blocks_are_skipped() {
        // Point mass on x = 3: WMED only sees row 3.
        let mut weights = vec![0.0; 256];
        weights[3] = 1.0;
        let pmf = Pmf::from_weights(8, weights).unwrap();
        let eval = MultEvaluator::new(8, false, &pmf).unwrap();
        assert_eq!(eval.ordered_blocks.len(), 4, "only x=3's four blocks remain");
        let nl = truncated_multiplier(8, 6);
        let table = OpTable::from_netlist(&nl, 8, false).unwrap();
        // WMED == mean error of row x=3 normalized.
        let mut row_sum = 0.0;
        for y in 0..256i64 {
            row_sum += (table.get(3, y) - 3 * y).abs() as f64;
        }
        let expect = row_sum / 256.0 / 65536.0;
        assert!((eval.wmed(&nl) - expect).abs() < 1e-12);
    }

    #[test]
    fn error_matrix_diagonal_structure() {
        let pmf = Pmf::uniform(4);
        let eval = MultEvaluator::new(4, false, &pmf).unwrap();
        let nl = truncated_multiplier(4, 4);
        let m = eval.error_matrix(&nl);
        // x = 0 row: product is 0, truncation errors are 0.
        for y in 0..16 {
            assert_eq!(m.get(0, y), 0.0);
        }
        // mean of matrix equals MED.
        let stats = eval.stats(&nl);
        assert!((m.mean() - stats.med).abs() < 1e-12);
    }

    #[test]
    fn stats_batch_matches_sequential_stats_bit_for_bit() {
        let pmf = Pmf::half_normal(4, 3.0);
        let eval = MultEvaluator::new(4, false, &pmf).unwrap();
        let netlists = vec![
            array_multiplier(4),
            truncated_multiplier(4, 3),
            truncated_multiplier(4, 5),
            broken_array_multiplier(4, 3, 2),
            broken_array_multiplier(4, 2, 4),
        ];
        let sequential: Vec<_> = netlists.iter().map(|nl| eval.stats(nl)).collect();
        for threads in [1, 4] {
            let batch = eval.stats_batch(&netlists, threads);
            assert_eq!(batch.len(), sequential.len());
            for (i, (b, s)) in batch.iter().zip(&sequential).enumerate() {
                assert_eq!(b, s, "candidate {i} differs on {threads} thread(s)");
                assert_eq!(b.wmed.to_bits(), s.wmed.to_bits(), "wmed bits, candidate {i}");
            }
        }
        assert!(eval.stats_batch(&[], 4).is_empty());
    }

    #[test]
    fn constructor_errors() {
        assert!(matches!(
            MultEvaluator::new(0, false, &Pmf::uniform(1)),
            Err(EvaluatorError::BadWidth(0))
        ));
        let err = MultEvaluator::new(8, false, &Pmf::uniform(4)).unwrap_err();
        assert!(matches!(err, EvaluatorError::PmfWidthMismatch { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    #[should_panic(expected = "2*width inputs")]
    fn arity_mismatch_panics() {
        let eval = MultEvaluator::new(8, false, &Pmf::uniform(8)).unwrap();
        let _ = eval.wmed(&array_multiplier(4));
    }
}
