//! The CGP hot path: exhaustive WMED evaluation of arithmetic netlists
//! (multipliers, adders, MACs — any [`Operator`]).
//!
//! Evaluation is organized around the engines in [`crate::engine`]: a
//! levelized bit-parallel simulator that processes 64 operand pairs per gate
//! op (tiled over blocks so gate dispatch amortizes), a bit-sliced error
//! kernel that sums `|exact − got|` directly on output bit-planes, and an
//! incremental mode that re-simulates only the fanout cone of a mutation
//! against cached signal rows. A scalar one-pair-at-a-time reference
//! interpreter sits behind the same API as [`EvalBackend::Scalar`], and a
//! symbolic ROBDD model-counting engine ([`crate::symbolic`]) behind
//! [`EvalBackend::Symbolic`]; all backends are bit-identical by
//! construction at the widths they share, and the symbolic one keeps
//! going where exhaustive enumeration becomes infeasible.

pub use crate::engine::WmedState;
use crate::engine::{EngineCtx, LaneReader, MAX_PLANES};
use crate::stats::ErrorStats;
use crate::symbolic::SymbolicCtx;
use apx_arith::{sign_extend, EvalBackend, Operator};
use apx_dist::Pmf;
use apx_gates::{Exhaustive, Netlist};
use std::fmt;

/// Error constructing a [`CircuitEvaluator`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvaluatorError {
    /// Operand width outside the operator's evaluable range *on the
    /// requested backend* — `1..=10` for `mul`/`add` and `1..=4` for
    /// `mac` on the enumeration backends, `1..=16` and `1..=8` on the
    /// symbolic one (see [`Operator::supports_width`]).
    BadWidth {
        /// The operator whose budget was exceeded.
        op: Operator,
        /// The rejected operand width.
        width: u32,
        /// The backend whose evaluable range was exceeded.
        backend: EvalBackend,
    },
    /// The PMF is defined over a different operand width.
    PmfWidthMismatch {
        /// Evaluator operand width.
        width: u32,
        /// PMF width.
        pmf_width: u32,
    },
}

impl fmt::Display for EvaluatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvaluatorError::BadWidth { op, width, backend } => {
                write!(
                    f,
                    "operand width {width} outside the {op} operator's evaluable range \
                     on the {backend} backend"
                )
            }
            EvaluatorError::PmfWidthMismatch { width, pmf_width } => {
                write!(f, "pmf width {pmf_width} does not match operand width {width}")
            }
        }
    }
}

impl std::error::Error for EvaluatorError {}

/// Exhaustive error evaluator for `width`-bit arithmetic netlists —
/// multipliers by default, any [`Operator`] via
/// [`CircuitEvaluator::for_operator`] — under a data distribution `D` on
/// the first operand.
///
/// Built once per (operator, width, signedness, distribution) and reused
/// for every candidate circuit of a CGP run. The evaluator
///
/// * scores candidates against the operator's reference function
///   ([`Operator::exact_value`] — `x·y` for `mul`, `x+y` for `add`, the
///   wrap-around `acc + x·y` for `mac`);
/// * enumerates input vectors with the distribution operand in the **high**
///   bits, so whenever the remaining ("free") operand bits fill a 64-lane
///   simulation block (`free >= 6` — `width >= 6` for multipliers) each
///   block has a single `x` value and a single weight `D(x)`;
/// * pre-sorts blocks by decreasing weight and skips zero-weight blocks;
/// * simulates on one of three [`EvalBackend`]s — the default bit-parallel
///   engine (tiled 64-lane simulation plus a bit-sliced error kernel that
///   never unpacks lanes), the scalar reference interpreter, or the
///   symbolic ROBDD model counter, which skips enumeration entirely and
///   therefore also accepts operand widths the exhaustive backends reject
///   (12×12/16×16 multipliers, 8-bit MACs) — chosen via
///   [`CircuitEvaluator::with_backend`] or the `APX_EVAL_BACKEND` environment
///   variable (see [`EvalBackend::from_env`]). All produce bit-identical
///   results at the widths they share;
/// * offers [`CircuitEvaluator::wmed_bounded`], which abandons a candidate as
///   soon as its running weighted error exceeds the fitness threshold
///   (Eq. 1 only needs the comparison, not the exact value), and an
///   incremental variant ([`CircuitEvaluator::wmed_bounded_delta`]) that
///   re-simulates only a mutation's fanout cone against a cached
///   [`WmedState`].
///
/// # WMED definition
///
/// With `x` drawn from `D` and `y` uniform, the paper's Eq. 2 normalized by
/// the output range is
///
/// ```text
/// WMED_D(M̃) = Σ_x D(x) · Σ_y |x·y − M̃(x,y)|  /  (2^w · 2^(2w))
/// ```
///
/// For a general operator the shape is the same with `y` ranging over all
/// *free* (non-distribution) input bits and the normalizer being
/// `2^free · 2^out_bits` — the metric stays in `[0, 1)` for every
/// operator, so thresholds compose across component classes.
///
/// The engine accumulates the inner sum per 64-lane block as an exact
/// integer and applies `D(x)` once per block, so the only floating-point
/// operations are one multiply-add per block — in a fixed (weight-sorted)
/// order that every backend and the incremental path share.
///
/// # Examples
///
/// ```
/// use apx_arith::{array_multiplier, truncated_multiplier};
/// use apx_dist::Pmf;
/// use apx_metrics::CircuitEvaluator;
///
/// let eval = CircuitEvaluator::new(8, false, &Pmf::half_normal(8, 48.0))?;
/// assert_eq!(eval.wmed(&array_multiplier(8)), 0.0);
/// assert!(eval.wmed(&truncated_multiplier(8, 8)) > 0.0);
/// # Ok::<(), apx_metrics::EvaluatorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CircuitEvaluator {
    op: Operator,
    width: u32,
    signed: bool,
    /// Total netlist input bits: `op.num_inputs(width)`.
    ni: usize,
    /// Netlist output bits: `op.num_outputs(width)`.
    out_bits: u32,
    /// Input bits below the distribution operand (`ni - width`): the part
    /// of the enumeration a single `D(x)` weight spans.
    free: u32,
    weights: Vec<f64>,
    ex: Exhaustive,
    backend: EvalBackend,
    /// `(block index, weight of the block's x value)`, zero-weight blocks
    /// removed, sorted by decreasing weight. Empty for `free < 6` (the
    /// whole domain fits one block; weights are applied per lane instead)
    /// and for the symbolic backend (which never materializes per-block
    /// state — see `ordered_x`).
    ordered_blocks: Vec<(u32, f64)>,
    /// The symbolic backend's per-`x` twin of `ordered_blocks`:
    /// `(raw x encoding, weight)`, zero weights removed, stable-sorted by
    /// decreasing weight. Visiting each `x`'s blocks in ascending order
    /// flattens to exactly the `ordered_blocks` sequence, which is what
    /// makes the backends' accumulation orders identical. Built only for
    /// `free >= 6` on [`EvalBackend::Symbolic`].
    ordered_x: Vec<(u32, f64)>,
    /// The operator's exact seed circuit — the reference the symbolic
    /// difference planes subtract. Built only alongside `ordered_x`.
    seed: Option<Netlist>,
    /// Error-kernel planes: `out_bits + 1` (difference of an exact value
    /// and a sign-extended output always fits that many two's-complement
    /// bits).
    planes: usize,
    /// `exact_planes[block·planes + k]`: bit-plane `k` of the exact products
    /// of `block`'s 64 lanes. Precomputed only for the bit-parallel backend
    /// at `width >= 6`; empty otherwise.
    exact_planes: Vec<u64>,
    /// `exact_tiles[(tile·planes + k)·TILE + t]`: the same exact planes
    /// rearranged tile-major in weighted-position order, so the column-major
    /// error kernel reads them contiguously. Built alongside `exact_planes`.
    exact_tiles: Vec<u64>,
    /// `input_rows[i·n_pos + pos]`: netlist input `i`'s simulation word at
    /// weighted block position `pos` — hoists the per-tile `input_word`
    /// lookups out of the hot loop. Built alongside `exact_planes`.
    input_rows: Vec<u64>,
    /// Normalizer `1 / (2^free · 2^out_bits)`.
    norm: f64,
}

impl CircuitEvaluator {
    /// Creates an evaluator for `width`-bit (optionally signed) multipliers
    /// weighted by `pmf` on the first operand.
    ///
    /// The backend is read from the `APX_EVAL_BACKEND` environment variable
    /// ([`EvalBackend::from_env`]); this is the single choke point through
    /// which the sweep, library and orchestrator flows inherit the knob.
    ///
    /// # Errors
    ///
    /// Returns [`EvaluatorError`] on unsupported widths or a PMF of the
    /// wrong width.
    ///
    /// # Panics
    ///
    /// Panics if `APX_EVAL_BACKEND` is set to a malformed value.
    pub fn new(width: u32, signed: bool, pmf: &Pmf) -> Result<Self, EvaluatorError> {
        Self::with_backend(width, signed, pmf, EvalBackend::from_env())
    }

    /// Creates an evaluator for `width`-bit circuits of an arbitrary
    /// [`Operator`], backend read from `APX_EVAL_BACKEND` like
    /// [`CircuitEvaluator::new`].
    ///
    /// # Errors
    ///
    /// Returns [`EvaluatorError`] on a width outside the operator's
    /// evaluable range or a PMF of the wrong width.
    ///
    /// # Panics
    ///
    /// Panics if `APX_EVAL_BACKEND` is set to a malformed value.
    ///
    /// # Examples
    ///
    /// ```
    /// use apx_arith::{lower_or_adder, Operator};
    /// use apx_dist::Pmf;
    /// use apx_metrics::CircuitEvaluator;
    ///
    /// let eval =
    ///     CircuitEvaluator::for_operator(Operator::Add, 8, false, &Pmf::half_normal(8, 48.0))?;
    /// assert_eq!(eval.wmed(&lower_or_adder(8, 0)), 0.0);
    /// assert!(eval.wmed(&lower_or_adder(8, 4)) > 0.0);
    /// # Ok::<(), apx_metrics::EvaluatorError>(())
    /// ```
    pub fn for_operator(
        op: Operator,
        width: u32,
        signed: bool,
        pmf: &Pmf,
    ) -> Result<Self, EvaluatorError> {
        Self::for_operator_with_backend(op, width, signed, pmf, EvalBackend::from_env())
    }

    /// Creates an evaluator on an explicitly chosen [`EvalBackend`].
    ///
    /// # Errors
    ///
    /// Returns [`EvaluatorError`] on unsupported widths or a PMF of the
    /// wrong width.
    ///
    /// # Examples
    ///
    /// The backends agree bit for bit:
    ///
    /// ```
    /// use apx_arith::truncated_multiplier;
    /// use apx_dist::Pmf;
    /// use apx_metrics::{EvalBackend, CircuitEvaluator};
    ///
    /// let pmf = Pmf::half_normal(6, 12.0);
    /// let fast = CircuitEvaluator::with_backend(6, false, &pmf, EvalBackend::BitParallel)?;
    /// let slow = CircuitEvaluator::with_backend(6, false, &pmf, EvalBackend::Scalar)?;
    /// let nl = truncated_multiplier(6, 5);
    /// assert_eq!(fast.wmed(&nl).to_bits(), slow.wmed(&nl).to_bits());
    /// # Ok::<(), apx_metrics::EvaluatorError>(())
    /// ```
    pub fn with_backend(
        width: u32,
        signed: bool,
        pmf: &Pmf,
        backend: EvalBackend,
    ) -> Result<Self, EvaluatorError> {
        Self::for_operator_with_backend(Operator::Mul, width, signed, pmf, backend)
    }

    /// Creates an operator-aware evaluator on an explicitly chosen
    /// [`EvalBackend`].
    ///
    /// # Errors
    ///
    /// Returns [`EvaluatorError`] on a width outside the operator's
    /// evaluable range or a PMF of the wrong width.
    pub fn for_operator_with_backend(
        op: Operator,
        width: u32,
        signed: bool,
        pmf: &Pmf,
        backend: EvalBackend,
    ) -> Result<Self, EvaluatorError> {
        if !op.supports_width(width, backend) {
            return Err(EvaluatorError::BadWidth { op, width, backend });
        }
        if pmf.width() != width {
            return Err(EvaluatorError::PmfWidthMismatch { width, pmf_width: pmf.width() });
        }
        let ni = op.num_inputs(width);
        let out_bits = op.num_outputs(width) as u32;
        let free = (ni - width as usize) as u32;
        let ex = Exhaustive::new(ni);
        let weights: Vec<f64> = pmf.iter().collect();
        let mut ordered_blocks = Vec::new();
        let mut ordered_x = Vec::new();
        let mut seed = None;
        if free >= 6 {
            if backend == EvalBackend::Symbolic {
                // Per-x ordering only: at wide widths the per-block list
                // would be astronomically large, and the symbolic engine
                // derives block sums from one BDD per x anyway.
                ordered_x = weights
                    .iter()
                    .enumerate()
                    .filter(|&(_, &w)| w > 0.0)
                    .map(|(x, &w)| (x as u32, w))
                    .collect::<Vec<_>>();
                ordered_x.sort_by(|a, b| b.1.total_cmp(&a.1));
                seed = Some(op.seed_circuit(width, signed));
            } else {
                let blocks_per_x = 1u32 << (free - 6);
                for block in 0..ex.num_blocks() as u32 {
                    let x_raw = (block / blocks_per_x) as usize;
                    let w = weights[x_raw];
                    if w > 0.0 {
                        ordered_blocks.push((block, w));
                    }
                }
                ordered_blocks.sort_by(|a, b| b.1.total_cmp(&a.1));
            }
        }
        let planes = out_bits as usize + 1;
        // The bit-sliced error kernel caps its plane count; the symbolic
        // engine has no such limit (a width-16 multiplier needs 33).
        debug_assert!(backend == EvalBackend::Symbolic || planes <= MAX_PLANES);
        let norm = 1.0 / ((1u64 << free) as f64 * (1u64 << out_bits) as f64);
        let mut eval = CircuitEvaluator {
            op,
            width,
            signed,
            ni,
            out_bits,
            free,
            weights,
            ex,
            backend,
            ordered_blocks,
            ordered_x,
            seed,
            planes,
            exact_planes: Vec::new(),
            exact_tiles: Vec::new(),
            input_rows: Vec::new(),
            norm,
        };
        if free >= 6 && backend == EvalBackend::BitParallel {
            eval.exact_planes = eval.build_exact_planes();
            eval.exact_tiles = eval.build_exact_tiles();
            eval.input_rows = eval.build_input_rows();
        }
        Ok(eval)
    }

    /// Tile-major copy of the exact planes in weighted-position order (see
    /// `exact_tiles`).
    fn build_exact_tiles(&self) -> Vec<u64> {
        use crate::engine::TILE;
        let n_pos = self.ordered_blocks.len();
        let n_tiles = n_pos.div_ceil(TILE);
        let mut tiles = vec![0u64; n_tiles * self.planes * TILE];
        for (pos, &(block, _)) in self.ordered_blocks.iter().enumerate() {
            let (tile, t) = (pos / TILE, pos % TILE);
            let src = &self.exact_planes[block as usize * self.planes..][..self.planes];
            for (k, &word) in src.iter().enumerate() {
                tiles[(tile * self.planes + k) * TILE + t] = word;
            }
        }
        tiles
    }

    /// Position-ordered input simulation words (see `input_rows`).
    ///
    /// Netlist input `i` maps to enumeration bit `free + i` for the
    /// distribution operand (`i < width`) and `i - width` for everything
    /// below it — which puts `a` in the top `width` enumeration bits for
    /// every operator (the [`Operator::exact_value`] layout).
    fn build_input_rows(&self) -> Vec<u64> {
        let w = self.width as usize;
        let n_pos = self.ordered_blocks.len();
        let mut rows = vec![0u64; self.ni * n_pos];
        for i in 0..self.ni {
            let ebit = if i < w { self.free as usize + i } else { i - w };
            for (pos, &(block, _)) in self.ordered_blocks.iter().enumerate() {
                rows[i * n_pos + pos] = self.ex.input_word(ebit, block as usize);
            }
        }
        rows
    }

    /// Bit-sliced exact (reference) values for every block (see
    /// `exact_planes`).
    fn build_exact_planes(&self) -> Vec<u64> {
        let mut planes = vec![0u64; self.ex.num_blocks() * self.planes];
        for (block, chunk) in planes.chunks_exact_mut(self.planes).enumerate() {
            for lane in 0..64u64 {
                let v = (block as u64) * 64 + lane;
                let p = self.op.exact_value(self.width, self.signed, v) as u64;
                for (k, word) in chunk.iter_mut().enumerate() {
                    *word |= ((p >> k) & 1) << lane;
                }
            }
        }
        planes
    }

    /// The operator this evaluator scores candidates against.
    #[must_use]
    pub fn operator(&self) -> Operator {
        self.op
    }

    /// Operand width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Whether operands/results are interpreted as two's complement.
    #[must_use]
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// The simulation backend this evaluator runs on.
    #[must_use]
    pub fn backend(&self) -> EvalBackend {
        self.backend
    }

    /// The distribution weights, one per raw weighted-operand encoding —
    /// exactly the table the WMED summation applies, so static analyses
    /// (e.g. `apx_verify`'s bound brackets) can reason about the same
    /// numbers this evaluator will report.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    fn check_arity(&self, netlist: &Netlist) {
        assert_eq!(
            netlist.num_inputs(),
            self.ni,
            "a width-{} {} netlist must have {} inputs",
            self.width,
            self.op,
            self.ni
        );
        assert_eq!(
            netlist.num_outputs(),
            self.out_bits as usize,
            "a width-{} {} netlist must have {} outputs",
            self.width,
            self.op,
            self.out_bits
        );
    }

    fn ctx(&self) -> EngineCtx<'_> {
        EngineCtx {
            op: self.op,
            width: self.width,
            signed: self.signed,
            out_bits: self.out_bits,
            ordered: &self.ordered_blocks,
            exact_planes: &self.exact_planes,
            exact_tiles: &self.exact_tiles,
            input_rows: &self.input_rows,
            planes: self.planes,
        }
    }

    fn sym_ctx(&self) -> SymbolicCtx<'_> {
        SymbolicCtx {
            width: self.width,
            signed: self.signed,
            out_bits: self.out_bits,
            free: self.free,
            planes: self.planes,
            ordered_x: &self.ordered_x,
            block_exact: self.op.supports_exhaustive_width(self.width),
            weights: &self.weights,
            seed: self.seed.as_ref().expect("symbolic evaluators always carry the seed circuit"),
        }
    }

    #[inline]
    fn interpret(&self, raw: u64, bits: u32) -> i64 {
        if self.signed {
            sign_extend(raw, bits)
        } else {
            raw as i64
        }
    }

    /// Exact WMED of `netlist` under the evaluator's distribution.
    ///
    /// # Panics
    ///
    /// Panics if the netlist does not have the operator’s input/output arity.
    #[must_use]
    pub fn wmed(&self, netlist: &Netlist) -> f64 {
        self.wmed_impl(netlist, f64::INFINITY).expect("unbounded evaluation always completes")
    }

    /// WMED with early abort: returns `None` as soon as the running
    /// weighted error proves the result exceeds `limit`.
    ///
    /// This is the fitness primitive of Eq. 1 — most offspring violate the
    /// error budget and are rejected after a handful of high-weight blocks.
    ///
    /// # Panics
    ///
    /// Panics if the netlist does not have the operator’s input/output arity.
    #[must_use]
    pub fn wmed_bounded(&self, netlist: &Netlist, limit: f64) -> Option<f64> {
        self.wmed_impl(netlist, limit)
    }

    fn wmed_impl(&self, netlist: &Netlist, limit: f64) -> Option<f64> {
        self.check_arity(netlist);
        // `limit` in normalized units -> raw weighted-error budget.
        let raw_limit = if limit.is_finite() { limit / self.norm } else { f64::INFINITY };
        if self.free >= 6 {
            let total = match self.backend {
                EvalBackend::BitParallel => self.ctx().wmed_raw_bitpar(netlist, raw_limit)?,
                EvalBackend::Scalar => self.ctx().wmed_raw_scalar(netlist, raw_limit)?,
                EvalBackend::Symbolic => self.sym_ctx().wmed_raw(netlist, raw_limit)?,
            };
            return Some(total * self.norm);
        }
        // Small domain: weights vary per lane inside the block(s); both
        // backends feed the same per-lane loop via `LaneReader`.
        let lanes = self.ex.lanes_per_block();
        let mut reader = LaneReader::new(self.backend, netlist);
        let mut lane_buf = vec![0u64; 64];
        let mut total = 0.0f64;
        for block in 0..self.ex.num_blocks() {
            reader.read_block(netlist, &self.ex, self.width, block, &mut lane_buf);
            let base = (block * 64) as u64;
            for (lane, &out_raw) in lane_buf.iter().enumerate().take(lanes) {
                let v = base + lane as u64;
                let x_raw = v >> self.free;
                let weight = self.weights[x_raw as usize];
                if weight == 0.0 {
                    continue;
                }
                let exact = self.op.exact_value(self.width, self.signed, v);
                let got = self.interpret(out_raw, self.out_bits);
                total += weight * (exact - got).unsigned_abs() as f64;
            }
            if total > raw_limit {
                return None;
            }
        }
        // total = Σ_x D(x) Σ_free |err|; WMED = total / (2^free · 2^out) = total·norm.
        Some(total * self.norm)
    }

    /// Whether this evaluator can run the incremental (delta) protocol.
    ///
    /// Incremental re-evaluation needs the bit-parallel backend and
    /// block-granular weighting (`free >= 6` — below that, the whole
    /// domain is one block and a full pass is already trivial).
    #[must_use]
    pub fn supports_incremental(&self) -> bool {
        self.free >= 6 && self.backend == EvalBackend::BitParallel
    }

    /// Heap footprint a [`WmedState`] for `netlist` would need, in bytes.
    ///
    /// Callers use this to cap memory before opting into the incremental
    /// protocol (the state caches every signal row over every weighted
    /// block).
    #[must_use]
    pub fn state_bytes(&self, netlist: &Netlist) -> usize {
        (netlist.num_signals() * (2 * self.ordered_blocks.len() + crate::engine::TILE)
            + 2 * self.ordered_blocks.len())
            * 8
    }

    /// Builds the cached full-grid simulation state for `base`.
    ///
    /// # Panics
    ///
    /// Panics if the evaluator does not
    /// [support incremental evaluation](CircuitEvaluator::supports_incremental)
    /// or on netlist arity mismatch.
    #[must_use]
    pub fn new_state(&self, base: &Netlist) -> WmedState {
        assert!(self.supports_incremental(), "incremental mode unavailable on this evaluator");
        self.check_arity(base);
        self.ctx().new_state(base)
    }

    /// Bounded WMED of `child` evaluated incrementally against `state`.
    ///
    /// `changed` lists the node indices whose definition differs from the
    /// state's base netlist (`child` must have the same shape). Only the
    /// needed part of the changed nodes' fanout cone is re-simulated; the
    /// cached rows are not modified, so the state keeps describing the base
    /// (call [`CircuitEvaluator::commit_state`] to rebase). An empty `changed`
    /// re-scores the base itself straight from the cache.
    ///
    /// The result — including the abort decision — is bit-identical to
    /// [`CircuitEvaluator::wmed_bounded`] on `child`.
    ///
    /// # Panics
    ///
    /// Panics on arity/shape mismatch or if the evaluator does not support
    /// incremental evaluation.
    ///
    /// # Examples
    ///
    /// ```
    /// use apx_arith::truncated_multiplier;
    /// use apx_dist::Pmf;
    /// use apx_metrics::{EvalBackend, CircuitEvaluator};
    ///
    /// let pmf = Pmf::half_normal(6, 12.0);
    /// let eval = CircuitEvaluator::with_backend(6, false, &pmf, EvalBackend::BitParallel)?;
    /// let base = truncated_multiplier(6, 4);
    /// let mut state = eval.new_state(&base);
    /// let cached = eval.wmed_bounded_delta(&mut state, &base, &[], f64::INFINITY);
    /// assert_eq!(cached.unwrap().to_bits(), eval.wmed(&base).to_bits());
    /// # Ok::<(), apx_metrics::EvaluatorError>(())
    /// ```
    #[must_use]
    pub fn wmed_bounded_delta(
        &self,
        state: &mut WmedState,
        child: &Netlist,
        changed: &[u32],
        limit: f64,
    ) -> Option<f64> {
        assert!(self.supports_incremental(), "incremental mode unavailable on this evaluator");
        self.check_arity(child);
        let raw_limit = if limit.is_finite() { limit / self.norm } else { f64::INFINITY };
        self.ctx().wmed_raw_delta(state, child, changed, raw_limit).map(|t| t * self.norm)
    }

    /// Rebases `state` onto `child` after a mutation is accepted,
    /// re-simulating the full fanout cone of `changed` (dead nodes
    /// included, so every cached row stays consistent with `child`).
    ///
    /// # Panics
    ///
    /// Panics on arity/shape mismatch or if the evaluator does not support
    /// incremental evaluation.
    pub fn commit_state(&self, state: &mut WmedState, child: &Netlist, changed: &[u32]) {
        assert!(self.supports_incremental(), "incremental mode unavailable on this evaluator");
        self.check_arity(child);
        self.ctx().commit(state, child, changed);
    }

    /// Full error statistics (one exhaustive pass, no skipping).
    ///
    /// On [`EvalBackend::Symbolic`] at widths beyond the exhaustive cap
    /// the pass is symbolic instead of enumerated; every statistic except
    /// `mred` is still exact, and `mred` is reported as `NaN` there (the
    /// mean *relative* error is not a weighted count over output
    /// bit-planes — see [`ErrorStats::mred`]).
    ///
    /// # Panics
    ///
    /// Panics if the netlist does not have the operator’s input/output arity.
    #[must_use]
    pub fn stats(&self, netlist: &Netlist) -> ErrorStats {
        self.check_arity(netlist);
        if !self.op.supports_exhaustive_width(self.width) {
            return self.sym_ctx().wide_stats(netlist);
        }
        let range = (1u64 << self.out_bits) as f64;
        let mut reader = LaneReader::new(self.backend, netlist);
        let mut lane_buf = vec![0u64; 64];
        let lanes = self.ex.lanes_per_block();
        let mut sum_abs = 0.0f64;
        let mut sum_weighted = 0.0f64;
        let mut sum_rel = 0.0f64;
        let mut nonzero = 0u64;
        let mut max_abs = 0i64;
        for block in 0..self.ex.num_blocks() {
            reader.read_block(netlist, &self.ex, self.width, block, &mut lane_buf);
            let base = (block * 64) as u64;
            for (lane, &out_raw) in lane_buf.iter().enumerate().take(lanes) {
                let v = base + lane as u64;
                let x_raw = v >> self.free;
                let exact = self.op.exact_value(self.width, self.signed, v);
                let got = self.interpret(out_raw, self.out_bits);
                let err = (exact - got).abs();
                if err != 0 {
                    nonzero += 1;
                }
                max_abs = max_abs.max(err);
                let err_f = err as f64;
                sum_abs += err_f;
                sum_weighted += self.weights[x_raw as usize] * err_f;
                sum_rel += err_f / (exact.abs().max(1) as f64);
            }
        }
        let total = self.ex.num_vectors() as f64;
        let n = (1u64 << self.free) as f64;
        ErrorStats {
            med: sum_abs / total / range,
            wmed: sum_weighted / n / range,
            wce: max_abs as f64 / range,
            error_rate: nonzero as f64 / total,
            mred: sum_rel / total,
            max_abs_error: max_abs,
        }
    }

    /// Batch re-scoring: full [`CircuitEvaluator::stats`] for every netlist,
    /// fanned out over an [`apx_pool`] worker pool.
    ///
    /// This is the component-library primitive: re-pricing a whole library
    /// of already-built multipliers under a *new* data distribution is one
    /// exhaustive pass per candidate and no evolution at all, so a sweep
    /// can consult hundreds of prior designs for less than the cost of a
    /// single CGP run. Results come back in input order and each slot is
    /// bit-identical to a sequential [`CircuitEvaluator::stats`] call — the
    /// thread count can never change a reported WMED.
    ///
    /// # Panics
    ///
    /// Panics if any netlist does not have the operator’s input/output arity
    /// (re-raising the worker's panic message).
    #[must_use]
    pub fn stats_batch(&self, netlists: &[Netlist], threads: usize) -> Vec<ErrorStats> {
        let tasks: Vec<&Netlist> = netlists.iter().collect();
        apx_pool::scope_map(threads.max(1), tasks, |_, nl| self.stats(nl))
            .unwrap_or_else(|p| panic!("stats_batch candidate {}: {}", p.index, p.message))
    }

    /// Per-operand-pair normalized absolute error (Fig. 4's heat-map
    /// data). For operators with extra inputs beyond `(x, y)` (the MAC's
    /// accumulator) each cell is the mean over those inputs.
    ///
    /// # Panics
    ///
    /// Panics if the netlist does not have the operator's input/output
    /// arity, or at widths beyond the exhaustive cap (the dense `2^w ×
    /// 2^w` matrix itself is an enumeration artifact).
    #[must_use]
    pub fn error_matrix(&self, netlist: &Netlist) -> crate::ErrorMatrix {
        self.check_arity(netlist);
        assert!(
            self.op.supports_exhaustive_width(self.width),
            "error_matrix requires an exhaustively enumerable width"
        );
        let w = self.width;
        let mask = (1u64 << w) - 1;
        let n = 1usize << w;
        let range = (1u64 << self.out_bits) as f64;
        // Vectors sharing one (x, y) cell: the enumeration of the inputs
        // between `y` and `x` (1 for mul/add — plain assignment there).
        let multiplicity = (1u64 << (self.free - w)) as f64;
        let mut data = vec![0.0f64; n * n];
        let mut reader = LaneReader::new(self.backend, netlist);
        let mut lane_buf = vec![0u64; 64];
        let lanes = self.ex.lanes_per_block();
        for block in 0..self.ex.num_blocks() {
            reader.read_block(netlist, &self.ex, w, block, &mut lane_buf);
            let base = (block * 64) as u64;
            for (lane, &out_raw) in lane_buf.iter().enumerate().take(lanes) {
                let v = base + lane as u64;
                let x_raw = v >> self.free;
                let y_raw = v & mask;
                let exact = self.op.exact_value(self.width, self.signed, v);
                let got = self.interpret(out_raw, self.out_bits);
                // Matrix is indexed (row = x encoding, col = y encoding).
                data[(x_raw as usize) * n + y_raw as usize] += (exact - got).abs() as f64 / range;
            }
        }
        if multiplicity > 1.0 {
            for cell in &mut data {
                *cell /= multiplicity;
            }
        }
        crate::ErrorMatrix::new(w, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table_stats;
    use apx_arith::{
        array_multiplier, baugh_wooley_broken, baugh_wooley_multiplier, broken_array_multiplier,
        truncated_multiplier, OpTable,
    };

    #[test]
    fn evaluator_matches_table_stats_unsigned() {
        let pmf = Pmf::half_normal(4, 3.0);
        let eval = CircuitEvaluator::new(4, false, &pmf).unwrap();
        let exact = OpTable::exact_mul(4, false);
        for nl in
            [truncated_multiplier(4, 3), broken_array_multiplier(4, 3, 2), array_multiplier(4)]
        {
            let table = OpTable::from_netlist(&nl, 4, false).unwrap();
            let expect = table_stats(&table, &exact, &pmf);
            let got = eval.stats(&nl);
            assert!((got.wmed - expect.wmed).abs() < 1e-12, "wmed");
            assert!((got.med - expect.med).abs() < 1e-12, "med");
            assert!((got.wce - expect.wce).abs() < 1e-12, "wce");
            assert!((got.error_rate - expect.error_rate).abs() < 1e-12, "er");
            assert!((eval.wmed(&nl) - expect.wmed).abs() < 1e-12, "wmed fast path");
        }
    }

    #[test]
    fn evaluator_matches_table_stats_signed() {
        let pmf = Pmf::signed_normal(4, 0.0, 3.0);
        let eval = CircuitEvaluator::new(4, true, &pmf).unwrap();
        let exact = OpTable::exact_mul(4, true);
        for nl in [baugh_wooley_multiplier(4), baugh_wooley_broken(4, 3, 2)] {
            let table = OpTable::from_netlist(&nl, 4, true).unwrap();
            let expect = table_stats(&table, &exact, &pmf);
            let got = eval.wmed(&nl);
            assert!((got - expect.wmed).abs() < 1e-12, "got {got} expect {}", expect.wmed);
        }
    }

    #[test]
    fn eight_bit_fast_path_matches_table() {
        let pmf = Pmf::normal(8, 127.0, 32.0);
        let eval = CircuitEvaluator::new(8, false, &pmf).unwrap();
        let nl = broken_array_multiplier(8, 6, 5);
        let table = OpTable::from_netlist(&nl, 8, false).unwrap();
        let exact = OpTable::exact_mul(8, false);
        let expect = table_stats(&table, &exact, &pmf);
        assert!((eval.wmed(&nl) - expect.wmed).abs() < 1e-9);
    }

    #[test]
    fn exact_multiplier_has_zero_wmed() {
        let eval = CircuitEvaluator::new(8, false, &Pmf::uniform(8)).unwrap();
        assert_eq!(eval.wmed(&array_multiplier(8)), 0.0);
    }

    #[test]
    fn bounded_eval_aborts_above_limit() {
        let pmf = Pmf::uniform(8);
        let eval = CircuitEvaluator::new(8, false, &pmf).unwrap();
        let bad = truncated_multiplier(8, 12);
        let true_wmed = eval.wmed(&bad);
        assert!(true_wmed > 1e-4);
        assert_eq!(eval.wmed_bounded(&bad, true_wmed / 10.0), None);
        // A generous limit returns the exact value.
        let got = eval.wmed_bounded(&bad, true_wmed * 2.0).unwrap();
        assert!((got - true_wmed).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_blocks_are_skipped() {
        // Point mass on x = 3: WMED only sees row 3.
        let mut weights = vec![0.0; 256];
        weights[3] = 1.0;
        let pmf = Pmf::from_weights(8, weights).unwrap();
        let eval = CircuitEvaluator::new(8, false, &pmf).unwrap();
        assert_eq!(eval.ordered_blocks.len(), 4, "only x=3's four blocks remain");
        let nl = truncated_multiplier(8, 6);
        let table = OpTable::from_netlist(&nl, 8, false).unwrap();
        // WMED == mean error of row x=3 normalized.
        let mut row_sum = 0.0;
        for y in 0..256i64 {
            row_sum += (table.get(3, y) - 3 * y).abs() as f64;
        }
        let expect = row_sum / 256.0 / 65536.0;
        assert!((eval.wmed(&nl) - expect).abs() < 1e-12);
    }

    #[test]
    fn error_matrix_diagonal_structure() {
        let pmf = Pmf::uniform(4);
        let eval = CircuitEvaluator::new(4, false, &pmf).unwrap();
        let nl = truncated_multiplier(4, 4);
        let m = eval.error_matrix(&nl);
        // x = 0 row: product is 0, truncation errors are 0.
        for y in 0..16 {
            assert_eq!(m.get(0, y), 0.0);
        }
        // mean of matrix equals MED.
        let stats = eval.stats(&nl);
        assert!((m.mean() - stats.med).abs() < 1e-12);
    }

    #[test]
    fn stats_batch_matches_sequential_stats_bit_for_bit() {
        let pmf = Pmf::half_normal(4, 3.0);
        let eval = CircuitEvaluator::new(4, false, &pmf).unwrap();
        let netlists = vec![
            array_multiplier(4),
            truncated_multiplier(4, 3),
            truncated_multiplier(4, 5),
            broken_array_multiplier(4, 3, 2),
            broken_array_multiplier(4, 2, 4),
        ];
        let sequential: Vec<_> = netlists.iter().map(|nl| eval.stats(nl)).collect();
        for threads in [1, 4] {
            let batch = eval.stats_batch(&netlists, threads);
            assert_eq!(batch.len(), sequential.len());
            for (i, (b, s)) in batch.iter().zip(&sequential).enumerate() {
                assert_eq!(b, s, "candidate {i} differs on {threads} thread(s)");
                assert_eq!(b.wmed.to_bits(), s.wmed.to_bits(), "wmed bits, candidate {i}");
            }
        }
        assert!(eval.stats_batch(&[], 4).is_empty());
    }

    #[test]
    fn constructor_errors() {
        assert!(matches!(
            CircuitEvaluator::new(0, false, &Pmf::uniform(1)),
            Err(EvaluatorError::BadWidth { op: Operator::Mul, width: 0, .. })
        ));
        assert!(matches!(
            CircuitEvaluator::for_operator(Operator::Mac, 5, false, &Pmf::uniform(5)),
            Err(EvaluatorError::BadWidth {
                op: Operator::Mac,
                width: 5,
                backend: EvalBackend::BitParallel
            })
        ));
        // The same width is fine symbolically; width 9 is not.
        assert!(CircuitEvaluator::for_operator_with_backend(
            Operator::Mac,
            5,
            false,
            &Pmf::uniform(5),
            EvalBackend::Symbolic
        )
        .is_ok());
        let err = CircuitEvaluator::for_operator_with_backend(
            Operator::Mac,
            9,
            false,
            &Pmf::uniform(9),
            EvalBackend::Symbolic,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            EvaluatorError::BadWidth {
                op: Operator::Mac,
                width: 9,
                backend: EvalBackend::Symbolic
            }
        ));
        assert!(err.to_string().contains("symbolic"), "{err}");
        let err = CircuitEvaluator::new(8, false, &Pmf::uniform(4)).unwrap_err();
        assert!(matches!(err, EvaluatorError::PmfWidthMismatch { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    #[should_panic(expected = "netlist must have 16 inputs")]
    fn arity_mismatch_panics() {
        let eval = CircuitEvaluator::new(8, false, &Pmf::uniform(8)).unwrap();
        let _ = eval.wmed(&array_multiplier(4));
    }

    #[test]
    fn scalar_backend_matches_bit_parallel_wmed() {
        for (width, signed) in [(4u32, false), (6, false), (6, true)] {
            let pmf = if signed {
                Pmf::signed_normal(width, 1.0, 6.0)
            } else {
                Pmf::half_normal(width, 9.0)
            };
            let fast =
                CircuitEvaluator::with_backend(width, signed, &pmf, EvalBackend::BitParallel)
                    .unwrap();
            let slow =
                CircuitEvaluator::with_backend(width, signed, &pmf, EvalBackend::Scalar).unwrap();
            let nl = if signed {
                baugh_wooley_broken(width, 4, 3)
            } else {
                broken_array_multiplier(width, 4, 3)
            };
            assert_eq!(fast.wmed(&nl).to_bits(), slow.wmed(&nl).to_bits(), "w={width}");
            assert_eq!(fast.stats(&nl), slow.stats(&nl), "stats w={width}");
        }
    }

    #[test]
    fn delta_with_empty_changes_matches_full_eval() {
        let pmf = Pmf::half_normal(6, 12.0);
        let eval = CircuitEvaluator::new(6, false, &pmf).unwrap();
        assert!(eval.supports_incremental());
        let base = broken_array_multiplier(6, 4, 3);
        assert!(eval.state_bytes(&base) > 0);
        let mut state = eval.new_state(&base);
        let full = eval.wmed(&base);
        let cached = eval.wmed_bounded_delta(&mut state, &base, &[], f64::INFINITY).unwrap();
        assert_eq!(cached.to_bits(), full.to_bits());
        // Abort decisions match too.
        assert_eq!(
            eval.wmed_bounded_delta(&mut state, &base, &[], full / 2.0).is_none(),
            eval.wmed_bounded(&base, full / 2.0).is_none()
        );
    }

    #[test]
    fn scalar_backend_reports_no_incremental_support() {
        let pmf = Pmf::uniform(6);
        let eval = CircuitEvaluator::with_backend(6, false, &pmf, EvalBackend::Scalar).unwrap();
        assert!(!eval.supports_incremental());
        let eval = CircuitEvaluator::with_backend(6, false, &pmf, EvalBackend::Symbolic).unwrap();
        assert!(!eval.supports_incremental());
    }

    #[test]
    fn symbolic_backend_matches_bit_parallel_wmed() {
        for (width, signed) in [(6u32, false), (6, true), (7, false)] {
            let pmf = if signed {
                Pmf::signed_normal(width, 1.0, 6.0)
            } else {
                Pmf::half_normal(width, 9.0)
            };
            let fast =
                CircuitEvaluator::with_backend(width, signed, &pmf, EvalBackend::BitParallel)
                    .unwrap();
            let sym =
                CircuitEvaluator::with_backend(width, signed, &pmf, EvalBackend::Symbolic).unwrap();
            let nl = if signed {
                baugh_wooley_broken(width, 4, 3)
            } else {
                broken_array_multiplier(width, 4, 3)
            };
            assert_eq!(fast.wmed(&nl).to_bits(), sym.wmed(&nl).to_bits(), "w={width}");
            // Bounded aborts agree too (the running totals are identical).
            let full = fast.wmed(&nl);
            for limit in [full / 3.0, full * 2.0] {
                let a = fast.wmed_bounded(&nl, limit);
                let b = sym.wmed_bounded(&nl, limit);
                assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits), "limit {limit}");
            }
        }
    }

    #[test]
    fn symbolic_small_domain_uses_lane_path() {
        // free < 6: the per-lane loop serves all backends, symbolic via a
        // monolithic BDD lane oracle.
        let pmf = Pmf::half_normal(4, 3.0);
        let fast =
            CircuitEvaluator::with_backend(4, false, &pmf, EvalBackend::BitParallel).unwrap();
        let sym = CircuitEvaluator::with_backend(4, false, &pmf, EvalBackend::Symbolic).unwrap();
        let nl = broken_array_multiplier(4, 3, 2);
        assert_eq!(fast.wmed(&nl).to_bits(), sym.wmed(&nl).to_bits());
        assert_eq!(fast.stats(&nl), sym.stats(&nl));
    }

    #[test]
    fn symbolic_wide_width_scores_exact_seed_as_zero() {
        // Width 12 is far beyond the exhaustive backends (2^24-vector
        // domain for mul) but cheap symbolically.
        let op = Operator::Add;
        let pmf = Pmf::uniform(12);
        let eval =
            CircuitEvaluator::for_operator_with_backend(op, 12, false, &pmf, EvalBackend::Symbolic)
                .unwrap();
        let seed = op.seed_circuit(12, false);
        assert_eq!(eval.wmed(&seed), 0.0);
        let stats = eval.stats(&seed);
        assert_eq!(stats.wmed, 0.0);
        assert_eq!(stats.max_abs_error, 0);
        assert_eq!(stats.error_rate, 0.0);
        assert!(stats.mred.is_nan(), "wide-width mred is NaN by contract");
    }
}
