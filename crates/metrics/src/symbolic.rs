//! The symbolic (ROBDD model-counting) evaluator backend.
//!
//! The enumeration backends visit all `2^ni` input vectors; this engine
//! never does. For each weighted operand value `x` it builds, over the
//! `free` (non-distribution) input bits only:
//!
//! 1. the candidate's output bit-planes and the seed circuit's exact
//!    output bit-planes as BDDs (`x`'s bits enter as constants, so the
//!    diagrams stay small — a multiplier with one operand fixed is just
//!    a shifted-add structure);
//! 2. the two's-complement difference planes `d = exact − got` via the
//!    same ripple-borrow recurrence the bit-parallel error kernel uses
//!    (`d_k = e_k ⊕ g_k ⊕ borrow`, `borrow' = (¬e_k ∧ g_k) ∨ (¬(e_k ⊕
//!    g_k) ∧ borrow)`), with one sign-extension plane on each side;
//! 3. the absolute-error sum as a *weighted model count*:
//!    `Σ|d| = count(s) + Σ_k 2^k · count(d_k ⊕ s)` where `s` is the
//!    difference's sign plane — the symbolic twin of the engine's
//!    `abs_err_sum`.
//!
//! # Bit-identity with the enumeration backends
//!
//! The BDD variable order puts the high `free − 6` bits (the per-`x`
//! block index) above the low 6 (the 64 lanes of a block), so
//! [`apx_bdd::Bdd::descend`] restricted to one block followed by
//! [`apx_bdd::Bdd::count_from`] yields exactly the per-block integer
//! error sum the bit-parallel kernel produces. The accumulation then
//! replays the engine's contract verbatim: blocks of one `x` in
//! ascending order, `x` values in stable decreasing-weight order
//! (flattening to precisely the enumeration backends' `ordered_blocks`
//! sequence), `total += weight · (sum as f64)` per block, early abort
//! when `total` exceeds the raw budget. Same integer sums, same f64
//! operations in the same order — bit-identical results wherever an
//! enumeration backend can run at all. Beyond the exhaustive width cap
//! there is no enumeration order left to match and the per-block walk
//! would cost `2^(free−6)` descents per `x`, so there the accumulation
//! is per `x` (one whole-row weighted count, abort check per row) — see
//! `SymbolicCtx::block_exact`.

use crate::stats::ErrorStats;
use apx_bdd::{opcode, Bdd, NodeId, FALSE};
use apx_gates::{GateKind, Netlist};

/// Borrowed evaluator shape for one symbolic call (the symbolic twin of
/// `EngineCtx`).
pub(crate) struct SymbolicCtx<'a> {
    /// Operand width in bits.
    pub width: u32,
    /// Two's-complement interpretation of operands and outputs.
    pub signed: bool,
    /// Netlist output bits (`op.num_outputs(width)`).
    pub out_bits: u32,
    /// Non-distribution input bits (`ni − width`); must be ≥ 6 (the
    /// evaluator routes smaller domains through the per-lane loop).
    pub free: u32,
    /// Error planes: `out_bits + 1`.
    pub planes: usize,
    /// `(x_raw, weight)`, zero weights removed, stable-sorted by
    /// decreasing weight — the per-`x` flattening of `ordered_blocks`.
    pub ordered_x: &'a [(u32, f64)],
    /// Replay the enumeration backends' per-block accumulation (true at
    /// exhaustively evaluable widths, where bit-identity is promised).
    /// At wide widths no enumeration backend exists to match, and the
    /// per-block walk would cost `2^(free−6)` descents per `x`, so the
    /// accumulation is defined per `x` instead: one whole-row count,
    /// `total += weight · row`, abort check per row.
    pub block_exact: bool,
    /// One weight per raw operand encoding (including zeros).
    pub weights: &'a [f64],
    /// The operator's exact seed circuit at this width/signedness —
    /// the reference the difference planes subtract.
    pub seed: &'a Netlist,
}

impl SymbolicCtx<'_> {
    /// Block-index variables: the high `free − 6` free bits sit on top
    /// of the order so one [`Bdd::descend`] pins a 64-lane block.
    fn block_vars(&self) -> u32 {
        debug_assert!(self.free >= 6, "symbolic block path requires free >= 6");
        self.free - 6
    }

    /// Builds `nl`'s output planes over the free variables with the
    /// weighted operand fixed to `x`, plus the sign-extension plane —
    /// the symbolic analogue of `EngineCtx::gather_got`.
    ///
    /// Variable order: enumeration free bit `e` maps to BDD variable
    /// `e − 6` for `e ≥ 6` (block bits, root-most, block-index order)
    /// and `block_vars + e` for `e < 6` (lane bits, bottom).
    fn circuit_planes(&self, bdd: &mut Bdd, nl: &Netlist, x: u64) -> Vec<NodeId> {
        let w = self.width as usize;
        let ni = nl.num_inputs();
        let t_vars = self.block_vars();
        let mut vals: Vec<NodeId> = Vec::with_capacity(nl.num_signals());
        for i in 0..ni {
            if i < w {
                vals.push(Bdd::constant((x >> i) & 1 == 1));
            } else {
                let e = (i - w) as u32;
                let var = if e < 6 { t_vars + e } else { e - 6 };
                vals.push(bdd.var(var));
            }
        }
        for node in nl.nodes() {
            let a = vals[node.a.index()];
            let b = vals[node.b.index()];
            vals.push(apply_gate(bdd, node.kind, a, b));
        }
        let mut planes: Vec<NodeId> = nl.outputs().iter().map(|o| vals[o.index()]).collect();
        let sign = if self.signed { planes[self.out_bits as usize - 1] } else { FALSE };
        planes.push(sign);
        debug_assert_eq!(planes.len(), self.planes);
        planes
    }

    /// Difference planes `d = exact − got` (ripple-borrow subtraction on
    /// bit-planes, mirroring the engine's `abs_err_sum` preamble).
    fn diff_planes(bdd: &mut Bdd, exact: &[NodeId], got: &[NodeId]) -> Vec<NodeId> {
        let mut d = Vec::with_capacity(exact.len());
        let mut borrow = FALSE;
        for (&e, &g) in exact.iter().zip(got) {
            let x = bdd.xor(e, g);
            d.push(bdd.xor(x, borrow));
            let ge = bdd.apply(g, e, opcode::AND_NOT_B); // ¬e ∧ g
            let bx = bdd.apply(borrow, x, opcode::AND_NOT_B); // ¬(e⊕g) ∧ borrow
            borrow = bdd.or(ge, bx);
        }
        d
    }

    /// The per-`x` functions whose model counts yield `Σ|d|`: the sign
    /// plane `s` and `d_k ⊕ s` for `k < planes − 1` (the top plane's
    /// term `d_{planes−1} ⊕ s` is identically false).
    fn abs_terms(&self, bdd: &mut Bdd, nl: &Netlist, x: u64) -> (Vec<NodeId>, NodeId) {
        let exact = self.circuit_planes(bdd, self.seed, x);
        let got = self.circuit_planes(bdd, nl, x);
        let d = Self::diff_planes(bdd, &exact, &got);
        let s = d[self.planes - 1];
        let terms = d[..self.planes - 1].iter().map(|&dk| bdd.xor(dk, s)).collect();
        (terms, s)
    }

    /// Raw (un-normalized) bounded WMED — the symbolic twin of
    /// `EngineCtx::wmed_raw_bitpar` / `wmed_raw_scalar`, bit-identical
    /// to both by the accumulation argument in the module docs.
    pub(crate) fn wmed_raw(&self, nl: &Netlist, raw_limit: f64) -> Option<f64> {
        let t_vars = self.block_vars();
        let mut bdd = Bdd::new(self.free);
        let mut total = 0.0f64;
        for &(x_raw, weight) in self.ordered_x {
            bdd.clear();
            let (terms, s) = self.abs_terms(&mut bdd, nl, u64::from(x_raw));
            if self.block_exact {
                for block in 0..1u64 << t_vars {
                    let pin = |t: u32| (block >> t) & 1 == 1;
                    let mut sum = 0u64;
                    for (k, &f) in terms.iter().enumerate() {
                        let node = bdd.descend(f, t_vars, pin);
                        sum += bdd.count_from(node, t_vars) << k;
                    }
                    let node = bdd.descend(s, t_vars, pin);
                    sum += bdd.count_from(node, t_vars);
                    total += weight * sum as f64;
                    if total > raw_limit {
                        return None;
                    }
                }
            } else {
                let mut sum = 0u64;
                for (k, &f) in terms.iter().enumerate() {
                    sum += bdd.count_from(f, 0) << k;
                }
                sum += bdd.count_from(s, 0);
                total += weight * sum as f64;
                if total > raw_limit {
                    return None;
                }
            }
        }
        Some(total)
    }

    /// Full [`ErrorStats`] for widths beyond the exhaustive cap, where
    /// the per-lane statistics loop cannot run.
    ///
    /// Every field except `mred` is derived from exact integer counts:
    /// per-`x` absolute error sums (weighted and unweighted), a
    /// satisfiability count of "any difference plane set" for the error
    /// rate, and a greedy most-significant-bit-first descent over the
    /// absolute-value planes for the worst case. The mean *relative*
    /// error distance is not a weighted count over output bit-planes —
    /// it needs the joint value of `|d|` and `|exact|` per vector — so
    /// the wide path reports `NaN` for it (documented on
    /// [`ErrorStats::mred`]).
    pub(crate) fn wide_stats(&self, nl: &Netlist) -> ErrorStats {
        let mut bdd = Bdd::new(self.free);
        let mut sum_abs = 0.0f64;
        let mut sum_weighted = 0.0f64;
        let mut nonzero = 0u64;
        let mut max_abs = 0i64;
        for x_raw in 0..self.weights.len() {
            bdd.clear();
            let (terms, s) = self.abs_terms(&mut bdd, nl, x_raw as u64);
            let mut row_abs = 0u64;
            for (k, &f) in terms.iter().enumerate() {
                row_abs += bdd.count_from(f, 0) << k;
            }
            row_abs += bdd.count_from(s, 0);
            sum_abs += row_abs as f64;
            sum_weighted += self.weights[x_raw] * row_abs as f64;
            // d ≠ 0 ⟺ some difference plane is set ⟺ some |d| term or the
            // sign plane is set ((d ⊕ s) + s = 0 only when d = 0).
            let mut any = s;
            for &f in &terms {
                any = bdd.or(any, f);
            }
            nonzero += bdd.count_from(any, 0);
            max_abs = max_abs.max(self.row_max_abs(&mut bdd, &terms, s));
        }
        let total = (1u128 << (self.free + self.width)) as f64;
        let n = (1u64 << self.free) as f64;
        let range = (1u64 << self.out_bits) as f64;
        ErrorStats {
            med: sum_abs / total / range,
            wmed: sum_weighted / n / range,
            wce: max_abs as f64 / range,
            error_rate: nonzero as f64 / total,
            mred: f64::NAN,
            max_abs_error: max_abs,
        }
    }

    /// Maximum `|d|` over one `x` row: materialize the absolute-value
    /// planes `Y = (d ⊕ s) + s` (ripple increment with carry-in `s`),
    /// then walk from the most significant plane down, keeping the
    /// satisfiable restriction.
    fn row_max_abs(&self, bdd: &mut Bdd, terms: &[NodeId], s: NodeId) -> i64 {
        let mut y = Vec::with_capacity(self.planes);
        let mut carry = s;
        for &t in terms {
            y.push(bdd.xor(t, carry));
            carry = bdd.and(t, carry);
        }
        // Top |d| plane: the (planes−1)-th term is identically false, so
        // Y_{planes−1} is just the remaining carry.
        y.push(carry);
        let mut reach = apx_bdd::TRUE;
        let mut val = 0i64;
        for (k, &yk) in y.iter().enumerate().rev() {
            let tk = bdd.and(reach, yk);
            if tk != FALSE {
                val |= 1i64 << k;
                reach = tk;
            }
        }
        val
    }
}

/// Monolithic output planes of `nl` over *all* of its inputs (BDD
/// variable `i` = netlist input `i`), without a sign-extension plane —
/// the symbolic backend's lane oracle for the exhaustive statistics
/// paths (`LaneReader`).
pub(crate) fn monolithic_planes(nl: &Netlist) -> (Bdd, Vec<NodeId>) {
    let ni = nl.num_inputs();
    let mut bdd = Bdd::new(ni as u32);
    let mut vals: Vec<NodeId> = Vec::with_capacity(nl.num_signals());
    for i in 0..ni {
        vals.push(bdd.var(i as u32));
    }
    for node in nl.nodes() {
        let a = vals[node.a.index()];
        let b = vals[node.b.index()];
        vals.push(apply_gate(&mut bdd, node.kind, a, b));
    }
    let planes = nl.outputs().iter().map(|o| vals[o.index()]).collect();
    (bdd, planes)
}

/// One gate as a BDD apply: the 4-bit truth table comes straight from
/// the gate's boolean semantics, so all 14 [`GateKind`]s (constants and
/// unary gates included — they ignore the irrelevant operand) share one
/// code path, exactly like the scalar interpreter.
fn apply_gate(bdd: &mut Bdd, kind: GateKind, a: NodeId, b: NodeId) -> NodeId {
    let mut tt = 0u8;
    for (bit, (va, vb)) in
        [(false, false), (false, true), (true, false), (true, true)].into_iter().enumerate()
    {
        tt |= u8::from(kind.eval_bool(va, vb)) << bit;
    }
    bdd.apply(a, b, tt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_gates::NetlistBuilder;

    #[test]
    fn gate_truth_tables_match_eval_bool() {
        let mut bdd = Bdd::new(2);
        let a = bdd.var(0);
        let b = bdd.var(1);
        for kind in GateKind::ALL {
            let f = apply_gate(&mut bdd, kind, a, b);
            for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
                let got = bdd.eval(f, |v| if v == 0 { va } else { vb });
                assert_eq!(got, kind.eval_bool(va, vb), "{kind} ({va},{vb})");
            }
        }
    }

    #[test]
    fn monolithic_planes_match_scalar_semantics() {
        // A 2-bit ripple adder slice built by hand.
        let mut b = NetlistBuilder::new(4);
        let (a0, a1, b0, b1) = (0u32, 1, 2, 3);
        let s0 = b.xor(a0.into(), b0.into());
        let c0 = b.and(a0.into(), b0.into());
        let t = b.xor(a1.into(), b1.into());
        let s1 = b.xor(t, c0);
        b.outputs(&[s0, s1]);
        let nl = b.finish().unwrap();
        let (bdd, planes) = monolithic_planes(&nl);
        for v in 0..16u64 {
            let packed: u64 = planes
                .iter()
                .enumerate()
                .map(|(j, &p)| u64::from(bdd.eval(p, |i| (v >> i) & 1 == 1)) << j)
                .sum();
            let expect = nl.eval_bool(&(0..4).map(|i| (v >> i) & 1 == 1).collect::<Vec<_>>());
            let expect_packed: u64 =
                expect.iter().enumerate().map(|(j, &bit)| u64::from(bit) << j).sum();
            assert_eq!(packed, expect_packed, "v={v}");
        }
    }
}
