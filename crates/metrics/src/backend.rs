//! The evaluator backend seam: exhaustive-scalar vs bit-parallel.

use std::fmt;
use std::str::FromStr;

/// Which simulation engine a [`crate::CircuitEvaluator`] runs on.
///
/// Both backends produce **bit-identical** results — every per-block error
/// sum is an exact integer and the floating-point accumulation order is
/// shared — so the backend is purely a speed/reference trade-off:
///
/// * [`EvalBackend::BitParallel`] (the default) levelizes the netlist into
///   an ASAP schedule and simulates 64 operand pairs per gate operation on
///   bit-sliced `u64` words, with bit-sliced error summation;
/// * [`EvalBackend::Scalar`] interprets the netlist one operand pair at a
///   time. It is orders of magnitude slower and exists as the independent
///   reference implementation that property tests (and the CI smoke run)
///   cross-check the fast engine against.
///
/// # Examples
///
/// Selecting a backend explicitly:
///
/// ```
/// use apx_dist::Pmf;
/// use apx_metrics::{EvalBackend, CircuitEvaluator};
///
/// let pmf = Pmf::uniform(4);
/// let fast = CircuitEvaluator::with_backend(4, false, &pmf, EvalBackend::BitParallel)?;
/// let reference = CircuitEvaluator::with_backend(4, false, &pmf, EvalBackend::Scalar)?;
/// assert_eq!(fast.backend(), EvalBackend::BitParallel);
/// assert_eq!(reference.backend(), EvalBackend::Scalar);
/// # Ok::<(), apx_metrics::EvaluatorError>(())
/// ```
///
/// Or via the `APX_EVAL_BACKEND` environment variable (each doctest runs
/// in its own process, so mutating the environment here is safe):
///
/// ```
/// use apx_metrics::EvalBackend;
///
/// std::env::remove_var("APX_EVAL_BACKEND");
/// assert_eq!(EvalBackend::from_env(), EvalBackend::BitParallel);
/// std::env::set_var("APX_EVAL_BACKEND", "scalar");
/// assert_eq!(EvalBackend::from_env(), EvalBackend::Scalar);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvalBackend {
    /// One operand pair per netlist interpretation (reference path).
    Scalar,
    /// 64 operand pairs per gate op on bit-sliced words (default).
    #[default]
    BitParallel,
}

impl EvalBackend {
    /// The environment variable consulted by [`EvalBackend::from_env`].
    pub const ENV_VAR: &'static str = "APX_EVAL_BACKEND";

    /// Reads the backend from `APX_EVAL_BACKEND`.
    ///
    /// Unset, empty or whitespace-only values select the default
    /// ([`EvalBackend::BitParallel`]). Like the other `APX_*` knobs this is
    /// fail-loud: any other unrecognized value panics, naming the variable
    /// and the offending value, instead of silently falling back (a silent
    /// fallback could hide a perf regression behind the wrong backend).
    ///
    /// # Panics
    ///
    /// Panics on a malformed non-empty value.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(Self::ENV_VAR) {
            Ok(raw) => {
                let v = raw.trim();
                if v.is_empty() {
                    EvalBackend::default()
                } else {
                    v.parse().unwrap_or_else(|_| {
                        panic!("{} must be 'scalar' or 'bitpar', got '{raw}'", Self::ENV_VAR)
                    })
                }
            }
            Err(_) => EvalBackend::default(),
        }
    }

    /// Canonical lowercase name (`"scalar"` / `"bitpar"`), the spelling
    /// `APX_EVAL_BACKEND` accepts and reports record.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EvalBackend::Scalar => "scalar",
            EvalBackend::BitParallel => "bitpar",
        }
    }
}

impl fmt::Display for EvalBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EvalBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(EvalBackend::Scalar),
            "bitpar" => Ok(EvalBackend::BitParallel),
            other => Err(format!("unknown evaluator backend '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for b in [EvalBackend::Scalar, EvalBackend::BitParallel] {
            assert_eq!(b.name().parse::<EvalBackend>().unwrap(), b);
            assert_eq!(b.to_string(), b.name());
        }
        assert!("Bitpar".parse::<EvalBackend>().is_err());
        assert!("".parse::<EvalBackend>().is_err());
    }

    #[test]
    fn default_is_bit_parallel() {
        assert_eq!(EvalBackend::default(), EvalBackend::BitParallel);
    }
}
