//! Error metrics for approximate arithmetic circuits.
//!
//! The paper's contribution is **WMED**, the weighted mean error distance
//! (§III-A): the mean absolute error of an approximate circuit where the
//! distribution operand `x` is weighted by an application-measured
//! probability mass function `D` and the free inputs `y` are uniform
//! (shown here for a multiplier; any [`apx_arith::Operator`] substitutes
//! its reference function and output range):
//!
//! ```text
//! WMED_D(M̃) = E_{x∼D, y∼U}[ |x·y − M̃(x,y)| ] / 2^(2w)   ∈ [0, 1)
//! ```
//!
//! (The normalization by the output range `2^(2w)` keeps the metric in
//! `[0, 1)`; see ARCHITECTURE.md for why the paper's literal formula is
//! adjusted.) With `D` uniform this reduces to the conventional normalized
//! mean error distance, so a single code path serves both the proposed and
//! the baseline metric.
//!
//! Two evaluation surfaces are provided:
//!
//! * [`table_stats`] — metrics over functional [`apx_arith::OpTable`]s
//!   (library multipliers, quick experiments);
//! * [`CircuitEvaluator`] — the CGP hot path: evaluates a gate-level
//!   [`apx_gates::Netlist`] exhaustively, skips zero-probability operand
//!   blocks, visits blocks in decreasing weight order and aborts as soon
//!   as a WMED budget is exceeded ([`CircuitEvaluator::wmed_bounded`]).
//!
//! The evaluator runs on one of three interchangeable [`EvalBackend`]s:
//! the default **bit-parallel** engine (tiled 64-lane simulation plus a
//! bit-sliced error kernel; supports incremental re-evaluation of mutated
//! netlists via [`WmedState`]), a **scalar** one-pair-at-a-time reference
//! interpreter, and a **symbolic** ROBDD model-counting engine (built on
//! `apx_bdd`) that never enumerates operand pairs and so reaches
//! operand widths the exhaustive backends cannot (12×12/16×16
//! multipliers, 8-bit MACs). All are bit-identical by construction at the
//! widths they share — the per-block error sums are exact integers and the
//! floating-point accumulation order is shared — so the slower paths serve
//! as independent oracles for property tests and CI cross-checks. Select a
//! backend with [`CircuitEvaluator::with_backend`] or the `APX_EVAL_BACKEND`
//! environment variable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod evaluator;
mod heatmap;
mod stats;
mod symbolic;

pub use apx_arith::EvalBackend;
pub use evaluator::{CircuitEvaluator, EvaluatorError, WmedState};
pub use heatmap::ErrorMatrix;
pub use stats::{joint_wmed, table_stats, ErrorStats};

use apx_arith::OpTable;
use apx_dist::Pmf;

/// Convenience: WMED of an approximate table against the exact product.
///
/// # Panics
///
/// Panics if the table and PMF widths disagree.
#[must_use]
pub fn wmed_of_table(approx: &OpTable, pmf: &Pmf) -> f64 {
    let exact = OpTable::exact_mul(approx.width(), approx.is_signed());
    table_stats(approx, &exact, pmf).wmed
}

/// Convenience: conventional normalized MED (uniform weighting).
#[must_use]
pub fn med_of_table(approx: &OpTable) -> f64 {
    wmed_of_table(approx, &Pmf::uniform(approx.width()))
}
