//! Aggregate error statistics of an approximate operator.

use apx_arith::OpTable;
use apx_dist::Pmf;

/// Error statistics of an approximate operator against its exact
/// reference, under a distribution `D` on the first operand.
///
/// All `*norm*`-style quantities are normalized by the output range
/// `2^(2w)`, matching the percentage scale the paper reports (e.g.
/// `WMED = 0.5 %` means `wmed == 0.005`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Conventional normalized mean error distance (uniform operands).
    pub med: f64,
    /// Weighted mean error distance under `D` (the paper's metric).
    pub wmed: f64,
    /// Normalized worst-case error over all input pairs.
    pub wce: f64,
    /// Fraction of input pairs with a non-zero error.
    pub error_rate: f64,
    /// Mean relative error distance (error / max(1, |exact|), uniform).
    pub mred: f64,
    /// Largest absolute error in output LSBs (un-normalized WCE).
    pub max_abs_error: i64,
}

impl ErrorStats {
    /// WMED as a percentage (the unit used throughout the paper).
    #[must_use]
    pub fn wmed_percent(&self) -> f64 {
        self.wmed * 100.0
    }

    /// MED as a percentage.
    #[must_use]
    pub fn med_percent(&self) -> f64 {
        self.med * 100.0
    }
}

/// Computes [`ErrorStats`] of `approx` against `exact` with distribution
/// `pmf` on the first operand (the second operand is uniform).
///
/// # Panics
///
/// Panics if the tables or the PMF have mismatched widths.
#[must_use]
pub fn table_stats(approx: &OpTable, exact: &OpTable, pmf: &Pmf) -> ErrorStats {
    assert_eq!(approx.width(), exact.width(), "table width mismatch");
    assert_eq!(approx.width(), pmf.width(), "pmf width mismatch");
    let w = approx.width();
    let n = 1u64 << w;
    let range = (1u64 << (2 * w)) as f64;
    let mut sum_abs = 0.0f64;
    let mut sum_weighted = 0.0f64;
    let mut sum_rel = 0.0f64;
    let mut nonzero = 0u64;
    let mut max_abs = 0i64;
    for a_raw in 0..n {
        let weight = pmf.prob(a_raw as usize);
        let mut row_abs = 0.0f64;
        for b_raw in 0..n {
            let e = exact.get_raw(a_raw, b_raw);
            let g = approx.get_raw(a_raw, b_raw);
            let err = (g - e).abs();
            if err != 0 {
                nonzero += 1;
            }
            max_abs = max_abs.max(err);
            let err_f = err as f64;
            row_abs += err_f;
            sum_rel += err_f / (e.abs().max(1) as f64);
        }
        sum_abs += row_abs;
        sum_weighted += weight * row_abs;
    }
    let total = (n * n) as f64;
    ErrorStats {
        med: sum_abs / total / range,
        wmed: sum_weighted / n as f64 / range,
        wce: max_abs as f64 / range,
        error_rate: nonzero as f64 / total,
        mred: sum_rel / total,
        max_abs_error: max_abs,
    }
}

/// Generalized WMED with *joint* operand weighting `α(i,j) = D_A(i)·D_B(j)`
/// — the "different approach" the paper's §III-A explicitly allows for the
/// weights. Returns the weighted mean absolute error normalized by the
/// output range `2^(2w)`.
///
/// With `pmf_b` uniform this reduces exactly to [`table_stats`]'s `wmed`.
///
/// # Panics
///
/// Panics if the tables or PMFs have mismatched widths.
#[must_use]
pub fn joint_wmed(approx: &OpTable, exact: &OpTable, pmf_a: &Pmf, pmf_b: &Pmf) -> f64 {
    assert_eq!(approx.width(), exact.width(), "table width mismatch");
    assert_eq!(approx.width(), pmf_a.width(), "pmf_a width mismatch");
    assert_eq!(approx.width(), pmf_b.width(), "pmf_b width mismatch");
    let w = approx.width();
    let n = 1u64 << w;
    let range = (1u64 << (2 * w)) as f64;
    let mut sum = 0.0f64;
    for a_raw in 0..n {
        let wa = pmf_a.prob(a_raw as usize);
        if wa == 0.0 {
            continue;
        }
        for b_raw in 0..n {
            let wb = pmf_b.prob(b_raw as usize);
            if wb == 0.0 {
                continue;
            }
            let err = (approx.get_raw(a_raw, b_raw) - exact.get_raw(a_raw, b_raw)).abs();
            sum += wa * wb * err as f64;
        }
    }
    sum / range
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_arith::{broken_array_multiplier, truncated_multiplier};

    fn table_of(nl: &apx_gates::Netlist, w: u32) -> OpTable {
        OpTable::from_netlist(nl, w, false).unwrap()
    }

    #[test]
    fn exact_operator_has_zero_errors() {
        let exact = OpTable::exact_mul(4, false);
        let s = table_stats(&exact, &exact, &Pmf::uniform(4));
        assert_eq!(s.med, 0.0);
        assert_eq!(s.wmed, 0.0);
        assert_eq!(s.wce, 0.0);
        assert_eq!(s.error_rate, 0.0);
        assert_eq!(s.mred, 0.0);
        assert_eq!(s.max_abs_error, 0);
    }

    #[test]
    fn uniform_wmed_equals_med() {
        let approx = table_of(&truncated_multiplier(4, 4), 4);
        let exact = OpTable::exact_mul(4, false);
        let s = table_stats(&approx, &exact, &Pmf::uniform(4));
        assert!((s.med - s.wmed).abs() < 1e-12);
        assert!(s.med > 0.0);
    }

    #[test]
    fn wmed_bounded_by_wce() {
        let approx = table_of(&broken_array_multiplier(4, 3, 3), 4);
        let exact = OpTable::exact_mul(4, false);
        for pmf in [Pmf::uniform(4), Pmf::half_normal(4, 2.0), Pmf::normal(4, 8.0, 2.0)] {
            let s = table_stats(&approx, &exact, &pmf);
            assert!(s.wmed <= s.wce + 1e-12);
            assert!(s.med <= s.wce + 1e-12);
        }
    }

    #[test]
    fn weighting_shifts_wmed_toward_weighted_rows() {
        // Truncation hurts large operands more (errors scale with operand
        // magnitude), so a distribution concentrated on small x must give
        // smaller WMED than one concentrated on large x.
        let approx = table_of(&truncated_multiplier(4, 5), 4);
        let exact = OpTable::exact_mul(4, false);
        let low = Pmf::half_normal(4, 2.0);
        let high_weights: Vec<f64> = (0..16).map(|x| if x >= 12 { 1.0 } else { 0.0 }).collect();
        let high = Pmf::from_weights(4, high_weights).unwrap();
        let s_low = table_stats(&approx, &exact, &low);
        let s_high = table_stats(&approx, &exact, &high);
        assert!(s_low.wmed < s_high.wmed, "low {} vs high {}", s_low.wmed, s_high.wmed);
    }

    #[test]
    fn percent_helpers_scale() {
        let approx = table_of(&truncated_multiplier(4, 4), 4);
        let exact = OpTable::exact_mul(4, false);
        let s = table_stats(&approx, &exact, &Pmf::uniform(4));
        assert!((s.wmed_percent() - s.wmed * 100.0).abs() < 1e-15);
        assert!((s.med_percent() - s.med * 100.0).abs() < 1e-15);
    }

    #[test]
    fn joint_wmed_reduces_to_wmed_under_uniform_b() {
        let approx = table_of(&broken_array_multiplier(4, 3, 3), 4);
        let exact = OpTable::exact_mul(4, false);
        for pmf_a in [Pmf::uniform(4), Pmf::half_normal(4, 2.0)] {
            let s = table_stats(&approx, &exact, &pmf_a);
            let j = joint_wmed(&approx, &exact, &pmf_a, &Pmf::uniform(4));
            assert!((s.wmed - j).abs() < 1e-12, "{} vs {j}", s.wmed);
        }
    }

    #[test]
    fn joint_weighting_on_both_operands_rewards_double_tailoring() {
        // Weight both operands toward small values; a multiplier exact on
        // small×small must look near-perfect even if it is broken in the
        // upper rows/columns.
        let approx = OpTable::from_fn(4, false, |a, b| if a < 4 && b < 4 { a * b } else { 0 });
        let exact = OpTable::exact_mul(4, false);
        let small = Pmf::from_weights(4, {
            let mut w = vec![0.0; 16];
            w[..4].iter_mut().for_each(|x| *x = 1.0);
            w
        })
        .unwrap();
        assert_eq!(joint_wmed(&approx, &exact, &small, &small), 0.0);
        // Marginal weighting (uniform second operand) still sees errors.
        let s = table_stats(&approx, &exact, &small);
        assert!(s.wmed > 0.0);
    }

    #[test]
    fn joint_wmed_bounded_by_wce() {
        let approx = table_of(&truncated_multiplier(4, 5), 4);
        let exact = OpTable::exact_mul(4, false);
        let s = table_stats(&approx, &exact, &Pmf::uniform(4));
        let j = joint_wmed(&approx, &exact, &Pmf::half_normal(4, 2.0), &Pmf::normal(4, 8.0, 3.0));
        assert!(j <= s.wce + 1e-12);
        assert!(j >= 0.0);
    }

    #[test]
    fn error_rate_counts_mismatches() {
        // Truncating one column only affects products with a_0 = b_0 = 1
        // at column 0: error rate = P(a odd) * P(b odd) = 1/4.
        let approx = table_of(&truncated_multiplier(4, 1), 4);
        let exact = OpTable::exact_mul(4, false);
        let s = table_stats(&approx, &exact, &Pmf::uniform(4));
        assert!((s.error_rate - 0.25).abs() < 1e-12);
        assert_eq!(s.max_abs_error, 1);
    }
}
