//! Deterministic pseudo-random number generation for `distapprox`.
//!
//! Every stochastic piece of the approximation pipeline (CGP mutation,
//! data-set synthesis, noise injection, activity sampling, NN weight
//! initialization) draws from [`Xoshiro256`], a `xoshiro256++` generator
//! seeded through SplitMix64. The generator is implemented locally — rather
//! than pulled from an external crate — so that every figure and table in
//! the reproduction regenerates **bit-identically** on any platform.
//!
//! # Examples
//!
//! ```
//! use apx_rng::Xoshiro256;
//!
//! let mut rng = Xoshiro256::from_seed(42);
//! let a = rng.next_u64();
//! let b = rng.gen_range(10);
//! assert!(b < 10);
//! // Reseeding reproduces the stream.
//! let mut rng2 = Xoshiro256::from_seed(42);
//! assert_eq!(rng2.next_u64(), a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A deterministic `xoshiro256++` pseudo-random number generator.
///
/// The 256-bit state is expanded from a 64-bit seed with SplitMix64, the
/// initialization recommended by the xoshiro authors. The generator is
/// `Clone` so search algorithms can snapshot and replay streams, and it
/// supports [`Xoshiro256::fork`] for creating statistically independent
/// sub-streams (used to give each CGP run / worker thread its own stream).
#[derive(Debug, Clone, PartialEq)]
pub struct Xoshiro256 {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    gauss_spare: Option<f64>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Equal seeds always yield equal streams.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // The all-zero state is invalid for xoshiro; splitmix64 of any seed
        // cannot produce four zero words, but keep a defensive fix-up.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s, gauss_spare: None }
    }

    /// Derives an independent child generator.
    ///
    /// The child is seeded from the parent's next output mixed with `tag`,
    /// so `fork(0)`, `fork(1)`, … produce distinct, reproducible streams.
    #[must_use]
    pub fn fork(&mut self, tag: u64) -> Self {
        let base = self.next_u64();
        Self::from_seed(base ^ tag.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Returns the next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly random integer in `0..bound`.
    ///
    /// Uses Lemire's unbiased multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn gen_range(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_range bound must be non-zero");
        let bound = bound as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound {
                return (m >> 64) as usize;
            }
            // Rejection zone: only reached with probability < bound / 2^64.
            let threshold = bound.wrapping_neg() % bound;
            if lo >= threshold {
                return (m >> 64) as usize;
            }
        }
    }

    /// Returns a uniformly random integer in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn gen_range_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "gen_range_in requires lo < hi");
        lo + self.gen_range(hi - lo)
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Samples a normally distributed value via the Box–Muller transform.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        if let Some(spare) = self.gauss_spare.take() {
            return mean + std_dev * spare;
        }
        // Draw u1 in (0, 1] to keep ln() finite.
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let radius = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(radius * theta.sin());
        mean + std_dev * radius * theta.cos()
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// Returns `None` when the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(slice.len())])
        }
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i + 1);
            slice.swap(i, j);
        }
    }
}

impl Default for Xoshiro256 {
    /// Equivalent to `Xoshiro256::from_seed(0)`.
    fn default() -> Self {
        Self::from_seed(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = Xoshiro256::from_seed(123);
        let mut b = Xoshiro256::from_seed(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::from_seed(1);
        let mut b = Xoshiro256::from_seed(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut rng = Xoshiro256::from_seed(7);
        for bound in [1usize, 2, 3, 10, 64, 1000] {
            for _ in 0..200 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = Xoshiro256::from_seed(99);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn gen_range_zero_panics() {
        Xoshiro256::from_seed(0).gen_range(0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256::from_seed(3);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = Xoshiro256::from_seed(17);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Xoshiro256::from_seed(21);
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256::from_seed(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = Xoshiro256::from_seed(5);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut parent1 = Xoshiro256::from_seed(1000);
        let mut parent2 = Xoshiro256::from_seed(1000);
        let mut c1a = parent1.fork(0);
        let mut c1b = parent1.fork(1);
        let mut c2a = parent2.fork(0);
        assert_eq!(c1a.next_u64(), c2a.next_u64(), "forks reproducible");
        assert_ne!(c1a.next_u64(), c1b.next_u64(), "forks distinct");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Xoshiro256::from_seed(2);
        assert!((0..100).all(|_| !rng.bernoulli(0.0)));
        assert!((0..100).all(|_| rng.bernoulli(1.0)));
    }
}
