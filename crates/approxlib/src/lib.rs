//! A library of conventionally designed approximate multipliers.
//!
//! The paper compares its evolved circuits against three kinds of
//! pre-existing designs (§IV, §V-C):
//!
//! * **truncated array multipliers** (Jiang et al. [1]),
//! * **broken-array multipliers** (Mahdiani et al. [13]),
//! * the **EvoApprox8b** library [3] and the zero-exact multipliers of
//!   Mrazek et al. [6].
//!
//! EvoApprox8b itself is a published artifact we cannot download in this
//! offline reproduction; [`MultiplierLibrary::evoapprox_like`] plays its
//! role with a spread of truncated/broken configurations covering the same
//! error range (see ARCHITECTURE.md), and `apx-core` can extend the library with
//! uniformly-evolved multipliers — which is literally how EvoApprox8b was
//! built.
//!
//! These conventional designs are no longer comparison-only: they feed
//! `apx_core::library::ComponentLibrary` as seed candidates (ingested
//! behind the same unified `LibraryEntry` form as cached evolutions), so
//! a library-mode sweep can take a truncated or broken-array multiplier
//! directly when it already meets a task's WMED budget, or warm-start a
//! CGP run from it — the autoAx-style reuse the paper's baselines were
//! previously excluded from.
//!
//! # Examples
//!
//! ```
//! use apx_approxlib::MultiplierLibrary;
//!
//! let lib = MultiplierLibrary::evoapprox_like(8);
//! assert!(lib.len() > 10);
//! for entry in lib.iter() {
//!     assert_eq!(entry.netlist.num_inputs(), 16);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use apx_arith::{
    array_multiplier, baugh_wooley_broken, baugh_wooley_multiplier, broken_array_multiplier,
    truncated_multiplier, OpTable,
};
use apx_gates::{Netlist, NetlistBuilder, SignalId};

/// Which construction produced a library entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Exact reference multiplier.
    Exact,
    /// Truncated design (array multiplier or adder) with `trunc_cols`
    /// dropped LSB columns.
    Truncated {
        /// Number of dropped LSB columns.
        trunc_cols: u32,
    },
    /// Lower-OR approximate adder: the `k` least significant columns are
    /// replaced by a carry-free bitwise OR (Mahdiani et al. [13]).
    LowerOr {
        /// Number of OR-approximated LSB columns.
        k: u32,
    },
    /// Broken-array multiplier with the given break levels.
    BrokenArray {
        /// Horizontal break level.
        hbl: u32,
        /// Vertical break level.
        vbl: u32,
    },
    /// A base multiplier wrapped to multiply exactly by zero.
    ZeroGuard,
    /// Produced by CGP evolution (added by `apx-core`).
    Evolved,
}

/// One multiplier of the library: gate-level + functional views.
#[derive(Debug, Clone)]
pub struct LibEntry {
    /// Unique human-readable name, e.g. `"bam_h6_v5"`.
    pub name: String,
    /// Gate-level implementation (crate input/output conventions).
    pub netlist: Netlist,
    /// Exhaustive functional view.
    pub table: OpTable,
    /// Construction family.
    pub family: Family,
}

/// A collection of same-width approximate multipliers.
#[derive(Debug, Clone)]
pub struct MultiplierLibrary {
    width: u32,
    signed: bool,
    entries: Vec<LibEntry>,
}

impl MultiplierLibrary {
    /// An empty library.
    #[must_use]
    pub fn new(width: u32, signed: bool) -> Self {
        MultiplierLibrary { width, signed, entries: Vec::new() }
    }

    /// Operand width of every entry.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Whether entries are signed multipliers.
    #[must_use]
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the library is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over entries.
    pub fn iter(&self) -> impl Iterator<Item = &LibEntry> {
        self.entries.iter()
    }

    /// Looks an entry up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&LibEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Adds an entry built from a netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist does not match the library's width/signedness
    /// conventions or the name is already taken.
    pub fn push_netlist(&mut self, name: impl Into<String>, netlist: Netlist, family: Family) {
        let name = name.into();
        assert!(self.get(&name).is_none(), "duplicate entry name {name}");
        let table = OpTable::from_netlist(&netlist, self.width, self.signed)
            .expect("netlist must match library conventions");
        self.entries.push(LibEntry { name, netlist, table, family });
    }

    /// The truncated-array family: `k = 1 ..= width + width/2` dropped
    /// columns plus the exact reference.
    #[must_use]
    pub fn truncated_family(width: u32) -> Self {
        let mut lib = Self::new(width, false);
        lib.push_netlist("exact_array", array_multiplier(width), Family::Exact);
        for k in 1..=(width + width / 2) {
            lib.push_netlist(
                format!("trunc_{k}"),
                truncated_multiplier(width, k),
                Family::Truncated { trunc_cols: k },
            );
        }
        lib
    }

    /// The broken-array (BAM) family over a representative grid of break
    /// levels.
    #[must_use]
    pub fn broken_family(width: u32) -> Self {
        let mut lib = Self::new(width, false);
        lib.push_netlist("exact_array", array_multiplier(width), Family::Exact);
        for hbl in [width, width - 1, width - 2, width.saturating_sub(3).max(1)] {
            for vbl in 0..=(width + width / 2) {
                if hbl == width && vbl == 0 {
                    continue; // that's the exact multiplier
                }
                let name = format!("bam_h{hbl}_v{vbl}");
                if lib.get(&name).is_some() {
                    continue;
                }
                lib.push_netlist(
                    name,
                    broken_array_multiplier(width, hbl, vbl),
                    Family::BrokenArray { hbl, vbl },
                );
            }
        }
        lib
    }

    /// Signed broken Baugh-Wooley family (the BAM baseline of the NN case
    /// study, where operands are two's complement).
    #[must_use]
    pub fn broken_family_signed(width: u32) -> Self {
        let mut lib = Self::new(width, true);
        lib.push_netlist("exact_bw", baugh_wooley_multiplier(width), Family::Exact);
        for hbl in [width, width - 1, width - 2] {
            for vbl in 0..=(width + width / 2) {
                if hbl == width && vbl == 0 {
                    continue;
                }
                let name = format!("bwbam_h{hbl}_v{vbl}");
                lib.push_netlist(
                    name,
                    baugh_wooley_broken(width, hbl, vbl),
                    Family::BrokenArray { hbl, vbl },
                );
            }
        }
        lib
    }

    /// Zero-guarded signed family: broken Baugh-Wooley multipliers wrapped
    /// so multiplication by zero is exact (Mrazek et al. [6] — crucial for
    /// NNs whose weight distributions have a heavy spike at 0).
    #[must_use]
    pub fn zero_guard_family_signed(width: u32) -> Self {
        let mut lib = Self::new(width, true);
        lib.push_netlist("exact_bw", baugh_wooley_multiplier(width), Family::Exact);
        for (hbl, vbl) in Self::signed_break_grid(width) {
            let base = baugh_wooley_broken(width, hbl, vbl);
            lib.push_netlist(
                format!("zg_bwbam_h{hbl}_v{vbl}"),
                zero_guarded(&base, width),
                Family::ZeroGuard,
            );
        }
        lib
    }

    fn signed_break_grid(width: u32) -> Vec<(u32, u32)> {
        let mut grid = Vec::new();
        for hbl in [width, width - 1, width - 2] {
            for vbl in (0..=(width + width / 2)).step_by(2) {
                if hbl == width && vbl == 0 {
                    continue;
                }
                grid.push((hbl, vbl));
            }
        }
        grid
    }

    /// The EvoApprox8b stand-in: a mixed unsigned set of truncated and
    /// broken-array multipliers spanning the same error range as the
    /// published library.
    #[must_use]
    pub fn evoapprox_like(width: u32) -> Self {
        let mut lib = Self::new(width, false);
        lib.push_netlist("exact_array", array_multiplier(width), Family::Exact);
        for k in 1..=(width + width / 2) {
            lib.push_netlist(
                format!("trunc_{k}"),
                truncated_multiplier(width, k),
                Family::Truncated { trunc_cols: k },
            );
        }
        for hbl in [width - 1, width - 2] {
            for vbl in (0..=width).step_by(2) {
                lib.push_netlist(
                    format!("bam_h{hbl}_v{vbl}"),
                    broken_array_multiplier(width, hbl, vbl),
                    Family::BrokenArray { hbl, vbl },
                );
            }
        }
        lib
    }
}

/// Wraps a multiplier so that multiplication by zero is exact: the output
/// is forced to 0 whenever either operand is 0 (Mrazek et al. [6]).
///
/// Adds an OR-reduction tree per operand plus one masking AND per output
/// bit — a small, fixed overhead.
///
/// # Panics
///
/// Panics if `multiplier` does not follow the `2·width`-input /
/// `2·width`-output convention.
#[must_use]
pub fn zero_guarded(multiplier: &Netlist, width: u32) -> Netlist {
    let w = width as usize;
    assert_eq!(multiplier.num_inputs(), 2 * w, "multiplier input arity");
    assert_eq!(multiplier.num_outputs(), 2 * w, "multiplier output arity");
    let mut b = NetlistBuilder::new(2 * w);
    let inputs: Vec<SignalId> = (0..2 * w).map(|i| b.input(i)).collect();
    let product = b.embed(multiplier, &inputs);
    let or_reduce = |b: &mut NetlistBuilder, bits: &[SignalId]| -> SignalId {
        let mut acc = bits[0];
        for &bit in &bits[1..] {
            acc = b.or(acc, bit);
        }
        acc
    };
    let a_nz = or_reduce(&mut b, &inputs[..w]);
    let b_nz = or_reduce(&mut b, &inputs[w..]);
    let enable = b.and(a_nz, b_nz);
    let outputs: Vec<SignalId> = product.iter().map(|&p| b.and(p, enable)).collect();
    b.outputs(&outputs);
    b.finish().expect("zero-guard wrapper is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_dist::Pmf;
    use apx_metrics::med_of_table;
    use apx_techlib::{area_of, TechLibrary};

    #[test]
    fn truncated_family_error_grows_with_k() {
        let lib = MultiplierLibrary::truncated_family(6);
        let mut last = -1.0;
        for k in 1..=9u32 {
            let e = med_of_table(&lib.get(&format!("trunc_{k}")).unwrap().table);
            assert!(e > last, "k={k}: {e} vs {last}");
            last = e;
        }
    }

    #[test]
    fn exact_entries_have_zero_error() {
        for lib in [
            MultiplierLibrary::truncated_family(6),
            MultiplierLibrary::broken_family(6),
            MultiplierLibrary::evoapprox_like(6),
        ] {
            let exact = lib.get("exact_array").unwrap();
            assert_eq!(med_of_table(&exact.table), 0.0);
            assert_eq!(exact.family, Family::Exact);
        }
    }

    #[test]
    fn library_names_are_unique() {
        let lib = MultiplierLibrary::evoapprox_like(8);
        let mut names: Vec<&str> = lib.iter().map(|e| e.name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len());
        assert!(before > 10, "expected a meaningful library, got {before}");
    }

    #[test]
    fn zero_guard_is_exact_on_zero_operands() {
        let base = baugh_wooley_broken(4, 3, 4);
        let guarded = zero_guarded(&base, 4);
        let gt = OpTable::from_netlist(&guarded, 4, true).unwrap();
        let bt = OpTable::from_netlist(&base, 4, true).unwrap();
        for v in -8i64..8 {
            assert_eq!(gt.get(0, v), 0, "0*{v}");
            assert_eq!(gt.get(v, 0), 0, "{v}*0");
        }
        // Non-zero operands keep the base behaviour.
        for a in -8i64..8 {
            for b in -8i64..8 {
                if a != 0 && b != 0 {
                    assert_eq!(gt.get(a, b), bt.get(a, b), "{a}*{b}");
                }
            }
        }
    }

    #[test]
    fn zero_guard_matches_table_wrapper() {
        // Netlist-level and table-level zero guards agree.
        let base = truncated_multiplier(4, 5);
        let guarded = zero_guarded(&base, 4);
        let gt = OpTable::from_netlist(&guarded, 4, false).unwrap();
        let bt = OpTable::from_netlist(&base, 4, false).unwrap().with_zero_guard();
        for a in 0..16i64 {
            for b in 0..16i64 {
                assert_eq!(gt.get(a, b), bt.get(a, b), "{a}*{b}");
            }
        }
    }

    #[test]
    fn zero_guard_helps_under_zero_heavy_distribution() {
        // A distribution with most mass at 0 must prefer the guarded
        // multiplier: that's the paper's argument for [6].
        let width = 6;
        let base = baugh_wooley_broken(width, 4, 6);
        let guarded = zero_guarded(&base, width);
        let mut weights = vec![1.0; 64];
        weights[0] = 200.0; // heavy spike at zero, like NN weights
        let pmf = Pmf::from_weights(width, weights).unwrap();
        let eval = apx_metrics::CircuitEvaluator::new(width, true, &pmf).unwrap();
        let wmed_base = eval.wmed(&base);
        let wmed_guarded = eval.wmed(&guarded);
        assert!(wmed_guarded < wmed_base, "guarded {wmed_guarded} vs base {wmed_base}");
    }

    #[test]
    fn families_trade_area_for_error() {
        let lib = MultiplierLibrary::broken_family(8);
        let tech = TechLibrary::nangate45();
        let exact_area = area_of(&lib.get("exact_array").unwrap().netlist, &tech);
        for entry in lib.iter() {
            if entry.family != Family::Exact {
                assert!(
                    area_of(&entry.netlist, &tech) <= exact_area,
                    "{} larger than exact",
                    entry.name
                );
            }
        }
    }

    #[test]
    fn signed_families_are_signed() {
        let lib = MultiplierLibrary::broken_family_signed(6);
        assert!(lib.is_signed());
        let exact = lib.get("exact_bw").unwrap();
        assert_eq!(exact.table.get(-32, 31), -32 * 31);
        let zg = MultiplierLibrary::zero_guard_family_signed(6);
        assert!(zg.len() > 5);
        for e in zg.iter() {
            if e.family == Family::ZeroGuard {
                assert_eq!(e.table.get(0, -17), 0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "duplicate entry name")]
    fn duplicate_names_panic() {
        let mut lib = MultiplierLibrary::new(4, false);
        lib.push_netlist("m", array_multiplier(4), Family::Exact);
        lib.push_netlist("m", array_multiplier(4), Family::Exact);
    }
}
