//! Technology-library cost model for gate-level netlists.
//!
//! The paper scores evolved circuits by *estimated area* during the search
//! (Eq. 1) and re-synthesizes the best candidates with Synopsys Design
//! Compiler on a 45 nm process for the final power numbers. This crate is
//! the reproduction's substitute for both steps (see ARCHITECTURE.md):
//!
//! * [`TechLibrary`] holds per-gate-kind [`CellParams`] — area, intrinsic
//!   delay, leakage and switching energy — with values inspired by the
//!   NanGate 45 nm Open Cell Library at `Vdd = 1 V`;
//! * [`area_of`] / [`delay_of`] are the cheap estimators used inside the
//!   CGP fitness loop (only *active* gates count);
//! * [`estimate`] combines structure with a switching-[`ActivityReport`]
//!   (measured under the application's data distribution) into a full
//!   [`CircuitEstimate`]: dynamic + leakage power and the power-delay
//!   product reported in the paper's figures.
//!
//! # Examples
//!
//! ```
//! use apx_gates::NetlistBuilder;
//! use apx_techlib::{TechLibrary, area_of, delay_of};
//!
//! let mut b = NetlistBuilder::new(2);
//! let s = b.xor(b.input(0), b.input(1));
//! b.outputs(&[s]);
//! let nl = b.finish().unwrap();
//! let lib = TechLibrary::nangate45();
//! assert!(area_of(&nl, &lib) > 0.0);
//! assert!(delay_of(&nl, &lib) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use apx_dist::Pmf;
use apx_gates::{ActivityReport, GateKind, Netlist};
use apx_rng::Xoshiro256;

/// Physical parameters of one standard cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellParams {
    /// Cell area in µm².
    pub area_um2: f64,
    /// Intrinsic propagation delay in ns.
    pub delay_ns: f64,
    /// Leakage power in nW.
    pub leakage_nw: f64,
    /// Energy per output transition in fJ.
    pub switch_energy_fj: f64,
}

const NUM_KINDS: usize = GateKind::ALL.len();

/// A technology library: one [`CellParams`] per [`GateKind`].
#[derive(Debug, Clone, PartialEq)]
pub struct TechLibrary {
    name: String,
    cells: [CellParams; NUM_KINDS],
}

fn kind_index(kind: GateKind) -> usize {
    GateKind::ALL.iter().position(|&k| k == kind).expect("every kind is in ALL")
}

impl TechLibrary {
    /// 45 nm library with NanGate-OCL-inspired cell parameters
    /// (`Vdd = 1 V`, typical corner). Constants and buffers are modelled as
    /// tie cells / small drivers.
    #[must_use]
    pub fn nangate45() -> Self {
        use GateKind::*;
        let mut cells =
            [CellParams { area_um2: 0.0, delay_ns: 0.0, leakage_nw: 0.0, switch_energy_fj: 0.0 };
                NUM_KINDS];
        let mut set = |kind: GateKind, area, delay, leak, energy| {
            cells[kind_index(kind)] = CellParams {
                area_um2: area,
                delay_ns: delay,
                leakage_nw: leak,
                switch_energy_fj: energy,
            };
        };
        set(Const0, 0.266, 0.000, 0.3, 0.0);
        set(Const1, 0.266, 0.000, 0.3, 0.0);
        set(Buf, 0.798, 0.030, 1.5, 0.8);
        set(Not, 0.532, 0.010, 1.2, 0.6);
        set(And, 1.064, 0.040, 2.3, 1.2);
        set(Nand, 0.798, 0.015, 1.8, 0.8);
        set(Or, 1.064, 0.045, 2.3, 1.2);
        set(Nor, 0.798, 0.020, 1.9, 0.8);
        set(Xor, 1.596, 0.055, 3.0, 1.8);
        set(Xnor, 1.596, 0.055, 3.1, 1.8);
        set(AndNotB, 1.064, 0.042, 2.4, 1.3);
        set(AndNotA, 1.064, 0.042, 2.4, 1.3);
        set(OrNotB, 1.064, 0.047, 2.4, 1.3);
        set(OrNotA, 1.064, 0.047, 2.4, 1.3);
        TechLibrary { name: "nangate45".to_owned(), cells }
    }

    /// Unit library: every cell costs area 1, delay 1, leakage 1, energy 1
    /// (constants cost 0). Useful for structure-only comparisons and tests.
    #[must_use]
    pub fn unit() -> Self {
        let mut cells =
            [CellParams { area_um2: 1.0, delay_ns: 1.0, leakage_nw: 1.0, switch_energy_fj: 1.0 };
                NUM_KINDS];
        for kind in [GateKind::Const0, GateKind::Const1] {
            cells[kind_index(kind)] =
                CellParams { area_um2: 0.0, delay_ns: 0.0, leakage_nw: 0.0, switch_energy_fj: 0.0 };
        }
        TechLibrary { name: "unit".to_owned(), cells }
    }

    /// Library name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Parameters of `kind`'s cell.
    #[must_use]
    pub fn cell(&self, kind: GateKind) -> &CellParams {
        &self.cells[kind_index(kind)]
    }

    /// Replaces the parameters of one cell (for calibration studies).
    pub fn set_cell(&mut self, kind: GateKind, params: CellParams) {
        self.cells[kind_index(kind)] = params;
    }
}

impl Default for TechLibrary {
    fn default() -> Self {
        Self::nangate45()
    }
}

/// Total cell area of the *active* gates, in µm².
///
/// This is the fitness cost of Eq. 1 — dead CGP genes cost nothing.
#[must_use]
pub fn area_of(netlist: &Netlist, lib: &TechLibrary) -> f64 {
    let active = netlist.active_mask();
    let ni = netlist.num_inputs();
    netlist
        .nodes()
        .iter()
        .enumerate()
        .filter(|(k, _)| active[ni + k])
        .map(|(_, node)| lib.cell(node.kind).area_um2)
        .sum()
}

/// Critical-path delay through the active cone, in ns.
#[must_use]
pub fn delay_of(netlist: &Netlist, lib: &TechLibrary) -> f64 {
    let ni = netlist.num_inputs();
    let mut arrival = vec![0.0f64; netlist.num_signals()];
    for (k, node) in netlist.nodes().iter().enumerate() {
        let t_in = match node.kind.arity() {
            0 => 0.0,
            1 => arrival[node.a.index()],
            _ => arrival[node.a.index()].max(arrival[node.b.index()]),
        };
        arrival[ni + k] = t_in + lib.cell(node.kind).delay_ns;
    }
    netlist.outputs().iter().map(|o| arrival[o.index()]).fold(0.0, f64::max)
}

/// Leakage power of the active gates, in nW.
#[must_use]
pub fn leakage_of(netlist: &Netlist, lib: &TechLibrary) -> f64 {
    let active = netlist.active_mask();
    let ni = netlist.num_inputs();
    netlist
        .nodes()
        .iter()
        .enumerate()
        .filter(|(k, _)| active[ni + k])
        .map(|(_, node)| lib.cell(node.kind).leakage_nw)
        .sum()
}

/// Full physical estimate of a circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitEstimate {
    /// Active-cell area in µm².
    pub area_um2: f64,
    /// Critical-path delay in ns.
    pub delay_ns: f64,
    /// Leakage power in µW.
    pub leakage_uw: f64,
    /// Dynamic (switching) power in µW at the estimate's clock.
    pub dynamic_uw: f64,
    /// Clock frequency used for the dynamic component, in MHz.
    pub clock_mhz: f64,
}

impl CircuitEstimate {
    /// Total power (dynamic + leakage) in µW.
    #[must_use]
    pub fn power_uw(&self) -> f64 {
        self.dynamic_uw + self.leakage_uw
    }

    /// Total power in mW (the unit of the paper's Fig. 3/5).
    #[must_use]
    pub fn power_mw(&self) -> f64 {
        self.power_uw() / 1000.0
    }

    /// Power-delay product in fJ (µW × ns), the paper's Fig. 6 metric.
    #[must_use]
    pub fn pdp_fj(&self) -> f64 {
        self.power_uw() * self.delay_ns
    }
}

/// Default clock for power estimates (MHz).
pub const DEFAULT_CLOCK_MHZ: f64 = 1000.0;

/// Combines structure and measured switching activity into a
/// [`CircuitEstimate`].
///
/// `activity` must come from [`ActivityReport::estimate`] on the same
/// netlist. Dynamic power is `Σ_active E_sw · toggle_rate · f`; dead gates
/// contribute nothing.
///
/// # Panics
///
/// Panics if `activity` was computed for a different netlist shape.
#[must_use]
pub fn estimate(
    netlist: &Netlist,
    lib: &TechLibrary,
    activity: &ActivityReport,
    clock_mhz: f64,
) -> CircuitEstimate {
    assert_eq!(
        activity.toggle_rate.len(),
        netlist.num_signals(),
        "activity report does not match netlist"
    );
    let active = netlist.active_mask();
    let ni = netlist.num_inputs();
    let mut dynamic_uw = 0.0;
    for (k, node) in netlist.nodes().iter().enumerate() {
        let sig = ni + k;
        if !active[sig] {
            continue;
        }
        let e_fj = lib.cell(node.kind).switch_energy_fj;
        // fJ · toggles/cycle · MHz = 1e-15 J · 1e6 /s = 1e-9 W = 1e-3 µW.
        dynamic_uw += e_fj * activity.toggle_rate[sig] * clock_mhz * 1e-3;
    }
    CircuitEstimate {
        area_um2: area_of(netlist, lib),
        delay_ns: delay_of(netlist, lib),
        leakage_uw: leakage_of(netlist, lib) / 1000.0,
        dynamic_uw,
        clock_mhz,
    }
}

/// Estimates a two-operand circuit under its application distribution:
/// operand A (inputs `0..w`) follows `pmf_a`, operand B and any further
/// inputs are uniform. `blocks` 64-vector blocks of stimuli are simulated.
///
/// This mirrors the paper's methodology of reporting power for the data
/// the application actually feeds the component.
///
/// # Panics
///
/// Panics if the netlist has fewer than `pmf_a.width()` inputs or
/// `blocks == 0`.
#[must_use]
pub fn estimate_under_pmf(
    netlist: &Netlist,
    lib: &TechLibrary,
    pmf_a: &Pmf,
    clock_mhz: f64,
    blocks: usize,
    rng: &mut Xoshiro256,
) -> CircuitEstimate {
    let w = pmf_a.width() as usize;
    assert!(netlist.num_inputs() >= w, "netlist narrower than the pmf operand");
    let sampler = pmf_a.sampler();
    let activity = ActivityReport::estimate(netlist, blocks, |inputs| {
        // Operand A: per-lane samples from the distribution.
        inputs[..w].fill(0);
        for lane in 0..64 {
            let x = sampler.sample(rng) as u64;
            for (i, word) in inputs[..w].iter_mut().enumerate() {
                *word |= ((x >> i) & 1) << lane;
            }
        }
        // Everything else: uniform random.
        for word in &mut inputs[w..] {
            *word = rng.next_u64();
        }
    });
    estimate(netlist, lib, &activity, clock_mhz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_arith::{array_multiplier, truncated_multiplier};
    use apx_gates::NetlistBuilder;

    fn xor_netlist() -> Netlist {
        let mut b = NetlistBuilder::new(2);
        let s = b.xor(b.input(0), b.input(1));
        b.outputs(&[s]);
        b.finish().unwrap()
    }

    #[test]
    fn unit_library_counts_gates() {
        let lib = TechLibrary::unit();
        let nl = array_multiplier(4);
        assert_eq!(area_of(&nl, &lib), nl.active_gate_count() as f64);
        assert_eq!(delay_of(&nl, &lib), nl.depth() as f64);
    }

    #[test]
    fn dead_gates_cost_nothing() {
        let mut b = NetlistBuilder::new(2);
        let (x, y) = (b.input(0), b.input(1));
        let live = b.and(x, y);
        let _dead = b.xor(x, y);
        b.outputs(&[live]);
        let nl = b.finish().unwrap();
        let lib = TechLibrary::nangate45();
        assert!((area_of(&nl, &lib) - lib.cell(GateKind::And).area_um2).abs() < 1e-12);
    }

    #[test]
    fn truncation_reduces_all_costs() {
        let lib = TechLibrary::nangate45();
        let exact = array_multiplier(8);
        let trunc = truncated_multiplier(8, 8);
        assert!(area_of(&trunc, &lib) < area_of(&exact, &lib));
        assert!(leakage_of(&trunc, &lib) < leakage_of(&exact, &lib));
        assert!(delay_of(&trunc, &lib) <= delay_of(&exact, &lib));
    }

    #[test]
    fn estimate_produces_plausible_multiplier_power() {
        let lib = TechLibrary::nangate45();
        let nl = array_multiplier(8);
        let mut rng = Xoshiro256::from_seed(3);
        let est = estimate_under_pmf(&nl, &lib, &Pmf::uniform(8), DEFAULT_CLOCK_MHZ, 64, &mut rng);
        // An exact 8-bit multiplier at 45 nm / 1 GHz: tens to hundreds µW.
        assert!(est.power_uw() > 20.0 && est.power_uw() < 2000.0, "power {} µW", est.power_uw());
        // Delay of a ripple array: on the order of a nanosecond.
        assert!(est.delay_ns > 0.3 && est.delay_ns < 5.0, "delay {}", est.delay_ns);
        assert!(est.pdp_fj() > 0.0);
        assert!((est.power_mw() - est.power_uw() / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn constant_stimulus_means_no_dynamic_power() {
        let lib = TechLibrary::nangate45();
        let nl = xor_netlist();
        let activity = ActivityReport::estimate(&nl, 4, |inputs| {
            inputs[0] = !0;
            inputs[1] = 0;
        });
        let est = estimate(&nl, &lib, &activity, DEFAULT_CLOCK_MHZ);
        assert_eq!(est.dynamic_uw, 0.0);
        assert!(est.leakage_uw > 0.0);
        assert!(est.power_uw() > 0.0);
    }

    #[test]
    fn skewed_distribution_changes_power() {
        // A point-mass distribution on x freezes operand A -> lower power
        // than uniform stimulation.
        let lib = TechLibrary::nangate45();
        let nl = array_multiplier(6);
        let mut weights = vec![0.0; 64];
        weights[0] = 1.0;
        let frozen = Pmf::from_weights(6, weights).unwrap();
        let mut rng1 = Xoshiro256::from_seed(9);
        let mut rng2 = Xoshiro256::from_seed(9);
        let est_frozen = estimate_under_pmf(&nl, &lib, &frozen, DEFAULT_CLOCK_MHZ, 64, &mut rng1);
        let est_uniform =
            estimate_under_pmf(&nl, &lib, &Pmf::uniform(6), DEFAULT_CLOCK_MHZ, 64, &mut rng2);
        assert!(est_frozen.dynamic_uw < est_uniform.dynamic_uw);
    }

    #[test]
    fn pdp_is_power_times_delay() {
        let est = CircuitEstimate {
            area_um2: 10.0,
            delay_ns: 2.0,
            leakage_uw: 1.0,
            dynamic_uw: 4.0,
            clock_mhz: 1000.0,
        };
        assert!((est.pdp_fj() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn set_cell_overrides_parameters() {
        let mut lib = TechLibrary::unit();
        lib.set_cell(
            GateKind::Xor,
            CellParams { area_um2: 5.0, delay_ns: 1.0, leakage_nw: 1.0, switch_energy_fj: 1.0 },
        );
        let nl = xor_netlist();
        assert_eq!(area_of(&nl, &lib), 5.0);
        assert_eq!(lib.name(), "unit");
    }
}
