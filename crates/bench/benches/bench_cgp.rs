//! CGP machinery: mutation, decoding and whole fitness evaluations — the
//! per-candidate cost that bounds how many designs a run can explore.

use apx_arith::array_multiplier;
use apx_cgp::{mutate, Chromosome, FunctionSet};
use apx_core::Eq1Fitness;
use apx_dist::Pmf;
use apx_rng::Xoshiro256;
use apx_techlib::TechLibrary;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_cgp(c: &mut Criterion) {
    let mut group = c.benchmark_group("cgp");
    group.sample_size(20);

    let seed_nl = array_multiplier(8);
    let funcs = FunctionSet::extended();
    let seed = Chromosome::from_netlist(&seed_nl, &funcs, seed_nl.gate_count() + 60).unwrap();

    group.bench_function("mutate_h5", |b| {
        let mut rng = Xoshiro256::from_seed(1);
        let mut chrom = seed.clone();
        b.iter(|| {
            mutate(&mut chrom, 5, &mut rng);
            black_box(chrom.len())
        });
    });
    group.bench_function("decode_active_8bit_multiplier", |b| {
        b.iter(|| black_box(seed.decode_active()));
    });
    group.bench_function("eq1_fitness_accepting_candidate", |b| {
        let fitness =
            Eq1Fitness::new(8, false, &Pmf::uniform(8), TechLibrary::nangate45(), 0.5).unwrap();
        b.iter(|| black_box(fitness.of(black_box(&seed))));
    });
    group.bench_function("eq1_fitness_rejecting_candidate", |b| {
        // Tight budget + mutated candidate: exercises the early abort.
        let fitness =
            Eq1Fitness::new(8, false, &Pmf::uniform(8), TechLibrary::nangate45(), 1e-7).unwrap();
        let mut rng = Xoshiro256::from_seed(2);
        let mut chrom = seed.clone();
        for _ in 0..50 {
            mutate(&mut chrom, 5, &mut rng);
        }
        b.iter(|| black_box(fitness.of(black_box(&chrom))));
    });
    group.finish();
}

criterion_group!(benches, bench_cgp);
criterion_main!(benches);
