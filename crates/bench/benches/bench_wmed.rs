//! Cost of WMED evaluation — full, early-aborted, and with zero-weight
//! block skipping (the fitness hot path of Eq. 1).

use apx_arith::{array_multiplier, truncated_multiplier};
use apx_dist::Pmf;
use apx_metrics::CircuitEvaluator;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_wmed(c: &mut Criterion) {
    let mut group = c.benchmark_group("wmed");
    group.sample_size(20);

    let exact = array_multiplier(8);
    let bad = truncated_multiplier(8, 12);
    let uniform = CircuitEvaluator::new(8, false, &Pmf::uniform(8)).unwrap();

    group.bench_function("full_pass_uniform", |b| {
        b.iter(|| black_box(uniform.wmed(black_box(&exact))));
    });
    group.bench_function("early_abort_rejects_violator", |b| {
        // The common CGP case: the offspring violates the budget and is
        // rejected after a handful of blocks.
        b.iter(|| black_box(uniform.wmed_bounded(black_box(&bad), 1e-6)));
    });

    // Concentrated distribution (like NN weights): most operand blocks
    // carry zero probability and are skipped outright.
    let mut weights = vec![0.0f64; 256];
    for (w, v) in weights.iter_mut().zip(-16i64..16) {
        let _ = v;
        *w = 1.0;
    }
    let concentrated = Pmf::from_weights(8, weights).unwrap();
    let sparse = CircuitEvaluator::new(8, false, &concentrated).unwrap();
    group.bench_function("sparse_support_skips_blocks", |b| {
        b.iter(|| black_box(sparse.wmed(black_box(&exact))));
    });
    group.bench_function("full_stats_pass", |b| {
        b.iter(|| black_box(uniform.stats(black_box(&exact))));
    });
    group.finish();
}

criterion_group!(benches, bench_wmed);
criterion_main!(benches);
