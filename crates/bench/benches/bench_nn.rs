//! Neural-network substrate throughput: float forward, quantized forward
//! through a multiplier table, and dataset synthesis (case-study-2
//! machinery).

use apx_arith::OpTable;
use apx_datasets::mnist_like;
use apx_nn::{train, Network, QuantizedNetwork, TrainConfig};
use apx_rng::Xoshiro256;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_nn(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn");
    group.sample_size(10);

    let data = mnist_like(96, 4242);
    let mut rng = Xoshiro256::from_seed(7);
    let mut net = Network::mlp(784, 48, 10, &mut rng);
    train(&mut net, &data, &TrainConfig { epochs: 2, ..Default::default() });
    let (calib, _) = data.split(32);
    let qnet = QuantizedNetwork::quantize(&net, &calib);
    let exact = OpTable::exact_mul(8, true);
    let img = data.image(0).to_vec();

    group.bench_function("float_forward_mlp_784_48_10", |b| {
        b.iter(|| black_box(net.forward(black_box(&img))));
    });
    group.bench_function("quantized_forward_with_table", |b| {
        b.iter(|| black_box(qnet.forward_with(black_box(&img), &exact)));
    });
    group.bench_function("quantize_network", |b| {
        b.iter(|| black_box(QuantizedNetwork::quantize(black_box(&net), &calib)));
    });
    group.bench_function("dataset_synthesis_32_images", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(mnist_like(32, seed))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_nn);
criterion_main!(benches);
