//! Gaussian-filter pipeline throughput (Fig. 5 machinery).

use apx_arith::{truncated_multiplier, OpTable};
use apx_imgproc::{convolve3x3, convolve3x3_exact, psnr, synth, Kernel3};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter");
    group.sample_size(20);

    let img = synth::test_images(1, 64, 64, 9).pop().unwrap();
    let kernel = Kernel3::gaussian(1.0);
    let table = OpTable::from_netlist(&truncated_multiplier(8, 6), 8, false).unwrap();

    group.bench_function("convolve3x3_table_64x64", |b| {
        b.iter(|| black_box(convolve3x3(black_box(&img), &kernel, &table)));
    });
    group.bench_function("convolve3x3_exact_64x64", |b| {
        b.iter(|| black_box(convolve3x3_exact(black_box(&img), &kernel)));
    });
    group.bench_function("psnr_64x64", |b| {
        let filtered = convolve3x3_exact(&img, &kernel);
        b.iter(|| black_box(psnr(black_box(&img), black_box(&filtered))));
    });
    group.bench_function("scene_synthesis_64x64", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(synth::test_images(1, 64, 64, seed))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_filter);
criterion_main!(benches);
