//! The sweep driver itself: pool scheduling + shared-evaluator overhead
//! on a small grid, single- vs multi-threaded. (`bench_sweep` the *bin*
//! measures the full Fig. 3 grid and records `results/BENCH_sweep.json`.)

use apx_core::{run_sweep, FlowConfig, SweepConfig, SweepDist};
use apx_dist::Pmf;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn small_grid(threads: usize) -> SweepConfig {
    SweepConfig {
        distributions: vec![
            SweepDist::new("Dh", Pmf::half_normal(4, 3.0)),
            SweepDist::new("Du", Pmf::uniform(4)),
        ],
        flow: FlowConfig {
            width: 4,
            thresholds: vec![0.005, 0.02],
            iterations: 60,
            cols_slack: 20,
            activity_blocks: 8,
            threads,
            seed: 7,
            ..FlowConfig::default()
        },
        // Benchmarks measure evolution, never cache reads.
        ..SweepConfig::default()
    }
}

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("grid_2x2_width4_threads1", |b| {
        let cfg = small_grid(1);
        b.iter(|| black_box(run_sweep(&cfg).expect("sweep").entries.len()));
    });
    group.bench_function("grid_2x2_width4_threads4", |b| {
        let cfg = small_grid(4);
        b.iter(|| black_box(run_sweep(&cfg).expect("sweep").entries.len()));
    });
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
