//! Throughput of the bit-parallel netlist simulator — the primitive that
//! makes evolutionary circuit approximation feasible.

use apx_arith::{array_multiplier, wallace_multiplier};
use apx_gates::{BlockSim, Exhaustive};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_bitsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitsim");
    group.sample_size(20);

    let array = array_multiplier(8);
    let wallace = wallace_multiplier(8);
    let ex = Exhaustive::new(16);

    group.bench_function("exhaustive_8bit_array_multiplier", |b| {
        b.iter(|| black_box(ex.output_table(black_box(&array))));
    });
    group.bench_function("exhaustive_8bit_wallace_multiplier", |b| {
        b.iter(|| black_box(ex.output_table(black_box(&wallace))));
    });
    group.bench_function("single_block_64_vectors", |b| {
        let mut sim = BlockSim::new(&array);
        let mut inputs = vec![0u64; 16];
        ex.fill_inputs(17, &mut inputs);
        b.iter(|| {
            let out = sim.run(black_box(&array), black_box(&inputs));
            black_box(out[0])
        });
    });
    group.finish();
}

criterion_group!(benches, bench_bitsim);
criterion_main!(benches);
