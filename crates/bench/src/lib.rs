#![doc = include_str!("../README.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use apx_arith::Operator;
use apx_core::nn_flow::{prepare_case, CaseConfig, CaseKind, CaseStudy};
use apx_core::{FlowConfig, LibraryConfig, Shard, SweepConfig, SweepStats};
use apx_dist::Pmf;
use std::path::PathBuf;

/// Reads an integer environment knob. Unset or empty (after trimming)
/// falls back to `default`.
///
/// # Panics
///
/// Panics on a malformed non-empty value. Falling back silently would let
/// `APX_ITERS=2k` quietly run the 2000-iteration default — a typo must
/// not change the computation (the strict-`APX_SHARD` rationale).
#[must_use]
pub fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Err(_) => default,
        Ok(v) if v.trim().is_empty() => default,
        Ok(v) => v.trim().parse().unwrap_or_else(|_| {
            panic!(
                "{name}=`{v}` is not an integer — refusing to fall back to the default \
                 ({default}); fix or unset the variable"
            )
        }),
    }
}

/// Reads a `usize` environment knob.
///
/// # Panics
///
/// Panics on a malformed non-empty value, like [`env_u64`].
#[must_use]
pub fn env_usize(name: &str, default: usize) -> usize {
    env_u64(name, default as u64) as usize
}

/// CGP generations per run (`APX_ITERS`).
#[must_use]
pub fn iterations() -> u64 {
    env_u64("APX_ITERS", 2_000)
}

/// Independent runs per error level (`APX_RUNS`).
#[must_use]
pub fn runs(default: usize) -> usize {
    env_usize("APX_RUNS", default)
}

/// The arithmetic operator a sweep binary evolves (`APX_OP`: `mul`,
/// `add` or `mac`; unset or empty means `mul`).
///
/// # Panics
///
/// Panics on an unrecognized value — silently evolving multipliers when
/// the run asked for adders would be a different experiment wearing the
/// requested one's name (the strict-knob rationale of [`env_u64`]).
#[must_use]
pub fn operator() -> Operator {
    match std::env::var("APX_OP") {
        Err(_) => Operator::Mul,
        Ok(v) if v.trim().is_empty() => Operator::Mul,
        Ok(v) => v.trim().parse().unwrap_or_else(|e| panic!("APX_OP {e}")),
    }
}

/// The paper's D1: a normal distribution centred mid-range (Fig. 2 left).
#[must_use]
pub fn d1() -> Pmf {
    Pmf::normal(8, 127.0, 32.0)
}

/// The paper's D2: a half-normal distribution favouring small operands
/// (Fig. 2 right).
#[must_use]
pub fn d2() -> Pmf {
    Pmf::half_normal(8, 48.0)
}

/// The uniform reference distribution Du.
#[must_use]
pub fn du() -> Pmf {
    Pmf::uniform(8)
}

/// The paper's three sweep distributions as named [`run_sweep`] inputs,
/// in panel order `[D1, D2, Du]` (index 2 is the uniform reference).
///
/// [`run_sweep`]: apx_core::run_sweep
#[must_use]
pub fn sweep_distributions() -> Vec<apx_core::SweepDist> {
    vec![
        apx_core::SweepDist::new("D1", d1()),
        apx_core::SweepDist::new("D2", d2()),
        apx_core::SweepDist::new("Du", du()),
    ]
}

/// Directory for CSV mirrors of the printed tables.
#[must_use]
pub fn results_dir() -> PathBuf {
    // crates/bench -> workspace root -> results/
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// The sweep result cache directory for the figure binaries
/// (`APX_CACHE_DIR`): defaults to `results/cache`; an empty value or
/// `off` disables caching.
#[must_use]
pub fn cache_dir() -> Option<PathBuf> {
    match std::env::var("APX_CACHE_DIR") {
        Ok(v) if v.is_empty() || v == "off" => None,
        Ok(v) => Some(PathBuf::from(v)),
        Err(_) => Some(results_dir().join("cache")),
    }
}

/// Like [`cache_dir`], but with no default: `Some` only when
/// `APX_CACHE_DIR` is set (and not disabled). Used by `bench_sweep`,
/// whose job is to *measure* the sweep — an implicit warm cache would
/// quietly turn its throughput numbers into cache-read numbers.
#[must_use]
pub fn explicit_cache_dir() -> Option<PathBuf> {
    std::env::var("APX_CACHE_DIR").ok().filter(|v| !v.is_empty() && v != "off").map(PathBuf::from)
}

/// Parses an `APX_SHARD`-style `i/n` split.
///
/// # Errors
///
/// Describes the defect (shape, parse, `index >= count`).
pub fn parse_shard(spec: &str) -> Result<Shard, String> {
    let (i, n) = spec.split_once('/').ok_or_else(|| format!("`{spec}`: expected `i/n`"))?;
    let index: usize = i.trim().parse().map_err(|_| format!("`{spec}`: bad shard index"))?;
    let count: usize = n.trim().parse().map_err(|_| format!("`{spec}`: bad shard count"))?;
    if count == 0 || index >= count {
        return Err(format!("`{spec}`: need 0 <= index < count"));
    }
    Ok(Shard { index, count })
}

/// The shard this process should compute (`APX_SHARD=i/n`), if any.
///
/// # Panics
///
/// Panics on a malformed specification — a typo silently computing the
/// whole grid would defeat the point of sharding. The panic carries
/// [`parse_shard`]'s diagnosis (shape, parse, `index >= count`), not a
/// bare unwrap.
#[must_use]
pub fn shard() -> Option<Shard> {
    std::env::var("APX_SHARD")
        .ok()
        .filter(|v| !v.is_empty())
        .map(|v| parse_shard(&v).unwrap_or_else(|e| panic!("APX_SHARD {e}")))
}

/// Parses an `APX_LIBRARY`-style component-library specification against
/// the process's cache directory:
///
/// * empty or `off` — library mode disabled (`None`);
/// * `on` — harvest `cache_dir` (a warm cache becomes a component
///   library; candidates that meet a task's threshold under the task's
///   distribution are taken without evolution);
/// * `full` — `on` plus the conventional [`apx_approxlib`] designs as
///   additional candidates;
/// * anything else — a directory to harvest (e.g. another experiment's
///   cache, while this run checkpoints elsewhere or not at all).
#[must_use]
pub fn parse_library(spec: &str, cache_dir: Option<PathBuf>) -> Option<LibraryConfig> {
    match spec {
        "" | "off" => None,
        "on" => Some(LibraryConfig { dir: cache_dir, ..LibraryConfig::default() }),
        "full" => {
            Some(LibraryConfig { dir: cache_dir, conventional: true, ..LibraryConfig::default() })
        }
        dir => Some(LibraryConfig { dir: Some(PathBuf::from(dir)), ..LibraryConfig::default() }),
    }
}

/// The component-library mode for the figure binaries (`APX_LIBRARY`,
/// resolved against [`cache_dir`]). Defaults to off: library reuse
/// changes which multiplier serves a task (that is its point), so it is
/// strictly opt-in — unlike the exact-replay cache, which is transparent.
#[must_use]
pub fn library_config() -> Option<LibraryConfig> {
    parse_library(&std::env::var("APX_LIBRARY").unwrap_or_default(), cache_dir())
        .map(|lc| LibraryConfig { prune: prune_enabled(), semantic_dedup: equiv_enabled(), ..lc })
}

/// Parses an `APX_PRUNE`-style switch: empty or `on` enables the
/// bound-based library pruning (the default — it is provably invisible
/// to sweep results), `off` disables it.
///
/// # Errors
///
/// Describes the accepted values on anything unrecognized.
pub fn parse_prune(spec: &str) -> Result<bool, String> {
    match spec {
        "" | "on" => Ok(true),
        "off" => Ok(false),
        other => Err(format!("`{other}`: expected `on` or `off`")),
    }
}

/// Whether library re-scoring may skip provably hopeless candidates
/// (`APX_PRUNE`, default on). The `off` escape hatch exists to measure
/// the pruning itself and to rule it out when chasing a discrepancy.
///
/// # Panics
///
/// Panics on an unrecognized value (the strict-knob rationale of
/// [`env_u64`]).
#[must_use]
pub fn prune_enabled() -> bool {
    parse_prune(std::env::var("APX_PRUNE").unwrap_or_default().trim())
        .unwrap_or_else(|e| panic!("APX_PRUNE {e}"))
}

/// Parses an `APX_VERIFY`-style switch: empty or `off` keeps
/// `cache_stats` in its plain listing mode, `on` adds the static-lint
/// audit pass.
///
/// # Errors
///
/// Describes the accepted values on anything unrecognized.
pub fn parse_verify(spec: &str) -> Result<bool, String> {
    match spec {
        "" | "off" => Ok(false),
        "on" => Ok(true),
        other => Err(format!("`{other}`: expected `on` or `off`")),
    }
}

/// Whether `cache_stats` should run the `apx_verify` lint over every
/// entry it lists (`APX_VERIFY`, default off — the audit re-decodes
/// every netlist, which is not free on big caches).
///
/// # Panics
///
/// Panics on an unrecognized value — a typo silently skipping a
/// requested audit would report a cache as unexamined-but-assumed-clean.
#[must_use]
pub fn verify_enabled() -> bool {
    parse_verify(std::env::var("APX_VERIFY").unwrap_or_default().trim())
        .unwrap_or_else(|e| panic!("APX_VERIFY {e}"))
}

/// Parses an `APX_EQUIV`-style switch: empty or `on` enables the
/// BDD-backed semantic passes (the default — equivalence-class dedup is
/// provably invisible to sweep results), `off` disables them.
///
/// # Errors
///
/// Describes the accepted values on anything unrecognized.
pub fn parse_equiv(spec: &str) -> Result<bool, String> {
    match spec {
        "" | "on" => Ok(true),
        "off" => Ok(false),
        other => Err(format!("`{other}`: expected `on` or `off`")),
    }
}

/// Whether the semantic verification layer is active (`APX_EQUIV`,
/// default on): equivalence-class dedup in library mode, GC
/// equivalence-class collapse, and the equivalence summaries of
/// `cache_stats`/`netlist_lint`. The `off` escape hatch exists to
/// measure the passes themselves and to rule them out when chasing a
/// discrepancy — sweep results are identical either way.
///
/// # Panics
///
/// Panics on an unrecognized value (the strict-knob rationale of
/// [`env_u64`]).
#[must_use]
pub fn equiv_enabled() -> bool {
    parse_equiv(std::env::var("APX_EQUIV").unwrap_or_default().trim())
        .unwrap_or_else(|e| panic!("APX_EQUIV {e}"))
}

/// Width ceiling for `netlist_lint --seeds` (`APX_SEEDS_MAX_WIDTH`,
/// default 16 — the symbolic backend's own cap, i.e. every supported
/// width). The seed proofs pin one operand per weighted value, so their
/// cost doubles per width bit; CI caps the ladder to stay fast while
/// the uncapped default remains the complete audit.
#[must_use]
pub fn seeds_max_width() -> u32 {
    env_u64("APX_SEEDS_MAX_WIDTH", 16) as u32
}

/// Number of local shard processes the `orchestrate` binary spawns
/// (`APX_ORCH_SHARDS`).
#[must_use]
pub fn orch_shards() -> usize {
    env_usize("APX_ORCH_SHARDS", 2)
}

/// The worker binary the `orchestrate` binary supervises
/// (`APX_ORCH_BIN`). Validated against the known sweep workloads by the
/// orchestrator itself.
#[must_use]
pub fn orch_bin() -> String {
    std::env::var("APX_ORCH_BIN")
        .ok()
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| "fig3_pareto".to_owned())
}

/// Relaunch budget per dead shard (`APX_ORCH_RELAUNCHES`).
#[must_use]
pub fn orch_relaunches() -> usize {
    env_usize("APX_ORCH_RELAUNCHES", 2)
}

/// Garbage-collection mode of the `orchestrate` binary (`APX_GC`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcMode {
    /// No collection (the default).
    Off,
    /// Collect after the grid completed and the assembly run succeeded.
    After,
    /// Skip the grid entirely: just collect the directory and exit.
    Only,
}

/// Parses an `APX_GC`-style mode specification.
///
/// # Errors
///
/// Describes the accepted values on anything unrecognized.
pub fn parse_gc_mode(spec: &str) -> Result<GcMode, String> {
    match spec {
        "" | "off" => Ok(GcMode::Off),
        "on" => Ok(GcMode::After),
        "only" => Ok(GcMode::Only),
        other => Err(format!("`{other}`: expected `off`, `on` or `only`")),
    }
}

/// The garbage-collection mode for the `orchestrate` binary (`APX_GC`).
///
/// # Panics
///
/// Panics on an unrecognized value — silently skipping a requested
/// collection would leave the operator believing the directory was
/// curated.
#[must_use]
pub fn gc_mode() -> GcMode {
    parse_gc_mode(&std::env::var("APX_GC").unwrap_or_default())
        .unwrap_or_else(|e| panic!("APX_GC {e}"))
}

/// Minimum age before a writer temp file counts as stale litter for a
/// standalone GC pass (`APX_GC_TMP_TTL_SECS`, default 900 s). The
/// orchestrator's own post-grid pass uses zero instead: every writer it
/// spawned has already exited.
#[must_use]
pub fn gc_tmp_ttl() -> std::time::Duration {
    std::time::Duration::from_secs(env_u64("APX_GC_TMP_TTL_SECS", 900))
}

/// The sweep grid `fig3_pareto` serves, reconstructed from the same
/// environment knobs the binary itself reads (`APX_ITERS`, `APX_RUNS`).
/// One definition keeps the binary, the orchestrator's progress target
/// and the GC pass's live-key set in lockstep.
#[must_use]
pub fn fig3_sweep_grid() -> SweepConfig {
    SweepConfig {
        distributions: sweep_distributions(),
        flow: FlowConfig {
            width: 8,
            signed: false,
            iterations: iterations(),
            runs_per_threshold: runs(1),
            seed: 0xF163,
            ..FlowConfig::default()
        },
        ..SweepConfig::default()
    }
}

/// The sweep grid `fig_adders` serves: the paper's three distributions
/// against unsigned 8-bit approximate *adders* — the same 14-threshold
/// shape as Fig. 3, with [`Operator::Add`] threaded through evaluator,
/// cache and library. Reconstructible here for the same reason as
/// [`fig3_sweep_grid`]: orchestration and GC must agree with the binary
/// on the live key set.
#[must_use]
pub fn fig_adders_sweep_grid() -> SweepConfig {
    SweepConfig {
        distributions: sweep_distributions(),
        flow: FlowConfig {
            operator: Operator::Add,
            width: 8,
            signed: false,
            iterations: iterations(),
            runs_per_threshold: runs(1),
            seed: 0xADD5,
            ..FlowConfig::default()
        },
        ..SweepConfig::default()
    }
}

/// The sweep grid `fig4_heatmaps` serves (one mid-range WMED budget per
/// distribution), under the same knobs as the binary.
#[must_use]
pub fn fig4_sweep_grid() -> SweepConfig {
    SweepConfig {
        distributions: sweep_distributions(),
        flow: FlowConfig {
            width: 8,
            thresholds: vec![2e-3],
            iterations: iterations(),
            seed: 0xF164,
            ..FlowConfig::default()
        },
        ..SweepConfig::default()
    }
}

/// The deliberately tiny 4-bit grid of the `sweep_smoke` binary: 2
/// distributions × 3 thresholds × 2 runs, minutes of debug-profile
/// compute instead of hours. It exists so orchestrator end-to-end tests
/// (spawn, kill, relaunch, assemble, GC) can exercise real shard
/// processes without paying for the 8-bit figure grids.
#[must_use]
pub fn smoke_sweep_grid() -> SweepConfig {
    SweepConfig {
        distributions: vec![
            apx_core::SweepDist::new("Dh", Pmf::half_normal(4, 3.0)),
            apx_core::SweepDist::new("Du", Pmf::uniform(4)),
        ],
        flow: FlowConfig {
            width: 4,
            thresholds: vec![0.0, 0.02, 0.1],
            iterations: env_u64("APX_ITERS", 150),
            runs_per_threshold: 2,
            cols_slack: 20,
            activity_blocks: 8,
            seed: 0x500E,
            ..FlowConfig::default()
        },
        ..SweepConfig::default()
    }
}

/// The width-12 multiplier grid of the `sweep_wide` binary: one
/// measured-lumpy distribution × 2 thresholds × 1 run at a width no
/// enumeration backend can evaluate (24 netlist inputs, past the
/// enumeration engines' 20-input cap). It exists so CI can prove the symbolic
/// engine carries the *whole* sweep pipeline — seeded evolution, bounded
/// scoring, activity-based power estimation — past the exhaustive-width
/// wall, not just isolated WMED calls. Running it under an enumeration
/// backend fails loud at config validation, which is the point: this
/// grid is only executable with `APX_EVAL_BACKEND=symbolic`.
#[must_use]
pub fn wide_sweep_grid() -> SweepConfig {
    // A deterministic "measured" histogram: six spikes of random integer
    // mass. Few weighted values keep the symbolic evaluations fast (its
    // cost scales with the weighted support, never with `2^width`).
    let mut rng = apx_rng::Xoshiro256::from_seed(0x51DE);
    let mut weights = vec![0.0f64; 1 << 12];
    for _ in 0..6 {
        weights[rng.gen_range(1 << 12)] += 1.0 + rng.gen_range(15) as f64;
    }
    SweepConfig {
        distributions: vec![apx_core::SweepDist::new(
            "Dlumpy12",
            Pmf::from_weights(12, weights).expect("spikes guarantee positive mass"),
        )],
        flow: FlowConfig {
            width: 12,
            thresholds: vec![0.0, 1e-3],
            iterations: env_u64("APX_ITERS", 10),
            runs_per_threshold: 1,
            cols_slack: 10,
            activity_blocks: 4,
            seed: 0x51DE,
            ..FlowConfig::default()
        },
        ..SweepConfig::default()
    }
}

/// The statically known sweep grid a worker binary serves, by binary
/// name — `None` for binaries the orchestrator can run but whose grid it
/// cannot reconstruct (`table1_finetune`'s cache keys depend on measured
/// NN weight distributions, so its live set would require training the
/// classifiers here).
#[must_use]
pub fn sweep_grid_of(bin: &str) -> Option<SweepConfig> {
    match bin {
        "fig3_pareto" => Some(fig3_sweep_grid()),
        "fig_adders" => Some(fig_adders_sweep_grid()),
        "fig4_heatmaps" => Some(fig4_sweep_grid()),
        "sweep_smoke" => Some(smoke_sweep_grid()),
        _ => None,
    }
}

/// Renders one error-metric value for a CSV/table cell.
///
/// This is the report-surface half of the wide-width stats contract:
/// past exhaustive widths the symbolic engine computes every metric
/// except `mred` exactly, and `mred` is `NaN` by contract
/// ([`apx_metrics::ErrorStats::mred`]). A raw `{:.e}` of that value
/// would print the literal `NaN` into a CSV, which downstream parsers
/// read as a string and plotting scripts silently drop — so finite
/// values render in scientific notation and anything non-finite renders
/// as the explicit `n/a` marker. No emitted CSV may ever carry a
/// literal `NaN`/`inf` token (regression-tested in `bench_json.rs`).
#[must_use]
pub fn metric_cell(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.9e}")
    } else {
        "n/a".to_owned()
    }
}

/// The JSON form of the [`metric_cell`] contract: JSON has no `NaN`
/// token at all (the grammar rejects it), so non-finite metric values
/// render as `null` and finite ones as plain numbers.
#[must_use]
pub fn json_metric(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.9e}")
    } else {
        "null".to_owned()
    }
}

/// Prints the reuse counters of a sweep in the shared format every
/// figure binary (and the CI smoke greps) rely on — one line per enabled
/// mechanism, nothing when the sweep ran without cache and library.
pub fn print_sweep_counters(cfg: &apx_core::SweepConfig, stats: &SweepStats) {
    println!("evaluator backend: {}", apx_metrics::EvalBackend::from_env());
    println!("operator: {}", cfg.flow.operator);
    if let Some(dir) = &cfg.cache_dir {
        println!(
            "cache: {} hits, {} misses, {} shard-skipped ({})",
            stats.cache_hits,
            stats.cache_misses,
            stats.shard_skipped,
            dir.display()
        );
    }
    if cfg.library.is_some() {
        println!(
            "library: {} hits, {} seeded evolutions, {} pruned, {} semantic dups",
            stats.library_hits,
            stats.seeded_evolutions,
            stats.library_pruned,
            stats.library_semantic_dups
        );
    }
}

/// Renders one [`SweepStats`] as a JSON object for `BENCH_sweep.json`.
///
/// The rate is re-derived through [`SweepStats::rate`] over the
/// evaluations *this* run computed: the clamped denominator keeps it a
/// finite JSON number even when `wall_seconds` is (or rounds to) zero —
/// `{:.1}` of an unclamped division emitted `inf`, which no JSON parser
/// accepts — and rating cache hits would claim CGP throughput for file
/// reads.
#[must_use]
pub fn sweep_stats_json(s: &SweepStats) -> String {
    format!(
        "{{\"threads\": {}, \"wall_seconds\": {:.6}, \"total_evaluations\": {}, \
         \"computed_evaluations\": {}, \"evaluations_per_second\": {:.1}, \"cache_hits\": {}, \
         \"cache_misses\": {}, \"shard_skipped\": {}, \"library_hits\": {}, \
         \"seeded_evolutions\": {}, \"library_pruned\": {}, \"library_semantic_dups\": {}}}",
        s.threads,
        s.wall_seconds,
        s.total_evaluations,
        s.computed_evaluations,
        SweepStats::rate(s.computed_evaluations, s.wall_seconds),
        s.cache_hits,
        s.cache_misses,
        s.shard_skipped,
        s.library_hits,
        s.seeded_evolutions,
        s.library_pruned,
        s.library_semantic_dups
    )
}

/// Shape of the benchmarked sweep grid, recorded in `BENCH_sweep.json`.
#[derive(Debug, Clone, Copy)]
pub struct BenchGrid {
    /// Number of input distributions in the grid.
    pub distributions: usize,
    /// Number of WMED thresholds per distribution.
    pub thresholds: usize,
    /// Independent CGP runs per threshold.
    pub runs_per_threshold: usize,
}

/// Assembles the complete `BENCH_sweep.json` document from the two
/// benchmark passes (full pool vs. one thread).
///
/// `backend` records which simulation engine produced the numbers (the
/// [`apx_metrics::EvalBackend`] name) — a scalar-backend rate must never
/// be mistaken for a bit-parallel regression in the perf history. `op`
/// records the arithmetic operator the grid evolved (the `APX_OP` knob)
/// for the same reason: adder and multiplier grids have different
/// evaluation costs.
#[must_use]
pub fn bench_sweep_json(
    grid: BenchGrid,
    iterations: u64,
    cpu_cores: usize,
    backend: &str,
    op: Operator,
    multi: &SweepStats,
    single: &SweepStats,
) -> String {
    let speedup = single.wall_seconds / multi.wall_seconds.max(1e-9);
    format!(
        "{{\n  \"bench\": \"fig3_sweep\",\n  \"grid\": {{\"distributions\": {}, \"thresholds\": \
         {}, \"runs_per_threshold\": {}, \"tasks\": {}}},\n  \"iterations\": {iterations},\n  \
         \"cpu_cores\": {cpu_cores},\n  \"backend\": \"{backend}\",\n  \"op\": \"{op}\",\n  \
         \"multi_thread\": {},\n  \"single_thread\": {},\n  \"speedup\": {speedup:.4}\n}}\n",
        grid.distributions,
        grid.thresholds,
        grid.runs_per_threshold,
        multi.tasks,
        sweep_stats_json(multi),
        sweep_stats_json(single),
    )
}

/// One measured cell of the wide-width benchmark grid: a
/// (operator, width, backend) combination and the wall time its
/// candidate evaluations took.
#[derive(Debug, Clone)]
pub struct WideCell {
    /// Arithmetic operator evaluated.
    pub op: Operator,
    /// Operand width in bits.
    pub width: u32,
    /// Backend name ([`apx_metrics::EvalBackend::name`]).
    pub backend: &'static str,
    /// Number of full WMED evaluations timed.
    pub evaluations: u64,
    /// Wall time of those evaluations, in seconds.
    pub wall_seconds: f64,
    /// The seed circuit's mean relative error distance under the cell's
    /// PMF — `NaN` past exhaustive widths (the wide-width stats
    /// contract), rendered as JSON `null` via [`json_metric`].
    pub mred: f64,
}

/// Assembles the `results/BENCH_symbolic.json` document from the wide-width
/// benchmark's measured cells.
///
/// `weighted_values` records how many operand encodings carried
/// distribution mass (the symbolic engine's cost scales with that count,
/// not with `2^width`, so the rate is meaningless without it). Rates go
/// through [`SweepStats::rate`] for the same reason as
/// [`sweep_stats_json`]: a sub-microsecond cell must not print `inf` into
/// the perf history.
#[must_use]
pub fn bench_wide_json(weighted_values: usize, cells: &[WideCell]) -> String {
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"op\": \"{}\", \"width\": {}, \"backend\": \"{}\", \"evaluations\": {}, \
                 \"wall_seconds\": {:.6}, \"evaluations_per_second\": {:.3}, \"mred\": {}}}",
                c.op,
                c.width,
                c.backend,
                c.evaluations,
                c.wall_seconds,
                SweepStats::rate(c.evaluations, c.wall_seconds),
                json_metric(c.mred)
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"bench_wide\",\n  \"weighted_values\": {weighted_values},\n  \
         \"cells\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    )
}

/// Prepares the MNIST-like MLP case at bench scale.
#[must_use]
pub fn mlp_case() -> CaseStudy {
    prepare_case(&CaseConfig {
        kind: CaseKind::Mlp { hidden: env_usize("APX_HIDDEN", 48) },
        train_n: env_usize("APX_TRAIN_N", 1_200),
        test_n: env_usize("APX_TEST_N", 300),
        calib_n: 64,
        epochs: env_usize("APX_EPOCHS", 15),
        lr: 0.03,
        seed: 1001,
    })
}

/// Prepares the SVHN-like LeNet case at bench scale (conv nets are ~20×
/// more expensive per sample; defaults are sized accordingly).
#[must_use]
pub fn lenet_case() -> CaseStudy {
    prepare_case(&CaseConfig {
        kind: CaseKind::LeNet,
        train_n: env_usize("APX_TRAIN_N", 500),
        test_n: env_usize("APX_TEST_N", 150),
        calib_n: 32,
        epochs: env_usize("APX_EPOCHS", 8),
        lr: 0.015,
        seed: 2002,
    })
}

/// Fine-tuning iterations (`APX_FT_ITERS`; the paper uses 10).
#[must_use]
pub fn finetune_iters() -> usize {
    env_usize("APX_FT_ITERS", 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The process environment and the panic hook are process-global;
    /// the default test harness is multi-threaded. Every test that calls
    /// `set_var`/`remove_var`, reads a variable another test writes, or
    /// swaps the panic hook must hold this lock — concurrent
    /// getenv/setenv is a data race, and interleaved hook swaps can leave
    /// the silencing no-op hook installed for the rest of the run.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn env_lock() -> std::sync::MutexGuard<'static, ()> {
        ENV_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Runs `f` with the panic hook silenced, returning the panic message
    /// (if any) — `#[should_panic]` can't assert several cases per test.
    /// Callers must hold [`env_lock`].
    fn panic_message_of(f: impl FnOnce() + std::panic::UnwindSafe) -> Option<String> {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = std::panic::catch_unwind(f);
        std::panic::set_hook(hook);
        result.err().map(|e| {
            e.downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_default()
        })
    }

    #[test]
    fn env_knobs_fall_back_to_defaults() {
        let _guard = env_lock();
        assert_eq!(env_u64("APX_DEFINITELY_UNSET_VAR", 7), 7);
        assert!(iterations() > 0);
        // Empty and whitespace-only values count as unset; surrounding
        // whitespace around a valid number is tolerated.
        std::env::set_var("APX_TEST_EMPTY_KNOB", "");
        assert_eq!(env_u64("APX_TEST_EMPTY_KNOB", 9), 9);
        std::env::set_var("APX_TEST_BLANK_KNOB", "  ");
        assert_eq!(env_u64("APX_TEST_BLANK_KNOB", 9), 9);
        std::env::set_var("APX_TEST_PADDED_KNOB", " 123 ");
        assert_eq!(env_u64("APX_TEST_PADDED_KNOB", 9), 123);
        assert_eq!(env_usize("APX_TEST_PADDED_KNOB", 9), 123);
    }

    #[test]
    fn malformed_env_knobs_fail_loudly_not_silently() {
        let _guard = env_lock();
        // Regression: `APX_ITERS=2k` used to quietly run the default 2000
        // iterations. A malformed non-empty value must name the variable
        // and the offending value, never fall back.
        for bad in ["2k", "12.5", "-3", "1_000", "0x10"] {
            std::env::set_var("APX_TEST_BAD_KNOB", bad);
            let msg = panic_message_of(|| {
                let _ = env_u64("APX_TEST_BAD_KNOB", 2_000);
            })
            .unwrap_or_else(|| panic!("`{bad}` must be rejected"));
            assert!(msg.contains("APX_TEST_BAD_KNOB"), "missing variable name: {msg}");
            assert!(msg.contains(bad), "missing offending value: {msg}");
            let msg = panic_message_of(|| {
                let _ = env_usize("APX_TEST_BAD_KNOB", 4);
            })
            .expect("env_usize inherits the strictness");
            assert!(msg.contains("APX_TEST_BAD_KNOB"), "{msg}");
        }
        std::env::remove_var("APX_TEST_BAD_KNOB");
    }

    #[test]
    fn malformed_shard_spec_surfaces_the_parse_diagnosis() {
        let _guard = env_lock();
        // Regression: `.expect("APX_SHARD")` threw away `parse_shard`'s
        // message. The panic must carry the actual defect.
        std::env::set_var("APX_SHARD", "5/4");
        let msg = panic_message_of(|| {
            let _ = shard();
        })
        .expect("out-of-range shard must panic");
        std::env::remove_var("APX_SHARD");
        assert!(msg.contains("APX_SHARD"), "{msg}");
        assert!(msg.contains("`5/4`"), "offending spec missing: {msg}");
        assert!(msg.contains("need 0 <= index < count"), "diagnosis missing: {msg}");
    }

    #[test]
    fn gc_modes_parse_or_explain() {
        assert_eq!(parse_gc_mode(""), Ok(GcMode::Off));
        assert_eq!(parse_gc_mode("off"), Ok(GcMode::Off));
        assert_eq!(parse_gc_mode("on"), Ok(GcMode::After));
        assert_eq!(parse_gc_mode("only"), Ok(GcMode::Only));
        let err = parse_gc_mode("yes").unwrap_err();
        assert!(err.contains("`yes`") && err.contains("only"), "{err}");
    }

    #[test]
    fn orchestratable_grids_are_reconstructible_by_name() {
        // Reads `APX_ITERS`/`APX_RUNS` while other tests may write env.
        let _guard = env_lock();
        let fig3 = sweep_grid_of("fig3_pareto").expect("fig3 grid");
        assert_eq!(fig3.distributions.len(), 3);
        assert_eq!(fig3.flow.thresholds.len(), 14);
        assert_eq!(fig3.flow.seed, 0xF163);
        let fig4 = sweep_grid_of("fig4_heatmaps").expect("fig4 grid");
        assert_eq!(fig4.flow.thresholds, vec![2e-3]);
        let adders = sweep_grid_of("fig_adders").expect("adder grid");
        assert_eq!(adders.flow.operator, Operator::Add);
        assert!(!adders.flow.signed);
        assert_eq!(adders.flow.thresholds.len(), 14, "same threshold ladder as Fig. 3");
        assert_eq!(adders.flow.seed, 0xADD5);
        assert_ne!(
            apx_core::grid_keys(&adders),
            apx_core::grid_keys(&fig3),
            "the adder grid must never collide with the multiplier cache"
        );
        let smoke = sweep_grid_of("sweep_smoke").expect("smoke grid");
        assert_eq!(smoke.flow.width, 4, "the smoke grid must stay cheap");
        assert_eq!(apx_core::grid_keys(&smoke).len(), 12);
        // table1's grid depends on measured weight PMFs: not static.
        assert_eq!(sweep_grid_of("table1_finetune"), None);
        assert_eq!(sweep_grid_of("nonsense"), None);
    }

    #[test]
    fn shard_specs_parse_or_explain() {
        assert_eq!(parse_shard("0/4"), Ok(Shard { index: 0, count: 4 }));
        assert_eq!(parse_shard(" 3 / 4 "), Ok(Shard { index: 3, count: 4 }));
        for bad in ["", "3", "4/4", "5/4", "a/4", "1/b", "1/0", "-1/4"] {
            assert!(parse_shard(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn library_specs_resolve_against_the_cache_dir() {
        let cache = Some(PathBuf::from("/tmp/somecache"));
        assert_eq!(parse_library("", cache.clone()), None);
        assert_eq!(parse_library("off", cache.clone()), None);
        let on = parse_library("on", cache.clone()).unwrap();
        assert_eq!(on.dir, cache);
        assert!(!on.conventional);
        assert!(on.take_hits);
        assert!(on.prune, "bound pruning defaults on (it is provably invisible)");
        assert!(on.semantic_dedup, "semantic dedup defaults on (equally invisible)");
        let full = parse_library("full", cache.clone()).unwrap();
        assert_eq!(full.dir, cache);
        assert!(full.conventional);
        let explicit = parse_library("/some/other/dir", None).unwrap();
        assert_eq!(explicit.dir, Some(PathBuf::from("/some/other/dir")));
        assert!(!explicit.conventional);
        // `on` with caching disabled scans nothing (still a valid mode:
        // bit-identical to off, by the library-mode contract).
        assert_eq!(parse_library("on", None).unwrap().dir, None);
    }

    #[test]
    fn verify_and_prune_switches_parse_or_explain() {
        assert_eq!(parse_verify(""), Ok(false));
        assert_eq!(parse_verify("off"), Ok(false));
        assert_eq!(parse_verify("on"), Ok(true));
        let err = parse_verify("yes").unwrap_err();
        assert!(err.contains("`yes`") && err.contains("off"), "{err}");

        assert_eq!(parse_prune(""), Ok(true), "pruning is on by default");
        assert_eq!(parse_prune("on"), Ok(true));
        assert_eq!(parse_prune("off"), Ok(false));
        assert!(parse_prune("maybe").is_err());

        assert_eq!(parse_equiv(""), Ok(true), "the semantic layer is on by default");
        assert_eq!(parse_equiv("on"), Ok(true));
        assert_eq!(parse_equiv("off"), Ok(false));
        let err = parse_equiv("sure").unwrap_err();
        assert!(err.contains("`sure`") && err.contains("off"), "{err}");

        let _guard = env_lock();
        std::env::set_var("APX_VERIFY", "sure");
        let msg = panic_message_of(|| {
            let _ = verify_enabled();
        })
        .expect("unknown APX_VERIFY value must panic, never fall back");
        std::env::remove_var("APX_VERIFY");
        assert!(msg.contains("APX_VERIFY"), "missing knob name: {msg}");
        std::env::set_var("APX_PRUNE", "sometimes");
        let msg = panic_message_of(|| {
            let _ = prune_enabled();
        })
        .expect("unknown APX_PRUNE value must panic, never fall back");
        std::env::remove_var("APX_PRUNE");
        assert!(msg.contains("APX_PRUNE"), "missing knob name: {msg}");
        std::env::set_var("APX_EQUIV", "maybe");
        let msg = panic_message_of(|| {
            let _ = equiv_enabled();
        })
        .expect("unknown APX_EQUIV value must panic, never fall back");
        std::env::remove_var("APX_EQUIV");
        assert!(msg.contains("APX_EQUIV"), "missing knob name: {msg}");
    }

    #[test]
    fn operator_knob_parses_or_fails_loudly() {
        let _guard = env_lock();
        std::env::remove_var("APX_OP");
        assert_eq!(operator(), Operator::Mul, "unset defaults to the multiplier");
        for (spec, want) in [("mul", Operator::Mul), ("add", Operator::Add), ("mac", Operator::Mac)]
        {
            std::env::set_var("APX_OP", spec);
            assert_eq!(operator(), want);
            std::env::set_var("APX_OP", format!(" {spec} "));
            assert_eq!(operator(), want, "surrounding whitespace is tolerated");
        }
        std::env::set_var("APX_OP", "");
        assert_eq!(operator(), Operator::Mul, "empty counts as unset");
        std::env::set_var("APX_OP", "adder");
        let msg = panic_message_of(|| {
            let _ = operator();
        })
        .expect("unknown operator must panic, never fall back");
        std::env::remove_var("APX_OP");
        assert!(msg.contains("APX_OP"), "missing knob name: {msg}");
        assert!(msg.contains("adder"), "missing offending value: {msg}");
    }

    #[test]
    fn paper_distributions_have_the_right_shapes() {
        let d1 = d1();
        assert!(d1.prob(127) > d1.prob(20));
        let d2 = d2();
        assert!(d2.prob(0) > d2.prob(128));
        assert_eq!(du().support_size(), 256);
    }
}
