//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one figure or table of the
//! paper (see DESIGN.md §5 for the index). Experiment scale is controlled
//! by environment variables so the same binaries serve quick smoke runs
//! and overnight full-scale reproductions:
//!
//! | Variable | Meaning | Default |
//! |----------|---------|---------|
//! | `APX_ITERS` | CGP generations per run | 2000 |
//! | `APX_RUNS` | independent CGP runs per error level | 1 (fig6: 5) |
//! | `APX_TRAIN_N` | NN training samples | per-case |
//! | `APX_TEST_N` | NN test samples | per-case |
//! | `APX_EPOCHS` | NN training epochs | per-case |
//! | `APX_FT_ITERS` | fine-tuning iterations (paper: 10) | 2 |
//!
//! Results are printed as paper-style rows and mirrored as CSV under
//! `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use apx_core::nn_flow::{prepare_case, CaseConfig, CaseKind, CaseStudy};
use apx_dist::Pmf;
use std::path::PathBuf;

/// Reads an integer environment knob.
#[must_use]
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Reads a `usize` environment knob.
#[must_use]
pub fn env_usize(name: &str, default: usize) -> usize {
    env_u64(name, default as u64) as usize
}

/// CGP generations per run (`APX_ITERS`).
#[must_use]
pub fn iterations() -> u64 {
    env_u64("APX_ITERS", 2_000)
}

/// Independent runs per error level (`APX_RUNS`).
#[must_use]
pub fn runs(default: usize) -> usize {
    env_usize("APX_RUNS", default)
}

/// The paper's D1: a normal distribution centred mid-range (Fig. 2 left).
#[must_use]
pub fn d1() -> Pmf {
    Pmf::normal(8, 127.0, 32.0)
}

/// The paper's D2: a half-normal distribution favouring small operands
/// (Fig. 2 right).
#[must_use]
pub fn d2() -> Pmf {
    Pmf::half_normal(8, 48.0)
}

/// The uniform reference distribution Du.
#[must_use]
pub fn du() -> Pmf {
    Pmf::uniform(8)
}

/// The paper's three sweep distributions as named [`run_sweep`] inputs,
/// in panel order `[D1, D2, Du]` (index 2 is the uniform reference).
///
/// [`run_sweep`]: apx_core::run_sweep
#[must_use]
pub fn sweep_distributions() -> Vec<apx_core::SweepDist> {
    vec![
        apx_core::SweepDist::new("D1", d1()),
        apx_core::SweepDist::new("D2", d2()),
        apx_core::SweepDist::new("Du", du()),
    ]
}

/// Directory for CSV mirrors of the printed tables.
#[must_use]
pub fn results_dir() -> PathBuf {
    // crates/bench -> workspace root -> results/
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Prepares the MNIST-like MLP case at bench scale.
#[must_use]
pub fn mlp_case() -> CaseStudy {
    prepare_case(&CaseConfig {
        kind: CaseKind::Mlp { hidden: env_usize("APX_HIDDEN", 48) },
        train_n: env_usize("APX_TRAIN_N", 1_200),
        test_n: env_usize("APX_TEST_N", 300),
        calib_n: 64,
        epochs: env_usize("APX_EPOCHS", 15),
        lr: 0.03,
        seed: 1001,
    })
}

/// Prepares the SVHN-like LeNet case at bench scale (conv nets are ~20×
/// more expensive per sample; defaults are sized accordingly).
#[must_use]
pub fn lenet_case() -> CaseStudy {
    prepare_case(&CaseConfig {
        kind: CaseKind::LeNet,
        train_n: env_usize("APX_TRAIN_N", 500),
        test_n: env_usize("APX_TEST_N", 150),
        calib_n: 32,
        epochs: env_usize("APX_EPOCHS", 8),
        lr: 0.015,
        seed: 2002,
    })
}

/// Fine-tuning iterations (`APX_FT_ITERS`; the paper uses 10).
#[must_use]
pub fn finetune_iters() -> usize {
    env_usize("APX_FT_ITERS", 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_knobs_fall_back_to_defaults() {
        assert_eq!(env_u64("APX_DEFINITELY_UNSET_VAR", 7), 7);
        assert!(iterations() > 0);
    }

    #[test]
    fn paper_distributions_have_the_right_shapes() {
        let d1 = d1();
        assert!(d1.prob(127) > d1.prob(20));
        let d2 = d2();
        assert!(d2.prob(0) > d2.prob(128));
        assert_eq!(du().support_size(), 256);
    }
}
