//! Fig. 3: power vs WMED Pareto fronts.
//!
//! Evolves 8-bit multipliers under D1, D2 and Du across the paper's 14
//! WMED targets, cross-evaluates every circuit under all three metrics,
//! adds the truncated and broken-array baselines, and prints one series
//! table per metric panel. CSV mirror: `results/fig3_pareto.csv`.
//!
//! Scale knobs: `APX_ITERS` (default 2000; paper ≈ 10^6), `APX_RUNS`.

use apx_bench::{d1, d2, du, iterations, results_dir, runs};
use apx_core::report::TextTable;
use apx_core::{evolve_multipliers, pareto_indices, FlowConfig};
use apx_metrics::MultEvaluator;
use apx_rng::Xoshiro256;
use apx_techlib::{estimate_under_pmf, TechLibrary, DEFAULT_CLOCK_MHZ};

struct Point {
    series: String,
    name: String,
    wmed: [f64; 3], // under D1, D2, Du
    power_mw: f64,
}

fn main() {
    let dists = [("D1", d1()), ("D2", d2()), ("Du", du())];
    let iters = iterations();
    let n_runs = runs(1);
    println!("=== Fig. 3: Pareto fronts (iterations/run = {iters}, runs/level = {n_runs}) ===\n");

    let evaluators: Vec<MultEvaluator> =
        dists.iter().map(|(_, p)| MultEvaluator::new(8, false, p).expect("evaluator")).collect();
    let tech = TechLibrary::nangate45();
    let mut points: Vec<Point> = Vec::new();

    // Proposed: evolve under each distribution.
    for (name, pmf) in &dists {
        let cfg = FlowConfig {
            width: 8,
            signed: false,
            iterations: iters,
            runs_per_threshold: n_runs,
            seed: 0xF163,
            ..FlowConfig::default()
        };
        let result = evolve_multipliers(pmf, &cfg).expect("flow");
        for m in result.best_per_threshold() {
            let wmed = [
                evaluators[0].wmed(&m.netlist),
                evaluators[1].wmed(&m.netlist),
                evaluators[2].wmed(&m.netlist),
            ];
            points.push(Point {
                series: format!("proposed ({name})"),
                name: m.name.clone(),
                wmed,
                power_mw: m.estimate.power_mw(),
            });
        }
        println!("evolved {} multipliers for {name}", result.multipliers.len());
    }

    // Baselines: truncated and broken-array multipliers.
    let mut rng = Xoshiro256::from_seed(0xBA5E);
    let mut add_baseline = |series: &str, name: String, netlist: &apx_gates::Netlist| {
        let wmed =
            [evaluators[0].wmed(netlist), evaluators[1].wmed(netlist), evaluators[2].wmed(netlist)];
        // Baseline power is reported under the uniform distribution, as in
        // the paper's library comparisons.
        let est = estimate_under_pmf(netlist, &tech, &du(), DEFAULT_CLOCK_MHZ, 32, &mut rng);
        points.push(Point { series: series.to_owned(), name, wmed, power_mw: est.power_mw() });
    };
    for k in 1..=12u32 {
        add_baseline("truncated", format!("trunc_{k}"), &apx_arith::truncated_multiplier(8, k));
    }
    for (hbl, vbl) in
        [(8u32, 2u32), (8, 4), (8, 6), (8, 8), (8, 10), (7, 4), (7, 8), (6, 6), (6, 10), (5, 8)]
    {
        add_baseline(
            "broken-array",
            format!("bam_h{hbl}_v{vbl}"),
            &apx_arith::broken_array_multiplier(8, hbl, vbl),
        );
    }

    // One panel per metric.
    let mut csv = TextTable::new(vec!["panel", "series", "name", "wmed_pct", "power_mw"]);
    for (panel, (dist_name, _)) in dists.iter().enumerate() {
        println!("\n--- panel WMED_{dist_name} (power [mW] vs error) ---");
        let mut table = TextTable::new(vec!["series", "name", "WMED %", "power mW", "pareto"]);
        let panel_points: Vec<(f64, f64)> =
            points.iter().map(|p| (p.wmed[panel], p.power_mw)).collect();
        let front = pareto_indices(&panel_points);
        for (i, p) in points.iter().enumerate() {
            table.row(vec![
                p.series.clone(),
                p.name.clone(),
                format!("{:.5}", p.wmed[panel] * 100.0),
                format!("{:.4}", p.power_mw),
                if front.contains(&i) { "*".to_owned() } else { String::new() },
            ]);
            csv.row(vec![
                format!("WMED_{dist_name}"),
                p.series.clone(),
                p.name.clone(),
                format!("{:.6}", p.wmed[panel] * 100.0),
                format!("{:.5}", p.power_mw),
            ]);
        }
        println!("{}", table.to_text());
        // Headline check: who owns the front in this panel?
        let proposed_on_front = front
            .iter()
            .filter(|&&i| points[i].series == format!("proposed ({dist_name})"))
            .count();
        println!(
            "pareto points from `proposed ({dist_name})`: {proposed_on_front} of {}",
            front.len()
        );
    }
    let path = results_dir().join("fig3_pareto.csv");
    csv.write_csv(&path).expect("write csv");
    println!("\nCSV written to {}", path.display());
}
