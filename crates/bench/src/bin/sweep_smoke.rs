//! Miniature orchestrator workload: a 4-bit sweep grid that honors the
//! full shard/cache/library knob contract at a fraction of the cost.
//!
//! The figure binaries are the real orchestrator workloads, but their
//! 8-bit grids are too expensive for debug-profile end-to-end tests
//! (spawn shards, kill one, relaunch, assemble, GC). This binary serves
//! the deliberately tiny [`smoke_sweep_grid`] — 2 distributions × 3
//! thresholds × 2 runs at width 4 — through exactly the same plumbing:
//! `APX_CACHE_DIR`, `APX_SHARD`, `APX_LIBRARY`, `APX_ITERS` (default 150
//! here), checkpointing every completed task and assembling warm runs
//! from hits. It doubles as the minimal example of the orchestrator's
//! worker contract: honor the two environment knobs and exit 0 once your
//! slice is covered.
//!
//! Extra knobs for failure-injection tests:
//!
//! * `APX_SMOKE_CRASH_ONCE` — a *sharded* run that has not crashed
//!   before (no marker in the cache directory) computes only a prefix of
//!   its grid, then dies via `abort()`: a deterministic stand-in for a
//!   shard killed mid-grid. The relaunch finds the marker, replays the
//!   prefix from cache and covers the remainder. Unsharded (assembly)
//!   runs ignore the knob.
//! * `APX_OUT_DIR` — where the CSV mirror `sweep_smoke.csv` goes
//!   (default `results/`), so concurrent tests never race on one file.
//!
//! The CSV is derived purely from the sweep entries, so a warm, sharded,
//! resumed or orchestrated run is byte-identical to a cold unsharded one.
//!
//! Full `APX_*` knob reference: `crates/bench/README.md`.

use apx_bench::{
    cache_dir, library_config, metric_cell, print_sweep_counters, results_dir, shard,
    smoke_sweep_grid,
};
use apx_core::report::TextTable;
use apx_core::run_sweep;
use std::path::PathBuf;

fn main() {
    let mut cfg = smoke_sweep_grid();
    cfg.cache_dir = cache_dir();
    cfg.shard = shard();
    cfg.library = library_config();
    println!(
        "=== sweep_smoke: {} tasks at width {} ({} iterations/run) ===",
        apx_core::grid_keys(&cfg).len(),
        cfg.flow.width,
        cfg.flow.iterations
    );

    // Failure injection: die partway through the shard's first launch.
    let crash = std::env::var("APX_SMOKE_CRASH_ONCE").is_ok_and(|v| !v.is_empty())
        && cfg.shard.is_some()
        && cfg.cache_dir.is_some();
    let marker = cfg
        .cache_dir
        .as_ref()
        .map(|dir| dir.join(format!(".smoke_crashed.{}", cfg.shard.map_or(0, |s| s.index))));
    if crash && marker.as_ref().is_some_and(|m| !m.exists()) {
        let marker = marker.expect("crash implies a cache dir");
        if let Some(parent) = marker.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(&marker, b"crashed once\n").expect("write crash marker");
        // A prefix of the grid: same task indices, same keys — whatever
        // this partial pass checkpoints is valid for every other
        // participant.
        cfg.flow.thresholds.truncate(cfg.flow.thresholds.len().div_ceil(2));
        let partial = run_sweep(&cfg).expect("partial sweep");
        eprintln!(
            "sweep_smoke: simulated mid-grid crash after {} checkpointed tasks \
             (APX_SMOKE_CRASH_ONCE)",
            partial.entries.len()
        );
        std::process::abort();
    }

    let result = run_sweep(&cfg).expect("sweep");
    print_sweep_counters(&cfg, &result.stats);

    let mut csv =
        TextTable::new(vec!["dist", "name", "threshold", "wmed", "mred", "area_um2", "power_mw"]);
    for e in &result.entries {
        let m = &e.circuit;
        csv.row(vec![
            e.dist.clone(),
            m.name.clone(),
            format!("{:e}", m.threshold),
            format!("{:.9e}", m.stats.wmed),
            // Finite at smoke width; `n/a` past exhaustive widths (the
            // wide-width stats contract, see `apx_bench::metric_cell`).
            metric_cell(m.stats.mred),
            format!("{:.6}", m.estimate.area_um2),
            format!("{:.6}", m.estimate.power_mw()),
        ]);
    }
    let out: PathBuf = std::env::var("APX_OUT_DIR")
        .ok()
        .filter(|v| !v.is_empty())
        .map_or_else(results_dir, PathBuf::from);
    let path = out.join("sweep_smoke.csv");
    csv.write_csv(&path).expect("write csv");
    println!("CSV written to {}", path.display());
}
