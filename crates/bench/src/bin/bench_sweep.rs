//! Sweep-layer throughput benchmark: the Fig. 3 grid (3 distributions ×
//! 14 WMED targets × `APX_RUNS`) through [`apx_core::run_sweep`], once on
//! the full worker pool and once on a single thread.
//!
//! Prints both runs, checks they are bit-for-bit identical (the pool must
//! not change results, only wall time), and records the numbers in
//! `results/BENCH_sweep.json` so the sweep layer's performance trajectory
//! is tracked from PR to PR.
//!
//! Scale knobs: `APX_ITERS` (default 200), `APX_RUNS` (default 1),
//! `APX_THREADS` (default: available parallelism), `APX_SHARD` (`i/n`),
//! `APX_OP` (`mul`/`add`/`mac` — bench a different operator's grid; the
//! active operator is recorded in the JSON),
//! `APX_LIBRARY` (component-library reuse; counters land in the JSON).
//! Unlike the figure binaries this bench only touches the result cache
//! when `APX_CACHE_DIR` is set explicitly — its purpose is to measure
//! evolution throughput, and a warm cache would measure file reads. The
//! same applies to `APX_LIBRARY`: set it deliberately to measure
//! library-mode throughput (re-scoring instead of evolution), and read
//! the `library_hits`/`seeded_evolutions` counters next to the rate.
//!
//! Full `APX_*` knob reference: `crates/bench/README.md`.

use apx_bench::{
    bench_sweep_json, env_u64, env_usize, explicit_cache_dir, operator, parse_library, results_dir,
    shard, sweep_distributions, BenchGrid,
};
use apx_core::{run_sweep, FlowConfig, SweepConfig, SweepResult, SweepStats};

fn print_stats(label: &str, s: &SweepStats) {
    println!(
        "{label:<14} threads = {:<3} wall = {:>8.3} s   {:>10.0} evaluations/s   \
         cache: {} hits, {} misses   library: {} hits, {} seeded",
        s.threads,
        s.wall_seconds,
        s.evaluations_per_second,
        s.cache_hits,
        s.cache_misses,
        s.library_hits,
        s.seeded_evolutions
    );
}

fn assert_identical(a: &SweepResult, b: &SweepResult) {
    assert_eq!(a.entries.len(), b.entries.len());
    for (x, y) in a.entries.iter().zip(&b.entries) {
        assert_eq!(
            x.circuit.chromosome, y.circuit.chromosome,
            "{} differs across thread counts",
            x.circuit.name
        );
    }
}

fn main() {
    let iters = env_u64("APX_ITERS", 200);
    let n_runs = env_usize("APX_RUNS", 1);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let multi = env_usize("APX_THREADS", cores);
    let backend = apx_metrics::EvalBackend::from_env();
    let op = operator();
    println!(
        "=== bench_sweep: Fig. 3 grid, {iters} iterations/run, {n_runs} run(s)/level, \
         {backend} backend, {op} operator ===\n"
    );

    let library =
        parse_library(&std::env::var("APX_LIBRARY").unwrap_or_default(), explicit_cache_dir());
    // With a library, the two passes must do identical work: disable the
    // checkpoint cache so the multi-thread pass cannot feed the
    // single-thread pass exact replays through the harvested directory.
    let cache_dir = if library.is_some() { None } else { explicit_cache_dir() };
    let mut cfg = SweepConfig {
        distributions: sweep_distributions(),
        flow: FlowConfig {
            operator: op,
            width: 8,
            signed: false,
            iterations: iters,
            runs_per_threshold: n_runs,
            seed: 0xBE7C,
            threads: multi,
            ..FlowConfig::default()
        },
        cache_dir,
        shard: shard(),
        library,
    };
    let multi_result = run_sweep(&cfg).expect("sweep");
    print_stats("multi-thread", &multi_result.stats);
    cfg.flow.threads = 1;
    // The single-thread reference must re-evolve, not replay what the
    // multi-thread pass just checkpointed. (Library mode is symmetric:
    // both passes consult the same pre-existing directory.)
    cfg.cache_dir = None;
    let single_result = run_sweep(&cfg).expect("sweep");
    print_stats("single-thread", &single_result.stats);
    assert_identical(&multi_result, &single_result);

    let speedup = single_result.stats.wall_seconds / multi_result.stats.wall_seconds.max(1e-9);
    println!("\nspeedup over 1 thread: {speedup:.2}x on {cores} core(s); results bit-identical");

    let grid = BenchGrid {
        distributions: cfg.distributions.len(),
        thresholds: cfg.flow.thresholds.len(),
        runs_per_threshold: n_runs,
    };
    let json = bench_sweep_json(
        grid,
        iters,
        cores,
        backend.name(),
        op,
        &multi_result.stats,
        &single_result.stats,
    );
    let path = results_dir().join("BENCH_sweep.json");
    std::fs::write(&path, json).expect("write BENCH_sweep.json");
    println!("JSON written to {}", path.display());
}
