//! Adder companion to Fig. 3: power vs WMED Pareto fronts for evolved
//! approximate *adders*.
//!
//! Runs the full (distribution × threshold × run) grid — D1, D2 and Du
//! across the same 14 WMED targets as Fig. 3, but with
//! [`apx_arith::Operator::Add`] threaded through the whole pipeline —
//! one [`apx_core::run_sweep`] worker pool, exact-replay cache, component
//! library and seeded evolution included. Every circuit is
//! cross-evaluated under all three distributions (reusing the sweep's
//! shared evaluators) and compared against the conventional lower-OR and
//! truncated adder baselines. CSV mirror: `results/fig_adders.csv`.
//!
//! Scale knobs: `APX_ITERS` (default 2000), `APX_RUNS`, `APX_CACHE_DIR`
//! (sweep result cache, default `results/cache` — adder tasks are keyed
//! by operator, so they share a directory with multiplier sweeps without
//! collisions), `APX_SHARD` (`i/n`), `APX_LIBRARY` (`on`/`full`/a
//! directory — `full` ingests the conventional adder designs as library
//! candidates).
//!
//! Full `APX_*` knob reference: `crates/bench/README.md`.

use apx_bench::{
    cache_dir, fig_adders_sweep_grid, iterations, library_config, print_sweep_counters,
    results_dir, runs, shard,
};
use apx_core::report::TextTable;
use apx_core::{pareto_indices, run_sweep};
use apx_rng::Xoshiro256;
use apx_techlib::{estimate_under_pmf, TechLibrary, DEFAULT_CLOCK_MHZ};

struct Point {
    series: String,
    name: String,
    wmed: Vec<f64>, // one entry per sweep distribution, in panel order
    power_mw: f64,
}

fn main() {
    let iters = iterations();
    let n_runs = runs(1);
    println!(
        "=== Fig. 3 (adders): Pareto fronts (iterations/run = {iters}, runs/level = {n_runs}) ===\n"
    );

    // Evolve unsigned 8-bit adders under each distribution — one pool,
    // one shared evaluator per distribution. The grid is shared with the
    // orchestrator (`fig_adders_sweep_grid`), so supervision and GC
    // always agree on the live key set.
    let mut sweep_cfg = fig_adders_sweep_grid();
    sweep_cfg.cache_dir = cache_dir();
    sweep_cfg.shard = shard();
    sweep_cfg.library = library_config();
    let result = run_sweep(&sweep_cfg).expect("sweep");
    println!(
        "swept {} tasks on {} threads in {:.2} s ({:.0} evaluations/s)",
        result.stats.tasks,
        result.stats.threads,
        result.stats.wall_seconds,
        result.stats.evaluations_per_second
    );
    print_sweep_counters(&sweep_cfg, &result.stats);
    let dists = &sweep_cfg.distributions;
    let evaluators = &result.evaluators;
    let tech = TechLibrary::nangate45();
    let mut points: Vec<Point> = Vec::new();

    for (di, dist) in dists.iter().enumerate() {
        for m in result.best_per_threshold(di) {
            let wmed: Vec<f64> = evaluators.iter().map(|e| e.wmed(&m.netlist)).collect();
            points.push(Point {
                series: format!("proposed ({})", dist.name),
                name: m.name.clone(),
                wmed,
                power_mw: m.estimate.power_mw(),
            });
        }
        println!("evolved {} adders for {}", result.entries_for(di).count(), dist.name);
    }

    // Baselines: lower-OR and truncated adders (the conventional designs
    // the library's `full` mode also ingests).
    let mut rng = Xoshiro256::from_seed(0xBA5E);
    let uniform =
        &dists.iter().find(|d| d.name == "Du").expect("sweep includes the uniform reference").pmf;
    let mut add_baseline = |series: &str, name: String, netlist: &apx_gates::Netlist| {
        let wmed: Vec<f64> = evaluators.iter().map(|e| e.wmed(netlist)).collect();
        // Baseline power is reported under the uniform distribution, as
        // in the paper's library comparisons.
        let est = estimate_under_pmf(netlist, &tech, uniform, DEFAULT_CLOCK_MHZ, 32, &mut rng);
        points.push(Point { series: series.to_owned(), name, wmed, power_mw: est.power_mw() });
    };
    for k in 1..=8u32 {
        add_baseline("lower-or", format!("loa_{k}"), &apx_arith::lower_or_adder(8, k));
    }
    for k in 1..8u32 {
        add_baseline("truncated", format!("trunc_add_{k}"), &apx_arith::truncated_adder(8, k));
    }

    // One panel per metric.
    let mut csv = TextTable::new(vec!["panel", "series", "name", "wmed_pct", "power_mw"]);
    for (panel, dist) in dists.iter().enumerate() {
        let dist_name = &dist.name;
        println!("\n--- panel WMED_{dist_name} (power [mW] vs error) ---");
        let mut table = TextTable::new(vec!["series", "name", "WMED %", "power mW", "pareto"]);
        let panel_points: Vec<(f64, f64)> =
            points.iter().map(|p| (p.wmed[panel], p.power_mw)).collect();
        let front = pareto_indices(&panel_points);
        for (i, p) in points.iter().enumerate() {
            table.row(vec![
                p.series.clone(),
                p.name.clone(),
                format!("{:.5}", p.wmed[panel] * 100.0),
                format!("{:.4}", p.power_mw),
                if front.contains(&i) { "*".to_owned() } else { String::new() },
            ]);
            csv.row(vec![
                format!("WMED_{dist_name}"),
                p.series.clone(),
                p.name.clone(),
                format!("{:.6}", p.wmed[panel] * 100.0),
                format!("{:.5}", p.power_mw),
            ]);
        }
        println!("{}", table.to_text());
        // Headline check: who owns the front in this panel?
        let proposed_on_front = front
            .iter()
            .filter(|&&i| points[i].series == format!("proposed ({dist_name})"))
            .count();
        println!(
            "pareto points from `proposed ({dist_name})`: {proposed_on_front} of {}",
            front.len()
        );
    }
    let path = results_dir().join("fig_adders.csv");
    csv.write_csv(&path).expect("write csv");
    println!("\nCSV written to {}", path.display());
}
