//! Table I: WMED level vs classification accuracy (before / after
//! fine-tuning) and relative MAC PDP / power / area, for both classifiers.
//!
//! CSV mirror: `results/table1.csv`.
//!
//! Scale knobs: `APX_ITERS` (CGP), `APX_FT_ITERS` (fine-tuning passes,
//! paper: 10), `APX_TRAIN_N` / `APX_TEST_N` / `APX_EPOCHS` (classifier),
//! `APX_CACHE_DIR`, `APX_SHARD` (`i/n`; shard passes fill the shared
//! cache and emit only their threshold rows) and `APX_LIBRARY`
//! (component-library reuse of previously evolved multipliers).
//!
//! Full `APX_*` knob reference: `crates/bench/README.md`.

use apx_arith::mac::accumulator_width;
use apx_arith::{baugh_wooley_multiplier, OpTable};
use apx_bench::{
    cache_dir, finetune_iters, iterations, lenet_case, library_config, mlp_case,
    print_sweep_counters, results_dir, shard,
};
use apx_core::nn_flow::{evaluate_multiplier, CaseStudy};
use apx_core::report::{signed_percent, TextTable};
use apx_core::{mac_metrics, run_sweep, table1_thresholds, FlowConfig, SweepConfig, SweepDist};

fn run_case(label: &str, case: &CaseStudy, fanin: usize, csv: &mut TextTable) {
    let levels = table1_thresholds();
    let iters = iterations();
    let ft = finetune_iters();
    println!(
        "--- {label} (CGP {iters} iters/level, fine-tuning {ft} passes; paper: 10^6 / 10) ---"
    );
    // A single-distribution sweep: the measured weight PMF still gets its
    // evaluator built once and shared across all ten threshold levels.
    let sweep_cfg = SweepConfig {
        distributions: vec![SweepDist::new(label, case.weight_pmf.clone())],
        flow: FlowConfig {
            width: 8,
            signed: true,
            thresholds: levels.clone(),
            iterations: iters,
            seed: 0x7AB1,
            ..FlowConfig::default()
        },
        cache_dir: cache_dir(),
        // A shard pass computes its slice of the ten threshold levels
        // into the shared cache and prints only those rows; the final
        // unsharded run assembles the complete table from hits (shared
        // `APX_SHARD` parsing, `apx_bench::shard`).
        shard: shard(),
        library: library_config(),
    };
    let evolved = run_sweep(&sweep_cfg).expect("sweep");
    print_sweep_counters(&sweep_cfg, &evolved.stats);
    if sweep_cfg.cache_dir.is_some() {
        println!(
            "(the two cases share no tasks — the measured weight PMFs differ, and the PMF is\n\
             part of the cache key)"
        );
    }
    if evolved.stats.shard_skipped > 0 {
        println!(
            "shard pass: {} of {} levels computed here, table rows limited to them",
            evolved.entries.len(),
            evolved.stats.tasks
        );
    }
    let exact_mult = baugh_wooley_multiplier(8);
    let acc_width = accumulator_width(8, fanin);

    let mut table = TextTable::new(vec![
        "WMED level %",
        "initial acc",
        "after finetuning",
        "PDP",
        "Power",
        "Area",
    ]);
    for m in evolved.best_per_threshold(0) {
        let op = OpTable::from_netlist(&m.netlist, 8, true).expect("table");
        let acc = evaluate_multiplier(case, &op, ft);
        let mac = mac_metrics(&m.netlist, &exact_mult, 8, acc_width, true, &case.weight_pmf, 16, 4);
        table.row(vec![
            format!("{:.3}", m.threshold * 100.0),
            signed_percent(acc.initial_delta),
            signed_percent(acc.finetuned_delta),
            signed_percent(mac.rel_pdp),
            signed_percent(mac.rel_power),
            signed_percent(mac.rel_area),
        ]);
        csv.row(vec![
            label.to_owned(),
            format!("{:.4}", m.threshold * 100.0),
            format!("{:.5}", acc.initial_delta),
            format!("{:.5}", acc.finetuned_delta),
            format!("{:.5}", mac.rel_pdp),
            format!("{:.5}", mac.rel_power),
            format!("{:.5}", mac.rel_area),
        ]);
    }
    println!("{}", table.to_text());
}

fn main() {
    println!("=== Table I: WMED level vs accuracy and MAC savings ===\n");
    println!("(accuracy deltas are relative to the exact-multiplier quantized");
    println!(" network; negative = degradation — the paper's convention)\n");
    let mut csv = TextTable::new(vec![
        "case",
        "wmed_pct",
        "initial_acc_delta",
        "finetuned_acc_delta",
        "rel_pdp",
        "rel_power",
        "rel_area",
    ]);
    let lenet = lenet_case();
    println!(
        "LeNet / SVHN-like reference: float {:.1} %, quantized {:.1} %",
        lenet.float_accuracy * 100.0,
        lenet.quantized_accuracy * 100.0
    );
    run_case("SVHN-like", &lenet, 25, &mut csv);

    let mlp = mlp_case();
    println!(
        "MLP / MNIST-like reference: float {:.1} %, quantized {:.1} %",
        mlp.float_accuracy * 100.0,
        mlp.quantized_accuracy * 100.0
    );
    run_case("MNIST-like", &mlp, 784, &mut csv);

    let path = results_dir().join("table1.csv");
    csv.write_csv(&path).expect("write csv");
    println!("CSV written to {}", path.display());
    println!(
        "\nExpected shape (paper): accuracy unchanged up to WMED 0.5 %, large\n\
         initial drops at 5-10 % that fine-tuning mostly recovers, and MAC\n\
         PDP/power/area savings growing monotonically with the WMED level."
    );
}
