//! Maintenance view of a sweep cache / component-library directory.
//!
//! This bin answers "what is in that directory?" before an operator
//! points a library-mode sweep (`APX_LIBRARY`) or a garbage-collection
//! pass (`orchestrate` with `APX_GC`) at it: intact-entry, corrupt-file
//! and orphaned-temp-litter counts, total size, and how the intact
//! entries split per `(operator, width, signedness)` component class.
//! The view is strictly read-only — collection itself lives in
//! `apx_core::cache::gc_cache_dir`.
//!
//! Usage: `cache_stats [dir]` — the directory argument falls back to
//! `APX_CACHE_DIR`, then to the default `results/cache`.
//!
//! With `APX_VERIFY=on` every intact entry is additionally run through
//! the `apx_verify` static lint and the per-diagnostic counts are
//! printed — the audit view of the same gate `ComponentLibrary` ingest
//! applies (a `netlist_lint` run over the directory gives the same
//! verdict with per-entry detail). Unless `APX_EQUIV=off`, the audit
//! also prints the semantic equivalence-class census: how many distinct
//! *functions* the intact entries compute (canonical BDD digest per
//! component class; entries past the node budget count as their own
//! class) — the gap to the entry count is what a GC pass with
//! equivalence collapse would reclaim.
//!
//! Full `APX_*` knob reference: `crates/bench/README.md`.

use apx_bench::{cache_dir, equiv_enabled, results_dir, verify_enabled};
use apx_core::cache::{cache_dir_stats, SweepCache};
use apx_core::report::TextTable;
use std::collections::{BTreeMap, HashSet};
use std::path::PathBuf;

fn main() {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .or_else(cache_dir)
        .unwrap_or_else(|| results_dir().join("cache"));
    let stats = cache_dir_stats(&dir);
    println!("=== cache_stats: {} ===\n", dir.display());
    // Library-mode re-scoring of these entries runs on this backend.
    println!("evaluator backend: {}\n", apx_metrics::EvalBackend::from_env());
    if stats.files == 0 && stats.tmp_litter == 0 {
        println!("no .sweep entries (missing or empty directory)");
        return;
    }
    println!(
        "{} files, {} intact entries, {} corrupt/stale, {} bytes total, {} orphaned temp files",
        stats.files, stats.entries, stats.corrupt, stats.total_bytes, stats.tmp_litter
    );
    let mut table = TextTable::new(vec!["operator", "width", "operands", "entries"]);
    for ((op, width, signed), count) in &stats.per_op {
        table.row(vec![
            op.to_string(),
            format!("{width}"),
            if *signed { "signed" } else { "unsigned" }.to_owned(),
            format!("{count}"),
        ]);
    }
    println!("{}", table.to_text());
    if verify_enabled() {
        // Per-diagnostic counts over every intact entry, keyed by the
        // stable diagnostic names (`output-arity`, `stuck-output`, ...).
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut dirty = 0usize;
        let mut audited = 0usize;
        let census = equiv_enabled();
        let mut classes: HashSet<(apx_arith::Operator, u32, bool, u128)> = HashSet::new();
        let mut unbudgeted = 0usize;
        for entry in SweepCache::new(&dir).scan() {
            audited += 1;
            let diags = apx_verify::lint_component(&entry.circuit.netlist, entry.op, entry.width);
            if !diags.is_empty() {
                dirty += 1;
            }
            for d in diags {
                *counts.entry(d.name()).or_default() += 1;
            }
            if census {
                match apx_verify::functional_digest(&entry.circuit.netlist) {
                    Some(digest) => {
                        classes.insert((entry.op, entry.width, entry.signed, digest));
                    }
                    None => unbudgeted += 1,
                }
            }
        }
        println!("verify: {audited} entries audited, {dirty} with diagnostics");
        if census {
            let distinct = classes.len() + unbudgeted;
            println!(
                "equivalence: {distinct} classes across {audited} entries, {} semantic duplicates",
                audited - distinct
            );
        }
        if !counts.is_empty() {
            let mut table = TextTable::new(vec!["diagnostic", "count"]);
            for (name, count) in &counts {
                table.row(vec![(*name).to_owned(), format!("{count}")]);
            }
            println!("{}", table.to_text());
        }
    }
    if stats.corrupt > 0 {
        println!(
            "note: corrupt/stale files are treated as misses by sweeps and \
             skipped by library scans; deleting them is always safe"
        );
    }
    if stats.tmp_litter > 0 {
        println!(
            "note: orphaned temp files are litter from writers killed mid-store; \
             a GC pass (`orchestrate` with APX_GC) removes them once stale"
        );
    }
}
