//! Fig. 2: the probability mass functions D1 and D2 (and the uniform Du).
//!
//! Prints ASCII histograms and writes the full PMFs to
//! `results/fig2_distributions.csv`.

use apx_bench::{d1, d2, du, results_dir};
use apx_core::report::TextTable;

fn histogram(name: &str, pmf: &apx_dist::Pmf) {
    println!("Function {name} (frequency per 16-value bin):");
    let bins = 16;
    let per = pmf.len() / bins;
    let max: f64 =
        (0..bins).map(|b| (0..per).map(|i| pmf.prob(b * per + i)).sum::<f64>()).fold(0.0, f64::max);
    for b in 0..bins {
        let mass: f64 = (0..per).map(|i| pmf.prob(b * per + i)).sum();
        let bar = "#".repeat(((mass / max) * 48.0).round() as usize);
        println!(
            "  x in [{:>3}, {:>3}]  {:6.2} %  {bar}",
            b * per,
            (b + 1) * per - 1,
            mass * 100.0
        );
    }
    println!(
        "  entropy {:.2} bits, mean {:.1}, support {}\n",
        pmf.entropy(),
        pmf.mean_raw(),
        pmf.support_size()
    );
}

fn main() {
    println!("=== Fig. 2: operand distributions D1, D2 (and reference Du) ===\n");
    let (d1, d2, du) = (d1(), d2(), du());
    histogram("D1 (normal, mean 127, sigma 32)", &d1);
    histogram("D2 (half-normal, sigma 48)", &d2);
    histogram("Du (uniform)", &du);

    let mut table = TextTable::new(vec!["x", "D1", "D2", "Du"]);
    for x in 0..256 {
        table.row(vec![
            x.to_string(),
            format!("{:.8}", d1.prob(x)),
            format!("{:.8}", d2.prob(x)),
            format!("{:.8}", du.prob(x)),
        ]);
    }
    let path = results_dir().join("fig2_distributions.csv");
    table.write_csv(&path).expect("write csv");
    println!("full PMFs written to {}", path.display());
}
