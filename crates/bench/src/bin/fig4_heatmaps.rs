//! Fig. 4: error heat maps of multipliers evolved for D1, D2 and Du.
//!
//! Evolves one 8-bit multiplier per distribution at the same WMED budget
//! (so they are comparable, like the paper's "similar power and WMED"
//! selection) — all three through one [`apx_core::run_sweep`] pool —
//! prints a 16×16 ASCII heat map of `|x·y − M̃(x,y)|` and the
//! per-operand-band mean errors. CSV mirror: `results/fig4_heatmaps.csv`.
//!
//! Knobs: `APX_ITERS`, `APX_CACHE_DIR`, `APX_SHARD` (`i/n`; shard passes
//! fill the shared cache and skip foreign panels), `APX_LIBRARY`.
//!
//! Full `APX_*` knob reference: `crates/bench/README.md`.

use apx_bench::{
    cache_dir, fig4_sweep_grid, iterations, library_config, print_sweep_counters, results_dir,
    shard,
};
use apx_core::report::TextTable;
use apx_core::{error_heatmap, run_sweep};

fn main() {
    // The one-budget grid is shared with the orchestrator
    // (`fig4_sweep_grid`), so supervision and GC agree on the live keys.
    let mut sweep_cfg = fig4_sweep_grid();
    let budget = sweep_cfg.flow.thresholds[0]; // 0.2 % — mid-range in Fig. 3
    let iters = iterations();
    println!(
        "=== Fig. 4: error heat maps (WMED budget {:.2} %, {iters} iterations) ===\n",
        budget * 100.0
    );
    sweep_cfg.cache_dir = cache_dir();
    // The grid is only 3 tasks, but sharding still composes: a shard
    // run checkpoints its slice into the shared cache and skips the
    // panels it did not compute; the final unsharded run renders the
    // full figure from hits alone (shared `APX_SHARD` parsing,
    // `apx_bench::shard`).
    sweep_cfg.shard = shard();
    sweep_cfg.library = library_config();
    let result = run_sweep(&sweep_cfg).expect("sweep");
    print_sweep_counters(&sweep_cfg, &result.stats);
    println!();
    let mut csv = TextTable::new(vec!["multiplier", "x_band", "mean_err_pct"]);
    for (di, dist) in sweep_cfg.distributions.iter().enumerate() {
        let name = &dist.name;
        let Some(entry) = result.entries_for(di).next() else {
            // Sharded pass: this panel's task belongs to another shard.
            println!("Multiplier {name}: computed by another shard, skipping panel\n");
            continue;
        };
        let m = &entry.circuit;
        let heat = error_heatmap(&m.netlist, 8, false).expect("heatmap");
        println!(
            "Multiplier {name} (WMED_{name} = {:.4} %, power {:.4} mW, {} gates)",
            m.stats.wmed * 100.0,
            m.estimate.power_mw(),
            m.netlist.active_gate_count()
        );
        println!("x runs top-to-bottom, y left-to-right; darker = larger error:");
        println!("{}", heat.to_ascii(16));
        // Row-band means: the paper's observation is which x-bands stay
        // accurate under each distribution.
        let band = 32;
        for b in 0..(256 / band) {
            let mean: f64 =
                (b * band..(b + 1) * band).map(|x| heat.row_mean(x)).sum::<f64>() / band as f64;
            csv.row(vec![
                format!("evolved_{name}"),
                format!("{}..{}", b * band, (b + 1) * band - 1),
                format!("{:.5}", mean * 100.0),
            ]);
        }
        let low_band: f64 = (0..64).map(|x| heat.row_mean(x)).sum::<f64>() / 64.0;
        let mid_band: f64 = (96..160).map(|x| heat.row_mean(x)).sum::<f64>() / 64.0;
        let high_band: f64 = (192..256).map(|x| heat.row_mean(x)).sum::<f64>() / 64.0;
        println!(
            "mean error by x-band:  low {:.4} %   mid {:.4} %   high {:.4} %\n",
            low_band * 100.0,
            mid_band * 100.0,
            high_band * 100.0
        );
    }
    let path = results_dir().join("fig4_heatmaps.csv");
    csv.write_csv(&path).expect("write csv");
    println!("CSV written to {}", path.display());
}
