//! Wide-width evaluator benchmark: WMED throughput of the symbolic
//! (ROBDD model-counting) backend against the bit-parallel engine,
//! per operator and operand width.
//!
//! The grid covers every width each backend can evaluate — for the
//! enumeration backends that ends at 10-bit multipliers/adders and 4-bit
//! MACs (20 netlist inputs), while the symbolic engine continues to
//! 12/14/16-bit multipliers and adders and the 8-bit MAC (33 inputs).
//! Wherever both backends run, their WMED scores are asserted
//! bit-identical before any timing is recorded.
//!
//! Each cell scores three candidates (the operator's exact seed circuit
//! and two one-bit output truncations of it) under a measured-lumpy PMF
//! with [`SPIKES`] weighted operand values — the shape application
//! histograms take, and the quantity the symbolic engine's cost actually
//! scales with (it never enumerates the `2^width` domain).
//!
//! Results land in `results/BENCH_symbolic.json` so the wide-width
//! performance trajectory is tracked from PR to PR. No scale knobs: the
//! workload is fixed and deterministic so the numbers compare across
//! runs. Full `APX_*` knob reference: `crates/bench/README.md`.

use apx_arith::{EvalBackend, Operator};
use apx_bench::{bench_wide_json, results_dir, WideCell};
use apx_dist::Pmf;
use apx_gates::{GateKind, Netlist, Node, SignalId};
use apx_metrics::CircuitEvaluator;
use apx_rng::Xoshiro256;
use std::time::Instant;

/// Weighted operand values in each cell's PMF.
const SPIKES: usize = 64;

/// Deterministic "measured" histogram: [`SPIKES`] random spikes of random
/// integer mass, everything else zero.
fn lumpy_pmf(width: u32, seed: u64) -> Pmf {
    let n = 1usize << width;
    let mut rng = Xoshiro256::from_seed(seed);
    let mut weights = vec![0.0f64; n];
    for _ in 0..SPIKES {
        weights[rng.gen_range(n)] += 1.0 + rng.gen_range(15) as f64;
    }
    Pmf::from_weights(width, weights).expect("spikes guarantee positive mass")
}

/// The canonical approximate candidate: `nl` with output `bit` routed
/// through a fresh `Const0` node.
fn zero_output_bit(nl: &Netlist, bit: usize) -> Netlist {
    let ni = nl.num_inputs();
    let mut nodes = nl.nodes().to_vec();
    let zero = SignalId((ni + nodes.len()) as u32);
    nodes.push(Node { kind: GateKind::Const0, a: SignalId(0), b: SignalId(0) });
    let mut outputs = nl.outputs().to_vec();
    outputs[bit] = zero;
    Netlist::new(ni, nodes, outputs).expect("appending a node preserves validity")
}

fn main() {
    println!("=== bench_wide: per-width WMED throughput, symbolic vs bitpar ===\n");
    let mut cells: Vec<WideCell> = Vec::new();
    for op in [Operator::Mul, Operator::Add, Operator::Mac] {
        let widths: &[u32] = match op {
            Operator::Mul | Operator::Add => &[6, 8, 10, 12, 14, 16],
            Operator::Mac => &[4, 6, 8],
        };
        for &width in widths {
            let pmf = lumpy_pmf(width, 0xA11CE ^ (u64::from(width) << 8));
            let seed = op.seed_circuit(width, false);
            let candidates = [seed.clone(), zero_output_bit(&seed, 0), zero_output_bit(&seed, 1)];
            let mut reference: Option<Vec<u64>> = None;
            for backend in [EvalBackend::BitParallel, EvalBackend::Symbolic] {
                if !op.supports_width(width, backend) {
                    continue;
                }
                let eval =
                    CircuitEvaluator::for_operator_with_backend(op, width, false, &pmf, backend)
                        .expect("grid widths are evaluable by construction");
                let start = Instant::now();
                let scores: Vec<f64> = candidates.iter().map(|nl| eval.wmed(nl)).collect();
                let wall = start.elapsed().as_secs_f64();
                let bits: Vec<u64> = scores.iter().map(|s| s.to_bits()).collect();
                match &reference {
                    None => reference = Some(bits),
                    Some(prev) => assert_eq!(
                        prev, &bits,
                        "{op} w{width}: backends disagree — the bit-identity contract is broken"
                    ),
                }
                let evaluations = candidates.len() as u64;
                println!(
                    "{op:<4} w{width:<3} {:<9} {evaluations} evals in {wall:>9.4} s   \
                     ({:>10.2} evals/s)   wmed(seed) = {:.3e}",
                    backend.name(),
                    evaluations as f64 / wall.max(1e-9),
                    scores[0]
                );
                cells.push(WideCell {
                    op,
                    width,
                    backend: backend.name(),
                    evaluations,
                    wall_seconds: wall,
                    // Untimed: the seed's mred, for the JSON record. Past
                    // exhaustive widths it is `NaN` by the wide-width
                    // stats contract (lands as JSON `null`) — asserted
                    // rather than paid for, since the symbolic stats pass
                    // costs minutes per wide cell.
                    mred: if op.supports_exhaustive_width(width) {
                        eval.stats(&candidates[0]).mred
                    } else {
                        f64::NAN
                    },
                });
            }
        }
    }
    let json = bench_wide_json(SPIKES, &cells);
    let path = results_dir().join("BENCH_symbolic.json");
    std::fs::write(&path, &json).expect("write BENCH_symbolic.json");
    println!("\nJSON written to {}", path.display());
}
