//! Static audit of a sweep cache / component-library directory.
//!
//! Runs every intact entry through the `apx_verify` component lint —
//! the same gate `ComponentLibrary` ingest applies — and reports each
//! finding with its cache key, severity and named diagnostic, so an
//! operator can audit a directory *before* pointing a library-mode
//! sweep at it (and CI can assert the published smoke caches stay
//! clean). The view is strictly read-only.
//!
//! Usage: `netlist_lint [--json] [dir]` — the directory argument falls
//! back to `APX_CACHE_DIR`, then to the default `results/cache`. The
//! exit status is 1 when any error-severity diagnostic fired, 0
//! otherwise (warnings — stuck outputs, dead nodes — are reported but
//! do not fail the audit: they are legal, if wasteful, circuits).
//!
//! `--json` swaps the human tables for one machine-readable JSON
//! document: a `diagnostics` array (one object per finding), the
//! per-diagnostic `counts`, and a summary (`entries`, `errors`,
//! `warnings`). Unless `APX_EQUIV=off`, the document also carries the
//! semantic equivalence-class census: `equivalence_classes` (distinct
//! functions among the intact entries, by canonical BDD digest; entries
//! past the node budget count as their own class) and
//! `semantic_duplicates` (entries minus classes). The same census is
//! printed as an `equivalence:` line in the human mode.
//!
//! `netlist_lint --seeds` ignores the directory and instead proves —
//! by BDD equivalence checking, not sampling — that every
//! [`Operator::seed_circuit`] computes its reference function at every
//! width the symbolic backend supports, both signednesses. Exit status
//! 1 on any disproof (with the counterexample input assignment) or
//! budget exhaustion. This is the machine-checked form of the "exact
//! seed has zero error" invariant the whole sweep stands on. Proof cost
//! doubles per width bit (one pinned proof per weighted operand value);
//! `APX_SEEDS_MAX_WIDTH` caps the ladder when minutes matter (CI uses
//! 8), and the uncapped default is the complete audit.
//!
//! Full `APX_*` knob reference: `crates/bench/README.md`.

use apx_arith::{EvalBackend, Operator};
use apx_bench::{cache_dir, equiv_enabled, results_dir, seeds_max_width};
use apx_core::cache::SweepCache;
use apx_core::report::TextTable;
use apx_verify::{functional_digest, prove_seed, Equiv, Severity};
use std::collections::{BTreeMap, HashSet};
use std::fmt::Write as _;
use std::path::PathBuf;

/// One lint finding, flattened for both output modes.
struct Finding {
    key: String,
    op: Operator,
    width: u32,
    signed: bool,
    severity: Severity,
    name: &'static str,
    message: String,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Proves every seed circuit equivalent to its reference function at
/// every symbolically supported width; returns the number of failures.
fn seed_self_check() -> usize {
    let mut failures = 0usize;
    let mut proved = 0usize;
    let cap = seeds_max_width();
    for op in [Operator::Mul, Operator::Add, Operator::Mac] {
        for signed in [false, true] {
            for width in 1..=op.max_width(EvalBackend::Symbolic).min(cap) {
                let operands = if signed { "signed" } else { "unsigned" };
                match prove_seed(op, width, signed) {
                    Equiv::Equal => {
                        proved += 1;
                        println!("seed {op} w{width} {operands}: proved equal");
                    }
                    Equiv::Differs { witness } => {
                        failures += 1;
                        let bits: String =
                            witness.iter().map(|&b| if b { '1' } else { '0' }).collect();
                        println!("seed {op} w{width} {operands}: DIFFERS on inputs [{bits}]");
                    }
                    Equiv::Unknown { budget } => {
                        failures += 1;
                        println!(
                            "seed {op} w{width} {operands}: UNPROVEN (node budget {budget} \
                             exhausted)"
                        );
                    }
                }
            }
        }
    }
    println!("seeds: {proved} proved, {failures} failed");
    failures
}

fn main() {
    let mut json = false;
    let mut seeds = false;
    let mut dir_arg: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--seeds" => seeds = true,
            other => dir_arg = Some(PathBuf::from(other)),
        }
    }
    if seeds {
        println!("=== netlist_lint --seeds ===\n");
        if seed_self_check() > 0 {
            std::process::exit(1);
        }
        return;
    }
    let dir: PathBuf = dir_arg.or_else(cache_dir).unwrap_or_else(|| results_dir().join("cache"));
    if !json {
        println!("=== netlist_lint: {} ===\n", dir.display());
    }

    let census = equiv_enabled();
    let mut entries = 0usize;
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut findings: Vec<Finding> = Vec::new();
    // Distinct functions among the intact entries: canonical digests per
    // component class, with budget-capped entries as singleton classes.
    let mut classes: HashSet<(Operator, u32, bool, u128)> = HashSet::new();
    let mut unbudgeted = 0usize;
    for entry in SweepCache::new(&dir).scan() {
        entries += 1;
        if census {
            match functional_digest(&entry.circuit.netlist) {
                Some(d) => {
                    classes.insert((entry.op, entry.width, entry.signed, d));
                }
                None => unbudgeted += 1,
            }
        }
        for d in apx_verify::lint_component(&entry.circuit.netlist, entry.op, entry.width) {
            match d.severity() {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
            *counts.entry(d.name()).or_default() += 1;
            findings.push(Finding {
                key: entry.key.hex(),
                op: entry.op,
                width: entry.width,
                signed: entry.signed,
                severity: d.severity(),
                name: d.name(),
                message: d.to_string(),
            });
        }
    }
    let equivalence_classes = classes.len() + unbudgeted;

    if json {
        let rows: Vec<String> = findings
            .iter()
            .map(|f| {
                format!(
                    "    {{\"key\": \"{}\", \"op\": \"{}\", \"width\": {}, \"signed\": {}, \
                     \"severity\": \"{}\", \"name\": \"{}\", \"message\": \"{}\"}}",
                    f.key,
                    f.op,
                    f.width,
                    f.signed,
                    format!("{:?}", f.severity).to_lowercase(),
                    f.name,
                    json_escape(&f.message)
                )
            })
            .collect();
        let count_rows: Vec<String> =
            counts.iter().map(|(name, n)| format!("\"{name}\": {n}")).collect();
        let equiv_fields = if census {
            format!(
                ",\n  \"equivalence_classes\": {equivalence_classes},\n  \
                 \"semantic_duplicates\": {}",
                entries - equivalence_classes
            )
        } else {
            String::new()
        };
        println!(
            "{{\n  \"dir\": \"{}\",\n  \"entries\": {entries},\n  \"errors\": {errors},\n  \
             \"warnings\": {warnings},\n  \"counts\": {{{}}},\n  \"diagnostics\": \
             [\n{}\n  ]{equiv_fields}\n}}",
            json_escape(&dir.display().to_string()),
            count_rows.join(", "),
            rows.join(",\n"),
        );
    } else {
        if !findings.is_empty() {
            let mut summary = TextTable::new(vec!["diagnostic", "count"]);
            for (name, count) in &counts {
                summary.row(vec![(*name).to_owned(), format!("{count}")]);
            }
            println!("{}", summary.to_text());
            let mut table = TextTable::new(vec!["key", "component", "severity", "diagnostic"]);
            for f in &findings {
                table.row(vec![
                    f.key.clone(),
                    format!(
                        "{} w{} {}",
                        f.op,
                        f.width,
                        if f.signed { "signed" } else { "unsigned" }
                    ),
                    format!("{:?}", f.severity).to_lowercase(),
                    f.message.clone(),
                ]);
            }
            println!("{}", table.to_text());
        }
        println!("lint: {errors} errors, {warnings} warnings across {entries} entries");
        if census {
            println!(
                "equivalence: {equivalence_classes} classes across {entries} entries, {} \
                 semantic duplicates",
                entries - equivalence_classes
            );
        }
    }
    if errors > 0 {
        std::process::exit(1);
    }
}
