//! Static audit of a sweep cache / component-library directory.
//!
//! Runs every intact entry through the `apx_verify` component lint —
//! the same gate `ComponentLibrary` ingest applies — and reports each
//! finding with its cache key, severity and named diagnostic, so an
//! operator can audit a directory *before* pointing a library-mode
//! sweep at it (and CI can assert the published smoke caches stay
//! clean). The view is strictly read-only.
//!
//! Usage: `netlist_lint [dir]` — the directory argument falls back to
//! `APX_CACHE_DIR`, then to the default `results/cache`. The exit
//! status is 1 when any error-severity diagnostic fired, 0 otherwise
//! (warnings — stuck outputs, dead nodes — are reported but do not
//! fail the audit: they are legal, if wasteful, circuits).
//!
//! Full `APX_*` knob reference: `crates/bench/README.md`.

use apx_bench::{cache_dir, results_dir};
use apx_core::cache::SweepCache;
use apx_core::report::TextTable;
use apx_verify::Severity;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn main() {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .or_else(cache_dir)
        .unwrap_or_else(|| results_dir().join("cache"));
    println!("=== netlist_lint: {} ===\n", dir.display());

    let mut entries = 0usize;
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut table = TextTable::new(vec!["key", "component", "severity", "diagnostic"]);
    for entry in SweepCache::new(&dir).scan() {
        entries += 1;
        for d in apx_verify::lint_component(&entry.circuit.netlist, entry.op, entry.width) {
            match d.severity() {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
            *counts.entry(d.name()).or_default() += 1;
            table.row(vec![
                entry.key.hex(),
                format!(
                    "{} w{} {}",
                    entry.op,
                    entry.width,
                    if entry.signed { "signed" } else { "unsigned" }
                ),
                format!("{:?}", d.severity()).to_lowercase(),
                d.to_string(),
            ]);
        }
    }
    if !counts.is_empty() {
        let mut summary = TextTable::new(vec!["diagnostic", "count"]);
        for (name, count) in &counts {
            summary.row(vec![(*name).to_owned(), format!("{count}")]);
        }
        println!("{}", summary.to_text());
        println!("{}", table.to_text());
    }
    println!("lint: {errors} errors, {warnings} warnings across {entries} entries");
    if errors > 0 {
        std::process::exit(1);
    }
}
