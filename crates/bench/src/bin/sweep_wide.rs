//! Wide-width sweep smoke: the width-12 multiplier grid of
//! [`wide_sweep_grid`], which only the symbolic (ROBDD model-counting)
//! evaluator backend can execute.
//!
//! `bench_wide` times isolated WMED calls at wide widths; this binary
//! proves the *whole* sweep pipeline — seeded CGP evolution, bounded
//! scoring, exact stats, activity-based power estimation, CSV mirroring —
//! runs past the enumeration engines' 20-input cap. A width-12 multiplier
//! has 24 netlist inputs, so running this under `bitpar` or `scalar`
//! fails loud at config validation; CI runs it with
//! `APX_EVAL_BACKEND=symbolic`.
//!
//! Two invariants are asserted, not just printed:
//!
//! * every threshold-0 entry scores WMED exactly `0.0` — the symbolic
//!   engine proving the exact seed circuit exact at a width nothing else
//!   can check, and
//! * every reported WMED is finite (the wide-width stats contract leaves
//!   only `mred` as `NaN` — rendered in the CSV as the explicit `n/a`
//!   marker via [`apx_bench::metric_cell`], never as a literal `NaN`
//!   token, which this binary also asserts over the whole document).
//!
//! Knobs: `APX_ITERS` (default 10 — evolution is per-candidate BDD
//! construction here, keep it tiny) and `APX_OUT_DIR` for the
//! `sweep_wide.csv` mirror. Full `APX_*` knob reference:
//! `crates/bench/README.md`.

use apx_bench::{metric_cell, print_sweep_counters, results_dir, wide_sweep_grid};
use apx_core::report::TextTable;
use apx_core::run_sweep;
use std::path::PathBuf;

fn main() {
    let cfg = wide_sweep_grid();
    println!(
        "=== sweep_wide: {} tasks at width {} ({} iterations/run) ===",
        apx_core::grid_keys(&cfg).len(),
        cfg.flow.width,
        cfg.flow.iterations
    );

    let result =
        run_sweep(&cfg).expect("width-12 sweep (requires APX_EVAL_BACKEND=symbolic to validate)");
    print_sweep_counters(&cfg, &result.stats);

    let mut csv =
        TextTable::new(vec!["dist", "name", "threshold", "wmed", "mred", "area_um2", "power_mw"]);
    for e in &result.entries {
        let m = &e.circuit;
        assert!(m.stats.wmed.is_finite(), "{}: non-finite WMED from the symbolic backend", m.name);
        if m.threshold == 0.0 {
            assert_eq!(
                m.stats.wmed, 0.0,
                "{}: the exact width-12 seed must score WMED 0 under the symbolic engine",
                m.name
            );
        }
        csv.row(vec![
            e.dist.clone(),
            m.name.clone(),
            format!("{:e}", m.threshold),
            format!("{:.9e}", m.stats.wmed),
            metric_cell(m.stats.mred),
            format!("{:.6}", m.estimate.area_um2),
            format!("{:.6}", m.estimate.power_mw()),
        ]);
    }
    let text = csv.to_csv();
    assert!(!text.contains("NaN"), "the CSV must render non-finite metrics as n/a, not NaN");
    let out: PathBuf = std::env::var("APX_OUT_DIR")
        .ok()
        .filter(|v| !v.is_empty())
        .map_or_else(results_dir, PathBuf::from);
    let path = out.join("sweep_wide.csv");
    csv.write_csv(&path).expect("write csv");
    println!("CSV written to {}", path.display());
}
