//! Sweep orchestrator: the overnight-exploration driver.
//!
//! Spawns `APX_ORCH_SHARDS` local shard processes of one figure binary
//! (`APX_ORCH_BIN`: `fig3_pareto`, `fig_adders`, `fig4_heatmaps`,
//! `table1_finetune` or the tiny `sweep_smoke`), all pointed at the
//! shared `APX_CACHE_DIR`,
//! polls the directory for global progress, relaunches any shard that
//! dies (cheap: its finished prefix replays from cache in milliseconds)
//! and, once every shard succeeded, runs the same binary once more
//! *unsharded* — the assembly pass, all cache hits, byte-identical
//! output to a cold unsharded run.
//!
//! With `APX_GC=on` the completed directory is then garbage-collected
//! ([`apx_core::cache::gc_cache_dir`]): the live grid's exact keys plus
//! the per-`(operator, width, signedness)` `(WMED, area)` Pareto set under the
//! grid's distributions survive; dominated historical entries, corrupt
//! files and stale writer temp litter are deleted. `APX_GC=only` skips
//! the grid and just collects — the maintenance pass for a directory
//! whose exploration already finished. The live key set is derived from
//! the *same* grid constructors the binaries themselves use
//! ([`apx_bench::sweep_grid_of`]), under the same scale knobs
//! (`APX_ITERS`, `APX_RUNS`), so run GC with the knobs of the grid you
//! mean to keep. Everything outside that live grid is treated as
//! historical component material: kept only while non-dominated.
//! `table1_finetune` can be orchestrated but not collected — its keys
//! depend on measured NN weight distributions.
//!
//! Scale/supervision knobs: see the table in `apx_bench` (`APX_ITERS`,
//! `APX_RUNS`, `APX_ORCH_SHARDS`, `APX_ORCH_BIN`, `APX_ORCH_RELAUNCHES`,
//! `APX_GC`, `APX_GC_TMP_TTL_SECS`). All other knobs are inherited by
//! the shard processes unchanged.
//!
//! Full `APX_*` knob reference: `crates/bench/README.md`.

use apx_bench::{
    cache_dir, equiv_enabled, gc_mode, gc_tmp_ttl, orch_bin, orch_relaunches, orch_shards,
    sweep_grid_of, GcMode,
};
use apx_core::cache::{gc_cache_dir, GcConfig};
use apx_core::grid_keys;
use apx_core::orchestrate::{orchestrate, OrchestratorConfig, OrchestratorEvent};
use std::process::{Command, ExitCode};
use std::time::Duration;

/// Binaries the orchestrator knows how to supervise.
const WORKLOADS: &[&str] =
    &["fig3_pareto", "fig_adders", "fig4_heatmaps", "table1_finetune", "sweep_smoke"];

fn main() -> ExitCode {
    let bin = orch_bin();
    if !WORKLOADS.contains(&bin.as_str()) {
        eprintln!("APX_ORCH_BIN=`{bin}`: expected one of {}", WORKLOADS.join(", "));
        return ExitCode::FAILURE;
    }
    let Some(dir) = cache_dir() else {
        eprintln!(
            "orchestration is built on the shared result cache: APX_CACHE_DIR must not be \
             empty/`off`"
        );
        return ExitCode::FAILURE;
    };
    let mode = gc_mode();
    let grid = sweep_grid_of(&bin);
    // Refuse an uncollectable GC request *before* spending hours on the
    // grid, not after the assembly pass.
    if mode != GcMode::Off && grid.is_none() {
        eprintln!(
            "APX_GC: the live grid of {bin} is not statically known (its cache keys depend \
             on measured distributions) — refusing a collection that could evict live entries"
        );
        return ExitCode::FAILURE;
    }
    // Shard processes are siblings of this binary (one target directory).
    let exe = std::env::current_exe().expect("own executable path");
    let program = exe.parent().expect("executable directory").join(&bin);

    if mode != GcMode::Only {
        let shards = orch_shards();
        let expected = grid.as_ref().map(|g| grid_keys(g).len());
        let target = expected.map_or_else(|| "?".to_owned(), |n| n.to_string());
        println!("=== orchestrate: {shards} shards of {bin} over {} ===", dir.display());
        let mut cfg = OrchestratorConfig::new(&program, shards, &dir);
        cfg.max_relaunches = orch_relaunches();
        let outcome = orchestrate(&cfg, |event| match event {
            OrchestratorEvent::Progress { stats, running } => println!(
                "progress: {}/{target} entries ({} corrupt, {} temp litter), {running} shards \
                 running",
                stats.entries, stats.corrupt, stats.tmp_litter
            ),
            OrchestratorEvent::Relaunch { shard, launch } => println!(
                "relaunched shard {shard} (launch {launch}) on its mostly-cached remainder"
            ),
            OrchestratorEvent::GaveUp { shard, launches } => {
                println!("gave up on shard {shard} after {launches} launches");
            }
            OrchestratorEvent::ShardDone { shard } => println!("shard {shard} done"),
        });
        let report = match outcome {
            Ok(report) => report,
            Err(e) => {
                eprintln!("orchestration failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        for s in &report.shards {
            println!(
                "shard {}: {} after {} launch{}",
                s.index,
                if s.succeeded { "ok" } else { "FAILED" },
                s.launches,
                if s.launches == 1 { "" } else { "es" }
            );
        }
        if !report.all_succeeded() {
            eprintln!("orchestration incomplete: a shard exhausted its relaunch budget");
            return ExitCode::FAILURE;
        }
        println!(
            "grid complete: {} intact entries, {} relaunches; assembling (unsharded warm {bin})",
            report.stats.entries, report.relaunches
        );
        // Assembly inherits everything except the shard split; its output
        // is the figure, so stdout passes through.
        let status =
            Command::new(&program).env("APX_CACHE_DIR", &dir).env_remove("APX_SHARD").status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("assembly run failed: {s}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("cannot spawn assembly run {}: {e}", program.display());
                return ExitCode::FAILURE;
            }
        }
    }

    if mode != GcMode::Off {
        let grid = grid.expect("checked before the grid ran");
        let gc = GcConfig {
            keep: grid_keys(&grid).into_iter().collect(),
            distributions: grid.distributions.iter().map(|d| d.pmf.clone()).collect(),
            threads: grid.flow.threads.max(1),
            // Right after our own grid every writer has exited; a
            // standalone pass grants foreign writers the configured TTL.
            tmp_ttl: if mode == GcMode::After { Duration::ZERO } else { gc_tmp_ttl() },
            collapse_equiv: equiv_enabled(),
        };
        match gc_cache_dir(&dir, &gc) {
            Ok(r) => println!(
                "gc: kept {} of {} entries ({} live, {} pareto), evicted {} ({} equiv \
                 duplicates), removed {} corrupt + {} temp litter, freed {} bytes",
                r.kept(),
                r.entries_before,
                r.kept_live,
                r.kept_pareto,
                r.evicted,
                r.collapsed,
                r.corrupt_removed,
                r.tmp_removed,
                r.bytes_freed
            ),
            Err(e) => {
                eprintln!("gc failed on {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
