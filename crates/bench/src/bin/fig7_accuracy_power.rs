//! Fig. 7: classification accuracy vs relative MAC power for the proposed
//! multipliers against library baselines (EvoApprox-like, broken-array,
//! zero-guarded).
//!
//! CSV mirror: `results/fig7_accuracy_power.csv`.
//!
//! Scale knobs: `APX_ITERS`, `APX_TRAIN_N`, `APX_TEST_N`, `APX_EPOCHS`.
//!
//! Full `APX_*` knob reference: `crates/bench/README.md`.

use apx_approxlib::MultiplierLibrary;
use apx_arith::mac::accumulator_width;
use apx_arith::{baugh_wooley_multiplier, OpTable};
use apx_bench::{iterations, lenet_case, mlp_case, results_dir};
use apx_core::nn_flow::{evaluate_multiplier, CaseStudy};
use apx_core::report::TextTable;
use apx_core::{evolve_circuits, mac_metrics, pareto_indices, FlowConfig};
use apx_gates::Netlist;

fn run_case(label: &str, case: &CaseStudy, fanin: usize, csv: &mut TextTable) {
    println!("--- {label}: accuracy vs relative MAC power ---");
    let exact_mult = baugh_wooley_multiplier(8);
    let acc_width = accumulator_width(8, fanin);

    // Candidates: evolved (proposed) + signed BAM + zero-guarded BAM.
    let mut candidates: Vec<(String, Netlist)> = Vec::new();
    let cfg = FlowConfig {
        width: 8,
        signed: true,
        thresholds: vec![5e-4, 2e-3, 1e-2, 5e-2],
        iterations: iterations(),
        seed: 0xF167,
        ..FlowConfig::default()
    };
    let evolved = evolve_circuits(&case.weight_pmf, &cfg).expect("flow");
    for m in evolved.best_per_threshold() {
        candidates.push((format!("proposed {:.2}%", m.threshold * 100.0), m.netlist.clone()));
    }
    let bam = MultiplierLibrary::broken_family_signed(8);
    for e in bam.iter().filter(|e| e.name != "exact_bw").step_by(3) {
        candidates.push((format!("bam {}", e.name), e.netlist.clone()));
    }
    let zg = MultiplierLibrary::zero_guard_family_signed(8);
    for e in zg.iter().filter(|e| e.name != "exact_bw").step_by(3) {
        candidates.push((format!("zero-guard {}", e.name), e.netlist.clone()));
    }

    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for (name, netlist) in &candidates {
        let table = OpTable::from_netlist(netlist, 8, true).expect("table");
        let acc = evaluate_multiplier(case, &table, 0);
        let mac = mac_metrics(netlist, &exact_mult, 8, acc_width, true, &case.weight_pmf, 16, 3);
        rows.push((name.clone(), acc.initial_delta, 1.0 + mac.rel_power));
    }

    // Pareto view: maximize accuracy (minimize -delta), minimize power.
    let points: Vec<(f64, f64)> = rows.iter().map(|r| (-r.1, r.2)).collect();
    let front = pareto_indices(&points);
    let mut table = TextTable::new(vec!["multiplier", "acc delta", "rel power", "pareto"]);
    for (i, (name, delta, rel_power)) in rows.iter().enumerate() {
        table.row(vec![
            name.clone(),
            format!("{:+.2} %", delta * 100.0),
            format!("{:.3}", rel_power),
            if front.contains(&i) { "*".to_owned() } else { String::new() },
        ]);
        csv.row(vec![
            label.to_owned(),
            name.clone(),
            format!("{:.5}", delta),
            format!("{:.5}", rel_power),
        ]);
    }
    println!("{}", table.to_text());
    let proposed_on_front = front.iter().filter(|&&i| rows[i].0.starts_with("proposed")).count();
    println!(
        "proposed multipliers on the accuracy/power front: {proposed_on_front} of {}\n",
        front.len()
    );
}

fn main() {
    println!("=== Fig. 7: accuracy vs relative MAC power ({} iterations/run) ===\n", iterations());
    let mut csv = TextTable::new(vec!["case", "multiplier", "acc_delta", "rel_power"]);
    let mlp = mlp_case();
    println!(
        "MLP reference accuracy: float {:.1} %, quantized {:.1} %\n",
        mlp.float_accuracy * 100.0,
        mlp.quantized_accuracy * 100.0
    );
    run_case("MLP / MNIST-like", &mlp, 784, &mut csv);

    let lenet = lenet_case();
    println!(
        "LeNet reference accuracy: float {:.1} %, quantized {:.1} %\n",
        lenet.float_accuracy * 100.0,
        lenet.quantized_accuracy * 100.0
    );
    run_case("LeNet / SVHN-like", &lenet, 25, &mut csv);

    let path = results_dir().join("fig7_accuracy_power.csv");
    csv.write_csv(&path).expect("write csv");
    println!("CSV written to {}", path.display());
}
