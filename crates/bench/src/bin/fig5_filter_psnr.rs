//! Fig. 5: average PSNR of approximate Gaussian filters vs power.
//!
//! Takes the multipliers evolved for D1/D2/Du (as in Fig. 3) plus the
//! conventional baselines, drops each into the 3×3 Gaussian filter and
//! reports mean PSNR over 25 images against filter power.
//! CSV mirror: `results/fig5_filter_psnr.csv`.

use apx_bench::{d1, d2, du, iterations, results_dir};
use apx_core::report::TextTable;
use apx_core::{evolve_circuits, FlowConfig};
use apx_dist::Pmf;
use apx_imgproc::{average_filter_psnr, synth, Kernel3};
use apx_rng::Xoshiro256;
use apx_techlib::{estimate_under_pmf, TechLibrary, DEFAULT_CLOCK_MHZ};

fn main() {
    let iters = iterations();
    println!("=== Fig. 5: Gaussian-filter PSNR vs power ({iters} iterations/run) ===\n");
    let kernel = Kernel3::gaussian(1.0);
    println!("kernel (sum 256): {:?}", kernel.coeffs());
    let images = synth::test_images(25, 64, 64, 555);

    // The multiplier sees: x = coefficient (small values!), y = pixel.
    let mut coeff_weights = vec![0.0f64; 256];
    for &c in kernel.coeffs() {
        coeff_weights[c as usize] += 1.0;
    }
    let coeff_pmf = Pmf::from_weights(8, coeff_weights).expect("kernel pmf");

    let tech = TechLibrary::nangate45();
    let mut rng = Xoshiro256::from_seed(0xF165);
    let mut table = TextTable::new(vec!["series", "name", "PSNR dB", "power mW"]);
    let mut csv = TextTable::new(vec!["series", "name", "psnr_db", "power_mw"]);

    // Proposed multipliers from the three distributions, a few WMED levels.
    let thresholds = vec![1e-5, 1e-4, 1e-3, 5e-3, 2e-2, 1e-1];
    for (name, pmf) in [("D1", d1()), ("D2", d2()), ("Du", du())] {
        let cfg = FlowConfig {
            width: 8,
            thresholds: thresholds.clone(),
            iterations: iters,
            seed: 0xF165,
            ..FlowConfig::default()
        };
        let result = evolve_circuits(&pmf, &cfg).expect("flow");
        for m in result.best_per_threshold() {
            let t = apx_arith::OpTable::from_netlist(&m.netlist, 8, false).expect("table");
            let psnr = average_filter_psnr(&images, &kernel, &t, 80.0);
            // Filter power: the multiplier operating on coefficient data.
            let est =
                estimate_under_pmf(&m.netlist, &tech, &coeff_pmf, DEFAULT_CLOCK_MHZ, 32, &mut rng);
            let series = format!("proposed ({name})");
            table.row(vec![
                series.clone(),
                m.name.clone(),
                format!("{psnr:.2}"),
                format!("{:.4}", est.power_mw()),
            ]);
            csv.row(vec![
                series,
                m.name.clone(),
                format!("{psnr:.3}"),
                format!("{:.5}", est.power_mw()),
            ]);
        }
    }
    // Conventional baselines for context.
    for k in [4u32, 6, 8, 10] {
        let nl = apx_arith::truncated_multiplier(8, k);
        let t = apx_arith::OpTable::from_netlist(&nl, 8, false).expect("table");
        let psnr = average_filter_psnr(&images, &kernel, &t, 80.0);
        let est = estimate_under_pmf(&nl, &tech, &coeff_pmf, DEFAULT_CLOCK_MHZ, 32, &mut rng);
        table.row(vec![
            "truncated".to_owned(),
            format!("trunc_{k}"),
            format!("{psnr:.2}"),
            format!("{:.4}", est.power_mw()),
        ]);
        csv.row(vec![
            "truncated".to_owned(),
            format!("trunc_{k}"),
            format!("{psnr:.3}"),
            format!("{:.5}", est.power_mw()),
        ]);
    }
    println!("{}", table.to_text());
    println!(
        "Expected shape (paper): the D2-evolved series dominates — its\n\
         multipliers are exact for the small coefficient values the filter\n\
         actually multiplies by."
    );
    let path = results_dir().join("fig5_filter_psnr.csv");
    csv.write_csv(&path).expect("write csv");
    println!("CSV written to {}", path.display());
}
