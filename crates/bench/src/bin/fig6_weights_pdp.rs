//! Fig. 6: NN weight distributions (top) and relative multiplier PDP box
//! plots over repeated CGP runs (bottom).
//!
//! CSV mirrors: `results/fig6_weights.csv`, `results/fig6_pdp.csv`.
//!
//! Scale knobs: `APX_ITERS`, `APX_RUNS` (default 5; paper 25),
//! `APX_TRAIN_N` / `APX_EPOCHS` for the classifiers.
//!
//! Full `APX_*` knob reference: `crates/bench/README.md`.

use apx_bench::{iterations, lenet_case, mlp_case, results_dir, runs};
use apx_core::report::TextTable;
use apx_core::{evolve_circuits, FlowConfig};
use apx_rng::Xoshiro256;
use apx_techlib::{estimate_under_pmf, TechLibrary, DEFAULT_CLOCK_MHZ};

fn weight_histogram(name: &str, pmf: &apx_dist::Pmf, csv: &mut TextTable) {
    println!("Weight distribution, {name}:");
    let max = (-128i64..128).map(|v| pmf.prob_of(v)).fold(0.0f64, f64::max);
    for bin in 0..16 {
        let lo = -128 + bin * 16;
        let mass: f64 = (lo..lo + 16).map(|v| pmf.prob_of(v)).sum();
        let bar = "#".repeat(((mass / max.max(1e-12)) * 40.0).min(40.0).round() as usize);
        println!("  w in [{:>4}, {:>4}]  {:6.2} %  {bar}", lo, lo + 15, mass * 100.0);
        csv.row(vec![name.to_owned(), format!("{lo}..{}", lo + 15), format!("{:.6}", mass)]);
    }
    println!("  P(w = 0) = {:.3}\n", pmf.prob_of(0));
}

fn quartiles(mut values: Vec<f64>) -> (f64, f64, f64, f64, f64) {
    values.sort_by(f64::total_cmp);
    let q = |p: f64| -> f64 {
        let idx = p * (values.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        let t = idx - lo as f64;
        values[lo] * (1.0 - t) + values[hi] * t
    };
    (values[0], q(0.25), q(0.5), q(0.75), values[values.len() - 1])
}

fn main() {
    let iters = iterations();
    let n_runs = runs(5);
    println!(
        "=== Fig. 6: weight distributions + relative PDP box plots \
         ({iters} iterations, {n_runs} runs/level; paper: 10^6, 25) ===\n"
    );
    println!("training the two classifiers...");
    let mlp = mlp_case();
    let lenet = lenet_case();
    println!(
        "  MLP   (MNIST-like): float {:.1} %, quantized {:.1} %",
        mlp.float_accuracy * 100.0,
        mlp.quantized_accuracy * 100.0
    );
    println!(
        "  LeNet (SVHN-like) : float {:.1} %, quantized {:.1} %\n",
        lenet.float_accuracy * 100.0,
        lenet.quantized_accuracy * 100.0
    );

    let mut weights_csv = TextTable::new(vec!["network", "bin", "mass"]);
    weight_histogram("SVHN-like (LeNet)", &lenet.weight_pmf, &mut weights_csv);
    weight_histogram("MNIST-like (MLP)", &mlp.weight_pmf, &mut weights_csv);
    weights_csv.write_csv(results_dir().join("fig6_weights.csv")).expect("write csv");

    // Bottom: relative PDP of multipliers evolved at each WMED level,
    // box-plot statistics over independent runs.
    let levels = [5e-4, 2e-3, 1e-2, 5e-2];
    let tech = TechLibrary::nangate45();
    let mut pdp_csv =
        TextTable::new(vec!["network", "wmed_pct", "min", "q1", "median", "q3", "max"]);
    for (name, case) in [("SVHN-like", &lenet), ("MNIST-like", &mlp)] {
        println!("--- relative multiplier PDP, {name} weights ---");
        let mut table = TextTable::new(vec!["WMED %", "min", "q1", "median", "q3", "max"]);
        let cfg = FlowConfig {
            width: 8,
            signed: true,
            thresholds: levels.to_vec(),
            iterations: iters,
            runs_per_threshold: n_runs,
            seed: 0xF166,
            ..FlowConfig::default()
        };
        let result = evolve_circuits(&case.weight_pmf, &cfg).expect("flow");
        let mut rng = Xoshiro256::from_seed(0xF166);
        let exact_est = estimate_under_pmf(
            &result.seed_netlist.compact(),
            &tech,
            &case.weight_pmf,
            DEFAULT_CLOCK_MHZ,
            32,
            &mut rng,
        );
        for (li, &level) in levels.iter().enumerate() {
            let rel_pdps: Vec<f64> = result
                .circuits
                .iter()
                .filter(|m| (m.threshold - level).abs() < 1e-15)
                .map(|m| m.estimate.pdp_fj() / exact_est.pdp_fj())
                .collect();
            assert_eq!(rel_pdps.len(), n_runs, "level {li} run count");
            let (min, q1, med, q3, max) = quartiles(rel_pdps);
            table.row(vec![
                format!("{:.2}", level * 100.0),
                format!("{min:.3}"),
                format!("{q1:.3}"),
                format!("{med:.3}"),
                format!("{q3:.3}"),
                format!("{max:.3}"),
            ]);
            pdp_csv.row(vec![
                name.to_owned(),
                format!("{:.3}", level * 100.0),
                format!("{min:.4}"),
                format!("{q1:.4}"),
                format!("{med:.4}"),
                format!("{q3:.4}"),
                format!("{max:.4}"),
            ]);
        }
        println!("{}", table.to_text());
    }
    pdp_csv.write_csv(results_dir().join("fig6_pdp.csv")).expect("write csv");
    println!(
        "Expected shape (paper): median relative PDP falls with the WMED\n\
         budget — about 0.5 at WMED 0.2 % for the SVHN network."
    );
    println!("CSVs written to {}", results_dir().display());
}
