//! The `APX_*` knob registry must stay in lockstep with the code.
//!
//! Every knob the workspace reads is user-facing configuration, and
//! `crates/bench/README.md` is its single reference table. This test
//! greps the workspace source for `APX_*` tokens and fails when a knob
//! is read but undocumented (a silent feature) or documented but no
//! longer read (a lie in the manual). Test-only variables — fixtures
//! like `APX_TEST_BAD_KNOB` that exist to exercise the knob parsers
//! themselves — are allowlisted by prefix.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/bench -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

/// All `APX_[A-Z0-9_]+` tokens in `text`.
fn apx_tokens(text: &str) -> BTreeSet<String> {
    let mut tokens = BTreeSet::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(rel) = text[i..].find("APX_") {
        let start = i + rel;
        let mut end = start + 4;
        while end < bytes.len()
            && (bytes[end].is_ascii_uppercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        if end > start + 4 {
            tokens.insert(text[start..end].to_owned());
        }
        i = end;
    }
    tokens
}

/// `APX_*` tokens read anywhere in the workspace's Rust source.
fn tokens_in_code() -> BTreeSet<String> {
    let mut tokens = BTreeSet::new();
    let mut stack = vec![workspace_root().join("crates")];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                // Build artifacts are not source.
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                tokens.extend(apx_tokens(&std::fs::read_to_string(&path).unwrap()));
            }
        }
    }
    tokens
}

/// The knob names documented in the README's reference table — the
/// first `APX_*` token of each `| \`APX_...\` |` row (rows may mention
/// other knobs in their description column).
fn documented_knobs() -> BTreeSet<String> {
    let readme = workspace_root().join("crates/bench/README.md");
    std::fs::read_to_string(readme)
        .unwrap()
        .lines()
        .filter(|line| line.starts_with("| `APX_"))
        .filter_map(|line| apx_tokens(line).into_iter().next())
        .collect()
}

/// Variables that legitimately live outside the registry: fixtures the
/// knob-parser tests set to prove strictness, and a deliberately-unset
/// probe. (`APX_TEST_N` is a real, documented knob that happens to share
/// the prefix — the subset checks below keep it honest regardless.)
fn is_test_only(name: &str) -> bool {
    name.starts_with("APX_TEST_") || name == "APX_DEFINITELY_UNSET_VAR"
}

#[test]
fn every_knob_in_code_is_documented_and_vice_versa() {
    let code = tokens_in_code();
    let documented = documented_knobs();
    assert!(code.len() > 15, "token scan looks broken: {code:?}");
    assert!(documented.len() > 15, "README table parse looks broken: {documented:?}");

    let undocumented: Vec<&String> =
        code.iter().filter(|t| !documented.contains(*t) && !is_test_only(t)).collect();
    assert!(
        undocumented.is_empty(),
        "knobs read in code but missing from crates/bench/README.md: {undocumented:?}"
    );

    let phantom: Vec<&String> = documented.iter().filter(|t| !code.contains(*t)).collect();
    assert!(
        phantom.is_empty(),
        "knobs documented in crates/bench/README.md but never read in code: {phantom:?}"
    );
}

#[test]
fn token_extraction_is_exact() {
    let text = "reads `APX_ITERS` and APX_GC_TMP_TTL_SECS, ignores APX_ alone and apx_lower";
    let tokens = apx_tokens(text);
    assert_eq!(tokens.into_iter().collect::<Vec<_>>(), ["APX_GC_TMP_TTL_SECS", "APX_ITERS"]);
}
