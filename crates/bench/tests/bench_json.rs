//! `results/BENCH_sweep.json` must always be valid JSON.
//!
//! Regression: the bin hand-rolled its JSON and formatted
//! `evaluations_per_second` with `{:.1}`, which prints `inf` — not a JSON
//! token — whenever `wall_seconds` rounds to zero on a tiny grid. The
//! rate now goes through `SweepStats::rate` (clamped denominator) and the
//! document through `apx_bench::bench_sweep_json`; this test feeds the
//! formatter the degenerate stats that used to corrupt the file and runs
//! a real JSON grammar check over the output (no leniency: `f64::parse`
//! would happily accept `inf`, so numbers are validated against the JSON
//! number grammar, not Rust's).

use apx_arith::Operator;
use apx_bench::{
    bench_sweep_json, bench_wide_json, json_metric, metric_cell, sweep_stats_json, BenchGrid,
    WideCell,
};
use apx_core::SweepStats;

/// A minimal strict JSON recognizer (grammar check only, no tree).
mod json {
    pub fn validate(text: &str) -> Result<(), String> {
        let bytes = text.as_bytes();
        let mut pos = value(bytes, skip_ws(bytes, 0))?;
        pos = skip_ws(bytes, pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at {pos}"));
        }
        Ok(())
    }

    fn skip_ws(b: &[u8], mut p: usize) -> usize {
        while p < b.len() && matches!(b[p], b' ' | b'\t' | b'\n' | b'\r') {
            p += 1;
        }
        p
    }

    fn value(b: &[u8], p: usize) -> Result<usize, String> {
        match b.get(p) {
            Some(b'{') => object(b, p),
            Some(b'[') => array(b, p),
            Some(b'"') => string(b, p),
            Some(b't') => literal(b, p, b"true"),
            Some(b'f') => literal(b, p, b"false"),
            Some(b'n') => literal(b, p, b"null"),
            Some(c) if *c == b'-' || c.is_ascii_digit() => number(b, p),
            other => Err(format!("unexpected {other:?} at {p}")),
        }
    }

    fn literal(b: &[u8], p: usize, lit: &[u8]) -> Result<usize, String> {
        if b.len() >= p + lit.len() && &b[p..p + lit.len()] == lit {
            Ok(p + lit.len())
        } else {
            Err(format!("bad literal at {p}"))
        }
    }

    fn object(b: &[u8], mut p: usize) -> Result<usize, String> {
        p = skip_ws(b, p + 1);
        if b.get(p) == Some(&b'}') {
            return Ok(p + 1);
        }
        loop {
            p = string(b, skip_ws(b, p))?;
            p = skip_ws(b, p);
            if b.get(p) != Some(&b':') {
                return Err(format!("expected `:` at {p}"));
            }
            p = value(b, skip_ws(b, p + 1))?;
            p = skip_ws(b, p);
            match b.get(p) {
                Some(b',') => p += 1,
                Some(b'}') => return Ok(p + 1),
                other => return Err(format!("expected `,`/`}}`, got {other:?} at {p}")),
            }
        }
    }

    fn array(b: &[u8], mut p: usize) -> Result<usize, String> {
        p = skip_ws(b, p + 1);
        if b.get(p) == Some(&b']') {
            return Ok(p + 1);
        }
        loop {
            p = value(b, skip_ws(b, p))?;
            p = skip_ws(b, p);
            match b.get(p) {
                Some(b',') => p += 1,
                Some(b']') => return Ok(p + 1),
                other => return Err(format!("expected `,`/`]`, got {other:?} at {p}")),
            }
        }
    }

    fn string(b: &[u8], p: usize) -> Result<usize, String> {
        if b.get(p) != Some(&b'"') {
            return Err(format!("expected string at {p}"));
        }
        let mut q = p + 1;
        while let Some(&c) = b.get(q) {
            match c {
                b'"' => return Ok(q + 1),
                b'\\' => q += 2,
                _ => q += 1,
            }
        }
        Err(format!("unterminated string at {p}"))
    }

    /// JSON number grammar: `-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`.
    /// Deliberately rejects `inf`, `NaN`, `+1`, `01`, `1.` and `.5`.
    fn number(b: &[u8], mut p: usize) -> Result<usize, String> {
        let start = p;
        if b.get(p) == Some(&b'-') {
            p += 1;
        }
        match b.get(p) {
            Some(b'0') => p += 1,
            Some(c) if c.is_ascii_digit() => {
                while b.get(p).is_some_and(u8::is_ascii_digit) {
                    p += 1;
                }
            }
            _ => return Err(format!("bad number at {start}")),
        }
        if b.get(p) == Some(&b'.') {
            p += 1;
            if !b.get(p).is_some_and(u8::is_ascii_digit) {
                return Err(format!("bad fraction at {start}"));
            }
            while b.get(p).is_some_and(u8::is_ascii_digit) {
                p += 1;
            }
        }
        if matches!(b.get(p), Some(b'e' | b'E')) {
            p += 1;
            if matches!(b.get(p), Some(b'+' | b'-')) {
                p += 1;
            }
            if !b.get(p).is_some_and(u8::is_ascii_digit) {
                return Err(format!("bad exponent at {start}"));
            }
            while b.get(p).is_some_and(u8::is_ascii_digit) {
                p += 1;
            }
        }
        Ok(p)
    }
}

fn stats(wall_seconds: f64, total_evaluations: u64) -> SweepStats {
    SweepStats {
        wall_seconds,
        total_evaluations,
        computed_evaluations: total_evaluations,
        evaluations_per_second: SweepStats::rate(total_evaluations, wall_seconds),
        threads: 4,
        tasks: 42,
        cache_hits: 38,
        cache_misses: 1,
        shard_skipped: 1,
        library_hits: 2,
        seeded_evolutions: 1,
        library_pruned: 3,
        library_semantic_dups: 4,
    }
}

#[test]
fn json_checker_rejects_what_it_should() {
    assert!(json::validate("{\"a\": 1.5e-3, \"b\": [true, null, \"x\"]}").is_ok());
    for bad in
        ["{\"a\": inf}", "{\"a\": NaN}", "{\"a\": 1.}", "{\"a\": 01}", "{\"a\": 1} trailing", "{"]
    {
        assert!(json::validate(bad).is_err(), "`{bad}` should be rejected");
    }
}

#[test]
fn bench_sweep_json_stays_valid_for_degenerate_timings() {
    // The regression case: a grid so tiny the wall clock reads ~0 — the
    // unclamped rate was `4200 / 0.0 = inf`.
    for (wall, evals) in
        [(0.0, 4_200), (0.0, 0), (1e-12, u64::MAX), (f64::MIN_POSITIVE, 1), (3.7, 123_456)]
    {
        let s = stats(wall, evals);
        assert!(s.evaluations_per_second.is_finite(), "rate must be clamped finite");
        let obj = sweep_stats_json(&s);
        json::validate(&obj).unwrap_or_else(|e| panic!("invalid stats JSON ({e}): {obj}"));
        // The component-library counters are part of the tracked schema.
        assert!(obj.contains("\"library_hits\": 2"), "missing library_hits: {obj}");
        assert!(obj.contains("\"seeded_evolutions\": 1"), "missing seeded_evolutions: {obj}");
        assert!(obj.contains("\"library_pruned\": 3"), "missing library_pruned: {obj}");
        assert!(
            obj.contains("\"library_semantic_dups\": 4"),
            "missing library_semantic_dups: {obj}"
        );
        let grid = BenchGrid { distributions: 3, thresholds: 14, runs_per_threshold: 1 };
        let doc =
            bench_sweep_json(grid, 50, 4, "bitpar", Operator::Add, &s, &stats(wall * 2.0, evals));
        json::validate(&doc).unwrap_or_else(|e| panic!("invalid document ({e}): {doc}"));
        assert!(doc.contains("\"backend\": \"bitpar\""), "missing backend: {doc}");
        assert!(doc.contains("\"op\": \"add\""), "missing operator: {doc}");
    }
}

#[test]
fn bench_wide_json_stays_valid_for_degenerate_timings() {
    // The same `inf` hazard as the sweep document: sub-microsecond cells
    // (tiny adders finish 3 evaluations faster than the clock ticks).
    let cells = [
        WideCell {
            op: Operator::Mul,
            width: 12,
            backend: "symbolic",
            evaluations: 3,
            wall_seconds: 0.0,
            // The wide-width stats contract: `mred` is `NaN` past
            // exhaustive widths and must land as JSON `null`.
            mred: f64::NAN,
        },
        WideCell {
            op: Operator::Add,
            width: 6,
            backend: "bitpar",
            evaluations: u64::MAX,
            wall_seconds: 1e-12,
            mred: 0.25,
        },
        WideCell {
            op: Operator::Mac,
            width: 8,
            backend: "symbolic",
            evaluations: 0,
            wall_seconds: 3.5,
            mred: f64::NAN,
        },
    ];
    let doc = bench_wide_json(64, &cells);
    json::validate(&doc).unwrap_or_else(|e| panic!("invalid document ({e}): {doc}"));
    assert!(doc.contains("\"bench\": \"bench_wide\""), "missing bench name: {doc}");
    assert!(doc.contains("\"weighted_values\": 64"), "missing weighted_values: {doc}");
    assert!(doc.contains("\"backend\": \"symbolic\""), "missing symbolic cell: {doc}");
    assert!(doc.contains("\"backend\": \"bitpar\""), "missing bitpar cell: {doc}");
    assert!(doc.contains("\"mred\": null"), "NaN mred must render as null: {doc}");
    assert!(doc.contains("\"mred\": 2.5"), "finite mred must stay a number: {doc}");
    assert!(!doc.contains("NaN"), "no emitted JSON may carry a literal NaN: {doc}");
    // Empty grids must still be a valid document.
    json::validate(&bench_wide_json(0, &[])).expect("empty cell list");
}

#[test]
fn metric_rendering_never_emits_nan_tokens() {
    // The report-surface half of the wide-width stats contract: CSV
    // cells render non-finite metrics as `n/a`, JSON fields as `null` —
    // a literal `NaN` is a parse error in JSON and a silent data hole
    // in most CSV consumers.
    assert_eq!(metric_cell(f64::NAN), "n/a");
    assert_eq!(metric_cell(f64::INFINITY), "n/a");
    assert_eq!(metric_cell(f64::NEG_INFINITY), "n/a");
    assert_eq!(metric_cell(0.25), "2.500000000e-1");
    assert_eq!(json_metric(f64::NAN), "null");
    assert_eq!(json_metric(0.25), "2.500000000e-1");
}

#[test]
fn committed_results_files_contain_no_nan_tokens() {
    // Blanket regression over every tracked report artifact: whatever a
    // binary emitted under `results/`, the wide-width `mred = NaN`
    // contract must have been rendered (`n/a`/`null`), never leaked.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    let mut scanned = 0usize;
    for entry in std::fs::read_dir(dir).expect("results/ is committed") {
        let path = entry.unwrap().path();
        let is_report =
            path.extension().is_some_and(|e| e == "csv" || e == "json") && path.is_file();
        if !is_report {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.contains("NaN"), "{} contains a literal NaN token", path.display());
        scanned += 1;
    }
    assert!(scanned > 0, "results/ should hold committed CSV/JSON artifacts");
}

#[test]
fn committed_bench_symbolic_json_parses() {
    // The tracked wide-width perf-history file must be valid JSON and
    // cover the widths only the symbolic backend can reach.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_symbolic.json");
    let text = std::fs::read_to_string(path).expect("results/BENCH_symbolic.json is committed");
    json::validate(&text).unwrap_or_else(|e| panic!("committed BENCH_symbolic.json invalid: {e}"));
    for key in [
        "\"backend\": \"symbolic\"",
        "\"backend\": \"bitpar\"",
        "\"op\": \"mul\"",
        "\"op\": \"add\"",
        "\"op\": \"mac\"",
        "\"width\": 12",
        "\"width\": 16",
        "\"weighted_values\"",
    ] {
        assert!(text.contains(key), "committed BENCH_symbolic.json lacks {key}");
    }
}

#[test]
fn committed_bench_sweep_json_parses() {
    // The tracked perf-history file must itself be valid JSON and carry
    // the current counter schema.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_sweep.json");
    let text = std::fs::read_to_string(path).expect("results/BENCH_sweep.json is committed");
    json::validate(&text).unwrap_or_else(|e| panic!("committed BENCH_sweep.json invalid: {e}"));
    for key in [
        "\"library_hits\"",
        "\"seeded_evolutions\"",
        "\"library_pruned\"",
        "\"cache_hits\"",
        "\"backend\"",
        "\"op\"",
    ] {
        assert!(text.contains(key), "committed BENCH_sweep.json lacks {key}");
    }
}
