//! End-to-end orchestrator coverage over real processes.
//!
//! Drives the actual `orchestrate` binary over the tiny `sweep_smoke`
//! workload (width-4 grid — the 8-bit figure grids are a release-profile
//! CI concern): a 2-shard run where *every* shard dies mid-grid once and
//! is relaunched must assemble a CSV byte-identical to a cold unsharded
//! run, and a subsequent GC pass must remove fabricated writer litter
//! while leaving the live grid untouched and still warm.

use std::path::PathBuf;
use std::process::Command;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("apx_orch_e2e_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs one of this crate's binaries with exactly the given `APX_*`
/// environment (ambient knobs are stripped so a developer's shell cannot
/// skew the grid), returning its stdout.
fn run(exe: &str, envs: &[(&str, &str)]) -> String {
    let mut cmd = Command::new(exe);
    for knob in [
        "APX_ITERS",
        "APX_RUNS",
        "APX_CACHE_DIR",
        "APX_SHARD",
        "APX_LIBRARY",
        "APX_GC",
        "APX_GC_TMP_TTL_SECS",
        "APX_ORCH_BIN",
        "APX_ORCH_SHARDS",
        "APX_ORCH_RELAUNCHES",
        "APX_SMOKE_CRASH_ONCE",
        "APX_OUT_DIR",
    ] {
        cmd.env_remove(knob);
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn bench binary");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        out.status.success(),
        "{exe} failed ({}):\nstdout:\n{stdout}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    stdout
}

#[test]
fn orchestrated_crashing_grid_assembles_bit_identically_and_gc_keeps_it_warm() {
    const ITERS: &str = "60";
    let csv_of = |dir: &PathBuf| std::fs::read(dir.join("sweep_smoke.csv")).expect("csv");

    // 1. The reference: a cold, unsharded, cache-less run.
    let out_cold = scratch("out_cold");
    run(
        env!("CARGO_BIN_EXE_sweep_smoke"),
        &[
            ("APX_ITERS", ITERS),
            ("APX_CACHE_DIR", "off"),
            ("APX_OUT_DIR", out_cold.to_str().unwrap()),
        ],
    );
    let cold_csv = csv_of(&out_cold);

    // 2. Orchestrated: 2 shards, each deterministically dying mid-grid on
    //    its first launch (APX_SMOKE_CRASH_ONCE), then relaunched on its
    //    checkpointed remainder; the final assembly pass writes the CSV.
    let cache = scratch("cache");
    let out_orch = scratch("out_orch");
    let stdout = run(
        env!("CARGO_BIN_EXE_orchestrate"),
        &[
            ("APX_ITERS", ITERS),
            ("APX_ORCH_BIN", "sweep_smoke"),
            ("APX_ORCH_SHARDS", "2"),
            ("APX_CACHE_DIR", cache.to_str().unwrap()),
            ("APX_OUT_DIR", out_orch.to_str().unwrap()),
            ("APX_SMOKE_CRASH_ONCE", "1"),
        ],
    );
    assert!(stdout.contains("relaunched shard 0"), "shard 0 crash not supervised:\n{stdout}");
    assert!(stdout.contains("relaunched shard 1"), "shard 1 crash not supervised:\n{stdout}");
    assert!(stdout.contains("shard 0: ok after 2 launches"), "{stdout}");
    assert!(stdout.contains("shard 1: ok after 2 launches"), "{stdout}");
    assert!(stdout.contains("cache: 12 hits, 0 misses"), "assembly must be all hits:\n{stdout}");
    assert_eq!(
        csv_of(&out_orch),
        cold_csv,
        "orchestrated assembly differs from the cold unsharded run"
    );

    // 3. Fabricate the litter of a writer killed between write and
    //    rename; the maintenance view must count it.
    let litter = cache.join(format!(".{}.tmp.31337", "deadbeef".repeat(4)));
    std::fs::write(&litter, b"half-written entry").unwrap();
    let stats =
        run(env!("CARGO_BIN_EXE_cache_stats"), &[("APX_CACHE_DIR", cache.to_str().unwrap())]);
    assert!(stats.contains("12 intact entries"), "{stats}");
    assert!(stats.contains("1 orphaned temp files"), "{stats}");

    // 4. GC through the binary: the whole directory is the live grid, so
    //    nothing is evicted, but the litter goes.
    let gc = run(
        env!("CARGO_BIN_EXE_orchestrate"),
        &[
            ("APX_ITERS", ITERS),
            ("APX_ORCH_BIN", "sweep_smoke"),
            ("APX_CACHE_DIR", cache.to_str().unwrap()),
            ("APX_GC", "only"),
            ("APX_GC_TMP_TTL_SECS", "0"),
        ],
    );
    assert!(gc.contains("kept 12 of 12 entries (12 live, 0 pareto)"), "{gc}");
    assert!(gc.contains("1 temp litter"), "{gc}");
    assert!(!litter.exists(), "stale litter must be deleted");
    let stats =
        run(env!("CARGO_BIN_EXE_cache_stats"), &[("APX_CACHE_DIR", cache.to_str().unwrap())]);
    assert!(stats.contains("12 intact entries"), "entry count may not shrink here: {stats}");
    assert!(stats.contains("0 orphaned temp files"), "{stats}");

    // 5. The GC'd directory still serves a fully warm, bit-identical run.
    let out_warm = scratch("out_warm");
    let warm = run(
        env!("CARGO_BIN_EXE_sweep_smoke"),
        &[
            ("APX_ITERS", ITERS),
            ("APX_CACHE_DIR", cache.to_str().unwrap()),
            ("APX_OUT_DIR", out_warm.to_str().unwrap()),
        ],
    );
    assert!(warm.contains("cache: 12 hits, 0 misses"), "{warm}");
    assert_eq!(csv_of(&out_warm), cold_csv);
}
