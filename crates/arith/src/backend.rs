//! The evaluator backend seam: exhaustive-scalar, bit-parallel, symbolic.
//!
//! The enum lives here (rather than in `apx_metrics`, which implements
//! the engines) because the *evaluable width range* of an
//! [`crate::Operator`] depends on the backend: enumeration-based
//! backends are capped by the `2^inputs` state space, the symbolic
//! backend is not. `apx_metrics` re-exports the type, so downstream
//! code keeps importing `apx_metrics::EvalBackend`.

use std::fmt;
use std::str::FromStr;

/// Which simulation engine a `CircuitEvaluator` runs on.
///
/// All backends produce **bit-identical** results at the widths they
/// share — every per-block error sum is an exact integer and the
/// floating-point accumulation order is shared — so the backend is
/// purely a speed/reach trade-off:
///
/// * [`EvalBackend::BitParallel`] (the default) levelizes the netlist into
///   an ASAP schedule and simulates 64 operand pairs per gate operation on
///   bit-sliced `u64` words, with bit-sliced error summation;
/// * [`EvalBackend::Scalar`] interprets the netlist one operand pair at a
///   time. It is orders of magnitude slower and exists as the independent
///   reference implementation that property tests (and the CI smoke run)
///   cross-check the fast engine against;
/// * [`EvalBackend::Symbolic`] never enumerates operand pairs: it builds
///   reduced ordered BDDs of the approximate-vs-exact output difference
///   per weighted operand value and model-counts them, which makes wide
///   operands (12×12/16×16 multipliers, 8-bit MACs) evaluable at all —
///   the enumeration backends' `2^(2w)` state space is unreachable there.
///
/// # Examples
///
/// Selecting a backend via the `APX_EVAL_BACKEND` environment variable
/// (each doctest runs in its own process, so mutating the environment
/// here is safe):
///
/// ```
/// use apx_arith::EvalBackend;
///
/// std::env::remove_var("APX_EVAL_BACKEND");
/// assert_eq!(EvalBackend::from_env(), EvalBackend::BitParallel);
/// std::env::set_var("APX_EVAL_BACKEND", "symbolic");
/// assert_eq!(EvalBackend::from_env(), EvalBackend::Symbolic);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvalBackend {
    /// One operand pair per netlist interpretation (reference path).
    Scalar,
    /// 64 operand pairs per gate op on bit-sliced words (default).
    #[default]
    BitParallel,
    /// ROBDD model counting; no operand-pair enumeration (wide widths).
    Symbolic,
}

impl EvalBackend {
    /// The environment variable consulted by [`EvalBackend::from_env`].
    pub const ENV_VAR: &'static str = "APX_EVAL_BACKEND";

    /// Every backend, in `name()` order.
    pub const ALL: [EvalBackend; 3] =
        [EvalBackend::Scalar, EvalBackend::BitParallel, EvalBackend::Symbolic];

    /// Reads the backend from `APX_EVAL_BACKEND`.
    ///
    /// Unset, empty or whitespace-only values select the default
    /// ([`EvalBackend::BitParallel`]). Like the other `APX_*` knobs this is
    /// fail-loud: any other unrecognized value panics, naming the variable
    /// and the offending value, instead of silently falling back (a silent
    /// fallback could hide a perf regression behind the wrong backend).
    ///
    /// # Panics
    ///
    /// Panics on a malformed non-empty value.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(Self::ENV_VAR) {
            Ok(raw) => {
                let v = raw.trim();
                if v.is_empty() {
                    EvalBackend::default()
                } else {
                    v.parse().unwrap_or_else(|_| {
                        panic!(
                            "{} must be 'scalar', 'bitpar' or 'symbolic', got '{raw}'",
                            Self::ENV_VAR
                        )
                    })
                }
            }
            Err(_) => EvalBackend::default(),
        }
    }

    /// Canonical lowercase name (`"scalar"` / `"bitpar"` / `"symbolic"`),
    /// the spelling `APX_EVAL_BACKEND` accepts and reports record.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EvalBackend::Scalar => "scalar",
            EvalBackend::BitParallel => "bitpar",
            EvalBackend::Symbolic => "symbolic",
        }
    }

    /// Whether this backend enumerates the full `2^inputs` vector space
    /// (and is therefore subject to the exhaustive width cap).
    #[must_use]
    pub fn is_exhaustive(self) -> bool {
        match self {
            EvalBackend::Scalar | EvalBackend::BitParallel => true,
            EvalBackend::Symbolic => false,
        }
    }
}

impl fmt::Display for EvalBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EvalBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(EvalBackend::Scalar),
            "bitpar" => Ok(EvalBackend::BitParallel),
            "symbolic" => Ok(EvalBackend::Symbolic),
            other => Err(format!("unknown evaluator backend '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for b in EvalBackend::ALL {
            assert_eq!(b.name().parse::<EvalBackend>().unwrap(), b);
            assert_eq!(b.to_string(), b.name());
        }
        assert!("Bitpar".parse::<EvalBackend>().is_err());
        assert!("Symbolic".parse::<EvalBackend>().is_err());
        assert!("".parse::<EvalBackend>().is_err());
    }

    #[test]
    fn default_is_bit_parallel() {
        assert_eq!(EvalBackend::default(), EvalBackend::BitParallel);
    }
}
