//! Multiply-and-accumulate (MAC) processing elements.
//!
//! The paper's case study 2 evaluates approximate multipliers inside the
//! MAC units of a TPU-like systolic array (§V-B): each processing element
//! is an 8-bit multiplier plus an `n`-bit accumulator adder with
//! `n = 2·w + log2(d)` guard bits, `d` being the number of products summed
//! per output.

use crate::{add_ripple, OpTable};
use apx_gates::{GateKind, Netlist, NetlistBuilder, SignalId};

/// Accumulator width for a `width`-bit MAC summing up to `depth` products.
///
/// Mirrors the paper's `n = 8 + log2(d)` sizing rule (§V-B), generalized to
/// `2·width + ceil(log2(depth))`.
///
/// # Panics
///
/// Panics if `depth == 0`.
#[must_use]
pub fn accumulator_width(width: u32, depth: usize) -> u32 {
    assert!(depth > 0, "a MAC must accumulate at least one product");
    let guard = usize::BITS - (depth - 1).leading_zeros();
    2 * width + guard.max(1)
}

/// Composes a multiplier netlist and a ripple accumulator into a MAC unit.
///
/// Inputs: `a[0..w]`, `b[0..w]`, `acc[0..acc_width]` (all LSB first);
/// outputs: `acc_width` bits of `acc + a·b` (wrap-around two's-complement
/// arithmetic). The product is sign-extended when `signed`, zero-extended
/// otherwise.
///
/// # Panics
///
/// Panics if the multiplier does not follow the `2·width`-input /
/// `2·width`-output convention or `acc_width < 2·width`.
#[must_use]
pub fn mac_unit(multiplier: &Netlist, width: u32, acc_width: u32, signed: bool) -> Netlist {
    let w = width as usize;
    let n = acc_width as usize;
    assert_eq!(multiplier.num_inputs(), 2 * w, "multiplier input arity");
    assert_eq!(multiplier.num_outputs(), 2 * w, "multiplier output arity");
    assert!(n >= 2 * w, "accumulator narrower than the product");

    let mut bld = NetlistBuilder::new(2 * w + n);
    let mul_inputs: Vec<SignalId> = (0..2 * w).map(|i| bld.input(i)).collect();
    let mut product = bld.embed(multiplier, &mul_inputs);
    // Extend the product to the accumulator width.
    if signed {
        let msb = *product.last().expect("multiplier has outputs");
        let ext = bld.push(GateKind::Buf, msb, msb);
        product.extend(std::iter::repeat_n(ext, n - 2 * w));
    } else {
        let zero = bld.const0();
        product.extend(std::iter::repeat_n(zero, n - 2 * w));
    }
    let acc_bits: Vec<SignalId> = (0..n).map(|i| bld.input(2 * w + i)).collect();
    let mut sum = add_ripple(&mut bld, &product, &acc_bits, None);
    sum.truncate(n);
    bld.outputs(&sum);
    bld.finish().expect("generated MAC is structurally valid")
}

/// Functional model of one MAC step on interpreted values: returns
/// `(acc + table(a, b)) mod 2^acc_width`, two's complement when the table
/// is signed.
#[must_use]
pub fn mac_model(table: &OpTable, a: i64, b: i64, acc: i64, acc_width: u32) -> i64 {
    let product = table.get(a, b);
    let raw = (acc.wrapping_add(product)) as u64 & ((1u64 << acc_width) - 1);
    if table.is_signed() {
        crate::sign_extend(raw, acc_width)
    } else {
        raw as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{array_multiplier, baugh_wooley_multiplier, sign_extend, to_raw};
    use apx_gates::Exhaustive;

    #[test]
    fn accumulator_width_rule() {
        assert_eq!(accumulator_width(8, 2), 17);
        assert_eq!(accumulator_width(8, 9), 20); // paper: conv kernel 3x3
        assert_eq!(accumulator_width(8, 784), 26); // paper: MLP fan-in
        assert_eq!(accumulator_width(8, 1), 17);
    }

    #[test]
    fn unsigned_mac_exhaustive_small() {
        let w = 2u32;
        let n = 5u32;
        let mac = mac_unit(&array_multiplier(w), w, n, false);
        let total_inputs = (2 * w + n) as usize;
        let table = Exhaustive::new(total_inputs).output_table(&mac);
        let opt = OpTable::exact_mul(w, false);
        for v in 0..table.len() as u64 {
            let a = v & 3;
            let b = (v >> 2) & 3;
            let acc = (v >> 4) & 31;
            let expect = mac_model(&opt, a as i64, b as i64, acc as i64, n);
            assert_eq!(table[v as usize] as i64, expect, "a={a} b={b} acc={acc}");
        }
    }

    #[test]
    fn signed_mac_exhaustive_small() {
        let w = 2u32;
        let n = 6u32;
        let mac = mac_unit(&baugh_wooley_multiplier(w), w, n, true);
        let table = Exhaustive::new((2 * w + n) as usize).output_table(&mac);
        let opt = OpTable::exact_mul(w, true);
        for v in 0..table.len() as u64 {
            let a = sign_extend(v & 3, 2);
            let b = sign_extend((v >> 2) & 3, 2);
            let acc = sign_extend((v >> 4) & 63, 6);
            let expect = mac_model(&opt, a, b, acc, n);
            let got = sign_extend(table[v as usize], n);
            assert_eq!(got, expect, "a={a} b={b} acc={acc}");
        }
    }

    #[test]
    fn mac_model_wraps() {
        let opt = OpTable::exact_mul(4, false);
        // 15*15 = 225; acc_width 8 -> (225 + 200) mod 256
        assert_eq!(mac_model(&opt, 15, 15, 200, 8), (225 + 200) % 256);
    }

    #[test]
    fn signed_mac_model_sign_extends() {
        let opt = OpTable::exact_mul(4, true);
        let v = mac_model(&opt, -8, 7, 0, 8);
        assert_eq!(v, -56);
        // wrap: -8 * -8 = 64 repeatedly overflows an 8-bit accumulator
        let mut acc = 0i64;
        for _ in 0..3 {
            acc = mac_model(&opt, -8, -8, acc, 8);
        }
        assert_eq!(acc, sign_extend(to_raw(192, 8), 8));
    }

    #[test]
    #[should_panic(expected = "accumulator narrower")]
    fn mac_rejects_narrow_accumulator() {
        let _ = mac_unit(&array_multiplier(4), 4, 7, false);
    }
}
