//! Functional golden models for every generated circuit.
//!
//! The approximate families ([`crate::truncated_multiplier`],
//! [`crate::broken_array_multiplier`], …) are *defined* by which partial
//! products they keep, so the functions here are the specification the
//! gate-level generators are exhaustively verified against.

use crate::sign_extend;

/// Exact unsigned product of two `width`-bit operands.
#[must_use]
pub fn mul_u(a: u64, b: u64) -> u64 {
    a * b
}

/// Exact signed product of two (sign-extended) operands.
#[must_use]
pub fn mul_s(a: i64, b: i64) -> i64 {
    a * b
}

/// Truncated array multiplier: partial products in columns below
/// `trunc_cols` are dropped, so the low `trunc_cols` product bits are 0.
///
/// `trunc_cols` may range from 0 (exact) to `2 * width` (all dropped).
#[must_use]
pub fn mul_truncated(width: u32, trunc_cols: u32, a: u64, b: u64) -> u64 {
    let mut acc = 0u64;
    for j in 0..width {
        for i in 0..width {
            if i + j < trunc_cols {
                continue;
            }
            acc += (((a >> i) & 1) * ((b >> j) & 1)) << (i + j);
        }
    }
    acc
}

/// Broken-array multiplier (BAM, Mahdiani et al.): a partial product
/// `a_i · b_j` survives iff its row is above the horizontal break
/// (`j < hbl`) and its column is at or beyond the vertical break
/// (`i + j >= vbl`).
#[must_use]
pub fn mul_broken(width: u32, hbl: u32, vbl: u32, a: u64, b: u64) -> u64 {
    let mut acc = 0u64;
    for j in 0..width.min(hbl) {
        for i in 0..width {
            if i + j < vbl {
                continue;
            }
            acc += (((a >> i) & 1) * ((b >> j) & 1)) << (i + j);
        }
    }
    acc
}

/// Enumerates the Baugh-Wooley partial-product terms of a `width`-bit
/// signed multiplier that survive the BAM break levels, and sums them
/// modulo `2^(2·width)`.
///
/// Terms (see the derivation in `multipliers.rs`):
///
/// * `a_i·b_j` at column `i+j` (row `j`) for `i, j < width-1`;
/// * `!(a_i·b_{w-1})` at column `i+w-1` (row `w-1`) for `i < width-1`;
/// * `!(a_{w-1}·b_j)` at column `j+w-1` (row `j`) for `j < width-1`;
/// * `a_{w-1}·b_{w-1}` at column `2w-2` (row `w-1`);
/// * correction constants `+2^w` and `+2^(2w-1)` (always kept).
///
/// With `hbl = width`, `vbl = 0` this is the exact signed product.
#[must_use]
pub fn mul_bw_broken(width: u32, hbl: u32, vbl: u32, a: i64, b: i64) -> i64 {
    let w = width;
    let bit = |v: i64, i: u32| ((v >> i) & 1) as u64;
    let keep = |col: u32, row: u32| row < hbl && col >= vbl;
    let mut acc: u64 = 0;
    if w == 1 {
        if keep(0, 0) {
            acc += bit(a, 0) * bit(b, 0);
        }
    } else {
        for j in 0..w - 1 {
            for i in 0..w - 1 {
                if keep(i + j, j) {
                    acc += (bit(a, i) & bit(b, j)) << (i + j);
                }
            }
        }
        for i in 0..w - 1 {
            if keep(i + w - 1, w - 1) {
                acc += (1 - (bit(a, i) & bit(b, w - 1))) << (i + w - 1);
            }
        }
        for j in 0..w - 1 {
            if keep(j + w - 1, j) {
                acc += (1 - (bit(a, w - 1) & bit(b, j))) << (j + w - 1);
            }
        }
        if keep(2 * w - 2, w - 1) {
            acc += (bit(a, w - 1) & bit(b, w - 1)) << (2 * w - 2);
        }
    }
    // Correction constants are part of the fixed wiring, never broken.
    acc = acc.wrapping_add(1u64 << w).wrapping_add(1u64 << (2 * w - 1));
    sign_extend(acc & ((1u64 << (2 * w)) - 1), 2 * w)
}

/// Exact signed product computed through the Baugh-Wooley identity —
/// sanity-checks the derivation itself.
#[must_use]
pub fn mul_bw_exact(width: u32, a: i64, b: i64) -> i64 {
    mul_bw_broken(width, width, 0, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bw_identity_matches_signed_product() {
        for w in 1..=6u32 {
            let half = 1i64 << (w - 1);
            for a in -half..half {
                for b in -half..half {
                    assert_eq!(mul_bw_exact(w, a, b), a * b, "w={w} {a}*{b}");
                }
            }
        }
    }

    #[test]
    fn truncation_zero_is_exact() {
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(mul_truncated(4, 0, a, b), a * b);
            }
        }
    }

    #[test]
    fn truncation_drops_low_columns() {
        for a in 0..16u64 {
            for b in 0..16u64 {
                let t = mul_truncated(4, 3, a, b);
                assert!(t <= a * b, "truncation only underestimates");
                // Exact in the kept columns: difference limited to dropped PPs.
                let dropped_max: u64 = (0..4u32)
                    .flat_map(|j| (0..4u32).map(move |i| (i, j)))
                    .filter(|&(i, j)| i + j < 3)
                    .map(|(i, j)| 1u64 << (i + j))
                    .sum();
                assert!(a * b - t <= dropped_max);
            }
        }
    }

    #[test]
    fn broken_with_full_levels_is_exact() {
        for a in 0..32u64 {
            for b in 0..32u64 {
                assert_eq!(mul_broken(5, 5, 0, a, b), a * b);
            }
        }
    }

    #[test]
    fn broken_hbl_truncates_operand_rows() {
        // hbl = 2 keeps only b's low two bits.
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(mul_broken(4, 2, 0, a, b), a * (b & 3));
            }
        }
    }

    #[test]
    fn bw_broken_is_signed_range() {
        let w = 4;
        let half = 1i64 << (w - 1);
        for a in -half..half {
            for b in -half..half {
                let v = mul_bw_broken(w, 3, 2, a, b);
                let lim = 1i64 << (2 * w - 1);
                assert!(v >= -lim && v < lim);
            }
        }
    }
}
