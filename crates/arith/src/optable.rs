//! Exhaustive functional views of two-operand circuits.

use crate::{sign_extend, to_raw};
use apx_gates::{Exhaustive, Netlist};
use std::fmt;

/// Error constructing an [`OpTable`] from a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// The netlist does not have `2 * width` primary inputs.
    InputArity {
        /// Inputs the netlist actually has.
        actual: usize,
        /// Inputs required (`2 * width`).
        expected: usize,
    },
    /// The netlist has more output bits than the table can interpret.
    OutputArity {
        /// Outputs the netlist actually has.
        actual: usize,
    },
    /// Width outside the supported range `1..=12`.
    BadWidth(u32),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::InputArity { actual, expected } => {
                write!(f, "netlist has {actual} inputs, table needs {expected}")
            }
            TableError::OutputArity { actual } => {
                write!(f, "netlist has {actual} outputs, more than 63 supported")
            }
            TableError::BadWidth(w) => write!(f, "operand width {w} outside 1..=12"),
        }
    }
}

impl std::error::Error for TableError {}

/// Exhaustive lookup table of a two-operand `width`-bit circuit.
///
/// This is the *functional* face of a multiplier: the image-filter and
/// neural-network substrates execute approximate products through an
/// `OpTable` exactly like an ASIC MAC array executes them through the
/// physical circuit. Entries are stored for all `2^(2·width)` raw operand
/// encodings; an 8-bit multiplier table is 65 536 × 8 B = 512 KiB.
///
/// # Examples
///
/// ```
/// use apx_arith::{array_multiplier, OpTable};
///
/// let exact = OpTable::from_netlist(&array_multiplier(4), 4, false)?;
/// assert_eq!(exact.get(7, 9), 63);
/// # Ok::<(), apx_arith::TableError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpTable {
    width: u32,
    signed: bool,
    entries: Vec<i64>,
}

impl OpTable {
    /// Builds the table by exhaustively simulating `netlist`.
    ///
    /// The netlist must follow the crate conventions: inputs
    /// `a[0..w], b[0..w]` LSB-first. Output bits are packed LSB-first and
    /// interpreted as unsigned, or two's complement when `signed`.
    ///
    /// # Errors
    ///
    /// Returns [`TableError`] when the width is unsupported or the netlist
    /// arity does not match.
    pub fn from_netlist(netlist: &Netlist, width: u32, signed: bool) -> Result<Self, TableError> {
        if width == 0 || width > 12 {
            return Err(TableError::BadWidth(width));
        }
        let expected = 2 * width as usize;
        if netlist.num_inputs() != expected {
            return Err(TableError::InputArity { actual: netlist.num_inputs(), expected });
        }
        let no = netlist.num_outputs();
        if no >= 64 {
            return Err(TableError::OutputArity { actual: no });
        }
        let raw = Exhaustive::new(expected).output_table(netlist);
        let entries = raw
            .into_iter()
            .map(|bits| if signed { sign_extend(bits, no as u32) } else { bits as i64 })
            .collect();
        Ok(OpTable { width, signed, entries })
    }

    /// Builds a table directly from a function of the *interpreted*
    /// operand values.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=12`.
    #[must_use]
    pub fn from_fn<F>(width: u32, signed: bool, mut f: F) -> Self
    where
        F: FnMut(i64, i64) -> i64,
    {
        assert!((1..=12).contains(&width), "width outside 1..=12");
        let n = 1usize << width;
        let mut entries = vec![0i64; n * n];
        for b_raw in 0..n as u64 {
            for a_raw in 0..n as u64 {
                let a = Self::decode(a_raw, width, signed);
                let b = Self::decode(b_raw, width, signed);
                entries[((b_raw << width) | a_raw) as usize] = f(a, b);
            }
        }
        OpTable { width, signed, entries }
    }

    /// The exact `width`-bit multiplier table.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=12`.
    #[must_use]
    pub fn exact_mul(width: u32, signed: bool) -> Self {
        Self::from_fn(width, signed, |a, b| a * b)
    }

    #[inline]
    fn decode(raw: u64, width: u32, signed: bool) -> i64 {
        if signed {
            sign_extend(raw, width)
        } else {
            raw as i64
        }
    }

    /// Operand width in bits.
    #[inline]
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Whether operands and result are two's complement.
    #[inline]
    #[must_use]
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// Result for raw operand encodings.
    #[inline]
    #[must_use]
    pub fn get_raw(&self, a_raw: u64, b_raw: u64) -> i64 {
        self.entries[((b_raw << self.width) | a_raw) as usize]
    }

    /// Result for interpreted operand values.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if `a`/`b` fall outside the operand range.
    #[inline]
    #[must_use]
    pub fn get(&self, a: i64, b: i64) -> i64 {
        debug_assert!(self.in_range(a) && self.in_range(b), "operand out of range");
        self.get_raw(to_raw(a, self.width), to_raw(b, self.width))
    }

    /// Whether `v` is representable as an operand.
    #[must_use]
    pub fn in_range(&self, v: i64) -> bool {
        let (lo, hi) = self.operand_range();
        (lo..=hi).contains(&v)
    }

    /// Inclusive operand range `(min, max)`.
    #[must_use]
    pub fn operand_range(&self) -> (i64, i64) {
        if self.signed {
            (-(1i64 << (self.width - 1)), (1i64 << (self.width - 1)) - 1)
        } else {
            (0, (1i64 << self.width) - 1)
        }
    }

    /// Iterates over all interpreted operand values.
    pub fn operands(&self) -> impl Iterator<Item = i64> {
        let (lo, hi) = self.operand_range();
        lo..=hi
    }

    /// Largest absolute result over the full table.
    #[must_use]
    pub fn max_abs(&self) -> i64 {
        self.entries.iter().map(|e| e.abs()).max().unwrap_or(0)
    }

    /// Returns a copy of the table that multiplies by zero *exactly*
    /// (returns 0 whenever either operand is 0), the key property of the
    /// NN-oriented multipliers of Mrazek et al. [6].
    #[must_use]
    pub fn with_zero_guard(&self) -> Self {
        let mut out = self.clone();
        let za = to_raw(0, self.width);
        let n = 1u64 << self.width;
        for r in 0..n {
            out.entries[((r << self.width) | za) as usize] = 0;
            out.entries[((za << self.width) | r) as usize] = 0;
        }
        out
    }

    /// Mean absolute error against another table (same shape).
    ///
    /// # Panics
    ///
    /// Panics if the tables have different widths.
    #[must_use]
    pub fn mean_abs_error(&self, reference: &OpTable) -> f64 {
        assert_eq!(self.width, reference.width, "width mismatch");
        let n = self.entries.len() as f64;
        self.entries.iter().zip(&reference.entries).map(|(a, r)| (a - r).abs() as f64).sum::<f64>()
            / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{array_multiplier, baugh_wooley_multiplier, truncated_multiplier};

    #[test]
    fn exact_table_from_netlist_matches_product() {
        let t = OpTable::from_netlist(&array_multiplier(4), 4, false).unwrap();
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(t.get(a, b), a * b);
            }
        }
    }

    #[test]
    fn signed_table_from_baugh_wooley() {
        let t = OpTable::from_netlist(&baugh_wooley_multiplier(4), 4, true).unwrap();
        for a in -8i64..8 {
            for b in -8i64..8 {
                assert_eq!(t.get(a, b), a * b, "{a}*{b}");
            }
        }
        assert_eq!(t.operand_range(), (-8, 7));
    }

    #[test]
    fn from_fn_and_exact_agree() {
        let a = OpTable::exact_mul(5, false);
        let b = OpTable::from_fn(5, false, |x, y| x * y);
        assert_eq!(a, b);
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let nl = array_multiplier(4);
        let err = OpTable::from_netlist(&nl, 5, false).unwrap_err();
        assert!(matches!(err, TableError::InputArity { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn bad_width_is_reported() {
        let nl = array_multiplier(4);
        assert!(matches!(OpTable::from_netlist(&nl, 0, false), Err(TableError::BadWidth(0))));
    }

    #[test]
    fn zero_guard_zeroes_rows_and_columns() {
        let approx = OpTable::from_netlist(&truncated_multiplier(4, 4), 4, false).unwrap();
        let guarded = approx.with_zero_guard();
        for v in 0..16 {
            assert_eq!(guarded.get(0, v), 0);
            assert_eq!(guarded.get(v, 0), 0);
        }
        // Non-zero entries unchanged.
        assert_eq!(guarded.get(5, 7), approx.get(5, 7));
    }

    #[test]
    fn mean_abs_error_zero_for_identical() {
        let t = OpTable::exact_mul(4, true);
        assert_eq!(t.mean_abs_error(&t), 0.0);
        let trunc = OpTable::from_netlist(&truncated_multiplier(4, 5), 4, false).unwrap();
        let exact = OpTable::exact_mul(4, false);
        assert!(trunc.mean_abs_error(&exact) > 0.0);
    }

    #[test]
    fn max_abs_of_exact_unsigned() {
        let t = OpTable::exact_mul(4, false);
        assert_eq!(t.max_abs(), 15 * 15);
    }
}
