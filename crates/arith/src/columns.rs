//! Partial-product column reduction.
//!
//! Multiplier generators produce a *column matrix*: `columns[c]` holds the
//! signals whose weights are `2^c`. The reducers below compress the matrix
//! into one bit per column using half/full adders, discarding any carry
//! that would land at or beyond `max_width` (i.e. arithmetic modulo
//! `2^max_width`, which is exactly what a fixed-width datapath does).

use apx_gates::{NetlistBuilder, SignalId};

/// Sequentially reduces each column to a single bit (carry-ripple style).
///
/// Produces the gate structure of a classic array multiplier: column `c` is
/// fully compressed (FAs for triples, an HA for the final pair) before
/// column `c + 1` is visited, so carries ripple left. Returns exactly
/// `max_width` product bits (missing columns are filled with constant 0).
pub fn reduce_columns_sequential(
    b: &mut NetlistBuilder,
    mut columns: Vec<Vec<SignalId>>,
    max_width: usize,
) -> Vec<SignalId> {
    columns.resize(max_width, Vec::new());
    columns.truncate(max_width);
    let mut result = Vec::with_capacity(max_width);
    let mut zero: Option<SignalId> = None;
    for c in 0..max_width {
        while columns[c].len() > 1 {
            if columns[c].len() >= 3 {
                let z = columns[c].pop().unwrap();
                let y = columns[c].pop().unwrap();
                let x = columns[c].pop().unwrap();
                let (sum, carry) = {
                    let axb = b.xor(x, y);
                    let sum = b.xor(axb, z);
                    let ab = b.and(x, y);
                    let cc = b.and(axb, z);
                    (sum, b.or(ab, cc))
                };
                columns[c].push(sum);
                if c + 1 < max_width {
                    columns[c + 1].push(carry);
                }
            } else {
                let y = columns[c].pop().unwrap();
                let x = columns[c].pop().unwrap();
                let (sum, carry) = b.half_adder(x, y);
                columns[c].push(sum);
                if c + 1 < max_width {
                    columns[c + 1].push(carry);
                }
            }
        }
        let bit = match columns[c].pop() {
            Some(s) => s,
            None => *zero.get_or_insert_with(|| b.const0()),
        };
        result.push(bit);
    }
    result
}

/// Wallace-style staged reduction: all columns are compressed in parallel
/// stages (3:2 counters) until at most two bits remain per column, then a
/// final carry-propagate ripple produces the result.
///
/// Shallower than [`reduce_columns_sequential`] — used for the
/// low-latency multiplier seed.
pub fn reduce_columns_wallace(
    b: &mut NetlistBuilder,
    mut columns: Vec<Vec<SignalId>>,
    max_width: usize,
) -> Vec<SignalId> {
    columns.resize(max_width, Vec::new());
    columns.truncate(max_width);
    while columns.iter().any(|c| c.len() > 2) {
        let mut next: Vec<Vec<SignalId>> = vec![Vec::new(); max_width];
        for c in 0..max_width {
            let bits = std::mem::take(&mut columns[c]);
            let mut iter = bits.into_iter().peekable();
            loop {
                let remaining = iter.len();
                if remaining >= 3 {
                    let x = iter.next().unwrap();
                    let y = iter.next().unwrap();
                    let z = iter.next().unwrap();
                    let axb = b.xor(x, y);
                    let sum = b.xor(axb, z);
                    let ab = b.and(x, y);
                    let cc = b.and(axb, z);
                    let carry = b.or(ab, cc);
                    next[c].push(sum);
                    if c + 1 < max_width {
                        next[c + 1].push(carry);
                    }
                } else if remaining == 2 {
                    let x = iter.next().unwrap();
                    let y = iter.next().unwrap();
                    let (sum, carry) = b.half_adder(x, y);
                    next[c].push(sum);
                    if c + 1 < max_width {
                        next[c + 1].push(carry);
                    }
                } else {
                    next[c].extend(iter);
                    break;
                }
            }
        }
        columns = next;
    }
    // Final carry-propagate addition over the (≤ 2)-bit columns.
    let mut result = Vec::with_capacity(max_width);
    let mut carry: Option<SignalId> = None;
    let mut zero: Option<SignalId> = None;
    for col in columns.into_iter() {
        let mut bits: Vec<SignalId> = col;
        if let Some(cy) = carry.take() {
            bits.push(cy);
        }
        let (sum, cout) = match bits.len() {
            0 => (None, None),
            1 => (Some(bits[0]), None),
            2 => {
                let (s, cy) = b.half_adder(bits[0], bits[1]);
                (Some(s), Some(cy))
            }
            3 => {
                let axb = b.xor(bits[0], bits[1]);
                let s = b.xor(axb, bits[2]);
                let ab = b.and(bits[0], bits[1]);
                let cc = b.and(axb, bits[2]);
                (Some(s), Some(b.or(ab, cc)))
            }
            _ => unreachable!("columns reduced to <= 2 bits plus carry"),
        };
        let bit = match sum {
            Some(s) => s,
            None => *zero.get_or_insert_with(|| b.const0()),
        };
        result.push(bit);
        carry = cout;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_gates::{Exhaustive, NetlistBuilder};

    /// Reduce a 4-bit popcount-style column stack and check the sum.
    fn check_reducer(reduce: fn(&mut NetlistBuilder, Vec<Vec<SignalId>>, usize) -> Vec<SignalId>) {
        // columns: col0 gets inputs {0,1,2}, col1 gets input {3}
        // value = in0 + in1 + in2 + 2*in3, max 5 -> 3 bits
        let mut b = NetlistBuilder::new(4);
        let cols = vec![vec![b.input(0), b.input(1), b.input(2)], vec![b.input(3)]];
        let bits = reduce(&mut b, cols, 3);
        b.outputs(&bits);
        let nl = b.finish().unwrap();
        let table = Exhaustive::new(4).output_table(&nl);
        for v in 0..16u64 {
            let expect = (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1) + 2 * ((v >> 3) & 1);
            assert_eq!(table[v as usize], expect, "v={v}");
        }
    }

    #[test]
    fn sequential_reduction_sums_columns() {
        check_reducer(reduce_columns_sequential);
    }

    #[test]
    fn wallace_reduction_sums_columns() {
        check_reducer(reduce_columns_wallace);
    }

    #[test]
    fn overflow_carries_are_dropped() {
        // Two bits in the top column: their carry must vanish (mod 2^2).
        let mut b = NetlistBuilder::new(2);
        let cols = vec![vec![], vec![b.input(0), b.input(1)]];
        let bits = reduce_columns_sequential(&mut b, cols, 2);
        b.outputs(&bits);
        let nl = b.finish().unwrap();
        let table = Exhaustive::new(2).output_table(&nl);
        for v in 0..4u64 {
            let expect = (2 * ((v & 1) + ((v >> 1) & 1))) & 3;
            assert_eq!(table[v as usize], expect);
        }
    }

    #[test]
    fn empty_columns_yield_constant_zero() {
        let mut b = NetlistBuilder::new(1);
        let cols = vec![vec![], vec![b.input(0)], vec![]];
        let bits = reduce_columns_wallace(&mut b, cols, 3);
        b.outputs(&bits);
        let nl = b.finish().unwrap();
        assert_eq!(nl.eval_bool(&[true]), vec![false, true, false]);
    }
}
