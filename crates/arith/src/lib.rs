//! Exact and conventionally approximated arithmetic circuits.
//!
//! This crate provides every arithmetic building block the reproduction
//! needs at the *gate level* (as [`apx_gates::Netlist`]s) and at the
//! *functional level* (as exhaustive [`OpTable`]s):
//!
//! * ripple-carry adders ([`ripple_carry_adder`], wrap-around accumulators);
//! * exact unsigned multipliers — the classic carry-ripple
//!   [`array_multiplier`] and a column-compression [`wallace_multiplier`] —
//!   used to seed the CGP search;
//! * the exact signed [`baugh_wooley_multiplier`];
//! * conventional approximate families used as baselines in the paper:
//!   [`truncated_multiplier`] (truncated array multiplier, Jiang et al.) and
//!   [`broken_array_multiplier`] (BAM, Mahdiani et al.), plus a signed
//!   Baugh-Wooley broken variant;
//! * [`mac::mac_unit`] composing a multiplier with an accumulator adder into
//!   the processing element of a TPU-style systolic array;
//! * [`OpTable`], the exhaustive functional view of any two-operand circuit,
//!   which is what the image-filter and neural-network substrates plug in.
//!
//! Every generated netlist is verified exhaustively against a functional
//! golden model (module [`golden`]) in this crate's tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adders;
pub mod adders_approx;
mod approx;
mod backend;
mod columns;
pub mod golden;
pub mod mac;
mod multipliers;
mod operator;
mod optable;

pub use adders::{add_ripple, ripple_carry_adder, ripple_carry_adder_wrap, signed_ripple_adder};
pub use adders_approx::{lower_or_adder, truncated_adder};
pub use approx::{baugh_wooley_broken, broken_array_multiplier, truncated_multiplier};
pub use backend::EvalBackend;
pub use columns::{reduce_columns_sequential, reduce_columns_wallace};
pub use multipliers::{array_multiplier, baugh_wooley_multiplier, wallace_multiplier};
pub use operator::Operator;
pub use optable::{OpTable, TableError};

/// Interprets the low `width` bits of `raw` as a two's-complement value.
///
/// # Panics
///
/// Panics if `width` is 0 or exceeds 63.
#[inline]
#[must_use]
pub fn sign_extend(raw: u64, width: u32) -> i64 {
    assert!(width > 0 && width < 64, "width must be in 1..=63");
    let shift = 64 - width;
    ((raw << shift) as i64) >> shift
}

/// Masks `value` to its low `width` bits (the raw two's-complement encoding).
#[inline]
#[must_use]
pub fn to_raw(value: i64, width: u32) -> u64 {
    (value as u64) & ((1u64 << width) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_extend_round_trips() {
        for w in 1..=16u32 {
            let lo = -(1i64 << (w - 1));
            let hi = (1i64 << (w - 1)) - 1;
            for v in [lo, -1, 0, 1, hi] {
                if v < lo || v > hi {
                    continue;
                }
                assert_eq!(sign_extend(to_raw(v, w), w), v, "w={w} v={v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "width")]
    fn sign_extend_rejects_zero_width() {
        let _ = sign_extend(0, 0);
    }
}
