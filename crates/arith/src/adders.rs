//! Ripple-carry adders and in-builder addition helpers.

use apx_gates::{Netlist, NetlistBuilder, SignalId};

/// Adds two bit vectors inside an existing builder (LSB first).
///
/// Operand widths may differ; missing bits are treated as constant 0 and the
/// corresponding adder cells degenerate (no gates are wasted on them). The
/// result has `max(len_a, len_b) + 1` bits, the last being the carry-out.
///
/// `cin` optionally injects a carry into bit 0.
pub fn add_ripple(
    b: &mut NetlistBuilder,
    a_bits: &[SignalId],
    b_bits: &[SignalId],
    cin: Option<SignalId>,
) -> Vec<SignalId> {
    let width = a_bits.len().max(b_bits.len());
    let mut result = Vec::with_capacity(width + 1);
    let mut carry = cin;
    for i in 0..width {
        let x = a_bits.get(i).copied();
        let y = b_bits.get(i).copied();
        let (sum, cout) = match (x, y, carry) {
            (Some(x), Some(y), Some(c)) => {
                let (s, co) = b.full_adder(x, y, c);
                (Some(s), Some(co))
            }
            (Some(x), Some(y), None) => {
                let (s, co) = b.half_adder(x, y);
                (Some(s), Some(co))
            }
            (Some(x), None, Some(c)) | (None, Some(x), Some(c)) => {
                let (s, co) = b.half_adder(x, c);
                (Some(s), Some(co))
            }
            (Some(x), None, None) | (None, Some(x), None) => (Some(x), None),
            (None, None, c) => (c, None),
        };
        let zero_needed = sum.is_none();
        let bit = match sum {
            Some(s) => s,
            None => {
                debug_assert!(zero_needed);
                b.const0()
            }
        };
        result.push(bit);
        carry = cout;
    }
    let last = match carry {
        Some(c) => c,
        None => b.const0(),
    };
    result.push(last);
    result
}

/// Standalone `width`-bit ripple-carry adder.
///
/// Inputs: `a[0..width]` then `b[0..width]` (LSB first).
/// Outputs: `width + 1` sum bits including the carry-out.
///
/// # Panics
///
/// Panics if `width == 0`.
#[must_use]
pub fn ripple_carry_adder(width: u32) -> Netlist {
    assert!(width > 0, "adder width must be positive");
    let w = width as usize;
    let mut b = NetlistBuilder::new(2 * w);
    let a_bits: Vec<SignalId> = (0..w).map(|i| b.input(i)).collect();
    let b_bits: Vec<SignalId> = (0..w).map(|i| b.input(w + i)).collect();
    let sum = add_ripple(&mut b, &a_bits, &b_bits, None);
    b.outputs(&sum);
    b.finish().expect("generated adder is structurally valid")
}

/// Signed `width`-bit adder: two's-complement operands, `width + 1`
/// output bits carrying the exact (never-wrapping) sum.
///
/// The unsigned [`ripple_carry_adder`]'s raw `w + 1`-bit output is wrong
/// under a two's-complement reading (its top bit is an unsigned
/// carry-out, not a sign), so the signed variant sign-extends both
/// operands to `width + 1` bits first and adds those: the sum of two
/// `width`-bit two's-complement values always fits `width + 1`
/// two's-complement bits, so truncating the extended ripple to
/// `width + 1` outputs is exact.
///
/// Inputs: `a[0..width]` then `b[0..width]` (LSB first); outputs:
/// `width + 1` bits whose two's-complement value is `a + b`.
///
/// # Panics
///
/// Panics if `width == 0`.
#[must_use]
pub fn signed_ripple_adder(width: u32) -> Netlist {
    assert!(width > 0, "adder width must be positive");
    let w = width as usize;
    let mut b = NetlistBuilder::new(2 * w);
    let mut a_bits: Vec<SignalId> = (0..w).map(|i| b.input(i)).collect();
    let mut b_bits: Vec<SignalId> = (0..w).map(|i| b.input(w + i)).collect();
    // Sign-extend each operand by one bit (duplicate its MSB).
    a_bits.push(a_bits[w - 1]);
    b_bits.push(b_bits[w - 1]);
    let mut sum = add_ripple(&mut b, &a_bits, &b_bits, None);
    sum.truncate(w + 1);
    b.outputs(&sum);
    b.finish().expect("generated adder is structurally valid")
}

/// `width`-bit wrap-around adder (carry-out discarded): the accumulator of
/// a MAC processing element.
///
/// Inputs: `a[0..width]` then `b[0..width]`; outputs: `width` bits,
/// computing `(a + b) mod 2^width` — which is two's-complement addition.
///
/// # Panics
///
/// Panics if `width == 0`.
#[must_use]
pub fn ripple_carry_adder_wrap(width: u32) -> Netlist {
    assert!(width > 0, "adder width must be positive");
    let w = width as usize;
    let mut b = NetlistBuilder::new(2 * w);
    let a_bits: Vec<SignalId> = (0..w).map(|i| b.input(i)).collect();
    let b_bits: Vec<SignalId> = (0..w).map(|i| b.input(w + i)).collect();
    let mut sum = add_ripple(&mut b, &a_bits, &b_bits, None);
    sum.truncate(w);
    b.outputs(&sum);
    b.finish().expect("generated adder is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_gates::Exhaustive;

    #[test]
    fn ripple_adder_is_exhaustively_correct() {
        for w in 1..=5u32 {
            let nl = ripple_carry_adder(w);
            let table = Exhaustive::new(2 * w as usize).output_table(&nl);
            let mask = (1u64 << w) - 1;
            for v in 0..table.len() as u64 {
                let a = v & mask;
                let b = (v >> w) & mask;
                assert_eq!(table[v as usize], a + b, "w={w} {a}+{b}");
            }
        }
    }

    #[test]
    fn wrap_adder_discards_carry() {
        let w = 4u32;
        let nl = ripple_carry_adder_wrap(w);
        assert_eq!(nl.num_outputs(), 4);
        let table = Exhaustive::new(8).output_table(&nl);
        for v in 0..256u64 {
            let a = v & 15;
            let b = (v >> 4) & 15;
            assert_eq!(table[v as usize], (a + b) & 15);
        }
    }

    #[test]
    fn signed_adder_is_exhaustively_correct() {
        use crate::sign_extend;
        for w in 1..=5u32 {
            let nl = signed_ripple_adder(w);
            assert_eq!(nl.num_outputs(), w as usize + 1);
            let table = Exhaustive::new(2 * w as usize).output_table(&nl);
            let mask = (1u64 << w) - 1;
            for v in 0..table.len() as u64 {
                let a = sign_extend(v & mask, w);
                let b = sign_extend((v >> w) & mask, w);
                assert_eq!(sign_extend(table[v as usize], w + 1), a + b, "w={w} {a}+{b}");
            }
        }
    }

    #[test]
    fn add_ripple_handles_uneven_widths() {
        // 3-bit + 1-bit.
        let mut b = NetlistBuilder::new(4);
        let a_bits = vec![b.input(0), b.input(1), b.input(2)];
        let b_bits = vec![b.input(3)];
        let sum = add_ripple(&mut b, &a_bits, &b_bits, None);
        assert_eq!(sum.len(), 4);
        b.outputs(&sum);
        let nl = b.finish().unwrap();
        let table = Exhaustive::new(4).output_table(&nl);
        for v in 0..16u64 {
            let a = v & 7;
            let c = (v >> 3) & 1;
            assert_eq!(table[v as usize], a + c);
        }
    }

    #[test]
    fn add_ripple_with_carry_in() {
        let mut b = NetlistBuilder::new(3);
        let a_bits = vec![b.input(0)];
        let b_bits = vec![b.input(1)];
        let cin = b.input(2);
        let sum = add_ripple(&mut b, &a_bits, &b_bits, Some(cin));
        b.outputs(&sum);
        let nl = b.finish().unwrap();
        let table = Exhaustive::new(3).output_table(&nl);
        for v in 0..8u64 {
            let total = (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1);
            assert_eq!(table[v as usize], total);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_adder_panics() {
        let _ = ripple_carry_adder(0);
    }
}
