//! Conventionally designed approximate multipliers (the paper's baselines).

use crate::columns::reduce_columns_sequential;
use crate::multipliers::baugh_wooley_columns;
use apx_gates::{Netlist, NetlistBuilder, SignalId};

/// Truncated array multiplier: all partial products in columns below
/// `trunc_cols` are removed, so the low `trunc_cols` output bits are
/// constant 0 (Jiang et al., "truncated array multiplier").
///
/// `trunc_cols == 0` yields the exact array multiplier;
/// `trunc_cols == 2·width` removes everything.
///
/// # Panics
///
/// Panics if `width == 0` or `trunc_cols > 2 * width`.
#[must_use]
pub fn truncated_multiplier(width: u32, trunc_cols: u32) -> Netlist {
    assert!(width > 0, "multiplier width must be positive");
    assert!(trunc_cols <= 2 * width, "cannot truncate beyond the product");
    let w = width as usize;
    let mut b = NetlistBuilder::new(2 * w);
    let mut columns: Vec<Vec<SignalId>> = vec![Vec::new(); 2 * w];
    for j in 0..w {
        for i in 0..w {
            if (i + j) < trunc_cols as usize {
                continue;
            }
            let ai = b.input(i);
            let bj = b.input(w + j);
            let pp = b.and(ai, bj);
            columns[i + j].push(pp);
        }
    }
    let bits = reduce_columns_sequential(&mut b, columns, 2 * w);
    b.outputs(&bits);
    b.finish().expect("generated multiplier is structurally valid")
}

/// Broken-array multiplier (BAM, Mahdiani et al.).
///
/// A partial product `a_i · b_j` survives iff its carry-save row is above
/// the horizontal break level (`j < hbl`) **and** its column is at or left
/// of the vertical break level (`i + j >= vbl`). `hbl = width`, `vbl = 0`
/// is the exact array multiplier; decreasing `hbl` / increasing `vbl`
/// trades accuracy for area.
///
/// # Panics
///
/// Panics if `width == 0`, `hbl > width` or `vbl > 2 * width`.
#[must_use]
pub fn broken_array_multiplier(width: u32, hbl: u32, vbl: u32) -> Netlist {
    assert!(width > 0, "multiplier width must be positive");
    assert!(hbl <= width, "horizontal break beyond operand width");
    assert!(vbl <= 2 * width, "vertical break beyond the product");
    let w = width as usize;
    let mut b = NetlistBuilder::new(2 * w);
    let mut columns: Vec<Vec<SignalId>> = vec![Vec::new(); 2 * w];
    for j in 0..(hbl as usize) {
        for i in 0..w {
            if i + j < vbl as usize {
                continue;
            }
            let ai = b.input(i);
            let bj = b.input(w + j);
            let pp = b.and(ai, bj);
            columns[i + j].push(pp);
        }
    }
    let bits = reduce_columns_sequential(&mut b, columns, 2 * w);
    b.outputs(&bits);
    b.finish().expect("generated multiplier is structurally valid")
}

/// Signed broken Baugh-Wooley multiplier: the BAM break rule applied to
/// the partial products of [`crate::baugh_wooley_multiplier`] (correction
/// constants are fixed wiring and always kept).
///
/// Exactly matches [`crate::golden::mul_bw_broken`]. `hbl = width`,
/// `vbl = 0` reproduces the exact signed multiplier.
///
/// # Panics
///
/// Panics if `width == 0`, `hbl > width` or `vbl > 2 * width`.
#[must_use]
pub fn baugh_wooley_broken(width: u32, hbl: u32, vbl: u32) -> Netlist {
    assert!(width > 0, "multiplier width must be positive");
    assert!(hbl <= width, "horizontal break beyond operand width");
    assert!(vbl <= 2 * width, "vertical break beyond the product");
    let w = width as usize;
    let mut b = NetlistBuilder::new(2 * w);
    let columns = baugh_wooley_columns(&mut b, width, |col, row| row < hbl && col >= vbl);
    let bits = reduce_columns_sequential(&mut b, columns, 2 * w);
    b.outputs(&bits);
    b.finish().expect("generated multiplier is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden;
    use crate::sign_extend;
    use apx_gates::Exhaustive;

    #[test]
    fn truncated_matches_golden_model() {
        for w in 2..=5u32 {
            for k in 0..=2 * w {
                let nl = truncated_multiplier(w, k);
                let table = Exhaustive::new(2 * w as usize).output_table(&nl);
                let mask = (1u64 << w) - 1;
                for v in 0..table.len() as u64 {
                    let a = v & mask;
                    let b = (v >> w) & mask;
                    assert_eq!(
                        table[v as usize],
                        golden::mul_truncated(w, k, a, b),
                        "w={w} k={k} {a}*{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn truncated_zero_is_exact() {
        let nl = truncated_multiplier(4, 0);
        let table = Exhaustive::new(8).output_table(&nl);
        for v in 0..256u64 {
            assert_eq!(table[v as usize], (v & 15) * ((v >> 4) & 15));
        }
    }

    #[test]
    fn broken_matches_golden_model() {
        for w in 2..=4u32 {
            for hbl in 0..=w {
                for vbl in [0, 1, w, 2 * w - 1] {
                    let nl = broken_array_multiplier(w, hbl, vbl);
                    let table = Exhaustive::new(2 * w as usize).output_table(&nl);
                    let mask = (1u64 << w) - 1;
                    for v in 0..table.len() as u64 {
                        let a = v & mask;
                        let b = (v >> w) & mask;
                        assert_eq!(
                            table[v as usize],
                            golden::mul_broken(w, hbl, vbl, a, b),
                            "w={w} hbl={hbl} vbl={vbl} {a}*{b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn broken_full_levels_is_exact() {
        let nl = broken_array_multiplier(5, 5, 0);
        let table = Exhaustive::new(10).output_table(&nl);
        for v in 0..1024u64 {
            assert_eq!(table[v as usize], (v & 31) * ((v >> 5) & 31));
        }
    }

    #[test]
    fn bw_broken_matches_golden_model() {
        for w in 2..=4u32 {
            for (hbl, vbl) in [(w, 0), (w, 2), (w - 1, 0), (w - 1, 3), (1, 1)] {
                let nl = baugh_wooley_broken(w, hbl, vbl);
                let table = Exhaustive::new(2 * w as usize).output_table(&nl);
                let mask = (1u64 << w) - 1;
                for v in 0..table.len() as u64 {
                    let a = sign_extend(v & mask, w);
                    let b = sign_extend((v >> w) & mask, w);
                    let got = sign_extend(table[v as usize], 2 * w);
                    assert_eq!(
                        got,
                        golden::mul_bw_broken(w, hbl, vbl, a, b),
                        "w={w} hbl={hbl} vbl={vbl} {a}*{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn deeper_breaks_are_smaller() {
        let exact = broken_array_multiplier(8, 8, 0);
        let broken = broken_array_multiplier(8, 6, 6);
        assert!(broken.active_gate_count() < exact.active_gate_count());
        let very_broken = broken_array_multiplier(8, 4, 10);
        assert!(very_broken.active_gate_count() < broken.active_gate_count());
    }

    #[test]
    #[should_panic(expected = "horizontal break")]
    fn broken_rejects_bad_hbl() {
        let _ = broken_array_multiplier(4, 5, 0);
    }
}
