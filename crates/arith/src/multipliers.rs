//! Exact multiplier generators (the CGP seeds of the paper, §IV).

use crate::columns::{reduce_columns_sequential, reduce_columns_wallace};
use apx_gates::{Netlist, NetlistBuilder, SignalId};

/// Partial-product matrix of an unsigned multiplier: `columns[c]` holds all
/// `a_i & b_j` with `i + j = c`.
fn unsigned_pp_columns(b: &mut NetlistBuilder, width: u32) -> Vec<Vec<SignalId>> {
    let w = width as usize;
    let mut columns: Vec<Vec<SignalId>> = vec![Vec::new(); 2 * w];
    for j in 0..w {
        for i in 0..w {
            let ai = b.input(i);
            let bj = b.input(w + j);
            let pp = b.and(ai, bj);
            columns[i + j].push(pp);
        }
    }
    columns
}

/// Classic unsigned array multiplier (`width`×`width` → `2·width` bits).
///
/// Inputs: `a[0..w]` then `b[0..w]`, LSB first; outputs `2w` product bits.
/// Built with ripple-style sequential column compression, which reproduces
/// the gate structure (and long carry chains) of the textbook carry-ripple
/// array — the default seed for the CGP runs in the paper.
///
/// # Panics
///
/// Panics if `width == 0`.
#[must_use]
pub fn array_multiplier(width: u32) -> Netlist {
    assert!(width > 0, "multiplier width must be positive");
    let w = width as usize;
    let mut b = NetlistBuilder::new(2 * w);
    let columns = unsigned_pp_columns(&mut b, width);
    let bits = reduce_columns_sequential(&mut b, columns, 2 * w);
    b.outputs(&bits);
    b.finish().expect("generated multiplier is structurally valid")
}

/// Unsigned Wallace-tree multiplier: same function as
/// [`array_multiplier`], but the partial products are compressed in
/// parallel 3:2 stages, giving logarithmic depth — the low-latency seed.
///
/// # Panics
///
/// Panics if `width == 0`.
#[must_use]
pub fn wallace_multiplier(width: u32) -> Netlist {
    assert!(width > 0, "multiplier width must be positive");
    let w = width as usize;
    let mut b = NetlistBuilder::new(2 * w);
    let columns = unsigned_pp_columns(&mut b, width);
    let bits = reduce_columns_wallace(&mut b, columns, 2 * w);
    b.outputs(&bits);
    b.finish().expect("generated multiplier is structurally valid")
}

/// Baugh-Wooley partial-product columns for a signed multiplier, shared
/// with the broken (approximate) variant.
///
/// `keep(col, row)` decides whether an individual partial product survives
/// (always `true` for the exact multiplier). The correction constants
/// (`+2^w`, `+2^(2w-1)`) are part of the fixed wiring and always included.
pub(crate) fn baugh_wooley_columns<F>(
    b: &mut NetlistBuilder,
    width: u32,
    mut keep: F,
) -> Vec<Vec<SignalId>>
where
    F: FnMut(u32, u32) -> bool,
{
    let w = width as usize;
    let mut columns: Vec<Vec<SignalId>> = vec![Vec::new(); 2 * w];
    let wi = width;
    if wi == 1 {
        if keep(0, 0) {
            let a0 = b.input(0);
            let b0 = b.input(1);
            let pp = b.and(a0, b0);
            columns[0].push(pp);
        }
    } else {
        for j in 0..wi - 1 {
            for i in 0..wi - 1 {
                if keep(i + j, j) {
                    let ai = b.input(i as usize);
                    let bj = b.input(w + j as usize);
                    let pp = b.and(ai, bj);
                    columns[(i + j) as usize].push(pp);
                }
            }
        }
        for i in 0..wi - 1 {
            if keep(i + wi - 1, wi - 1) {
                let ai = b.input(i as usize);
                let bm = b.input(w + w - 1);
                let pp = b.nand(ai, bm);
                columns[(i + wi - 1) as usize].push(pp);
            }
        }
        for j in 0..wi - 1 {
            if keep(j + wi - 1, j) {
                let am = b.input(w - 1);
                let bj = b.input(w + j as usize);
                let pp = b.nand(am, bj);
                columns[(j + wi - 1) as usize].push(pp);
            }
        }
        if keep(2 * wi - 2, wi - 1) {
            let am = b.input(w - 1);
            let bm = b.input(w + w - 1);
            let pp = b.and(am, bm);
            columns[2 * w - 2].push(pp);
        }
    }
    // Correction constants: +2^w and +2^(2w-1); for w == 1 they coincide
    // modulo 2^(2w) and cancel (2 + 2 = 4 ≡ 0 mod 4), so skip them there.
    if wi > 1 {
        let one_a = b.const1();
        columns[w].push(one_a);
        let one_b = b.const1();
        columns[2 * w - 1].push(one_b);
    }
    columns
}

/// Exact signed (two's-complement) Baugh-Wooley multiplier
/// (`width`×`width` → `2·width` bits, LSB first).
///
/// Uses the standard Baugh-Wooley recoding: partial products touching
/// exactly one sign bit are inverted (NAND instead of AND) and two
/// correction constants are injected at columns `w` and `2w-1`.
///
/// # Panics
///
/// Panics if `width == 0`.
#[must_use]
pub fn baugh_wooley_multiplier(width: u32) -> Netlist {
    assert!(width > 0, "multiplier width must be positive");
    let w = width as usize;
    let mut b = NetlistBuilder::new(2 * w);
    let columns = baugh_wooley_columns(&mut b, width, |_, _| true);
    let bits = reduce_columns_sequential(&mut b, columns, 2 * w);
    b.outputs(&bits);
    b.finish().expect("generated multiplier is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sign_extend;
    use apx_gates::Exhaustive;

    fn check_unsigned(nl: &Netlist, w: u32) {
        let table = Exhaustive::new(2 * w as usize).output_table(nl);
        let mask = (1u64 << w) - 1;
        for v in 0..table.len() as u64 {
            let a = v & mask;
            let b = (v >> w) & mask;
            assert_eq!(table[v as usize], a * b, "w={w} {a}*{b}");
        }
    }

    #[test]
    fn array_multiplier_exhaustive() {
        for w in 1..=6u32 {
            check_unsigned(&array_multiplier(w), w);
        }
    }

    #[test]
    fn wallace_multiplier_exhaustive() {
        for w in 1..=6u32 {
            check_unsigned(&wallace_multiplier(w), w);
        }
    }

    #[test]
    fn array_multiplier_8bit_spot_checks() {
        let nl = array_multiplier(8);
        let table = Exhaustive::new(16).output_table(&nl);
        for (a, b) in [(0u64, 0u64), (255, 255), (127, 2), (200, 113), (1, 254)] {
            assert_eq!(table[(a | (b << 8)) as usize], a * b);
        }
    }

    #[test]
    fn wallace_is_shallower_than_array() {
        let arr = array_multiplier(8);
        let wal = wallace_multiplier(8);
        assert!(
            wal.depth() < arr.depth(),
            "wallace depth {} should beat array depth {}",
            wal.depth(),
            arr.depth()
        );
    }

    #[test]
    fn baugh_wooley_exhaustive() {
        for w in 1..=6u32 {
            let nl = baugh_wooley_multiplier(w);
            let table = Exhaustive::new(2 * w as usize).output_table(&nl);
            let mask = (1u64 << w) - 1;
            for v in 0..table.len() as u64 {
                let a = sign_extend(v & mask, w);
                let b = sign_extend((v >> w) & mask, w);
                let got = sign_extend(table[v as usize], 2 * w);
                assert_eq!(got, a * b, "w={w} {a}*{b}");
            }
        }
    }

    #[test]
    fn multiplier_gate_counts_are_reasonable() {
        // Exact 8-bit array multiplier needs at least 64 AND gates for
        // partial products and a few hundred gates overall.
        let nl = array_multiplier(8);
        let active = nl.active_gate_count();
        assert!(active > 200 && active < 600, "active gates {active}");
    }
}
