//! The operator seam: which arithmetic function a circuit approximates.
//!
//! The paper's method (distribution-weighted error driving CGP) is
//! operator-agnostic — §III describes it for combinational components in
//! general. [`Operator`] is the one value that captures everything the
//! rest of the stack needs to know about a component class:
//!
//! * its **reference function** ([`Operator::exact_value`]) — the golden
//!   model both evaluation backends score candidates against;
//! * its **operand encoding** — how many netlist inputs/outputs a
//!   `width`-bit instance has ([`Operator::num_inputs`] /
//!   [`Operator::num_outputs`]) and how the exhaustive enumeration vector
//!   maps onto them (the PMF-weighted operand always occupies the top
//!   `width` bits, so distribution weights group into contiguous blocks);
//! * its **seed circuit** ([`Operator::seed_circuit`]) — the exact
//!   conventional design a CGP run starts from.
//!
//! Everything downstream (the `apx_metrics` evaluator, the `apx_core`
//! flow/sweep/cache/library, the `apx_bench` binaries) takes an
//! `Operator` value instead of hard-coding multiplication.

use crate::mac::{accumulator_width, mac_unit};
use crate::{
    array_multiplier, baugh_wooley_multiplier, ripple_carry_adder, sign_extend,
    signed_ripple_adder, EvalBackend,
};
use apx_gates::Netlist;

/// Exhaustive enumeration is capped at this many input bits — the same
/// practical bound the evaluator's `2^(2w)` multiplier grids obey. Only
/// the enumeration backends (`scalar`, `bitpar`) are subject to it.
const MAX_INPUT_BITS: u32 = 20;

/// The symbolic (BDD model-counting) backend never enumerates input
/// vectors, so its cap is set by representation limits instead: packed
/// error sums must stay inside `u64` and per-operand weight tables stay
/// small. 33 input bits admits 16×16 multipliers/adders and the 8-bit
/// MAC (`4w + 1 = 33`).
const MAX_SYMBOLIC_INPUT_BITS: u32 = 33;

/// The products a MAC accumulates per output in the default sizing rule
/// (`n = 2w + 1` guard bit — one wrap-free accumulation step).
const MAC_DEPTH: usize = 2;

/// A circuit family the pipeline can evolve: the reference function, the
/// operand encoding and the exact seed design, as one value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Operator {
    /// `width`×`width` multiplication: `2w` inputs (`a`, `b`), `2w`
    /// product bits. The paper's primary component class.
    #[default]
    Mul,
    /// `width`-bit addition with carry-out: `2w` inputs (`a`, `b`),
    /// `w + 1` sum bits (no wrap — the signed sum of two `w`-bit values
    /// always fits `w + 1` two's-complement bits).
    Add,
    /// Multiply-accumulate processing element ([`crate::mac::mac_unit`]):
    /// inputs `a`, `b` (`w` bits each) and `acc` (`n = 2w + 1` bits),
    /// outputs the `n`-bit wrap-around `acc + a·b`.
    Mac,
}

impl Operator {
    /// Every operator, in canonical (cache/report) order.
    pub const ALL: [Operator; 3] = [Operator::Mul, Operator::Add, Operator::Mac];

    /// Canonical lower-case name — the token used in cache entry headers,
    /// key preimages, `APX_OP` values and JSON reports.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Operator::Mul => "mul",
            Operator::Add => "add",
            Operator::Mac => "mac",
        }
    }

    /// The accumulator width of a `width`-bit instance (MAC only).
    #[must_use]
    pub fn acc_width(self, width: u32) -> u32 {
        match self {
            Operator::Mac => accumulator_width(width, MAC_DEPTH),
            _ => 0,
        }
    }

    /// Number of netlist inputs of a `width`-bit instance.
    #[must_use]
    pub fn num_inputs(self, width: u32) -> usize {
        match self {
            Operator::Mul | Operator::Add => 2 * width as usize,
            Operator::Mac => 2 * width as usize + self.acc_width(width) as usize,
        }
    }

    /// Number of netlist outputs of a `width`-bit instance.
    #[must_use]
    pub fn num_outputs(self, width: u32) -> usize {
        match self {
            Operator::Mul => 2 * width as usize,
            Operator::Add => width as usize + 1,
            Operator::Mac => self.acc_width(width) as usize,
        }
    }

    /// Whether `width` is evaluable by *exhaustive enumeration*: positive,
    /// and the full `2^inputs` vector space fits the simulation budget
    /// (`1..=10` for `Mul`/`Add`, `1..=4` for `Mac` whose instances carry
    /// the extra accumulator operand).
    #[must_use]
    pub fn supports_exhaustive_width(self, width: u32) -> bool {
        width >= 1 && self.num_inputs(width) <= MAX_INPUT_BITS as usize
    }

    /// Whether `width` is evaluable for this operator *on the given
    /// backend*. The enumeration backends are capped by
    /// [`Operator::supports_exhaustive_width`]; the symbolic backend
    /// reaches `1..=16` for `Mul`/`Add` and `1..=8` for `Mac`.
    #[must_use]
    pub fn supports_width(self, width: u32, backend: EvalBackend) -> bool {
        let cap = if backend.is_exhaustive() { MAX_INPUT_BITS } else { MAX_SYMBOLIC_INPUT_BITS };
        width >= 1 && self.num_inputs(width) <= cap as usize
    }

    /// The widest operand this operator can be evaluated at on `backend`.
    #[must_use]
    pub fn max_width(self, backend: EvalBackend) -> u32 {
        let mut w = 1;
        while self.supports_width(w + 1, backend) {
            w += 1;
        }
        w
    }

    /// The exact (reference) output for one enumeration vector `v` of a
    /// `width`-bit instance, as the interpreted integer the error metrics
    /// subtract from a candidate's output.
    ///
    /// The enumeration layout puts the PMF-weighted operand `a` in the
    /// **top** `width` bits of `v` (so one distribution weight covers a
    /// contiguous block of vectors), `b` in the low `width` bits, and —
    /// for `Mac` — `acc` in between:
    ///
    /// ```text
    ///   Mul/Add:  v = [ a : w bits ][ b : w bits ]
    ///   Mac:      v = [ a : w bits ][ acc : n bits ][ b : w bits ]
    /// ```
    #[must_use]
    pub fn exact_value(self, width: u32, signed: bool, v: u64) -> i64 {
        let w = width;
        let mask_w = (1u64 << w) - 1;
        let free = (self.num_inputs(width) - width as usize) as u32;
        let a = interp(signed, v >> free, w);
        let b = interp(signed, v & mask_w, w);
        match self {
            Operator::Mul => a * b,
            Operator::Add => a + b,
            Operator::Mac => {
                let n = self.acc_width(width);
                let acc = interp(signed, (v >> w) & ((1u64 << n) - 1), n);
                let raw = acc.wrapping_add(a * b) as u64 & ((1u64 << n) - 1);
                interp(signed, raw, n)
            }
        }
    }

    /// The exact conventional seed design a CGP run of this operator
    /// starts from (the 100 % reference every threshold trivially admits).
    ///
    /// # Panics
    ///
    /// Panics if `width` is not supported by any backend
    /// ([`Operator::supports_width`] with the widest, symbolic, range).
    #[must_use]
    pub fn seed_circuit(self, width: u32, signed: bool) -> Netlist {
        assert!(
            self.supports_width(width, EvalBackend::Symbolic),
            "operand width {width} outside the {} operator's evaluable range",
            self.name()
        );
        match (self, signed) {
            (Operator::Mul, false) => array_multiplier(width),
            (Operator::Mul, true) => baugh_wooley_multiplier(width),
            (Operator::Add, false) => ripple_carry_adder(width),
            (Operator::Add, true) => signed_ripple_adder(width),
            (Operator::Mac, signed) => {
                let mul =
                    if signed { baugh_wooley_multiplier(width) } else { array_multiplier(width) };
                mac_unit(&mul, width, self.acc_width(width), signed)
            }
        }
    }
}

impl std::fmt::Display for Operator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Operator {
    type Err = String;

    /// Parses a canonical operator name. Fail-loud like every other
    /// config surface: anything but `mul`/`add`/`mac` is an error naming
    /// the valid tokens.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "mul" => Ok(Operator::Mul),
            "add" => Ok(Operator::Add),
            "mac" => Ok(Operator::Mac),
            other => Err(format!("unknown operator {other:?} (expected mul, add or mac)")),
        }
    }
}

/// Interprets the low `bits` of `raw` — two's complement when `signed`.
#[inline]
fn interp(signed: bool, raw: u64, bits: u32) -> i64 {
    if signed {
        sign_extend(raw, bits)
    } else {
        (raw & ((1u64 << bits) - 1)) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_gates::Exhaustive;

    #[test]
    fn names_round_trip() {
        for op in Operator::ALL {
            assert_eq!(op.name().parse::<Operator>().unwrap(), op);
        }
        assert!("sideways".parse::<Operator>().is_err());
        assert!("MUL".parse::<Operator>().is_err(), "names are case-sensitive tokens");
    }

    #[test]
    fn arity_and_width_support() {
        assert_eq!(Operator::Mul.num_inputs(8), 16);
        assert_eq!(Operator::Mul.num_outputs(8), 16);
        assert_eq!(Operator::Add.num_inputs(8), 16);
        assert_eq!(Operator::Add.num_outputs(8), 9);
        assert_eq!(Operator::Mac.acc_width(4), 9);
        assert_eq!(Operator::Mac.num_inputs(4), 17);
        assert_eq!(Operator::Mac.num_outputs(4), 9);
        for op in [Operator::Mul, Operator::Add] {
            assert!(op.supports_exhaustive_width(1) && op.supports_exhaustive_width(10));
            assert!(!op.supports_exhaustive_width(0) && !op.supports_exhaustive_width(11));
        }
        assert!(Operator::Mac.supports_exhaustive_width(4));
        assert!(!Operator::Mac.supports_exhaustive_width(5), "4w+1 input bits exceed the budget");
    }

    #[test]
    fn backend_width_ranges() {
        for b in [EvalBackend::Scalar, EvalBackend::BitParallel] {
            // Enumeration backends track the exhaustive cap exactly.
            for op in Operator::ALL {
                for w in 0..=20 {
                    assert_eq!(op.supports_width(w, b), op.supports_exhaustive_width(w));
                }
            }
            assert_eq!(Operator::Mul.max_width(b), 10);
            assert_eq!(Operator::Mac.max_width(b), 4);
        }
        let sym = EvalBackend::Symbolic;
        for op in [Operator::Mul, Operator::Add] {
            assert!(op.supports_width(16, sym));
            assert!(!op.supports_width(17, sym));
            assert_eq!(op.max_width(sym), 16);
        }
        assert!(Operator::Mac.supports_width(8, sym));
        assert!(!Operator::Mac.supports_width(9, sym));
        assert_eq!(Operator::Mac.max_width(sym), 8);
        assert!(!Operator::Mul.supports_width(0, sym), "zero width is never evaluable");
    }

    /// Every operator's seed circuit reproduces its reference function on
    /// the full enumeration grid — the contract the evaluator's "exact
    /// seed has zero error" invariant stands on.
    #[test]
    fn seed_circuits_match_the_reference_function() {
        for op in Operator::ALL {
            for signed in [false, true] {
                for width in 2..=3u32 {
                    let nl = op.seed_circuit(width, signed);
                    let ni = op.num_inputs(width);
                    let out_bits = op.num_outputs(width) as u32;
                    assert_eq!(nl.num_inputs(), ni, "{op} w={width}");
                    assert_eq!(nl.num_outputs(), out_bits as usize, "{op} w={width}");
                    let free = (ni - width as usize) as u32;
                    let table = Exhaustive::new(ni).output_table(&nl);
                    // The netlist enumerates its inputs in index order
                    // (input i ← bit i); the operator layout puts `a` on
                    // top. Remap each direct vector into layout form.
                    for direct in 0..table.len() as u64 {
                        let a = direct & ((1u64 << width) - 1);
                        let rest = direct >> width; // b, then acc for Mac
                        let v = (a << free) | rest_to_layout(op, width, rest);
                        let got = interp(signed, table[direct as usize], out_bits);
                        assert_eq!(
                            got,
                            op.exact_value(width, signed, v),
                            "{op} w={width} signed={signed} direct={direct}"
                        );
                    }
                }
            }
        }
    }

    /// Maps the post-`a` part of a direct input vector (`b`, then `acc`)
    /// into the enumeration layout's `[acc][b]` arrangement.
    fn rest_to_layout(op: Operator, width: u32, rest: u64) -> u64 {
        match op {
            Operator::Mul | Operator::Add => rest,
            Operator::Mac => {
                let b = rest & ((1u64 << width) - 1);
                let acc = rest >> width;
                (acc << width) | b
            }
        }
    }

    #[test]
    fn add_reference_never_wraps() {
        // Signed w-bit sums always fit w+1 two's-complement bits.
        for v in 0..(1u64 << 8) {
            let exact = Operator::Add.exact_value(4, true, v);
            assert!((-(1i64 << 4)..(1i64 << 4)).contains(&exact));
        }
    }

    #[test]
    fn mac_reference_wraps_like_the_model() {
        let op = Operator::Mac;
        let w = 2u32;
        let n = op.acc_width(w);
        let table = crate::OpTable::exact_mul(w, true);
        for v in 0..(1u64 << op.num_inputs(w)) {
            let a = interp(true, v >> (w + n), w);
            let b = interp(true, v & 3, w);
            let acc = interp(true, (v >> w) & ((1u64 << n) - 1), n);
            assert_eq!(op.exact_value(w, true, v), crate::mac::mac_model(&table, a, b, acc, n));
        }
    }
}
