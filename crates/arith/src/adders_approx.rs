//! Conventionally approximated adders.
//!
//! The paper's method targets combinational components in general (§III);
//! adders are the second component class of the EvoApprox library it
//! builds on. Two classic families are provided as baselines/seeds:
//!
//! * [`lower_or_adder`] — LOA (Mahdiani et al.): the low `k` result bits
//!   are computed as plain OR (no carry chain), the high part adds
//!   exactly with a carry-in derived from the top approximate column;
//! * [`truncated_adder`] — the low `k` result bits are constant 0 and no
//!   carry enters the upper exact adder.

use crate::adders::add_ripple;
use apx_gates::{Netlist, NetlistBuilder, SignalId};

/// Lower-part-OR adder (LOA): result bits `0..k` are `a_i | b_i`; bits
/// `k..` come from an exact ripple adder whose carry-in is
/// `a_{k-1} & b_{k-1}` (the standard LOA carry estimate).
///
/// `k == 0` yields the exact ripple-carry adder. Inputs/outputs follow
/// the crate's adder conventions (`a[0..w] b[0..w]` → `w+1` sum bits).
///
/// # Panics
///
/// Panics if `width == 0` or `k > width`.
#[must_use]
pub fn lower_or_adder(width: u32, k: u32) -> Netlist {
    assert!(width > 0, "adder width must be positive");
    assert!(k <= width, "approximate part wider than the adder");
    let w = width as usize;
    let k = k as usize;
    let mut b = NetlistBuilder::new(2 * w);
    let a_bits: Vec<SignalId> = (0..w).map(|i| b.input(i)).collect();
    let b_bits: Vec<SignalId> = (0..w).map(|i| b.input(w + i)).collect();
    let mut outputs = Vec::with_capacity(w + 1);
    for i in 0..k {
        let or = b.or(a_bits[i], b_bits[i]);
        outputs.push(or);
    }
    let cin = if k > 0 { Some(b.and(a_bits[k - 1], b_bits[k - 1])) } else { None };
    let upper = add_ripple(&mut b, &a_bits[k..], &b_bits[k..], cin);
    outputs.extend(upper);
    b.outputs(&outputs);
    b.finish().expect("generated adder is structurally valid")
}

/// Truncated adder: result bits `0..k` are constant 0, the upper bits add
/// exactly with no carry-in.
///
/// # Panics
///
/// Panics if `width == 0` or `k > width`.
#[must_use]
pub fn truncated_adder(width: u32, k: u32) -> Netlist {
    assert!(width > 0, "adder width must be positive");
    assert!(k <= width, "approximate part wider than the adder");
    let w = width as usize;
    let k = k as usize;
    let mut b = NetlistBuilder::new(2 * w);
    let a_bits: Vec<SignalId> = (0..w).map(|i| b.input(i)).collect();
    let b_bits: Vec<SignalId> = (0..w).map(|i| b.input(w + i)).collect();
    let mut outputs = Vec::with_capacity(w + 1);
    if k > 0 {
        let zero = b.const0();
        outputs.extend(std::iter::repeat_n(zero, k));
    }
    let upper = add_ripple(&mut b, &a_bits[k..], &b_bits[k..], None);
    outputs.extend(upper);
    b.outputs(&outputs);
    b.finish().expect("generated adder is structurally valid")
}

/// Functional golden model of [`lower_or_adder`].
#[must_use]
pub fn loa_model(width: u32, k: u32, a: u64, b: u64) -> u64 {
    let mask_k = if k == 0 { 0 } else { (1u64 << k) - 1 };
    let low = (a | b) & mask_k;
    let cin = if k > 0 { ((a >> (k - 1)) & 1) & ((b >> (k - 1)) & 1) } else { 0 };
    let high = (a >> k) + (b >> k) + cin;
    (low | (high << k)) & ((1u64 << (width + 1)) - 1)
}

/// Functional golden model of [`truncated_adder`].
#[must_use]
pub fn truncated_adder_model(k: u32, a: u64, b: u64) -> u64 {
    let high = (a >> k) + (b >> k);
    high << k
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_gates::Exhaustive;

    #[test]
    fn loa_matches_model_exhaustively() {
        for w in 2..=5u32 {
            for k in 0..=w {
                let nl = lower_or_adder(w, k);
                assert_eq!(nl.num_outputs(), w as usize + 1);
                let table = Exhaustive::new(2 * w as usize).output_table(&nl);
                let mask = (1u64 << w) - 1;
                for v in 0..table.len() as u64 {
                    let a = v & mask;
                    let b = (v >> w) & mask;
                    assert_eq!(table[v as usize], loa_model(w, k, a, b), "w={w} k={k} {a}+{b}");
                }
            }
        }
    }

    #[test]
    fn loa_with_k0_is_exact() {
        let nl = lower_or_adder(6, 0);
        let table = Exhaustive::new(12).output_table(&nl);
        for v in 0..table.len() as u64 {
            let a = v & 63;
            let b = (v >> 6) & 63;
            assert_eq!(table[v as usize], a + b);
        }
    }

    #[test]
    fn truncated_adder_matches_model_exhaustively() {
        for w in 2..=5u32 {
            for k in 0..=w {
                let nl = truncated_adder(w, k);
                let table = Exhaustive::new(2 * w as usize).output_table(&nl);
                let mask = (1u64 << w) - 1;
                for v in 0..table.len() as u64 {
                    let a = v & mask;
                    let b = (v >> w) & mask;
                    assert_eq!(
                        table[v as usize],
                        truncated_adder_model(k, a, b),
                        "w={w} k={k} {a}+{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn loa_is_cheaper_than_exact_and_better_than_truncation() {
        let exact = lower_or_adder(8, 0);
        let loa = lower_or_adder(8, 4);
        let trunc = truncated_adder(8, 4);
        assert!(loa.active_gate_count() < exact.active_gate_count());
        // LOA spends a few gates on the OR estimate; truncation is cheaper
        // but loses more accuracy.
        let err = |nl: &apx_gates::Netlist| -> u64 {
            let table = Exhaustive::new(16).output_table(nl);
            (0..table.len() as u64)
                .map(|v| {
                    let a = v & 255;
                    let b = (v >> 8) & 255;
                    table[v as usize].abs_diff(a + b)
                })
                .sum()
        };
        assert!(err(&loa) < err(&trunc), "LOA must be more accurate");
        assert!(
            trunc.active_gate_count() <= loa.active_gate_count(),
            "truncation must be at most as large"
        );
    }

    #[test]
    #[should_panic(expected = "wider than the adder")]
    fn oversized_k_panics() {
        let _ = lower_or_adder(4, 5);
    }
}
