//! Property-based tests on arithmetic generators and tables.

use apx_arith::{
    array_multiplier, baugh_wooley_multiplier, broken_array_multiplier, golden, mac::mac_model,
    sign_extend, to_raw, wallace_multiplier, OpTable,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn exact_multipliers_are_commutative_and_correct(
        w in 2u32..=5,
        a in 0u64..32,
        b in 0u64..32,
    ) {
        let mask = (1u64 << w) - 1;
        let (a, b) = (a & mask, b & mask);
        let arr = OpTable::from_netlist(&array_multiplier(w), w, false).unwrap();
        let wal = OpTable::from_netlist(&wallace_multiplier(w), w, false).unwrap();
        prop_assert_eq!(arr.get(a as i64, b as i64), (a * b) as i64);
        prop_assert_eq!(arr.get(a as i64, b as i64), arr.get(b as i64, a as i64));
        prop_assert_eq!(arr.get(a as i64, b as i64), wal.get(a as i64, b as i64));
    }

    #[test]
    fn signed_multiplier_matches_reference(
        w in 2u32..=5,
        a_raw in any::<u64>(),
        b_raw in any::<u64>(),
    ) {
        let mask = (1u64 << w) - 1;
        let a = sign_extend(a_raw & mask, w);
        let b = sign_extend(b_raw & mask, w);
        let bw = OpTable::from_netlist(&baugh_wooley_multiplier(w), w, true).unwrap();
        prop_assert_eq!(bw.get(a, b), a * b);
    }

    #[test]
    fn truncation_is_monotone_in_error(
        w in 3u32..=5,
        k in 1u32..=4,
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        // More truncation never reduces the (non-negative) error.
        let mask = (1u64 << w) - 1;
        let (a, b) = (a & mask, b & mask);
        let less = golden::mul_truncated(w, k, a, b);
        let more = golden::mul_truncated(w, k + 1, a, b);
        let exact = a * b;
        prop_assert!(exact - more >= exact - less || more >= less);
        prop_assert!(less <= exact && more <= less);
    }

    #[test]
    fn broken_array_only_underestimates(
        w in 2u32..=5,
        hbl_off in 0u32..3,
        vbl in 0u32..6,
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let mask = (1u64 << w) - 1;
        let (a, b) = (a & mask, b & mask);
        let hbl = w.saturating_sub(hbl_off).max(1);
        let vbl = vbl.min(2 * w);
        let t = OpTable::from_netlist(&broken_array_multiplier(w, hbl, vbl), w, false).unwrap();
        let approx = t.get(a as i64, b as i64);
        prop_assert!(approx >= 0);
        prop_assert!(approx <= (a * b) as i64, "BAM drops partial products only");
    }

    #[test]
    fn raw_encoding_round_trips(w in 1u32..=16, v_raw in any::<u64>()) {
        let mask = (1u64 << w) - 1;
        let raw = v_raw & mask;
        prop_assert_eq!(to_raw(sign_extend(raw, w), w), raw);
    }

    #[test]
    fn zero_guard_never_changes_nonzero_products(
        a in -8i64..8,
        b in -8i64..8,
        vbl in 0u32..6,
    ) {
        let base = OpTable::from_netlist(
            &apx_arith::baugh_wooley_broken(4, 4, vbl.min(8)),
            4,
            true,
        )
        .unwrap();
        let guarded = base.with_zero_guard();
        if a == 0 || b == 0 {
            prop_assert_eq!(guarded.get(a, b), 0);
        } else {
            prop_assert_eq!(guarded.get(a, b), base.get(a, b));
        }
    }

    #[test]
    fn mac_model_is_linear_in_accumulator(
        a in -8i64..8,
        b in -8i64..8,
        acc in -100i64..100,
    ) {
        // With a wide-enough accumulator there is no wrap: model == math.
        let t = OpTable::exact_mul(4, true);
        prop_assert_eq!(mac_model(&t, a, b, acc, 16), acc + a * b);
    }
}
