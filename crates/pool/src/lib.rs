//! A persistent scoped worker pool — the one concurrency substrate shared
//! by every parallel layer of the workspace.
//!
//! The approximation flow is embarrassingly parallel at two levels: the
//! `(1 + λ)` CGP strategy evaluates λ offspring per generation, and the
//! design-space sweeps run hundreds of independent `(distribution ×
//! threshold × run)` tasks. Before this crate each level hand-rolled its
//! own scheme — `apx_cgp::evolve` spawned and joined λ fresh OS threads
//! *every generation* (millions of spawns per run), while
//! `apx_core::evolve_circuits` guarded its whole result vector with a
//! single `Mutex` that serialized every worker and, on a panicking task,
//! poisoned the lock so the caller saw a poisoning panic instead of the
//! real error. [`Pool::scope`] replaces both:
//!
//! * **Workers are spawned once** per scope and stay parked between
//!   batches, so a CGP run reuses the same threads across all generations.
//! * **Chunked work stealing**: an atomic cursor hands out index ranges;
//!   fast workers automatically absorb the slack of slow ones.
//! * **Per-slot result writes**: every task writes its result into its own
//!   slot — no shared lock on the result vector, and results come back in
//!   task order regardless of scheduling (deterministic output).
//! * **Panic capture**: a panicking task is caught, recorded as a
//!   [`TaskPanic`] naming the failing task, and surfaced to the caller;
//!   other tasks complete normally and no lock is poisoned.
//!
//! The pool is std-only (the build containers are offline, so rayon is not
//! an option) and safe-only: instead of the lifetime erasure a fully
//! general spawn API would need, the worker function is fixed when the
//! scope opens and per-batch work arrives as owned *data*. That shape fits
//! every call site in this workspace.
//!
//! # Examples
//!
//! One-shot map over a task grid:
//!
//! ```
//! let squares = apx_pool::scope_map(4, (0u64..100).collect(), |_, x| x * x).unwrap();
//! assert_eq!(squares[7], 49);
//! ```
//!
//! A pool kept alive across batches (the CGP generation loop):
//!
//! ```
//! let total: u64 = apx_pool::Pool::scope(
//!     4,
//!     |_, x: u64| x + 1,
//!     |pool| (0..10).map(|g| pool.map(vec![g; 8]).iter().sum::<u64>()).sum(),
//! );
//! assert_eq!(total, (0..10u64).map(|g| 8 * (g + 1)).sum());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A task panicked inside a pool worker.
///
/// The panic is captured at the task boundary, so sibling tasks finish and
/// no lock is poisoned; the caller receives the failing task's index and
/// panic message instead of an opaque poisoning error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Index of the failing task in the submitted batch.
    pub index: usize,
    /// The panic payload, stringified.
    pub message: String,
}

impl fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for TaskPanic {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// One batch of tasks in flight. Tasks are taken (moved out) by exactly
/// one worker each; every result is written to its own slot, so the only
/// locks are uncontended per-element ones.
struct Job<T, R> {
    tasks: Vec<Mutex<Option<T>>>,
    slots: Vec<Mutex<Option<Result<R, TaskPanic>>>>,
    /// Next unclaimed task index; workers grab `chunk`-sized ranges.
    cursor: AtomicUsize,
    chunk: usize,
    completed: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl<T, R> Job<T, R> {
    fn new(tasks: Vec<T>, chunk: usize) -> Self {
        let n = tasks.len();
        Job {
            tasks: tasks.into_iter().map(|t| Mutex::new(Some(t))).collect(),
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
            chunk: chunk.max(1),
            completed: AtomicUsize::new(0),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        }
    }

    fn wait_done(&self) {
        let mut done = self.done.lock().expect("done flag is never poisoned");
        while !*done {
            done = self.done_cv.wait(done).expect("done flag is never poisoned");
        }
    }
}

/// What parked workers are waiting on: a new batch (epoch bump) or the end
/// of the scope.
struct Inbox<T, R> {
    epoch: u64,
    job: Option<Arc<Job<T, R>>>,
    shutdown: bool,
}

struct Shared<'env, T, R> {
    worker: &'env (dyn Fn(usize, T) -> R + Sync + 'env),
    threads: usize,
    inbox: Mutex<Inbox<T, R>>,
    work_cv: Condvar,
}

impl<T: Send, R: Send> Shared<'_, T, R> {
    /// A parked worker: wait for a fresh epoch, run its job, park again.
    fn worker_loop(&self) {
        let mut seen = 0u64;
        loop {
            let job = {
                let mut inbox = self.inbox.lock().expect("inbox is never poisoned");
                loop {
                    if inbox.shutdown {
                        return;
                    }
                    if inbox.epoch != seen {
                        seen = inbox.epoch;
                        break inbox.job.as_ref().map(Arc::clone);
                    }
                    inbox = self.work_cv.wait(inbox).expect("inbox is never poisoned");
                }
            };
            if let Some(job) = job {
                self.run_job(&job);
            }
        }
    }

    /// Claims chunks off the job's cursor until the batch is exhausted.
    /// Runs on workers and on the submitting thread alike.
    fn run_job(&self, job: &Job<T, R>) {
        let n = job.tasks.len();
        loop {
            let start = job.cursor.fetch_add(job.chunk, Ordering::Relaxed);
            if start >= n {
                return;
            }
            for i in start..(start + job.chunk).min(n) {
                let task = job.tasks[i]
                    .lock()
                    .expect("task slot is never poisoned")
                    .take()
                    .expect("each task index is claimed exactly once");
                let result = catch_unwind(AssertUnwindSafe(|| (self.worker)(i, task)))
                    .map_err(|payload| TaskPanic { index: i, message: panic_message(payload) });
                *job.slots[i].lock().expect("result slot is never poisoned") = Some(result);
                if job.completed.fetch_add(1, Ordering::AcqRel) + 1 == n {
                    *job.done.lock().expect("done flag is never poisoned") = true;
                    job.done_cv.notify_all();
                }
            }
        }
    }

    fn shutdown(&self) {
        let mut inbox = self.inbox.lock().expect("inbox is never poisoned");
        inbox.shutdown = true;
        drop(inbox);
        self.work_cv.notify_all();
    }
}

/// Wakes parked workers even when the scope body unwinds, so the enclosing
/// `thread::scope` can join them instead of deadlocking.
struct ShutdownGuard<'s, T: Send, R: Send>(&'s Shared<'s, T, R>);

impl<T: Send, R: Send> Drop for ShutdownGuard<'_, T, R> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// The handle a [`Pool::scope`] body uses to run batches on the pool.
pub struct Executor<'s, T: Send, R: Send> {
    shared: &'s Shared<'s, T, R>,
}

impl<T: Send, R: Send> Executor<'_, T, R> {
    /// Runs one batch: applies the scope's worker function to every task,
    /// in parallel, and returns the results **in task order**.
    ///
    /// The submitting thread participates in the work, so a 1-thread pool
    /// degenerates to a plain in-order loop with zero synchronization
    /// traffic beyond the per-slot writes.
    ///
    /// # Errors
    ///
    /// Returns the [`TaskPanic`] of the lowest-indexed panicking task (all
    /// other tasks still run to completion).
    pub fn try_map(&self, tasks: Vec<T>) -> Result<Vec<R>, TaskPanic> {
        let n = tasks.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        // ~4 chunks per thread balances stealing granularity against
        // cursor traffic; tiny batches degrade to one task per claim.
        let chunk = (n / (self.shared.threads * 4)).max(1);
        let job = Arc::new(Job::new(tasks, chunk));
        if self.shared.threads > 1 {
            let mut inbox = self.shared.inbox.lock().expect("inbox is never poisoned");
            inbox.epoch += 1;
            inbox.job = Some(Arc::clone(&job));
            drop(inbox);
            self.shared.work_cv.notify_all();
        }
        self.shared.run_job(&job);
        job.wait_done();
        if self.shared.threads > 1 {
            // Drop the inbox's reference so the batch frees promptly.
            self.shared.inbox.lock().expect("inbox is never poisoned").job = None;
        }
        let mut out = Vec::with_capacity(n);
        for slot in &job.slots {
            let result = slot
                .lock()
                .expect("result slot is never poisoned")
                .take()
                .expect("a completed job has every slot filled");
            out.push(result?);
        }
        Ok(out)
    }

    /// Like [`Executor::try_map`], but re-raises a task panic on the
    /// submitting thread with the task named in the message.
    ///
    /// # Panics
    ///
    /// Panics if any task panicked.
    pub fn map(&self, tasks: Vec<T>) -> Vec<R> {
        match self.try_map(tasks) {
            Ok(results) => results,
            Err(e) => panic!("{e}"),
        }
    }
}

/// The pool entry point. See [`Pool::scope`].
#[derive(Debug)]
pub struct Pool;

impl Pool {
    /// Opens a scope with `threads − 1` parked worker threads (the scope
    /// body's thread is the remaining worker) all running `worker`, hands
    /// `body` an [`Executor`] to submit batches through, and tears the
    /// workers down when `body` returns.
    ///
    /// The worker function is fixed for the whole scope; per-batch work
    /// arrives as owned data via [`Executor::map`] / [`Executor::try_map`].
    /// `worker` receives `(task index within the batch, task)`.
    ///
    /// With `threads <= 1` no OS threads are spawned at all and every
    /// batch runs inline on the caller.
    pub fn scope<T, R, W, B, O>(threads: usize, worker: W, body: B) -> O
    where
        T: Send,
        R: Send,
        W: Fn(usize, T) -> R + Sync,
        B: FnOnce(&Executor<'_, T, R>) -> O,
    {
        let threads = threads.max(1);
        let shared = Shared {
            worker: &worker,
            threads,
            inbox: Mutex::new(Inbox { epoch: 0, job: None, shutdown: false }),
            work_cv: Condvar::new(),
        };
        if threads == 1 {
            return body(&Executor { shared: &shared });
        }
        std::thread::scope(|scope| {
            for _ in 1..threads {
                let shared = &shared;
                scope.spawn(move || shared.worker_loop());
            }
            let _guard = ShutdownGuard(&shared);
            body(&Executor { shared: &shared })
        })
    }
}

/// One-shot convenience: maps `worker` over `tasks` on a transient
/// `threads`-wide pool and returns the results in task order.
///
/// # Errors
///
/// Returns the [`TaskPanic`] of the lowest-indexed panicking task.
pub fn scope_map<T, R, W>(threads: usize, tasks: Vec<T>, worker: W) -> Result<Vec<R>, TaskPanic>
where
    T: Send,
    R: Send,
    W: Fn(usize, T) -> R + Sync,
{
    Pool::scope(threads, worker, |pool| pool.try_map(tasks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_task_order() {
        for threads in [1, 2, 4, 7] {
            let out = scope_map(threads, (0..100usize).collect(), |i, x| {
                assert_eq!(i, x, "index matches task position");
                x * 3
            })
            .unwrap();
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_persists_across_batches() {
        // Count distinct batch submissions served by the same scope.
        let served = AtomicU64::new(0);
        let sums: Vec<u64> = Pool::scope(
            4,
            |_, x: u64| {
                served.fetch_add(1, Ordering::Relaxed);
                x
            },
            |pool| (0..50).map(|g| pool.map(vec![g; 8]).iter().sum()).collect(),
        );
        assert_eq!(served.load(Ordering::Relaxed), 50 * 8);
        assert_eq!(sums, (0..50u64).map(|g| 8 * g).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_task_batches_work() {
        Pool::scope(
            3,
            |_, x: u32| x + 1,
            |pool| {
                assert_eq!(pool.map(Vec::new()), Vec::<u32>::new());
                assert_eq!(pool.map(vec![9]), vec![10]);
            },
        );
    }

    #[test]
    fn panic_surfaces_the_failing_task_not_a_poisoned_lock() {
        let err = scope_map(4, (0..32usize).collect(), |_, x| {
            assert!(x != 13, "task 13 exploded");
            x
        })
        .unwrap_err();
        assert_eq!(err.index, 13);
        assert!(err.message.contains("task 13 exploded"), "message was: {}", err.message);
        assert!(err.to_string().contains("task 13"), "display names the task");
    }

    #[test]
    fn lowest_indexed_panic_wins_and_siblings_complete() {
        let completed = AtomicU64::new(0);
        let err = scope_map(4, (0..64usize).collect(), |_, x| {
            if x == 50 || x == 7 {
                panic!("boom {x}");
            }
            completed.fetch_add(1, Ordering::Relaxed);
            x
        })
        .unwrap_err();
        assert_eq!(err.index, 7);
        assert_eq!(completed.load(Ordering::Relaxed), 62, "non-panicking tasks all ran");
    }

    #[test]
    fn pool_survives_a_panicking_batch() {
        Pool::scope(
            4,
            |_, x: u32| {
                assert!(x != 3, "three is right out");
                x
            },
            |pool| {
                assert!(pool.try_map(vec![1, 2, 3, 4]).is_err());
                // The same workers must still serve the next batch.
                assert_eq!(pool.try_map(vec![5, 6]).unwrap(), vec![5, 6]);
            },
        );
    }

    #[test]
    fn work_stealing_covers_unbalanced_tasks() {
        // A few heavy tasks among many light ones; every index must still
        // be produced exactly once.
        let out = scope_map(4, (0..200u64).collect(), |_, x| {
            if x % 50 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        })
        .unwrap();
        assert_eq!(out, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let out = scope_map(16, vec![1u8, 2], |_, x| x * 2).unwrap();
        assert_eq!(out, vec![2, 4]);
    }

    #[test]
    fn task_panic_is_a_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>(_: &E) {}
        assert_error(&TaskPanic { index: 0, message: "x".into() });
    }
}
