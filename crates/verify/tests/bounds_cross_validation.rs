//! Cross-validation of the static WMED brackets against the exhaustive
//! evaluator: on every `(operator, width, signedness, distribution)`
//! cell of the grid, the bracket must contain the evaluator's reported
//! WMED bit-for-bit-as-computed — for exact seeds, conventional
//! approximations, random CGP circuits and degenerate constants alike.

use apx_arith::Operator;
use apx_cgp::{Chromosome, FunctionSet};
use apx_dist::Pmf;
use apx_gates::{Netlist, NetlistBuilder};
use apx_metrics::CircuitEvaluator;
use apx_rng::Xoshiro256;
use apx_verify::{wmed_bounds, wmed_bounds_ternary};

/// A constant-zero netlist with the operator's exact arity.
fn constant_zero(op: Operator, width: u32) -> Netlist {
    let mut b = NetlistBuilder::new(op.num_inputs(width));
    let zero = b.const0();
    b.outputs(&vec![zero; op.num_outputs(width)]);
    b.finish().unwrap()
}

/// The candidate pool for one grid cell: exact seed, constants, random
/// CGP phenotypes, plus the conventional approximations where the
/// encoding has a family.
fn candidates(op: Operator, width: u32, signed: bool) -> Vec<Netlist> {
    let mut pool = vec![op.seed_circuit(width, signed), constant_zero(op, width)];
    let funcs = FunctionSet::extended();
    for seed in 0..4u64 {
        let mut rng = Xoshiro256::from_seed(0xB0D5 ^ seed ^ (u64::from(width) << 32));
        let c =
            Chromosome::random(op.num_inputs(width), op.num_outputs(width), 30, &funcs, &mut rng);
        pool.push(c.decode_active());
    }
    if op == Operator::Mul && !signed {
        for k in 1..width.min(4) {
            pool.push(apx_arith::truncated_multiplier(width, k));
        }
        if width >= 3 {
            pool.push(apx_arith::broken_array_multiplier(width, width, width));
        }
    }
    if op == Operator::Add && !signed {
        for k in 1..width {
            pool.push(apx_arith::lower_or_adder(width, k));
            pool.push(apx_arith::truncated_adder(width, k));
        }
    }
    pool
}

#[test]
fn brackets_contain_the_exhaustive_wmed_across_the_grid() {
    for op in Operator::ALL {
        for width in 2..=6u32 {
            if !op.supports_exhaustive_width(width) {
                continue;
            }
            for signed in [false, true] {
                let pmfs = [Pmf::uniform(width), Pmf::half_normal(width, f64::from(width) * 1.5)];
                for pmf in &pmfs {
                    let evaluator = CircuitEvaluator::for_operator(op, width, signed, pmf).unwrap();
                    for (i, nl) in candidates(op, width, signed).iter().enumerate() {
                        let wmed = evaluator.stats(nl).wmed;
                        let bounds = wmed_bounds(nl, op, width, signed, pmf);
                        assert!(
                            bounds.wmed_lo <= bounds.wmed_hi,
                            "{op} w={width} signed={signed} cand={i}: inverted {bounds:?}"
                        );
                        assert!(
                            bounds.contains(wmed),
                            "{op} w={width} signed={signed} cand={i}: \
                             wmed {wmed} outside {bounds:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn brackets_contain_the_wmed_under_measured_distributions() {
    // A lumpy measured PMF (many zero-weight operands) exercises the
    // weight-skipping fast path.
    let samples: Vec<i64> = (0..200).map(|i| i64::from(i % 5)).collect();
    let pmf = Pmf::from_samples_i64(4, &samples, false).unwrap();
    let op = Operator::Mul;
    let evaluator = CircuitEvaluator::for_operator(op, 4, false, &pmf).unwrap();
    for nl in candidates(op, 4, false) {
        let wmed = evaluator.stats(&nl).wmed;
        let bounds = wmed_bounds(&nl, op, 4, false, &pmf);
        assert!(bounds.contains(wmed), "wmed {wmed} outside {bounds:?}");
    }
}

#[test]
fn exact_brackets_are_never_wider_than_ternary_and_sometimes_strictly_tighter() {
    // The exact-range pass ([`apx_verify::output_ranges`]) may only
    // *shrink* the ternary bracket: on every cell of the same grid as
    // the containment test, the default bracket must be a sub-interval
    // of the ternary-only one — and on at least one fixture it must be
    // strictly tighter, or the pass is dead weight.
    let mut strictly_tighter = 0usize;
    for op in Operator::ALL {
        for width in 2..=6u32 {
            if !op.supports_exhaustive_width(width) {
                continue;
            }
            for signed in [false, true] {
                let pmfs = [Pmf::uniform(width), Pmf::half_normal(width, f64::from(width) * 1.5)];
                for pmf in &pmfs {
                    for (i, nl) in candidates(op, width, signed).iter().enumerate() {
                        let exact = wmed_bounds(nl, op, width, signed, pmf);
                        let ternary = wmed_bounds_ternary(nl, op, width, signed, pmf);
                        assert!(
                            exact.wmed_lo >= ternary.wmed_lo && exact.wmed_hi <= ternary.wmed_hi,
                            "{op} w={width} signed={signed} cand={i}: exact bracket {exact:?} \
                             escapes ternary {ternary:?}"
                        );
                        if exact.wmed_lo > ternary.wmed_lo || exact.wmed_hi < ternary.wmed_hi {
                            strictly_tighter += 1;
                        }
                    }
                }
            }
        }
    }
    assert!(
        strictly_tighter > 0,
        "the exact range pass never improved a single bracket across the whole grid"
    );
}

#[test]
fn tight_brackets_separate_clearly_different_candidates() {
    // The pruning use case: a candidate whose *lower* bound exceeds
    // another's *upper* bound is provably worse — check the brackets are
    // tight enough to make that separation on constant circuits.
    let op = Operator::Mul;
    let width = 4u32;
    let pmf = Pmf::uniform(width);
    let zero = constant_zero(op, width);
    let mut b = NetlistBuilder::new(op.num_inputs(width));
    let one = b.const1();
    b.outputs(&vec![one; op.num_outputs(width)]);
    let ones = b.finish().unwrap();

    let bz = wmed_bounds(&zero, op, width, false, &pmf);
    let bo = wmed_bounds(&ones, op, width, false, &pmf);
    assert!(
        bz.wmed_hi < bo.wmed_lo,
        "all-ones must be provably worse than all-zeros under uniform inputs: {bz:?} vs {bo:?}"
    );
}
