//! Property-based contract: every netlist the pipeline itself produces —
//! arithmetic generators, random CGP genomes, mutation chains, operator
//! seed circuits — passes the structural lint with zero errors, and the
//! gene lint agrees with the genome's own validity predicate.

use apx_arith::Operator;
use apx_cgp::{mutate, Chromosome, FunctionSet};
use apx_rng::Xoshiro256;
use apx_verify::{has_errors, lint_component, lint_genes, lint_netlist, structural_hash};
use proptest::prelude::*;

/// Gene lint over a chromosome's raw parts.
fn lint_chromosome(c: &Chromosome) -> Vec<apx_verify::Diagnostic> {
    lint_genes(c.num_inputs(), c.num_outputs(), c.cols(), c.function_set().len(), c.genes())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_chromosomes_pass_every_lint_pass(
        seed in any::<u64>(),
        ni in 2usize..=6,
        no in 1usize..=4,
        cols in 4usize..=40,
        extended in any::<bool>(),
    ) {
        let funcs = if extended { FunctionSet::extended() } else { FunctionSet::standard() };
        let mut rng = Xoshiro256::from_seed(seed);
        let c = Chromosome::random(ni, no, cols, &funcs, &mut rng);
        prop_assert!(c.is_valid());
        prop_assert!(lint_chromosome(&c).is_empty());
        prop_assert!(!has_errors(&lint_netlist(&c.decode_full())));
        prop_assert!(!has_errors(&lint_netlist(&c.decode_active())));
    }

    #[test]
    fn mutation_chains_never_break_the_lint(
        seed in any::<u64>(),
        steps in 1usize..=60,
        h in 1usize..=4,
    ) {
        let funcs = FunctionSet::standard();
        let mut rng = Xoshiro256::from_seed(seed);
        let mut c = Chromosome::random(4, 3, 30, &funcs, &mut rng);
        for _ in 0..steps {
            mutate(&mut c, h, &mut rng);
            prop_assert!(c.is_valid());
            prop_assert!(lint_chromosome(&c).is_empty());
            prop_assert!(!has_errors(&lint_netlist(&c.decode_active())));
        }
    }

    #[test]
    fn gene_lint_agrees_with_the_genome_validity_predicate(
        seed in any::<u64>(),
        breaks in 1usize..=3,
    ) {
        // Corrupt a few genes of a valid chromosome to arbitrary values:
        // the gene lint must flag raw data exactly when `is_valid` would.
        let funcs = FunctionSet::standard();
        let mut rng = Xoshiro256::from_seed(seed);
        let c = Chromosome::random(5, 2, 20, &funcs, &mut rng);
        let mut genes = c.genes().to_vec();
        for _ in 0..breaks {
            let idx = rng.gen_range(genes.len());
            genes[idx] = rng.gen_range(1000) as u32;
        }
        let diags =
            lint_genes(c.num_inputs(), c.num_outputs(), c.cols(), funcs.len(), &genes);
        let still_valid = genes
            .iter()
            .enumerate()
            .all(|(idx, &g)| g < c.gene_bound(idx));
        prop_assert_eq!(diags.is_empty(), still_valid);
        for d in &diags {
            prop_assert_eq!(d.name(), "gene-out-of-range");
        }
    }

    #[test]
    fn structural_hash_is_stable_under_dead_gene_padding(
        seed in any::<u64>(),
        extra_cols in 0usize..=20,
    ) {
        // Re-encoding a netlist on a wider grid only adds dead padding:
        // the hash (the library's dedup identity) must not change.
        let funcs = FunctionSet::standard();
        let mut rng = Xoshiro256::from_seed(seed);
        let c = Chromosome::random(4, 3, 15, &funcs, &mut rng);
        let active = c.decode_active();
        let wider = Chromosome::from_netlist(&active, &funcs, active.gate_count() + extra_cols);
        prop_assume!(active.gate_count() > 0);
        let wider = wider.unwrap();
        prop_assert_eq!(structural_hash(&active), structural_hash(&wider.decode_active()));
        prop_assert_eq!(structural_hash(&active), structural_hash(&wider.decode_full()));
    }
}

#[test]
fn every_generator_netlist_is_component_clean() {
    // The operator seed circuits and the conventional approximations all
    // satisfy their declared component contract with zero errors.
    for op in Operator::ALL {
        for signed in [false, true] {
            for width in 2..=4u32 {
                if !op.supports_exhaustive_width(width) {
                    continue;
                }
                let nl = op.seed_circuit(width, signed);
                let diags = lint_component(&nl, op, width);
                assert!(!has_errors(&diags), "{op} w={width} signed={signed}: {diags:?}");
            }
        }
    }
    for w in 2..=6u32 {
        assert!(!has_errors(&lint_component(&apx_arith::array_multiplier(w), Operator::Mul, w)));
        for k in 1..w {
            assert!(!has_errors(&lint_component(
                &apx_arith::truncated_multiplier(w, k),
                Operator::Mul,
                w
            )));
        }
    }
}
