//! Property-based contract of the semantic layer: `prove_equiv` and
//! `functional_digest` must agree with brute-force truth-table
//! comparison on every netlist the pipeline can produce — all three
//! operators, widths 2–6 (where enumeration stays tractable), both
//! signednesses — including mutated netlists (a genuine `Differs`
//! witness) and digest invariance under dead-node padding and gate
//! reordering.

use apx_arith::Operator;
use apx_cgp::{Chromosome, FunctionSet};
use apx_gates::{GateKind, Netlist, Node, SignalId};
use apx_rng::Xoshiro256;
use apx_verify::{functional_digest, prove_equiv, Equiv};
use proptest::prelude::*;

/// The full truth table of a netlist: one output-word row per input
/// assignment, in assignment order.
fn truth_table(nl: &Netlist) -> Vec<u64> {
    let ni = nl.num_inputs();
    assert!(ni <= 16, "truth tables are only enumerable at small arity");
    (0..(1u64 << ni))
        .map(|x| {
            let assign: Vec<bool> = (0..ni).map(|i| (x >> i) & 1 == 1).collect();
            nl.eval_bool(&assign).iter().enumerate().map(|(j, &b)| u64::from(b) << j).sum()
        })
        .collect()
}

/// A random CGP netlist with the operator's component arity.
fn random_component(op: Operator, width: u32, seed: u64) -> Netlist {
    let mut rng = Xoshiro256::from_seed(seed);
    let c = Chromosome::random(
        op.num_inputs(width),
        op.num_outputs(width),
        24,
        &FunctionSet::extended(),
        &mut rng,
    );
    c.decode_active()
}

/// `nl` with `extra` dead gates appended — same function, different
/// structure.
fn with_dead_padding(nl: &Netlist, extra: usize) -> Netlist {
    let ni = nl.num_inputs();
    let mut nodes = nl.nodes().to_vec();
    for k in 0..extra {
        let a = SignalId((k % ni) as u32);
        nodes.push(Node { kind: GateKind::Xor, a, b: a });
    }
    Netlist::new(ni, nodes, nl.outputs().to_vec()).expect("padding preserves validity")
}

/// Re-derives `nl` through a chromosome re-encoding on a wider grid —
/// the library's own normalization path, which renumbers gates. The
/// function is untouched; the gate list is reordered/padded.
fn reencoded(nl: &Netlist, extra_cols: usize) -> Option<Netlist> {
    let funcs = FunctionSet::extended();
    let c = Chromosome::from_netlist(nl, &funcs, nl.gate_count() + extra_cols).ok()?;
    Some(c.decode_full())
}

/// The `(op, width)` grid with enumerable truth tables (≤ 14 input
/// bits): `Mul`/`Add` at widths 2–6, `Mac` at 2–3.
fn enumerable_grid() -> Vec<(Operator, u32)> {
    let mut grid = Vec::new();
    for op in Operator::ALL {
        for width in 2..=6u32 {
            if op.num_inputs(width) <= 14 {
                grid.push((op, width));
            }
        }
    }
    grid
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prove_equiv_agrees_with_truth_tables(seed in any::<u64>()) {
        // Across the whole enumerable grid: the BDD verdict between the
        // exact seed circuit and a random CGP netlist of the same arity
        // must match brute-force table comparison, and a `Differs`
        // witness must actually separate the two netlists.
        for (op, width) in enumerable_grid() {
            for signed in [false, true] {
                let exact = op.seed_circuit(width, signed);
                let other = random_component(op, width, seed ^ u64::from(width) << 8);
                let equal = truth_table(&exact) == truth_table(&other);
                match prove_equiv(&exact, &other, op, width) {
                    Equiv::Equal => prop_assert!(equal, "{op} w{width}: false Equal"),
                    Equiv::Differs { witness } => {
                        prop_assert!(!equal, "{op} w{width}: false Differs");
                        prop_assert!(
                            exact.eval_bool(&witness) != other.eval_bool(&witness),
                            "{op} w{width}: witness does not separate the netlists"
                        );
                    }
                    Equiv::Unknown { .. } => {
                        prop_assert!(false, "{op} w{width}: tiny netlists never exhaust the budget");
                    }
                }
                // The digest is exactly as discriminating as the tables.
                prop_assert_eq!(
                    functional_digest(&exact) == functional_digest(&other),
                    equal,
                    "{} w{} signed={}: digest disagrees with truth tables", op, width, signed
                );
            }
        }
    }

    #[test]
    fn mutated_netlists_are_caught_with_a_witness(
        seed in any::<u64>(),
        bit in 0usize..4,
    ) {
        // A single-output truncation is the canonical approximate
        // mutation: `prove_equiv` must refute it and hand back a
        // concrete separating assignment.
        for (op, width) in enumerable_grid() {
            let exact = op.seed_circuit(width, false);
            let target = bit % exact.num_outputs();
            let mut nodes = exact.nodes().to_vec();
            let zero = SignalId((exact.num_inputs() + nodes.len()) as u32);
            nodes.push(Node { kind: GateKind::Const0, a: SignalId(0), b: SignalId(0) });
            let mut outputs = exact.outputs().to_vec();
            outputs[target] = zero;
            let broken = Netlist::new(exact.num_inputs(), nodes, outputs).unwrap();
            if truth_table(&exact) == truth_table(&broken) {
                // The truncated plane was constant-0 already (e.g. a MSB
                // that never fires): genuinely equivalent, not a bug.
                prop_assert_eq!(prove_equiv(&exact, &broken, op, width), Equiv::Equal);
                continue;
            }
            match prove_equiv(&exact, &broken, op, width) {
                Equiv::Differs { witness } => {
                    prop_assert_ne!(exact.eval_bool(&witness), broken.eval_bool(&witness));
                }
                other => prop_assert!(false, "{op} w{width}: expected Differs, got {other:?}"),
            }
            prop_assert_ne!(functional_digest(&exact), functional_digest(&broken));
            let _ = seed; // width/op grid already varies the fixture
        }
    }

    #[test]
    fn digest_is_invariant_under_padding_and_reordering(
        seed in any::<u64>(),
        extra in 1usize..=12,
    ) {
        // Dead-node padding and the chromosome re-encoding round trip
        // (which renumbers and pads the gate list) must never move the
        // digest; truth tables confirm the function really is unchanged.
        for (op, width) in enumerable_grid() {
            let nl = random_component(op, width, seed ^ u64::from(width));
            let digest = functional_digest(&nl);
            prop_assert!(digest.is_some(), "{op} w{width}: tiny netlists fit the budget");
            let padded = with_dead_padding(&nl, extra);
            prop_assert_eq!(truth_table(&nl), truth_table(&padded));
            prop_assert_eq!(functional_digest(&padded), digest, "{} w{}: padding", op, width);
            if let Some(re) = reencoded(&nl, extra) {
                prop_assert_eq!(truth_table(&nl), truth_table(&re));
                prop_assert_eq!(functional_digest(&re), digest, "{} w{}: re-encoding", op, width);
            }
        }
    }
}
