//! Static netlist analysis: lint, dataflow and provable error bounds.
//!
//! The sweep pipeline ingests netlists from places it does not control —
//! cache directories written by other runs, harvested library candidates,
//! eventually foreign BLIF designs. Parse-level checks catch torn files,
//! but a well-formed file can still encode a netlist that violates the
//! contracts downstream code relies on (operand indices out of range,
//! wrong arity for its declared operator, …). This crate is the static
//! gate in front of that trust boundary, in three passes:
//!
//! 1. **Structural lint** ([`lint_netlist`], [`lint_genes`],
//!    [`lint_component`]): node-index bounds (which, over a
//!    topologically ordered node list, *is* acyclicity), output wiring,
//!    gate/function-code validity and per-[`Operator`] width contracts —
//!    each violation a named, span-carrying [`Diagnostic`] instead of a
//!    bare "corrupt".
//! 2. **Dataflow** ([`propagate_constants`], [`constant_signals`]):
//!    ternary constant propagation over the gate list, reporting
//!    provably-constant (stuck-at) outputs and dead nodes as warnings,
//!    plus [`structural_hash`] — the canonical digest identical to the
//!    component library's dedup identity.
//! 3. **Bound analysis** ([`wmed_bounds`]): per-output interval analysis
//!    yielding a provable `[lo, hi]` bracket on the circuit's WMED
//!    without exhaustive simulation of the candidate — sound enough to
//!    prune library candidates that provably cannot meet a threshold
//!    before the batched re-scoring pass pays for them.
//!
//! Severity is deliberately two-tier: [`Severity::Error`] marks contract
//! violations (the netlist must not be evaluated), while
//! [`Severity::Warning`] marks findings that are *expected* of evolved
//! approximate circuits (a stuck output is often exactly how a candidate
//! saves area) and only inform audits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod semantic;

pub use bounds::{wmed_bounds, wmed_bounds_ternary, wmed_bounds_weighted, ErrorBounds};
pub use semantic::{
    functional_digest, functional_digest_with_budget, output_ranges, prove_equiv,
    prove_equiv_with_budget, prove_seed, prove_seed_with_budget, Equiv, SEMANTIC_NODE_BUDGET,
};

use apx_arith::{EvalBackend, Operator};
use apx_dist::{fnv1a64, FNV1A64_OFFSET};
use apx_gates::{Netlist, Node, SignalId};
use std::fmt::{self, Write as _};

/// How bad a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational finding, legitimate in evolved approximate circuits.
    Warning,
    /// Contract violation: the netlist must not be evaluated.
    Error,
}

/// Where in the netlist (or genome) a [`Diagnostic`] points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Span {
    /// The netlist as a whole.
    Netlist,
    /// Node `k` of the node list (signal `num_inputs + k`).
    Node(usize),
    /// Output slot `k` of the output list.
    Output(usize),
    /// Gene `k` of a raw CGP genome.
    Gene(usize),
}

/// One named finding of the static analyzer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Diagnostic {
    /// A node reads a signal at or above its own position — a forward
    /// (or self) reference, impossible in a topologically ordered list.
    OperandOutOfRange {
        /// Offending node index.
        node: usize,
        /// Which operand slot (`'a'` or `'b'`).
        operand: char,
        /// The out-of-range signal id.
        signal: u32,
        /// Exclusive bound the operand had to stay under.
        limit: u32,
    },
    /// An output slot points past the last signal of the netlist.
    OutputOutOfRange {
        /// Offending output slot.
        output: usize,
        /// The out-of-range signal id.
        signal: u32,
        /// Exclusive bound (the netlist's signal count).
        limit: u32,
    },
    /// The netlist declares no outputs at all.
    NoOutputs,
    /// A raw CGP gene exceeds its positional bound (an operand gene past
    /// its column, or a function gene with no such gate code).
    GeneOutOfRange {
        /// Offending gene index.
        gene: usize,
        /// The stored gene value.
        value: u32,
        /// Exclusive bound for that gene position.
        bound: u32,
    },
    /// The declared operand width is outside the operator's evaluable
    /// range, so no arity contract even exists to check against.
    UnsupportedWidth {
        /// The declared operator.
        op: Operator,
        /// The unsupported width.
        width: u32,
    },
    /// The netlist's input count contradicts its declared operator/width.
    InputArity {
        /// The declared operator.
        op: Operator,
        /// The declared operand width.
        width: u32,
        /// Inputs the contract requires.
        expected: usize,
        /// Inputs the netlist has.
        got: usize,
    },
    /// The netlist's output count contradicts its declared operator/width.
    OutputArity {
        /// The declared operator.
        op: Operator,
        /// The declared operand width.
        width: u32,
        /// Outputs the contract requires.
        expected: usize,
        /// Outputs the netlist has.
        got: usize,
    },
    /// An output is provably constant for every input vector.
    StuckOutput {
        /// Offending output slot.
        output: usize,
        /// The constant value it is stuck at.
        value: bool,
    },
    /// A node outside the transitive fan-in of every output.
    DeadNode {
        /// The unreachable node's index.
        node: usize,
    },
}

impl Diagnostic {
    /// Stable kebab-case name — the key audit tables tally under.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Diagnostic::OperandOutOfRange { .. } => "operand-out-of-range",
            Diagnostic::OutputOutOfRange { .. } => "output-out-of-range",
            Diagnostic::NoOutputs => "no-outputs",
            Diagnostic::GeneOutOfRange { .. } => "gene-out-of-range",
            Diagnostic::UnsupportedWidth { .. } => "unsupported-width",
            Diagnostic::InputArity { .. } => "input-arity",
            Diagnostic::OutputArity { .. } => "output-arity",
            Diagnostic::StuckOutput { .. } => "stuck-output",
            Diagnostic::DeadNode { .. } => "dead-node",
        }
    }

    /// Error for contract violations, warning for findings that are
    /// legitimate in approximate circuits.
    #[must_use]
    pub fn severity(&self) -> Severity {
        match self {
            Diagnostic::StuckOutput { .. } | Diagnostic::DeadNode { .. } => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// The location the finding points at.
    #[must_use]
    pub fn span(&self) -> Span {
        match *self {
            Diagnostic::OperandOutOfRange { node, .. } | Diagnostic::DeadNode { node } => {
                Span::Node(node)
            }
            Diagnostic::OutputOutOfRange { output, .. }
            | Diagnostic::StuckOutput { output, .. } => Span::Output(output),
            Diagnostic::GeneOutOfRange { gene, .. } => Span::Gene(gene),
            Diagnostic::NoOutputs
            | Diagnostic::UnsupportedWidth { .. }
            | Diagnostic::InputArity { .. }
            | Diagnostic::OutputArity { .. } => Span::Netlist,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Diagnostic::OperandOutOfRange { node, operand, signal, limit } => write!(
                f,
                "operand-out-of-range: node {node} operand {operand} reads signal {signal} \
                 (must be < {limit})"
            ),
            Diagnostic::OutputOutOfRange { output, signal, limit } => write!(
                f,
                "output-out-of-range: output {output} reads signal {signal} (must be < {limit})"
            ),
            Diagnostic::NoOutputs => write!(f, "no-outputs: the netlist declares no outputs"),
            Diagnostic::GeneOutOfRange { gene, value, bound } => {
                write!(f, "gene-out-of-range: gene {gene} holds {value} (must be < {bound})")
            }
            Diagnostic::UnsupportedWidth { op, width } => {
                write!(f, "unsupported-width: {op} does not support operand width {width}")
            }
            Diagnostic::InputArity { op, width, expected, got } => write!(
                f,
                "input-arity: a width-{width} {op} netlist must have {expected} inputs, got {got}"
            ),
            Diagnostic::OutputArity { op, width, expected, got } => write!(
                f,
                "output-arity: a width-{width} {op} netlist must have {expected} outputs, \
                 got {got}"
            ),
            Diagnostic::StuckOutput { output, value } => {
                write!(f, "stuck-output: output {output} is constant {}", u8::from(value))
            }
            Diagnostic::DeadNode { node } => {
                write!(f, "dead-node: node {node} feeds no output")
            }
        }
    }
}

/// Whether any diagnostic in `diags` is a contract violation.
#[must_use]
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity() == Severity::Error)
}

/// Structural lint over the raw parts of a netlist — the checks
/// [`Netlist::new`] enforces by construction, re-run here over data that
/// never went through the constructor (decoded cache text, foreign
/// formats) and reported as named diagnostics instead of one error.
///
/// Over a topologically ordered node list the operand bound `signal <
/// num_inputs + k` *is* the acyclicity proof: no node can reach itself.
#[must_use]
pub fn lint_parts(num_inputs: usize, nodes: &[Node], outputs: &[SignalId]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if outputs.is_empty() {
        diags.push(Diagnostic::NoOutputs);
    }
    for (k, node) in nodes.iter().enumerate() {
        let limit = (num_inputs + k) as u32;
        if node.a.0 >= limit {
            diags.push(Diagnostic::OperandOutOfRange {
                node: k,
                operand: 'a',
                signal: node.a.0,
                limit,
            });
        }
        if node.b.0 >= limit {
            diags.push(Diagnostic::OperandOutOfRange {
                node: k,
                operand: 'b',
                signal: node.b.0,
                limit,
            });
        }
    }
    let limit = (num_inputs + nodes.len()) as u32;
    for (k, out) in outputs.iter().enumerate() {
        if out.0 >= limit {
            diags.push(Diagnostic::OutputOutOfRange { output: k, signal: out.0, limit });
        }
    }
    diags
}

/// Structural lint over a raw CGP genome, mirroring the per-gene bounds
/// of `apx_cgp`'s genome layout: genes come in `(a, b, function)` triples
/// for each of `cols` single-row nodes, followed by `num_outputs` output
/// genes. Operand genes must stay under their column's signal count
/// (levels-back = full row), function genes under `num_functions`, output
/// genes under the total signal count.
///
/// This is the gate-code validity check: a function gene at or above
/// `num_functions` names no gate at all.
///
/// # Panics
///
/// Panics if `genes.len() != 3 * cols + num_outputs` — a length mismatch
/// is a framing error the caller's parser must have caught already.
#[must_use]
pub fn lint_genes(
    num_inputs: usize,
    num_outputs: usize,
    cols: usize,
    num_functions: usize,
    genes: &[u32],
) -> Vec<Diagnostic> {
    assert_eq!(
        genes.len(),
        3 * cols + num_outputs,
        "genome length must match its declared geometry"
    );
    let mut diags = Vec::new();
    for (idx, &value) in genes.iter().enumerate() {
        let bound = if idx < 3 * cols {
            match idx % 3 {
                0 | 1 => (num_inputs + idx / 3) as u32,
                _ => num_functions as u32,
            }
        } else {
            (num_inputs + cols) as u32
        };
        if value >= bound {
            diags.push(Diagnostic::GeneOutOfRange { gene: idx, value, bound });
        }
    }
    diags
}

/// Full lint of a constructed [`Netlist`]: the structural pass plus — on
/// structurally clean netlists — the dataflow warnings (stuck-at outputs
/// via ternary constant propagation, dead nodes via reachability).
///
/// Structural errors suppress the dataflow pass: propagating through a
/// netlist with out-of-range operands would read unrelated signals.
#[must_use]
pub fn lint_netlist(netlist: &Netlist) -> Vec<Diagnostic> {
    let mut diags = lint_parts(netlist.num_inputs(), netlist.nodes(), netlist.outputs());
    if has_errors(&diags) {
        return diags;
    }
    let vals = constant_signals(netlist);
    for (k, out) in netlist.outputs().iter().enumerate() {
        if let Some(value) = vals[out.index()] {
            diags.push(Diagnostic::StuckOutput { output: k, value });
        }
    }
    let active = netlist.active_mask();
    for k in 0..netlist.gate_count() {
        if !active[netlist.num_inputs() + k] {
            diags.push(Diagnostic::DeadNode { node: k });
        }
    }
    diags
}

/// [`lint_netlist`] plus the declared-component contract: the netlist
/// must have exactly the input/output arity of a `width`-bit instance of
/// `op` (the invariant `CircuitEvaluator` otherwise only asserts at
/// evaluation time).
#[must_use]
pub fn lint_component(netlist: &Netlist, op: Operator, width: u32) -> Vec<Diagnostic> {
    let mut diags = lint_netlist(netlist);
    // A width is lintable if *any* backend can evaluate it; the symbolic
    // backend has the widest range.
    if op.supports_width(width, EvalBackend::Symbolic) {
        let expected = op.num_inputs(width);
        if netlist.num_inputs() != expected {
            diags.push(Diagnostic::InputArity { op, width, expected, got: netlist.num_inputs() });
        }
        let expected = op.num_outputs(width);
        if netlist.num_outputs() != expected {
            diags.push(Diagnostic::OutputArity { op, width, expected, got: netlist.num_outputs() });
        }
    } else {
        diags.push(Diagnostic::UnsupportedWidth { op, width });
    }
    diags
}

/// Ternary constant propagation: given each primary input as known
/// (`Some`) or unknown (`None`), computes the provable value of every
/// signal. A gate's output is `Some` exactly when every combination of
/// its unknown operands agrees — per-gate exact, so `And(x, 0)` folds to
/// `Some(false)` even though `x` is unknown.
///
/// # Panics
///
/// Panics if `inputs.len() != netlist.num_inputs()`.
#[must_use]
pub fn propagate_constants(netlist: &Netlist, inputs: &[Option<bool>]) -> Vec<Option<bool>> {
    assert_eq!(inputs.len(), netlist.num_inputs(), "one ternary value per primary input");
    fn candidates(v: Option<bool>) -> &'static [bool] {
        match v {
            Some(false) => &[false],
            Some(true) => &[true],
            None => &[false, true],
        }
    }
    let mut vals: Vec<Option<bool>> = Vec::with_capacity(netlist.num_signals());
    vals.extend_from_slice(inputs);
    for node in netlist.nodes() {
        let (av, bv) = (vals[node.a.index()], vals[node.b.index()]);
        let mut folded: Option<Option<bool>> = None;
        for &a in candidates(av) {
            for &b in candidates(bv) {
                let r = node.kind.eval_bool(a, b);
                folded = match folded {
                    None => Some(Some(r)),
                    Some(Some(prev)) if prev == r => Some(Some(r)),
                    _ => Some(None),
                };
            }
        }
        vals.push(folded.unwrap_or(None));
    }
    vals
}

/// The provably-constant signals of a netlist with *all* inputs unknown:
/// `Some(v)` marks a signal stuck at `v` for every input vector.
#[must_use]
pub fn constant_signals(netlist: &Netlist) -> Vec<Option<bool>> {
    propagate_constants(netlist, &vec![None; netlist.num_inputs()])
}

/// Canonical 128-bit structural hash of a netlist — dead nodes and
/// unused operand slots do not change identity. Bit-identical to the
/// component library's `netlist_digest`, so a verify-side audit and the
/// library's dedup agree on which netlists are "the same circuit".
#[must_use]
pub fn structural_hash(netlist: &Netlist) -> u128 {
    let compact = netlist.compact();
    let mut canonical = String::new();
    let _ = write!(canonical, "nl {} {}", compact.num_inputs(), compact.num_outputs());
    for node in compact.nodes() {
        let _ = write!(canonical, " {}:{}:{}", node.kind.name(), node.a.0, node.b.0);
    }
    for out in compact.outputs() {
        let _ = write!(canonical, " o{}", out.0);
    }
    fnv_u128(&canonical)
}

/// The crate's canonical-string-to-128-bit hash: two independently
/// seeded FNV-1a-64 streams over the same bytes (shared by the
/// structural hash and the semantic functional digest).
fn fnv_u128(canonical: &str) -> u128 {
    let hi = fnv1a64(canonical.as_bytes(), FNV1A64_OFFSET);
    let lo = fnv1a64(canonical.as_bytes(), FNV1A64_OFFSET ^ 0x9E37_79B9_7F4A_7C15);
    (u128::from(hi) << 64) | u128::from(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_gates::{GateKind, NetlistBuilder};

    fn adder() -> Netlist {
        apx_arith::ripple_carry_adder(4)
    }

    #[test]
    fn clean_netlists_produce_no_diagnostics() {
        assert!(lint_netlist(&adder()).is_empty());
        assert!(lint_component(&adder(), Operator::Add, 4).is_empty());
        assert!(lint_netlist(&apx_arith::array_multiplier(4)).is_empty());
        assert!(lint_component(&apx_arith::array_multiplier(4), Operator::Mul, 4).is_empty());
    }

    #[test]
    fn each_structural_diagnostic_fires_on_a_minimally_broken_netlist() {
        let nl = adder();
        let (ni, nodes, outputs) = (nl.num_inputs(), nl.nodes().to_vec(), nl.outputs().to_vec());

        // Minimal break 1: first node reads itself (forward reference).
        let mut bad = nodes.clone();
        bad[0].a = SignalId(ni as u32);
        let diags = lint_parts(ni, &bad, &outputs);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].name(), "operand-out-of-range");
        assert_eq!(diags[0].severity(), Severity::Error);
        assert_eq!(diags[0].span(), Span::Node(0));

        // Minimal break 2: the `b` slot of a later node jumps ahead.
        let mut bad = nodes.clone();
        bad[3].b = SignalId((ni + nodes.len()) as u32);
        let diags = lint_parts(ni, &bad, &outputs);
        assert_eq!(diags.len(), 1);
        assert!(matches!(diags[0], Diagnostic::OperandOutOfRange { node: 3, operand: 'b', .. }));

        // Minimal break 3: one output past the last signal.
        let mut bad = outputs.clone();
        bad[2] = SignalId(nl.num_signals() as u32);
        let diags = lint_parts(ni, &nodes, &bad);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].name(), "output-out-of-range");
        assert_eq!(diags[0].span(), Span::Output(2));

        // Minimal break 4: no outputs at all.
        let diags = lint_parts(ni, &nodes, &[]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0], Diagnostic::NoOutputs);
        assert_eq!(diags[0].span(), Span::Netlist);
    }

    #[test]
    fn gene_lint_mirrors_the_genome_bounds() {
        // Geometry: 2 inputs, 1 output, 2 columns, 4 functions.
        let clean = [0, 1, 2, 2, 0, 3, 3];
        assert!(lint_genes(2, 1, 2, 4, &clean).is_empty());

        // Operand gene at its own column's bound (self-reference).
        let mut bad = clean;
        bad[3] = 3;
        let diags = lint_genes(2, 1, 2, 4, &bad);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0], Diagnostic::GeneOutOfRange { gene: 3, value: 3, bound: 3 });
        assert_eq!(diags[0].span(), Span::Gene(3));

        // Function gene naming a nonexistent gate code.
        let mut bad = clean;
        bad[5] = 4;
        assert_eq!(
            lint_genes(2, 1, 2, 4, &bad),
            vec![Diagnostic::GeneOutOfRange { gene: 5, value: 4, bound: 4 }]
        );

        // Output gene past the grid.
        let mut bad = clean;
        bad[6] = 4;
        assert_eq!(
            lint_genes(2, 1, 2, 4, &bad),
            vec![Diagnostic::GeneOutOfRange { gene: 6, value: 4, bound: 4 }]
        );
    }

    #[test]
    #[should_panic(expected = "genome length")]
    fn gene_lint_rejects_framing_mismatches() {
        let _ = lint_genes(2, 1, 2, 4, &[0; 5]);
    }

    #[test]
    fn width_contract_diagnostics_fire() {
        let nl = adder(); // 8 inputs, 5 outputs
        let diags = lint_component(&nl, Operator::Mul, 4);
        assert_eq!(diags.len(), 1, "8 inputs fit Mul w4; 5 outputs do not: {diags:?}");
        assert_eq!(
            diags[0],
            Diagnostic::OutputArity { op: Operator::Mul, width: 4, expected: 8, got: 5 }
        );
        let diags = lint_component(&nl, Operator::Add, 3);
        assert_eq!(
            diags,
            vec![
                Diagnostic::InputArity { op: Operator::Add, width: 3, expected: 6, got: 8 },
                Diagnostic::OutputArity { op: Operator::Add, width: 3, expected: 4, got: 5 },
            ]
        );
        // Width 11 is evaluable on the symbolic backend, so it lints for
        // arity instead of being rejected; width 17 exceeds every backend.
        let diags = lint_component(&nl, Operator::Mul, 11);
        assert_eq!(
            diags,
            vec![
                Diagnostic::InputArity { op: Operator::Mul, width: 11, expected: 22, got: 8 },
                Diagnostic::OutputArity { op: Operator::Mul, width: 11, expected: 22, got: 5 },
            ]
        );
        let diags = lint_component(&nl, Operator::Mul, 17);
        assert_eq!(diags, vec![Diagnostic::UnsupportedWidth { op: Operator::Mul, width: 17 }]);
        assert!(has_errors(&diags));
    }

    #[test]
    fn constant_propagation_is_per_gate_exact() {
        // y0 = and(x0, const0) is provably 0 even though x0 is unknown;
        // y1 = or(x0, const1) is provably 1; y2 = xor(x0, x0) is NOT
        // folded (ternary propagation is per-gate, not per-path — the
        // two operand reads are treated independently).
        let mut b = NetlistBuilder::new(1);
        let x = b.input(0);
        let zero = b.const0();
        let one = b.const1();
        let y0 = b.and(x, zero);
        let y1 = b.or(x, one);
        let y2 = b.xor(x, x);
        b.outputs(&[y0, y1, y2]);
        let nl = b.finish().unwrap();
        let vals = constant_signals(&nl);
        assert_eq!(vals[y0.index()], Some(false));
        assert_eq!(vals[y1.index()], Some(true));
        assert_eq!(vals[y2.index()], None, "per-gate ternary analysis cannot see x ^ x = 0");

        let diags = lint_netlist(&nl);
        let stuck: Vec<_> = diags.iter().filter(|d| d.name() == "stuck-output").collect();
        assert_eq!(stuck.len(), 2);
        assert!(diags.iter().all(|d| d.severity() == Severity::Warning));
        assert!(!has_errors(&diags));
    }

    #[test]
    fn pinned_inputs_flow_through() {
        let nl = adder();
        // a = 0b0011, b unknown: sum bit 0 = a0 xor b0 stays unknown,
        // but pinning b too makes everything constant.
        let mut inputs = vec![None; 8];
        for (i, v) in [true, true, false, false].into_iter().enumerate() {
            inputs[i] = Some(v);
        }
        let vals = propagate_constants(&nl, &inputs);
        assert!(nl.outputs().iter().any(|o| vals[o.index()].is_none()));
        for (i, v) in [true, false, true, false].into_iter().enumerate() {
            inputs[4 + i] = Some(v);
        }
        let vals = propagate_constants(&nl, &inputs);
        // 3 + 5 = 8 = 0b01000 over (s0..s3, carry).
        let got: Vec<bool> = nl.outputs().iter().map(|o| vals[o.index()].unwrap()).collect();
        assert_eq!(got, [false, false, false, true, false]);
    }

    #[test]
    fn dead_nodes_are_reported() {
        let mut b = NetlistBuilder::new(2);
        let (x, y) = (b.input(0), b.input(1));
        let live = b.and(x, y);
        let dead = b.xor(x, y);
        let _ = dead;
        b.outputs(&[live]);
        let nl = b.finish().unwrap();
        let diags = lint_netlist(&nl);
        assert_eq!(diags, vec![Diagnostic::DeadNode { node: 1 }]);
        assert_eq!(diags[0].severity(), Severity::Warning);
        assert_eq!(diags[0].span(), Span::Node(1));
    }

    #[test]
    fn structural_errors_suppress_the_dataflow_pass() {
        // `lint_netlist` on a valid netlist never sees raw broken parts
        // (the constructor rejects them), so exercise the guard through
        // `lint_parts` + the documented contract: errors short-circuit.
        let nl = adder();
        let mut bad = nl.nodes().to_vec();
        bad[0].a = SignalId(500);
        let diags = lint_parts(nl.num_inputs(), &bad, nl.outputs());
        assert!(has_errors(&diags));
        assert!(diags.iter().all(|d| d.severity() == Severity::Error));
    }

    #[test]
    fn display_names_match_diagnostic_names() {
        let samples = [
            Diagnostic::OperandOutOfRange { node: 0, operand: 'a', signal: 9, limit: 4 },
            Diagnostic::OutputOutOfRange { output: 1, signal: 9, limit: 4 },
            Diagnostic::NoOutputs,
            Diagnostic::GeneOutOfRange { gene: 2, value: 9, bound: 4 },
            Diagnostic::UnsupportedWidth { op: Operator::Mac, width: 9 },
            Diagnostic::InputArity { op: Operator::Mul, width: 4, expected: 8, got: 7 },
            Diagnostic::OutputArity { op: Operator::Mul, width: 4, expected: 8, got: 7 },
            Diagnostic::StuckOutput { output: 0, value: true },
            Diagnostic::DeadNode { node: 3 },
        ];
        for d in samples {
            assert!(d.to_string().starts_with(d.name()), "{d} vs {}", d.name());
        }
    }

    #[test]
    fn structural_hash_ignores_dead_nodes() {
        let mut b = NetlistBuilder::new(2);
        let (x, y) = (b.input(0), b.input(1));
        let live = b.and(x, y);
        b.outputs(&[live]);
        let lean = b.finish().unwrap();

        let mut b = NetlistBuilder::new(2);
        let (x, y) = (b.input(0), b.input(1));
        let live = b.and(x, y);
        let _dead = b.xor(x, y);
        b.outputs(&[live]);
        let fat = b.finish().unwrap();

        assert_eq!(structural_hash(&lean), structural_hash(&fat));
        let mut b = NetlistBuilder::new(2);
        let (x, y) = (b.input(0), b.input(1));
        let live = b.or(x, y);
        b.outputs(&[live]);
        let other = b.finish().unwrap();
        assert_ne!(structural_hash(&lean), structural_hash(&other));
    }

    #[test]
    fn gate_code_validity_is_what_gene_lint_checks() {
        // A function gene bound equal to the function-set length is the
        // gate-code validity contract: every in-range gene decodes.
        let kinds = [GateKind::And, GateKind::Or];
        for code in 0..kinds.len() as u32 {
            assert!(lint_genes(2, 1, 1, kinds.len(), &[0, 1, code, 2]).is_empty());
        }
        assert!(!lint_genes(2, 1, 1, kinds.len(), &[0, 1, 2, 2]).is_empty());
    }
}
