//! Provable WMED brackets from static interval analysis.
//!
//! For every weighted-operand value `x`, ternary constant propagation
//! ([`crate::propagate_constants`]) with the remaining inputs unknown
//! yields, per output bit, either a proven constant or "unknown" — i.e. a
//! *fixed-mask set* `S(x)` of output words that is guaranteed to contain
//! every output the circuit can produce for that `x`, whatever the free
//! operands are. The error of any achievable output against the exact
//! value `t` is therefore bracketed by
//!
//! ```text
//!   min_{z ∈ S(x)} |t − z|   ≤   |t − output|   ≤   max_{z ∈ S(x)} |t − z|
//! ```
//!
//! and summing those per-vector brackets with the task's distribution
//! weights (the exact WMED summation of `apx_metrics`) gives a provable
//! `[lo, hi]` interval around the circuit's true WMED — without ever
//! simulating the candidate netlist on the full enumeration.
//!
//! When the netlist fits the semantic analysis budget, the **exact range
//! pass** ([`crate::output_ranges`]) sharpens both ends: it yields the
//! exact achievable min/max biased output `[amin(x), amax(x)]` per
//! weighted value, with both endpoints *achieved*. Since the achievable
//! set `A(x)` satisfies `A(x) ⊆ S(x)` and `A(x) ⊆ [amin, amax]`, the
//! larger of the ternary distance and the interval distance is still a
//! valid lower term, and `max(|t − amin|, |t − amax|)` is the exact
//! upper term over the hull — so the combined bracket is never wider
//! than the ternary-only one ([`wmed_bounds_ternary`]), and strictly
//! tighter whenever the exact range cuts into the ternary set. On budget
//! exhaustion the pass returns nothing and the ternary bracket stands
//! unchanged — the soundness contract below is identical either way.
//!
//! # Soundness contract
//!
//! Three facts make the bracket safe to prune with:
//!
//! * the candidate set is an **over-approximation**: ternary propagation
//!   is per-gate exact but path-insensitive, so `S(x)` can only be larger
//!   than the truly achievable set — which widens the bracket, never
//!   narrows it;
//! * signed outputs are compared in **biased** space (`raw ^ top_bit`),
//!   an order isomorphism from two's-complement onto `0..2^n` that maps a
//!   fixed-mask set onto a fixed-mask set, so min/max distances stay
//!   exact integer computations on `u64`;
//! * the only floating-point steps are the final weighted sums — the same
//!   `≤ 2^20`-term f64 accumulation the evaluator itself performs, with
//!   relative error well under `2^-31`. [`WIDEN`] stretches both ends of
//!   the bracket multiplicatively by far more than that, so the returned
//!   interval contains the evaluator's reported WMED *as computed*, not
//!   just the ideal real number.

use crate::propagate_constants;
use crate::semantic::output_ranges;
use apx_arith::{EvalBackend, Operator};
use apx_dist::Pmf;
use apx_gates::Netlist;

/// Relative widening applied to both ends of the bracket to absorb
/// floating-point accumulation differences between this analysis and the
/// exhaustive evaluator (each side's relative rounding error is below
/// `2^-31 ≈ 5e-10`; see the module-level soundness contract).
const WIDEN: f64 = 1e-9;

/// Node budget for the exact range pass ([`crate::output_ranges`]):
/// small enough that a candidate whose monolithic planes blow up (wide
/// multipliers) falls back to ternary analysis quickly, large enough to
/// admit every exhaustive-width component the re-scoring pass prunes.
const EXACT_RANGE_BUDGET: usize = 1 << 18;

/// A provable bracket on a circuit's WMED under one distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBounds {
    /// Lower bound: the true WMED is provably `>= wmed_lo`.
    pub wmed_lo: f64,
    /// Upper bound: the true WMED is provably `<= wmed_hi`.
    pub wmed_hi: f64,
}

impl ErrorBounds {
    /// Whether `wmed` lies inside the bracket.
    #[must_use]
    pub fn contains(&self, wmed: f64) -> bool {
        self.wmed_lo <= wmed && wmed <= self.wmed_hi
    }
}

/// Provable WMED bracket of `netlist` as a `width`-bit `op` instance
/// under `pmf` — see the module docs for the algorithm and its soundness
/// contract.
///
/// # Panics
///
/// Panics if `pmf.width() != width`, if the width is unsupported, or if
/// the netlist's arity contradicts the operator contract (the same
/// conditions the exhaustive evaluator rejects).
#[must_use]
pub fn wmed_bounds(
    netlist: &Netlist,
    op: Operator,
    width: u32,
    signed: bool,
    pmf: &Pmf,
) -> ErrorBounds {
    assert_eq!(pmf.width(), width, "PMF width must match the operand width");
    let weights: Vec<f64> = pmf.iter().collect();
    wmed_bounds_weighted(netlist, op, width, signed, &weights)
}

/// [`wmed_bounds`] over a raw weight table (one weight per raw operand
/// encoding) — the form the re-scoring pass already holds.
///
/// # Panics
///
/// Same contract as [`wmed_bounds`], with `weights.len() == 2^width` in
/// place of the PMF width check.
#[must_use]
pub fn wmed_bounds_weighted(
    netlist: &Netlist,
    op: Operator,
    width: u32,
    signed: bool,
    weights: &[f64],
) -> ErrorBounds {
    // The exact range pass tightens both ends when the netlist fits the
    // node budget; `None` (blown budget) keeps the pure ternary bracket.
    let ranges = output_ranges(netlist, op, width, signed, EXACT_RANGE_BUDGET);
    bounds_impl(netlist, op, width, signed, weights, ranges.as_deref())
}

/// The ternary-only bracket — [`wmed_bounds`] with the exact range pass
/// disabled. This is the documented fallback the full analysis degrades
/// to on budget exhaustion; it exists as a public entry point so the
/// cross-validation suite can assert the exact pass never *widens* a
/// bracket.
///
/// # Panics
///
/// Same contract as [`wmed_bounds`].
#[must_use]
pub fn wmed_bounds_ternary(
    netlist: &Netlist,
    op: Operator,
    width: u32,
    signed: bool,
    pmf: &Pmf,
) -> ErrorBounds {
    assert_eq!(pmf.width(), width, "PMF width must match the operand width");
    let weights: Vec<f64> = pmf.iter().collect();
    bounds_impl(netlist, op, width, signed, &weights, None)
}

/// Shared bracket computation. `ranges` (when present) holds the exact
/// biased `(min, max)` achievable output words per weighted-operand
/// value; see the module docs for why combining them with the ternary
/// candidate sets is sound and never wider.
fn bounds_impl(
    netlist: &Netlist,
    op: Operator,
    width: u32,
    signed: bool,
    weights: &[f64],
    ranges: Option<&[(u64, u64)]>,
) -> ErrorBounds {
    // Interval propagation never enumerates the free operand space, so
    // like the symbolic backend it accepts the widest evaluable range.
    assert!(
        op.supports_width(width, EvalBackend::Symbolic),
        "operand width {width} outside {op}'s evaluable range"
    );
    let ni = op.num_inputs(width);
    assert_eq!(netlist.num_inputs(), ni, "a width-{width} {op} netlist must have {ni} inputs");
    let out_bits = op.num_outputs(width) as u32;
    assert_eq!(
        netlist.num_outputs(),
        out_bits as usize,
        "a width-{width} {op} netlist must have {out_bits} outputs"
    );
    assert_eq!(weights.len(), 1usize << width, "one weight per raw operand encoding");

    let free = (ni - width as usize) as u32;
    let full: u64 = (1u64 << out_bits) - 1;
    let top_bit: u64 = if signed { 1u64 << (out_bits - 1) } else { 0 };
    let mut inputs: Vec<Option<bool>> = vec![None; ni];
    let (mut lo_sum, mut hi_sum) = (0.0f64, 0.0f64);
    for (x, &weight) in weights.iter().enumerate() {
        if weight == 0.0 {
            continue;
        }
        // The weighted operand occupies enumeration bits `free..ni`,
        // which are netlist inputs `0..width` (LSB first).
        for (i, slot) in inputs.iter_mut().enumerate().take(width as usize) {
            *slot = Some((x >> i) & 1 == 1);
        }
        let vals = propagate_constants(netlist, &inputs);
        let (mut mask, mut val) = (0u64, 0u64);
        for (j, out) in netlist.outputs().iter().enumerate() {
            if let Some(bit) = vals[out.index()] {
                mask |= 1u64 << j;
                if bit {
                    val |= 1u64 << j;
                }
            }
        }
        // Move the candidate set into biased space: flipping the top bit
        // of every member either flips a fixed bit's value or permutes
        // the free combinations — a fixed-mask set either way.
        let bval = val ^ (top_bit & mask);
        let bmin = bval;
        let bmax = bval | (full & !mask);
        let exact_range = ranges.map(|r| r[x]);
        let (mut lo_acc, mut hi_acc) = (0u64, 0u64);
        for f in 0..(1u64 << free) {
            let v = ((x as u64) << free) | f;
            let exact = op.exact_value(width, signed, v);
            // Biased target: `interp(raw) + 2^(n-1) = raw ^ top_bit`, and
            // the exact value of a supported operator always fits its
            // output word, so `t` lands in `0..2^out_bits`.
            let t = (exact + top_bit as i64) as u64;
            let mut lo_term = min_dist(t, mask, bval, full);
            let mut hi_term = t.abs_diff(bmin).max(t.abs_diff(bmax));
            if let Some((amin, amax)) = exact_range {
                // The achievable set A(x) lies inside `[amin, amax]` and
                // both extremes are achieved, so the distance to the
                // interval lower-bounds `min |t - z|` and the farthest
                // endpoint is *exactly* `max |t - z|` over the hull —
                // never wider than either ternary term (A(x) ⊆ S(x)).
                let below = amin.saturating_sub(t);
                let above = t.saturating_sub(amax);
                lo_term = lo_term.max(below.max(above));
                hi_term = hi_term.min(t.abs_diff(amin).max(t.abs_diff(amax)));
            }
            lo_acc += lo_term;
            hi_acc += hi_term;
        }
        lo_sum += weight * lo_acc as f64;
        hi_sum += weight * hi_acc as f64;
    }
    let norm = 1.0 / ((1u64 << free) as f64 * (1u64 << out_bits) as f64);
    ErrorBounds {
        wmed_lo: (lo_sum * norm) * (1.0 - WIDEN),
        wmed_hi: (hi_sum * norm) * (1.0 + WIDEN),
    }
}

/// Distance from `t` to the nearest member of the fixed-mask set
/// `{z <= full : z & mask == val}` (exact, in biased/unsigned space).
fn min_dist(t: u64, mask: u64, val: u64, full: u64) -> u64 {
    if t & mask == val {
        return 0;
    }
    let up = succ_in(t, mask, val, full);
    let down = pred_in(t, mask, val, full);
    match (up, down) {
        (Some(u), Some(d)) => (u - t).min(t - d),
        (Some(u), None) => u - t,
        (None, Some(d)) => t - d,
        (None, None) => unreachable!("a fixed-mask set over a nonempty domain is nonempty"),
    }
}

/// Smallest `z >= t` with `z & mask == val` (and `z <= full`), if any.
///
/// Standard successor-in-masked-set construction: either `t` itself
/// qualifies, or the successor raises exactly one currently-zero bit `i`
/// (which must be free or fixed-to-one), keeps `t`'s bits above `i`
/// (which must already satisfy the mask there), and minimizes everything
/// below `i` (free bits to 0, fixed bits to their value). The true
/// successor is the minimum over all valid raise positions.
fn succ_in(t: u64, mask: u64, val: u64, full: u64) -> Option<u64> {
    if t & mask == val {
        return Some(t);
    }
    let mut best: Option<u64> = None;
    let mut bit = 1u64;
    while bit <= full {
        if t & bit == 0 && (mask & bit == 0 || val & bit != 0) {
            let above = full & !(bit | (bit - 1));
            if t & above & mask == val & above {
                let z = (t & above) | bit | (val & (bit - 1));
                best = Some(best.map_or(z, |b| b.min(z)));
            }
        }
        bit <<= 1;
    }
    best
}

/// Largest `z <= t` with `z & mask == val`, via the complement map
/// `z -> z ^ full`, which reverses order and sends the set onto the
/// fixed-mask set with the same mask and complemented values.
fn pred_in(t: u64, mask: u64, val: u64, full: u64) -> Option<u64> {
    succ_in(t ^ full, mask, val ^ mask, full).map(|z| z ^ full)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_mask_successor_and_predecessor_are_exact() {
        // Brute-force oracle over every (mask, val, t) of a 5-bit domain.
        let full = 31u64;
        for mask in 0..=full {
            for val in 0..=full {
                if val & !mask != 0 {
                    continue;
                }
                let members: Vec<u64> = (0..=full).filter(|z| z & mask == val).collect();
                assert!(!members.is_empty());
                for t in 0..=full {
                    let up = members.iter().copied().find(|&z| z >= t);
                    let down = members.iter().copied().rev().find(|&z| z <= t);
                    assert_eq!(succ_in(t, mask, val, full), up, "succ t={t} mask={mask} val={val}");
                    assert_eq!(
                        pred_in(t, mask, val, full),
                        down,
                        "pred t={t} mask={mask} val={val}"
                    );
                    let want = members.iter().map(|&z| t.abs_diff(z)).min().unwrap();
                    assert_eq!(min_dist(t, mask, val, full), want);
                }
            }
        }
    }

    #[test]
    fn exact_seed_lower_bound_is_zero() {
        // The exact value is always in the candidate set of an exact
        // circuit, so the lower bound must be exactly zero (the upper
        // bound stays loose: with the free operand unknown, most output
        // bits are unprovable).
        for op in Operator::ALL {
            for signed in [false, true] {
                let width = 3;
                let nl = op.seed_circuit(width, signed);
                let b = wmed_bounds(&nl, op, width, signed, &Pmf::uniform(width));
                assert_eq!(b.wmed_lo, 0.0, "{op} signed={signed}");
                assert!(b.contains(0.0));
                assert!(b.wmed_hi >= 0.0);
            }
        }
    }

    #[test]
    fn fully_determined_outputs_collapse_the_bracket() {
        // A constant-zero "multiplier": every output provably stuck, so
        // lo and hi coincide (up to the deliberate widening) at the
        // analytic WMED of the all-zero circuit.
        let width = 3u32;
        let op = Operator::Mul;
        let mut b = apx_gates::NetlistBuilder::new(op.num_inputs(width));
        let zero = b.const0();
        b.outputs(&vec![zero; op.num_outputs(width)]);
        let nl = b.finish().unwrap();
        let bounds = wmed_bounds(&nl, op, width, false, &Pmf::uniform(width));
        // WMED of the all-zero circuit: sum of weight(a) * |a*b| over the
        // full enumeration, over 2^free * 2^out_bits (weight = 1/8 each).
        let mean: f64 = (0..64u64).map(|v| op.exact_value(width, false, v) as f64).sum::<f64>()
            / 8.0
            / (8.0 * 64.0);
        assert!(bounds.wmed_lo <= mean && mean <= bounds.wmed_hi);
        assert!((bounds.wmed_hi - bounds.wmed_lo) / mean < 1e-8, "{bounds:?}");
    }

    #[test]
    #[should_panic(expected = "must have 8 inputs")]
    fn arity_mismatch_is_rejected() {
        let nl = apx_arith::ripple_carry_adder(3);
        let _ = wmed_bounds(&nl, Operator::Mul, 4, false, &Pmf::uniform(4));
    }

    #[test]
    #[should_panic(expected = "PMF width")]
    fn pmf_width_mismatch_is_rejected() {
        let nl = apx_arith::array_multiplier(4);
        let _ = wmed_bounds(&nl, Operator::Mul, 4, false, &Pmf::uniform(5));
    }
}
