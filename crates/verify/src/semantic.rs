//! Semantic verification on ROBDD planes: equivalence proofs, canonical
//! function identity and exact output ranges.
//!
//! The structural passes of this crate answer "is this netlist
//! well-formed"; this module answers "what function does it compute",
//! using `apx_bdd` as the reasoning engine. Three capabilities:
//!
//! 1. **Equivalence checking** ([`prove_equiv`]): both netlists compile
//!    to per-output-bit BDD planes under one shared manager; canonicity
//!    makes node-id equality *function* equality, so the comparison is a
//!    constant-time id check per output. Inequality yields a concrete
//!    counterexample input ([`Equiv::Differs`]); diagrams that outgrow
//!    the node budget degrade to [`Equiv::Unknown`] instead of blowing
//!    up (multiplier BDDs are exponential in operand width under any
//!    variable order).
//! 2. **Canonical functional digest** ([`functional_digest`]): a hash of
//!    the canonically renumbered plane subgraph under the fixed input-
//!    index variable order. Two netlists get the same digest iff they
//!    compute the same output function vector — invariant under wiring
//!    permutation, dead nodes and any gate-level restructuring. The
//!    component library's `dedup_semantic` stage and the cache GC's
//!    equivalence-class collapse key on it.
//! 3. **Exact output ranges** ([`output_ranges`]): per weighted-operand
//!    value, the exact min/max achievable output word via greedy max-sat
//!    descent over the restricted planes — the tightening the WMED
//!    bracket pass ([`crate::wmed_bounds`]) substitutes for its ternary
//!    candidate sets when the netlist fits the budget.
//!
//! [`prove_seed`] closes the loop on the generators themselves: every
//! [`Operator::seed_circuit`] is proved equivalent to an *independent*
//! plane-arithmetic rendering of the reference function (ripple/shift-add
//! directly on BDD planes, not on `apx_arith` gate structures). To stay
//! tractable at symbolic-only widths it pins each weighted-operand value
//! and proves the `2^width` residual cofactors separately — constant ×
//! operand planes stay polynomial where the monolithic multiplier
//! diagram explodes.
//!
//! # Budget semantics
//!
//! Every entry point takes (or defaults) a node budget checked between
//! gate applications. Exceeding it returns `Unknown`/`None` — never a
//! wrong answer. Callers treat that as "fall back to the structural /
//! ternary result", so the budget only trades precision, never
//! soundness.

use crate::fnv_u128;
use apx_arith::{EvalBackend, Operator};
use apx_bdd::{Bdd, NodeId, FALSE};
use apx_gates::{GateKind, Netlist};
use std::fmt::Write as _;

/// Default node budget for semantic analyses: comfortably admits every
/// exhaustive-width component (a 10-bit array multiplier's monolithic
/// planes stay well under it) while bounding wide-width blowups to a few
/// tens of megabytes before degrading to `Unknown`.
pub const SEMANTIC_NODE_BUDGET: usize = 1 << 21;

/// Verdict of an equivalence proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equiv {
    /// The two netlists compute identical output function vectors.
    Equal,
    /// The netlists differ; `witness` is one input assignment (netlist
    /// input order) on which their outputs disagree.
    Differs {
        /// Counterexample input assignment, one `bool` per netlist input.
        witness: Vec<bool>,
    },
    /// The proof outgrew the node budget before completing — no verdict.
    Unknown {
        /// The budget (in BDD nodes) that was exhausted.
        budget: usize,
    },
}

/// One gate as a BDD apply: the 4-bit truth table comes straight from
/// the gate's boolean semantics (same derivation as the symbolic
/// evaluator's interpreter).
fn apply_gate(bdd: &mut Bdd, kind: GateKind, a: NodeId, b: NodeId) -> NodeId {
    let mut tt = 0u8;
    for (bit, (va, vb)) in
        [(false, false), (false, true), (true, false), (true, true)].into_iter().enumerate()
    {
        tt |= u8::from(kind.eval_bool(va, vb)) << bit;
    }
    bdd.apply(a, b, tt)
}

/// Compiles `nl` to output planes given one BDD function per primary
/// input, checking the node budget between gates. `None` = budget
/// exhausted.
fn netlist_planes(
    bdd: &mut Bdd,
    nl: &Netlist,
    inputs: &[NodeId],
    budget: usize,
) -> Option<Vec<NodeId>> {
    debug_assert_eq!(inputs.len(), nl.num_inputs());
    let mut vals: Vec<NodeId> = Vec::with_capacity(nl.num_signals());
    vals.extend_from_slice(inputs);
    for node in nl.nodes() {
        if bdd.num_nodes() > budget {
            return None;
        }
        let a = vals[node.a.index()];
        let b = vals[node.b.index()];
        vals.push(apply_gate(bdd, node.kind, a, b));
    }
    if bdd.num_nodes() > budget {
        return None;
    }
    Some(nl.outputs().iter().map(|o| vals[o.index()]).collect())
}

/// Asserts the arity half of the component contract — the same
/// preconditions the bounds pass and the evaluator enforce.
fn assert_component_arity(nl: &Netlist, op: Operator, width: u32, role: &str) {
    assert!(
        op.supports_width(width, EvalBackend::Symbolic),
        "operand width {width} outside {op}'s evaluable range"
    );
    let ni = op.num_inputs(width);
    assert_eq!(nl.num_inputs(), ni, "{role}: a width-{width} {op} netlist must have {ni} inputs");
    let no = op.num_outputs(width);
    assert_eq!(nl.num_outputs(), no, "{role}: a width-{width} {op} netlist must have {no} outputs");
}

/// Proves or refutes functional equivalence of two `width`-bit `op`
/// netlists under the default [`SEMANTIC_NODE_BUDGET`].
///
/// # Panics
///
/// Panics if `width` is unsupported or either netlist's arity
/// contradicts the operator contract.
#[must_use]
pub fn prove_equiv(a: &Netlist, b: &Netlist, op: Operator, width: u32) -> Equiv {
    prove_equiv_with_budget(a, b, op, width, SEMANTIC_NODE_BUDGET)
}

/// [`prove_equiv`] under an explicit node budget.
///
/// Both netlists compile into *one* manager over the shared input
/// variables (variable `i` = netlist input `i`), so ROBDD canonicity
/// reduces the miter to an id comparison per output plane; a genuine
/// difference XORs the first differing planes and extracts a model as
/// the counterexample.
///
/// # Panics
///
/// Same contract as [`prove_equiv`].
#[must_use]
pub fn prove_equiv_with_budget(
    a: &Netlist,
    b: &Netlist,
    op: Operator,
    width: u32,
    budget: usize,
) -> Equiv {
    assert_component_arity(a, op, width, "left operand");
    assert_component_arity(b, op, width, "right operand");
    let ni = op.num_inputs(width);
    let mut bdd = Bdd::new(ni as u32);
    let vars: Vec<NodeId> = (0..ni).map(|i| bdd.var(i as u32)).collect();
    let Some(pa) = netlist_planes(&mut bdd, a, &vars, budget) else {
        return Equiv::Unknown { budget };
    };
    let Some(pb) = netlist_planes(&mut bdd, b, &vars, budget) else {
        return Equiv::Unknown { budget };
    };
    for (&fa, &fb) in pa.iter().zip(&pb) {
        if fa != fb {
            let miter = bdd.xor(fa, fb);
            let witness =
                bdd.some_model(miter).expect("distinct canonical planes differ somewhere");
            return Equiv::Differs { witness };
        }
    }
    Equiv::Equal
}

/// Canonical 128-bit digest of the *function* a netlist computes, under
/// the default [`SEMANTIC_NODE_BUDGET`] — see
/// [`functional_digest_with_budget`].
#[must_use]
pub fn functional_digest(nl: &Netlist) -> Option<u128> {
    functional_digest_with_budget(nl, SEMANTIC_NODE_BUDGET)
}

/// Canonical 128-bit digest of the function `nl` computes: the hash of
/// its canonically renumbered output-plane subgraph under the fixed
/// input-index variable order ([`Bdd::export_planes`]).
///
/// Canonicity argument: the ROBDD of each output bit is unique for the
/// fixed variable order, and the export renumbers nodes by a
/// deterministic traversal of that unique graph — so any two netlists
/// computing the same `inputs -> outputs` function vector serialize to
/// identical bytes, regardless of wiring permutations, dead nodes or
/// gate-level restructuring. Distinct functions differ in at least one
/// plane graph, so collisions are only those of the 128-bit hash itself.
///
/// Returns `None` when the planes outgrow `budget` (or the input count
/// exceeds the manager's variable cap) — callers fall back to structural
/// identity, which is strictly finer and therefore still sound for
/// dedup.
#[must_use]
pub fn functional_digest_with_budget(nl: &Netlist, budget: usize) -> Option<u128> {
    let ni = nl.num_inputs();
    if ni as u32 > apx_bdd::MAX_VARS {
        return None;
    }
    let mut bdd = Bdd::new(ni as u32);
    let vars: Vec<NodeId> = (0..ni).map(|i| bdd.var(i as u32)).collect();
    let planes = netlist_planes(&mut bdd, nl, &vars, budget)?;
    let (triples, roots) = bdd.export_planes(&planes);
    let mut canonical = String::new();
    let _ = write!(canonical, "fd {ni} {}", roots.len());
    for (var, lo, hi) in &triples {
        let _ = write!(canonical, " {var}:{lo}:{hi}");
    }
    for r in &roots {
        let _ = write!(canonical, " r{r}");
    }
    Some(fnv_u128(&canonical))
}

/// Exact per-weighted-operand output ranges of a `width`-bit `op`
/// netlist, in **biased** output space (`raw ^ top_bit` when `signed` —
/// the order-isomorphic encoding the WMED bracket pass compares in).
///
/// Entry `x` of the result is `(min, max)`: the exact extreme biased
/// output words achievable when the weighted operand is pinned to raw
/// encoding `x` and the remaining inputs range freely. Both extremes are
/// *achieved* by some free assignment, so `[min, max]` is the exact
/// interval hull of the achievable output set.
///
/// Returns `None` when the monolithic planes outgrow `budget` — the
/// caller keeps its ternary candidate sets.
///
/// # Panics
///
/// Panics if `width` is unsupported or the netlist's arity contradicts
/// the operator contract.
#[must_use]
pub fn output_ranges(
    nl: &Netlist,
    op: Operator,
    width: u32,
    signed: bool,
    budget: usize,
) -> Option<Vec<(u64, u64)>> {
    assert_component_arity(nl, op, width, "range analysis");
    let ni = op.num_inputs(width);
    if ni as u32 > apx_bdd::MAX_VARS {
        return None;
    }
    let mut bdd = Bdd::new(ni as u32);
    let vars: Vec<NodeId> = (0..ni).map(|i| bdd.var(i as u32)).collect();
    let mut planes = netlist_planes(&mut bdd, nl, &vars, budget)?;
    if signed {
        // Bias the top plane: `raw ^ top_bit` complements the sign bit.
        let top = planes.len() - 1;
        planes[top] = bdd.not(planes[top]);
    }
    let mut ranges = Vec::with_capacity(1 << width);
    for x in 0..(1u64 << width) {
        // The weighted operand is netlist inputs `0..width` — the
        // root-most variables, so a plain descend pins them.
        let restricted: Vec<NodeId> =
            planes.iter().map(|&p| bdd.descend(p, width, |v| (x >> v) & 1 == 1)).collect();
        let min = bdd.min_value(&restricted);
        let max = bdd.max_value(&restricted);
        ranges.push((min, max));
        if bdd.num_nodes() > budget {
            return None;
        }
    }
    Some(ranges)
}

/// Little-endian ripple addition of two equal-length plane vectors,
/// modulo `2^n` (the final carry is dropped).
fn ripple_add_mod(bdd: &mut Bdd, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    debug_assert_eq!(a.len(), b.len());
    let mut carry = FALSE;
    let mut sum = Vec::with_capacity(a.len());
    for (&pa, &pb) in a.iter().zip(b) {
        let axb = bdd.xor(pa, pb);
        sum.push(bdd.xor(axb, carry));
        let gen = bdd.and(pa, pb);
        let prop = bdd.and(axb, carry);
        carry = bdd.or(gen, prop);
    }
    sum
}

/// Extends a plane vector to `n` planes: sign-extension (repeat the top
/// plane) when `signed`, zero-extension otherwise.
fn extend(planes: &[NodeId], n: usize, signed: bool) -> Vec<NodeId> {
    let mut v = planes.to_vec();
    let pad = if signed { *v.last().expect("operands have at least one bit") } else { FALSE };
    v.resize(n, pad);
    v
}

/// `a * b` as `n` output planes, modulo `2^n`: both operands are
/// sign/zero-extended to `n` bits and shift-added row by row — the
/// two's-complement identity `(a * b) mod 2^n = (a_ext * b_ext) mod 2^n`
/// makes one code path serve both signednesses.
fn mul_planes(bdd: &mut Bdd, a: &[NodeId], b: &[NodeId], n: usize, signed: bool) -> Vec<NodeId> {
    let aext = extend(a, n, signed);
    let bext = extend(b, n, signed);
    let mut acc = vec![FALSE; n];
    for (j, &bj) in bext.iter().enumerate() {
        if bj == FALSE {
            continue;
        }
        let row: Vec<NodeId> =
            (0..n).map(|k| if k < j { FALSE } else { bdd.and(aext[k - j], bj) }).collect();
        acc = ripple_add_mod(bdd, &acc, &row);
    }
    acc
}

/// The reference function of a `width`-bit `op` instance rendered
/// directly as plane arithmetic over the given input planes (netlist
/// input layout: `a` in `0..w`, `b` in `w..2w`, `acc` above for MAC).
///
/// This is deliberately *not* built from `apx_arith` netlists — ripple
/// and shift-add on planes is an independent rendering of
/// [`Operator::exact_value`], so proving a seed circuit against it is a
/// genuine cross-implementation check.
fn reference_planes(
    bdd: &mut Bdd,
    op: Operator,
    width: u32,
    signed: bool,
    inputs: &[NodeId],
) -> Vec<NodeId> {
    let w = width as usize;
    let (a, rest) = inputs.split_at(w);
    match op {
        Operator::Mul => mul_planes(bdd, a, rest, 2 * w, signed),
        Operator::Add => {
            let n = w + 1;
            let aext = extend(a, n, signed);
            let bext = extend(rest, n, signed);
            ripple_add_mod(bdd, &aext, &bext)
        }
        Operator::Mac => {
            let n = op.acc_width(width) as usize;
            let (b, acc) = rest.split_at(w);
            let prod = mul_planes(bdd, a, b, n, signed);
            ripple_add_mod(bdd, &prod, acc)
        }
    }
}

/// Statically proves `op.seed_circuit(width, signed)` equivalent to the
/// reference function under the default [`SEMANTIC_NODE_BUDGET`].
#[must_use]
pub fn prove_seed(op: Operator, width: u32, signed: bool) -> Equiv {
    prove_seed_with_budget(op, width, signed, SEMANTIC_NODE_BUDGET)
}

/// [`prove_seed`] under an explicit node budget.
///
/// The proof pins each weighted-operand value `x` and compares the seed
/// circuit's cofactor planes to the reference cofactor (constant ×
/// operand), clearing the manager between values. Monolithic multiplier
/// diagrams are exponential in `width` under any variable order;
/// constant-times-operand cofactors stay polynomial, so this covers the
/// full symbolic width range the seeds are used at — `2^width` small
/// proofs instead of one intractable one. Equivalence of every cofactor
/// is equivalence of the functions.
///
/// # Panics
///
/// Panics if `width` is outside the operator's symbolic range.
#[must_use]
pub fn prove_seed_with_budget(op: Operator, width: u32, signed: bool, budget: usize) -> Equiv {
    assert!(
        op.supports_width(width, EvalBackend::Symbolic),
        "operand width {width} outside {op}'s evaluable range"
    );
    let seed = op.seed_circuit(width, signed);
    let ni = op.num_inputs(width);
    let w = width as usize;
    let free = ni - w;
    let mut bdd = Bdd::new(free as u32);
    for x in 0..(1u64 << width) {
        bdd.clear();
        let inputs: Vec<NodeId> = (0..ni)
            .map(|i| if i < w { Bdd::constant((x >> i) & 1 == 1) } else { bdd.var((i - w) as u32) })
            .collect();
        let Some(planes) = netlist_planes(&mut bdd, &seed, &inputs, budget) else {
            return Equiv::Unknown { budget };
        };
        let reference = reference_planes(&mut bdd, op, width, signed, &inputs);
        if bdd.num_nodes() > budget {
            return Equiv::Unknown { budget };
        }
        for (&fs, &fr) in planes.iter().zip(&reference) {
            if fs != fr {
                let miter = bdd.xor(fs, fr);
                let model =
                    bdd.some_model(miter).expect("distinct canonical planes differ somewhere");
                let witness =
                    (0..ni).map(|i| if i < w { (x >> i) & 1 == 1 } else { model[i - w] }).collect();
                return Equiv::Differs { witness };
            }
        }
    }
    Equiv::Equal
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rebuilds a netlist with its gate list re-derived through
    /// `compact()` plus `extra` dead XOR gates appended — same function,
    /// different structure.
    fn with_dead_padding(nl: &Netlist, extra: usize) -> Netlist {
        let ni = nl.num_inputs();
        let mut nodes = nl.nodes().to_vec();
        for k in 0..extra {
            let a = apx_gates::SignalId((k % ni) as u32);
            nodes.push(apx_gates::Node { kind: GateKind::Xor, a, b: a });
        }
        Netlist::new(ni, nodes, nl.outputs().to_vec()).expect("padding preserves validity")
    }

    #[test]
    fn seed_is_equivalent_to_itself_and_to_its_padded_form() {
        for op in Operator::ALL {
            let nl = op.seed_circuit(3, false);
            assert_eq!(prove_equiv(&nl, &nl, op, 3), Equiv::Equal);
            let padded = with_dead_padding(&nl, 7);
            assert_eq!(prove_equiv(&nl, &padded, op, 3), Equiv::Equal, "{op}");
            assert_eq!(functional_digest(&nl), functional_digest(&padded), "{op}");
        }
    }

    #[test]
    fn differs_returns_a_genuine_counterexample() {
        let op = Operator::Add;
        let width = 4u32;
        let exact = op.seed_circuit(width, false);
        let mut outputs = exact.outputs().to_vec();
        // Truncate the LSB to a constant: differs on any odd-sum input.
        let mut nodes = exact.nodes().to_vec();
        let zero = apx_gates::SignalId((exact.num_inputs() + nodes.len()) as u32);
        nodes.push(apx_gates::Node {
            kind: GateKind::Const0,
            a: apx_gates::SignalId(0),
            b: apx_gates::SignalId(0),
        });
        outputs[0] = zero;
        let broken = Netlist::new(exact.num_inputs(), nodes, outputs).unwrap();
        match prove_equiv(&exact, &broken, op, width) {
            Equiv::Differs { witness } => {
                assert_ne!(exact.eval_bool(&witness), broken.eval_bool(&witness));
            }
            other => panic!("expected Differs, got {other:?}"),
        }
        assert_ne!(functional_digest(&exact), functional_digest(&broken));
    }

    #[test]
    fn budget_exhaustion_degrades_to_unknown() {
        let op = Operator::Mul;
        let nl = op.seed_circuit(4, false);
        assert_eq!(prove_equiv_with_budget(&nl, &nl, op, 4, 8), Equiv::Unknown { budget: 8 });
        assert_eq!(functional_digest_with_budget(&nl, 8), None);
        assert_eq!(output_ranges(&nl, op, 4, false, 8), None);
        assert_eq!(prove_seed_with_budget(op, 4, false, 8), Equiv::Unknown { budget: 8 });
    }

    #[test]
    fn output_ranges_match_enumeration() {
        for op in Operator::ALL {
            for signed in [false, true] {
                let width = 2u32;
                let nl = op.seed_circuit(width, signed);
                let ni = op.num_inputs(width);
                let out_bits = op.num_outputs(width) as u32;
                let top = if signed { 1u64 << (out_bits - 1) } else { 0 };
                let ranges = output_ranges(&nl, op, width, signed, SEMANTIC_NODE_BUDGET).unwrap();
                let free = ni - width as usize;
                for (x, &(min, max)) in ranges.iter().enumerate() {
                    let mut want_min = u64::MAX;
                    let mut want_max = 0u64;
                    for f in 0..(1u64 << free) {
                        let mut assign = vec![false; ni];
                        for (i, slot) in assign.iter_mut().enumerate().take(width as usize) {
                            *slot = (x >> i) & 1 == 1;
                        }
                        for (i, slot) in assign.iter_mut().enumerate().skip(width as usize) {
                            *slot = (f >> (i - width as usize)) & 1 == 1;
                        }
                        let out = nl.eval_bool(&assign);
                        let raw: u64 =
                            out.iter().enumerate().map(|(j, &b)| u64::from(b) << j).sum();
                        let biased = raw ^ top;
                        want_min = want_min.min(biased);
                        want_max = want_max.max(biased);
                    }
                    assert_eq!((min, max), (want_min, want_max), "{op} signed={signed} x={x}");
                }
            }
        }
    }

    #[test]
    fn every_seed_proves_at_small_widths() {
        for op in Operator::ALL {
            for signed in [false, true] {
                for width in 1..=3u32 {
                    assert_eq!(
                        prove_seed(op, width, signed),
                        Equiv::Equal,
                        "{op} w={width} signed={signed}"
                    );
                }
            }
        }
    }
}
