//! Plain-text chromosome serialization.
//!
//! A deliberately simple line-oriented format (no external dependencies)
//! so evolved circuits can be checked into a repository and reloaded:
//!
//! ```text
//! cgp 16 16 490
//! funcs buf not and nand or nor xor xnor
//! genes 0 1 2 0 2 4 …
//! ```

use crate::{CgpError, Chromosome, FunctionSet};
use apx_gates::GateKind;
use std::fmt::Write as _;

impl Chromosome {
    /// Serializes the chromosome to the textual `.cgp` format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "cgp {} {} {}", self.num_inputs(), self.num_outputs(), self.cols());
        let names: Vec<&str> = self.function_set().iter().map(apx_gates::GateKind::name).collect();
        let _ = writeln!(s, "funcs {}", names.join(" "));
        let genes: Vec<String> = self.genes().iter().map(u32::to_string).collect();
        let _ = writeln!(s, "genes {}", genes.join(" "));
        s
    }

    /// Parses a chromosome from the textual `.cgp` format.
    ///
    /// # Errors
    ///
    /// Returns [`CgpError::Parse`] on any structural problem and validates
    /// the gene string against the CGP legality rules.
    pub fn from_text(text: &str) -> Result<Self, CgpError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or_else(|| parse_err("missing header"))?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("cgp") {
            return Err(parse_err("header must start with `cgp`"));
        }
        let ni: usize = next_num(&mut parts, "ni")?;
        let no: usize = next_num(&mut parts, "no")?;
        let cols: usize = next_num(&mut parts, "cols")?;
        if ni == 0 || no == 0 || cols == 0 {
            return Err(parse_err("dimensions must be positive"));
        }

        let funcs_line = lines.next().ok_or_else(|| parse_err("missing funcs line"))?;
        let mut fparts = funcs_line.split_whitespace();
        if fparts.next() != Some("funcs") {
            return Err(parse_err("second line must start with `funcs`"));
        }
        let kinds: Result<Vec<GateKind>, _> = fparts.map(str::parse).collect();
        let kinds = kinds.map_err(|e| parse_err(&e.to_string()))?;
        let funcs = FunctionSet::new(kinds)?;

        let genes_line = lines.next().ok_or_else(|| parse_err("missing genes line"))?;
        let mut gparts = genes_line.split_whitespace();
        if gparts.next() != Some("genes") {
            return Err(parse_err("third line must start with `genes`"));
        }
        let genes: Result<Vec<u32>, _> = gparts.map(str::parse).collect();
        let genes = genes.map_err(|e| parse_err(&format!("bad gene: {e}")))?;
        let expected = 3 * cols + no;
        if genes.len() != expected {
            return Err(parse_err(&format!("expected {expected} genes, found {}", genes.len())));
        }
        // Anything after the three sections is not ours: a fourth
        // non-empty line means the caller handed us a concatenation or a
        // corrupt container (e.g. a damaged sweep-cache entry), and
        // silently ignoring it would mask the damage.
        if let Some(extra) = lines.next() {
            return Err(parse_err(&format!("unexpected trailing content: {extra:?}")));
        }
        let chrom = Chromosome::from_parts(ni, no, cols, funcs, genes);
        if !chrom.is_valid() {
            return Err(parse_err("gene values violate CGP legality rules"));
        }
        Ok(chrom)
    }
}

fn parse_err(msg: &str) -> CgpError {
    CgpError::Parse(msg.to_owned())
}

fn next_num<'a, I: Iterator<Item = &'a str>>(iter: &mut I, what: &str) -> Result<usize, CgpError> {
    iter.next()
        .ok_or_else(|| parse_err(&format!("missing {what}")))?
        .parse()
        .map_err(|_| parse_err(&format!("invalid {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_arith::array_multiplier;
    use apx_gates::Exhaustive;
    use apx_rng::Xoshiro256;

    #[test]
    fn round_trip_preserves_everything() {
        let nl = array_multiplier(3);
        let chrom =
            Chromosome::from_netlist(&nl, &FunctionSet::standard(), nl.gate_count() + 20).unwrap();
        let text = chrom.to_text();
        let back = Chromosome::from_text(&text).unwrap();
        assert_eq!(chrom, back);
        let ex = Exhaustive::new(6);
        assert_eq!(ex.output_table(&chrom.decode_active()), ex.output_table(&back.decode_active()));
    }

    #[test]
    fn round_trip_random_chromosomes() {
        let mut rng = Xoshiro256::from_seed(31);
        for _ in 0..20 {
            let c = Chromosome::random(5, 4, 30, &FunctionSet::extended(), &mut rng);
            assert_eq!(Chromosome::from_text(&c.to_text()).unwrap(), c);
        }
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(Chromosome::from_text("").is_err());
        assert!(Chromosome::from_text("bogus 1 2 3").is_err());
        assert!(Chromosome::from_text("cgp 2 1 1\nfuncs and\ngenes 0 1").is_err());
        assert!(Chromosome::from_text("cgp 2 1 1\nfuncs banana\ngenes 0 1 0 0").is_err());
        // Out-of-bound gene (node 0 may only reference inputs 0..2).
        assert!(Chromosome::from_text("cgp 2 1 1\nfuncs and\ngenes 5 0 0 2").is_err());
        // Zero dimensions.
        assert!(Chromosome::from_text("cgp 0 1 1\nfuncs and\ngenes 0 0 0 0").is_err());
        // Trailing content (two concatenated chromosomes, stray line).
        let valid = "cgp 2 1 1\nfuncs and\ngenes 0 1 0 2\n";
        assert!(Chromosome::from_text(valid).is_ok());
        assert!(Chromosome::from_text(&format!("{valid}{valid}")).is_err());
        assert!(Chromosome::from_text(&format!("{valid}junk")).is_err());
    }

    #[test]
    fn accepts_valid_hand_written_text() {
        // 2 inputs, 1 output, 1 node: and(in0, in1) -> out = node.
        let c = Chromosome::from_text("cgp 2 1 1\nfuncs and\ngenes 0 1 0 2").unwrap();
        let nl = c.decode_active();
        assert_eq!(nl.eval_bool(&[true, true]), vec![true]);
        assert_eq!(nl.eval_bool(&[true, false]), vec![false]);
    }
}
