//! The CGP node function set Γ.

use crate::CgpError;
use apx_gates::GateKind;

/// An ordered set of gate kinds available to CGP nodes.
///
/// The gene value of a node's function is an index into this set, so the
/// set's order is part of the chromosome encoding (chromosomes serialized
/// with one set must be deserialized with the same set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionSet {
    kinds: Vec<GateKind>,
}

impl FunctionSet {
    /// The paper's Γ: all standard one/two-input gates
    /// (buffer, inverter, AND, NAND, OR, NOR, XOR, XNOR).
    #[must_use]
    pub fn standard() -> Self {
        FunctionSet {
            kinds: vec![
                GateKind::Buf,
                GateKind::Not,
                GateKind::And,
                GateKind::Nand,
                GateKind::Or,
                GateKind::Nor,
                GateKind::Xor,
                GateKind::Xnor,
            ],
        }
    }

    /// Extended set additionally containing constants and the asymmetric
    /// inhibition/implication gates.
    #[must_use]
    pub fn extended() -> Self {
        FunctionSet { kinds: GateKind::ALL.to_vec() }
    }

    /// A custom set.
    ///
    /// # Errors
    ///
    /// Returns [`CgpError::EmptyFunctionSet`] if `kinds` is empty.
    /// Duplicates are removed, keeping first occurrences.
    pub fn new(kinds: Vec<GateKind>) -> Result<Self, CgpError> {
        let mut seen = Vec::new();
        for k in kinds {
            if !seen.contains(&k) {
                seen.push(k);
            }
        }
        if seen.is_empty() {
            return Err(CgpError::EmptyFunctionSet);
        }
        Ok(FunctionSet { kinds: seen })
    }

    /// Number of functions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the set is empty (never true for constructed sets).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Gate kind at gene value `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[must_use]
    pub fn kind(&self, index: usize) -> GateKind {
        self.kinds[index]
    }

    /// Gene value of `kind`, if present.
    #[must_use]
    pub fn index_of(&self, kind: GateKind) -> Option<usize> {
        self.kinds.iter().position(|&k| k == kind)
    }

    /// Iterates over the kinds in gene order.
    pub fn iter(&self) -> impl Iterator<Item = GateKind> + '_ {
        self.kinds.iter().copied()
    }
}

impl Default for FunctionSet {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_set_has_eight_gates() {
        let s = FunctionSet::standard();
        assert_eq!(s.len(), 8);
        assert_eq!(s.index_of(GateKind::And), Some(2));
        assert_eq!(s.kind(2), GateKind::And);
        assert_eq!(s.index_of(GateKind::Const0), None);
    }

    #[test]
    fn extended_covers_all() {
        let s = FunctionSet::extended();
        for kind in GateKind::ALL {
            assert!(s.index_of(kind).is_some(), "{kind}");
        }
    }

    #[test]
    fn custom_set_dedups() {
        let s = FunctionSet::new(vec![GateKind::And, GateKind::And, GateKind::Or]).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn empty_set_is_rejected() {
        assert_eq!(FunctionSet::new(vec![]), Err(CgpError::EmptyFunctionSet));
    }
}
