//! Cartesian Genetic Programming (CGP) for circuit approximation.
//!
//! Implements the representation and search algorithm of the paper's
//! §III-B/C:
//!
//! * [`Chromosome`] — the integer-string encoding of a combinational
//!   circuit on a `1 × c` grid of two-input nodes (`r = 1`, `n_a = 2`,
//!   unlimited levels-back), including redundant (inactive) genes that
//!   enable neutral genetic drift;
//! * [`FunctionSet`] — the node function set Γ ("all standard two-input
//!   gates" in the paper's experiments);
//! * [`mutate`] — point mutation of up to `h` randomly selected genes;
//! * [`evolve`] — the `(1 + λ)` evolution strategy with optional parallel
//!   offspring evaluation and neutral-drift parent replacement;
//! * [`evolve_seeded`] — the same strategy warm-started from a set of
//!   candidate chromosomes (e.g. a component library re-scored under a
//!   new data distribution): the best of seed-parent-plus-seeds becomes
//!   the initial parent.
//!
//! The fitness function is supplied by the caller (the paper's Eq. 1 lives
//! in `apx-core`), so this crate stays application-agnostic.
//!
//! # Examples
//!
//! Seed CGP with an exact 2-bit multiplier and (trivially) re-evolve it:
//!
//! ```
//! use apx_cgp::{Chromosome, EvolutionConfig, FunctionSet, evolve};
//!
//! let seed_netlist = apx_arith::array_multiplier(2);
//! let seed = Chromosome::from_netlist(&seed_netlist, &FunctionSet::standard(), 20)?;
//! let result = evolve(
//!     &seed,
//!     |c: &Chromosome| c.decode_active().active_gate_count() as f64,
//!     &EvolutionConfig { max_iterations: 50, ..EvolutionConfig::default() },
//! );
//! assert!(result.best_fitness <= seed.decode_active().active_gate_count() as f64);
//! # Ok::<(), apx_cgp::CgpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod function_set;
mod genome;
mod mutation;
mod search;
mod serialize;

pub use error::CgpError;
pub use function_set::FunctionSet;
pub use genome::Chromosome;
pub use mutation::mutate;
pub use search::{evolve, evolve_seeded, EvolutionConfig, EvolutionResult, FitnessFn};
