//! The CGP chromosome: an integer-string circuit encoding.

use crate::{CgpError, FunctionSet};
use apx_gates::{Netlist, NetlistBuilder, Node, SignalId};
use apx_rng::Xoshiro256;

/// A CGP chromosome on a `1 × cols` grid (`r = 1`, `n_a = 2`).
///
/// The genotype is `S = cols · 3 + n_o` integers (paper §III-B): each node
/// holds two connection genes and one function gene, followed by one gene
/// per primary output. Connection genes address primary inputs
/// (`0 .. n_i`) or earlier nodes (`n_i + k`), so feedback is
/// unrepresentable by construction. Nodes not reachable from the outputs
/// are *inactive* — they are carried along and mutated (neutral drift) but
/// cost nothing in hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chromosome {
    ni: usize,
    no: usize,
    cols: usize,
    funcs: FunctionSet,
    /// Layout: `[a_0, b_0, f_0, a_1, b_1, f_1, …, out_0, …, out_{no-1}]`.
    genes: Vec<u32>,
}

impl Chromosome {
    /// Encodes a seed netlist onto a grid with `cols` columns.
    ///
    /// The netlist's gates occupy the first columns; remaining columns are
    /// filled with inactive buffer nodes reading input 0, providing the
    /// spare genetic material CGP needs (the paper sizes `c` at 320–490
    /// for the 8-bit multiplier seeds).
    ///
    /// # Errors
    ///
    /// * [`CgpError::GridTooSmall`] if `cols < netlist.gate_count()`;
    /// * [`CgpError::UnsupportedGate`] if a gate kind is not in `funcs`.
    pub fn from_netlist(
        netlist: &Netlist,
        funcs: &FunctionSet,
        cols: usize,
    ) -> Result<Self, CgpError> {
        if cols < netlist.gate_count() {
            return Err(CgpError::GridTooSmall { needed: netlist.gate_count(), cols });
        }
        let ni = netlist.num_inputs();
        let no = netlist.num_outputs();
        let mut genes = Vec::with_capacity(cols * 3 + no);
        for node in netlist.nodes() {
            let f = funcs.index_of(node.kind).ok_or(CgpError::UnsupportedGate(node.kind))?;
            genes.push(node.a.0);
            genes.push(node.b.0);
            genes.push(f as u32);
        }
        // Pad with inactive buffers of input 0 (or the first available
        // function if the set lacks Buf).
        let pad_func = funcs.index_of(apx_gates::GateKind::Buf).unwrap_or(0) as u32;
        for _ in netlist.gate_count()..cols {
            genes.push(0);
            genes.push(0);
            genes.push(pad_func);
        }
        for out in netlist.outputs() {
            genes.push(out.0);
        }
        Ok(Chromosome { ni, no, cols, funcs: funcs.clone(), genes })
    }

    /// A uniformly random chromosome (used by tests and restarts).
    ///
    /// # Panics
    ///
    /// Panics if `ni == 0`, `no == 0` or `cols == 0`.
    #[must_use]
    pub fn random(
        ni: usize,
        no: usize,
        cols: usize,
        funcs: &FunctionSet,
        rng: &mut Xoshiro256,
    ) -> Self {
        assert!(ni > 0 && no > 0 && cols > 0, "dimensions must be positive");
        let mut genes = Vec::with_capacity(cols * 3 + no);
        for k in 0..cols {
            let limit = ni + k;
            genes.push(rng.gen_range(limit) as u32);
            genes.push(rng.gen_range(limit) as u32);
            genes.push(rng.gen_range(funcs.len()) as u32);
        }
        for _ in 0..no {
            genes.push(rng.gen_range(ni + cols) as u32);
        }
        Chromosome { ni, no, cols, funcs: funcs.clone(), genes }
    }

    /// Assembles a chromosome from raw parts (internal; used by the text
    /// parser, which validates afterwards).
    pub(crate) fn from_parts(
        ni: usize,
        no: usize,
        cols: usize,
        funcs: FunctionSet,
        genes: Vec<u32>,
    ) -> Self {
        Chromosome { ni, no, cols, funcs, genes }
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.ni
    }

    /// Number of primary outputs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.no
    }

    /// Number of grid columns (= candidate nodes).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The function set this chromosome is encoded against.
    #[must_use]
    pub fn function_set(&self) -> &FunctionSet {
        &self.funcs
    }

    /// Raw genes (node triples followed by output genes).
    #[must_use]
    pub fn genes(&self) -> &[u32] {
        &self.genes
    }

    /// Total gene count `S = 3·cols + no`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.genes.len()
    }

    /// Whether the chromosome has no genes (never true once constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.genes.is_empty()
    }

    pub(crate) fn genes_mut(&mut self) -> &mut [u32] {
        &mut self.genes
    }

    /// Upper bound (exclusive) for the value of gene `idx`, encoding the
    /// CGP legality rule: connection genes address earlier signals only,
    /// function genes address the function set, output genes any signal.
    #[must_use]
    pub fn gene_bound(&self, idx: usize) -> u32 {
        if idx < 3 * self.cols {
            let node = idx / 3;
            match idx % 3 {
                0 | 1 => (self.ni + node) as u32,
                _ => self.funcs.len() as u32,
            }
        } else {
            (self.ni + self.cols) as u32
        }
    }

    /// Checks every gene against [`Chromosome::gene_bound`].
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.genes.iter().enumerate().all(|(i, &g)| g < self.gene_bound(i))
    }

    /// Decodes the full grid into a netlist (inactive nodes included).
    ///
    /// # Panics
    ///
    /// Panics if the chromosome is invalid (should be impossible through
    /// this crate's APIs).
    #[must_use]
    pub fn decode_full(&self) -> Netlist {
        let nodes: Vec<Node> = (0..self.cols)
            .map(|k| Node {
                kind: self.funcs.kind(self.genes[3 * k + 2] as usize),
                a: SignalId(self.genes[3 * k]),
                b: SignalId(self.genes[3 * k + 1]),
            })
            .collect();
        let outputs: Vec<SignalId> =
            self.genes[3 * self.cols..].iter().map(|&g| SignalId(g)).collect();
        Netlist::new(self.ni, nodes, outputs).expect("chromosome encodes a valid netlist")
    }

    /// Decodes only the active cone — the phenotype that is simulated,
    /// costed and eventually shipped.
    #[must_use]
    pub fn decode_active(&self) -> Netlist {
        // Mark active nodes by walking back from the outputs, then build
        // the compacted netlist directly (cheaper than decode_full +
        // compact for large, mostly dead grids).
        let ni = self.ni;
        let mut active = vec![false; ni + self.cols];
        let mut stack: Vec<usize> = Vec::new();
        for &out in &self.genes[3 * self.cols..] {
            let s = out as usize;
            if !active[s] {
                active[s] = true;
                stack.push(s);
            }
        }
        while let Some(s) = stack.pop() {
            if s < ni {
                continue;
            }
            let k = s - ni;
            let kind = self.funcs.kind(self.genes[3 * k + 2] as usize);
            let arity = kind.arity();
            if arity >= 1 {
                let a = self.genes[3 * k] as usize;
                if !active[a] {
                    active[a] = true;
                    stack.push(a);
                }
            }
            if arity >= 2 {
                let b = self.genes[3 * k + 1] as usize;
                if !active[b] {
                    active[b] = true;
                    stack.push(b);
                }
            }
        }
        let mut remap = vec![u32::MAX; ni + self.cols];
        for (i, slot) in remap.iter_mut().enumerate().take(ni) {
            *slot = i as u32;
        }
        let mut b = NetlistBuilder::new(ni);
        for k in 0..self.cols {
            let sig = ni + k;
            if !active[sig] {
                continue;
            }
            let kind = self.funcs.kind(self.genes[3 * k + 2] as usize);
            let arity = kind.arity();
            let a =
                if arity >= 1 { SignalId(remap[self.genes[3 * k] as usize]) } else { SignalId(0) };
            let bb = if arity >= 2 { SignalId(remap[self.genes[3 * k + 1] as usize]) } else { a };
            remap[sig] = b.push(kind, a, bb).0;
        }
        let outputs: Vec<SignalId> =
            self.genes[3 * self.cols..].iter().map(|&g| SignalId(remap[g as usize])).collect();
        b.outputs(&outputs);
        b.finish().expect("active decode produces a valid netlist")
    }

    /// Number of active nodes (the phenotype size).
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.decode_active().gate_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_arith::{array_multiplier, baugh_wooley_multiplier};
    use apx_gates::Exhaustive;

    fn equivalent(a: &Netlist, b: &Netlist) -> bool {
        assert_eq!(a.num_inputs(), b.num_inputs());
        let ex = Exhaustive::new(a.num_inputs());
        ex.output_table(a) == ex.output_table(b)
    }

    #[test]
    fn encode_decode_preserves_function() {
        let nl = array_multiplier(3);
        let funcs = FunctionSet::standard();
        let chrom = Chromosome::from_netlist(&nl, &funcs, nl.gate_count() + 25).unwrap();
        assert!(chrom.is_valid());
        assert!(equivalent(&nl, &chrom.decode_full()));
        assert!(equivalent(&nl, &chrom.decode_active()));
    }

    #[test]
    fn encode_decode_signed_multiplier() {
        // Baugh-Wooley uses Const1 nodes -> needs the extended set.
        let nl = baugh_wooley_multiplier(3);
        let funcs = FunctionSet::extended();
        let chrom = Chromosome::from_netlist(&nl, &funcs, nl.gate_count()).unwrap();
        assert!(equivalent(&nl, &chrom.decode_active()));
    }

    #[test]
    fn standard_set_rejects_const_gates() {
        let nl = baugh_wooley_multiplier(3);
        let err = Chromosome::from_netlist(&nl, &FunctionSet::standard(), 500).unwrap_err();
        assert!(matches!(err, CgpError::UnsupportedGate(_)));
    }

    #[test]
    fn grid_too_small_is_rejected() {
        let nl = array_multiplier(4);
        let err = Chromosome::from_netlist(&nl, &FunctionSet::standard(), 3).unwrap_err();
        assert!(matches!(err, CgpError::GridTooSmall { .. }));
    }

    #[test]
    fn padding_nodes_are_inactive() {
        let nl = array_multiplier(3);
        let funcs = FunctionSet::standard();
        let chrom = Chromosome::from_netlist(&nl, &funcs, nl.gate_count() + 100).unwrap();
        assert_eq!(chrom.cols(), nl.gate_count() + 100);
        // Active cone unchanged by padding.
        assert_eq!(chrom.decode_active().gate_count(), nl.compact().gate_count());
    }

    #[test]
    fn random_chromosomes_are_valid_and_decodable() {
        let mut rng = Xoshiro256::from_seed(5);
        let funcs = FunctionSet::extended();
        for _ in 0..50 {
            let c = Chromosome::random(4, 3, 30, &funcs, &mut rng);
            assert!(c.is_valid());
            let nl = c.decode_full();
            nl.validate().unwrap();
            let active = c.decode_active();
            assert!(equivalent(&nl, &active));
        }
    }

    #[test]
    fn gene_bounds_follow_cgp_rules() {
        let mut rng = Xoshiro256::from_seed(1);
        let c = Chromosome::random(4, 2, 10, &FunctionSet::standard(), &mut rng);
        assert_eq!(c.gene_bound(0), 4); // node 0 input: only primary inputs
        assert_eq!(c.gene_bound(2), 8); // function gene
        assert_eq!(c.gene_bound(3), 5); // node 1 input: inputs + node 0
        assert_eq!(c.gene_bound(c.len() - 1), 14); // output gene
        assert_eq!(c.len(), 32);
    }

    #[test]
    fn active_count_matches_compact() {
        let nl = array_multiplier(4);
        let chrom =
            Chromosome::from_netlist(&nl, &FunctionSet::standard(), nl.gate_count() + 50).unwrap();
        assert_eq!(chrom.active_count(), nl.compact().gate_count());
    }
}
