//! Point mutation.

use crate::Chromosome;
use apx_rng::Xoshiro256;

/// Mutates up to `h` randomly selected genes of `chromosome` in place
/// (paper §III-C: "the mutation operator randomly modifies up to `h`
/// randomly selected integers of the string").
///
/// Every mutated gene is redrawn uniformly from its legal interval, so the
/// chromosome is valid afterwards by construction. Positions are drawn
/// with replacement and a redraw may reproduce the old value — both
/// standard CGP behaviour, which is why the effective number of changed
/// genes is "up to" `h`.
///
/// # Panics
///
/// Panics if `h == 0`.
pub fn mutate(chromosome: &mut Chromosome, h: usize, rng: &mut Xoshiro256) {
    assert!(h > 0, "mutation rate h must be at least 1");
    let len = chromosome.len();
    for _ in 0..h {
        let idx = rng.gen_range(len);
        let bound = chromosome.gene_bound(idx);
        let new = rng.gen_range(bound as usize) as u32;
        chromosome.genes_mut()[idx] = new;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FunctionSet;
    use proptest::prelude::*;

    fn sample_chromosome(seed: u64) -> Chromosome {
        let mut rng = Xoshiro256::from_seed(seed);
        Chromosome::random(6, 4, 40, &FunctionSet::extended(), &mut rng)
    }

    #[test]
    fn mutation_preserves_validity() {
        let mut rng = Xoshiro256::from_seed(11);
        let mut c = sample_chromosome(1);
        for _ in 0..1000 {
            mutate(&mut c, 5, &mut rng);
            assert!(c.is_valid());
        }
    }

    #[test]
    fn mutation_changes_genes_eventually() {
        let mut rng = Xoshiro256::from_seed(12);
        let c0 = sample_chromosome(2);
        let mut c = c0.clone();
        for _ in 0..20 {
            mutate(&mut c, 5, &mut rng);
        }
        assert_ne!(c0, c, "100 gene redraws should change something");
    }

    #[test]
    fn mutated_chromosome_still_decodes() {
        let mut rng = Xoshiro256::from_seed(13);
        let mut c = sample_chromosome(3);
        for _ in 0..200 {
            mutate(&mut c, 3, &mut rng);
            let nl = c.decode_active();
            nl.validate().unwrap();
            assert_eq!(nl.num_inputs(), 6);
            assert_eq!(nl.num_outputs(), 4);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = sample_chromosome(4);
        let mut b = a.clone();
        let mut rng_a = Xoshiro256::from_seed(99);
        let mut rng_b = Xoshiro256::from_seed(99);
        mutate(&mut a, 5, &mut rng_a);
        mutate(&mut b, 5, &mut rng_b);
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn prop_mutation_always_valid(seed in 0u64..1000, h in 1usize..10) {
            let mut rng = Xoshiro256::from_seed(seed);
            let mut c = Chromosome::random(5, 3, 25, &FunctionSet::standard(), &mut rng);
            mutate(&mut c, h, &mut rng);
            prop_assert!(c.is_valid());
            c.decode_active().validate().unwrap();
        }
    }
}
