//! The `(1 + λ)` evolution strategy.

use crate::{mutate, Chromosome};
use apx_rng::Xoshiro256;

/// Parameters of a CGP run (paper defaults: `λ = 4`, `h = 5`).
#[derive(Debug, Clone, PartialEq)]
pub struct EvolutionConfig {
    /// Offspring per generation (λ).
    pub lambda: usize,
    /// Maximum genes mutated per offspring (h).
    pub mutations: usize,
    /// Generations to run.
    pub max_iterations: u64,
    /// RNG seed; equal seeds reproduce the run exactly.
    pub seed: u64,
    /// Evaluate offspring on a persistent [`apx_pool`] worker pool (λ
    /// threads, spawned once and kept alive across all generations).
    pub parallel: bool,
    /// Stop early once fitness reaches this value.
    pub target_fitness: Option<f64>,
    /// Record `(iteration, fitness)` history points on every improvement.
    pub keep_history: bool,
}

impl Default for EvolutionConfig {
    /// Paper parameters: `λ = 4`, `h = 5`, sequential evaluation.
    fn default() -> Self {
        EvolutionConfig {
            lambda: 4,
            mutations: 5,
            max_iterations: 10_000,
            seed: 0,
            parallel: false,
            target_fitness: None,
            keep_history: true,
        }
    }
}

/// Outcome of a CGP run.
#[derive(Debug, Clone)]
pub struct EvolutionResult {
    /// The best chromosome found (the final parent).
    pub best: Chromosome,
    /// Its fitness.
    pub best_fitness: f64,
    /// Generations executed.
    pub iterations: u64,
    /// Fitness evaluations spent (`1 + seeds + λ·iterations`).
    pub evaluations: u64,
    /// `(iteration, fitness)` at every strict improvement.
    pub history: Vec<(u64, f64)>,
    /// Which extra seed of [`evolve_seeded`] won the initial-parent
    /// selection, or `None` when the run started from `seed_parent`
    /// (always `None` for plain [`evolve`]).
    pub initial_seed: Option<usize>,
}

/// A fitness function with an optional incremental-evaluation hook.
///
/// The evolution loop calls [`FitnessFn::rebase`] every time the parent
/// chromosome changes — once after the initial parent is selected, then on
/// every promotion — so stateful implementations can cache simulation
/// state for the current parent and score offspring by re-simulating only
/// what a mutation touched (`apx_core`'s Eq. 1 fitness does exactly this
/// over `apx_metrics`' cached `WmedState`). Every `eval` between two
/// `rebase` calls is therefore guaranteed to see a chromosome derived from
/// the most recently rebased parent.
///
/// Plain closures implement the trait with a no-op `rebase`, so stateless
/// fitnesses keep working unchanged:
///
/// ```
/// use apx_cgp::FitnessFn;
///
/// let f = |c: &apx_cgp::Chromosome| c.decode_active().active_gate_count() as f64;
/// fn assert_fitness(_: &impl FitnessFn) {}
/// assert_fitness(&f);
/// ```
pub trait FitnessFn: Sync {
    /// Scores a chromosome (lower is better; `f64::INFINITY` rejects a
    /// candidate outright).
    fn eval(&self, c: &Chromosome) -> f64;

    /// Notification that `parent` is the new baseline all following
    /// offspring are mutated from. Defaults to a no-op.
    fn rebase(&self, parent: &Chromosome) {
        let _ = parent;
    }

    /// [`rebase`](FitnessFn::rebase), but also handing over `parent`'s
    /// just-computed fitness — the evolution loop always knows it at
    /// promotion time, so stateful implementations can cache the value
    /// instead of re-scoring the parent. Defaults to plain `rebase`.
    fn rebase_scored(&self, parent: &Chromosome, fit: f64) {
        let _ = fit;
        self.rebase(parent);
    }
}

impl<F: Fn(&Chromosome) -> f64 + Sync> FitnessFn for F {
    fn eval(&self, c: &Chromosome) -> f64 {
        self(c)
    }
}

/// Runs the `(1 + λ)` strategy from `seed_parent`, minimizing `fitness`.
///
/// Each generation clones the parent λ times, mutates every clone with up
/// to `h` gene redraws, evaluates all offspring and promotes the best
/// offspring whose fitness is **less than or equal to** the parent's — the
/// neutral genetic drift that CGP's redundant representation is designed
/// for (paper §III-C).
///
/// With `parallel` set, offspring are evaluated on a persistent
/// [`apx_pool`] worker pool whose λ threads are spawned once and reused
/// for every generation of the run; results come back in offspring order,
/// so parallel and sequential runs are bit-for-bit identical.
///
/// `fitness` may return `f64::INFINITY` to reject a candidate outright
/// (Eq. 1 does exactly that when the WMED budget is violated).
///
/// # Panics
///
/// Panics if `lambda == 0` or `mutations == 0`, and re-raises a panic of
/// `fitness` naming the offending offspring.
pub fn evolve<F>(seed_parent: &Chromosome, fitness: F, config: &EvolutionConfig) -> EvolutionResult
where
    F: FitnessFn,
{
    evolve_seeded(seed_parent, &[], fitness, config)
}

/// [`evolve`] with a warm-start hook: before the first generation, every
/// chromosome in `seeds` is evaluated alongside `seed_parent` and the
/// **strictly best** one becomes the initial parent (ties keep
/// `seed_parent`, then the earliest seed). An empty seed list reproduces
/// [`evolve`] bit for bit; seeds that all lose leave the search
/// trajectory identical too (seed evaluation happens before the run's
/// RNG stream is touched), with only `evaluations` counting the extra
/// `seeds.len()` warm-start fitness calls.
///
/// This is the component-library entry point: candidates re-scored from a
/// previous design-space exploration start the search near the Pareto
/// front instead of at the exact circuit every time. Seeds may have any
/// grid geometry (`cols` need not match `seed_parent`); they only need the
/// same primary input/output counts for the fitness to be meaningful,
/// which the caller is responsible for.
///
/// `EvolutionResult::initial_seed` reports which seed (index into
/// `seeds`) won, or `None` when the run started from `seed_parent`.
///
/// # Panics
///
/// Panics if `lambda == 0` or `mutations == 0`, and re-raises a panic of
/// `fitness` naming the offending offspring.
pub fn evolve_seeded<F>(
    seed_parent: &Chromosome,
    seeds: &[Chromosome],
    fitness: F,
    config: &EvolutionConfig,
) -> EvolutionResult
where
    F: FitnessFn,
{
    assert!(config.lambda > 0, "lambda must be at least 1");
    assert!(config.mutations > 0, "mutation rate must be at least 1");
    let mut parent = seed_parent.clone();
    let mut parent_fit = fitness.eval(&parent);
    let mut initial_seed = None;
    for (i, seed) in seeds.iter().enumerate() {
        let fit = fitness.eval(seed);
        if fit < parent_fit {
            parent = seed.clone();
            parent_fit = fit;
            initial_seed = Some(i);
        }
    }
    // The initial parent is now fixed: let stateful fitnesses cache it.
    fitness.rebase_scored(&parent, parent_fit);
    let start = Start { parent, parent_fit, evaluations: 1 + seeds.len() as u64, initial_seed };
    if config.parallel && config.lambda > 1 {
        apx_pool::Pool::scope(
            config.lambda,
            |_, child: Chromosome| {
                let fit = fitness.eval(&child);
                (child, fit)
            },
            |pool| generation_loop(start, &fitness, config, Some(pool)),
        )
    } else {
        generation_loop(start, &fitness, config, None)
    }
}

/// The selected initial parent handed to the generation loop.
struct Start {
    parent: Chromosome,
    parent_fit: f64,
    evaluations: u64,
    initial_seed: Option<usize>,
}

/// The generation loop, with offspring scored either inline or on the
/// scope's persistent pool.
fn generation_loop<F>(
    start: Start,
    fitness: &F,
    config: &EvolutionConfig,
    pool: Option<&apx_pool::Executor<'_, Chromosome, (Chromosome, f64)>>,
) -> EvolutionResult
where
    F: FitnessFn,
{
    let mut rng = Xoshiro256::from_seed(config.seed);
    let Start { mut parent, mut parent_fit, mut evaluations, initial_seed } = start;
    let mut history = Vec::new();
    if config.keep_history {
        history.push((0, parent_fit));
    }
    let mut iterations = 0u64;
    for iter in 1..=config.max_iterations {
        iterations = iter;
        if let Some(target) = config.target_fitness {
            if parent_fit <= target {
                iterations = iter - 1;
                break;
            }
        }
        let mut offspring: Vec<Chromosome> = Vec::with_capacity(config.lambda);
        for _ in 0..config.lambda {
            let mut child = parent.clone();
            mutate(&mut child, config.mutations, &mut rng);
            offspring.push(child);
        }
        let mut scored: Vec<(Chromosome, f64)> = match pool {
            Some(pool) => pool.map(offspring),
            None => offspring
                .into_iter()
                .map(|child| {
                    let fit = fitness.eval(&child);
                    (child, fit)
                })
                .collect(),
        };
        evaluations += config.lambda as u64;
        // Best offspring; ties broken toward the earliest (deterministic).
        let (best_idx, best_fit) = scored
            .iter()
            .enumerate()
            .map(|(i, (_, fit))| (i, *fit))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("lambda >= 1");
        // Neutral drift: equal fitness replaces the parent.
        if best_fit <= parent_fit {
            if best_fit < parent_fit && config.keep_history {
                history.push((iter, best_fit));
            }
            parent = scored.swap_remove(best_idx).0;
            parent_fit = best_fit;
            fitness.rebase_scored(&parent, parent_fit);
        }
    }
    EvolutionResult {
        best: parent,
        best_fitness: parent_fit,
        iterations,
        evaluations,
        history,
        initial_seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FunctionSet;
    use apx_arith::array_multiplier;
    use apx_gates::Exhaustive;

    /// Area-under-correctness fitness: enormous penalty per wrong output
    /// bit plus gate count — a miniature of the paper's Eq. 1.
    fn exactness_area_fitness(width: u32) -> impl Fn(&Chromosome) -> f64 + Sync {
        let golden = Exhaustive::new(2 * width as usize).output_table(&array_multiplier(width));
        move |c: &Chromosome| {
            let nl = c.decode_active();
            let table = Exhaustive::new(nl.num_inputs()).output_table(&nl);
            let wrong: u64 =
                table.iter().zip(&golden).map(|(a, b)| (a ^ b).count_ones() as u64).sum();
            wrong as f64 * 1e6 + nl.active_gate_count() as f64
        }
    }

    #[test]
    fn evolution_reduces_multiplier_area_without_breaking_it() {
        let nl = array_multiplier(2);
        let funcs = FunctionSet::standard();
        let seed = Chromosome::from_netlist(&nl, &funcs, nl.gate_count() + 12).unwrap();
        let fitness = exactness_area_fitness(2);
        let start = fitness(&seed);
        let result = evolve(
            &seed,
            &fitness,
            &EvolutionConfig { max_iterations: 3000, seed: 7, ..Default::default() },
        );
        assert!(result.best_fitness <= start);
        // Still exact (fitness < 1e6 means zero wrong bits).
        assert!(
            result.best_fitness < 1e6,
            "evolved multiplier must stay exact, fitness {}",
            result.best_fitness
        );
        // The textbook 2-bit array multiplier (8 gates here) is not
        // minimal; evolution should shave at least one gate.
        assert!(result.best_fitness < start, "expected improvement from {start}");
    }

    #[test]
    fn runs_are_deterministic() {
        let nl = array_multiplier(2);
        let seed =
            Chromosome::from_netlist(&nl, &FunctionSet::standard(), nl.gate_count() + 8).unwrap();
        let fitness = exactness_area_fitness(2);
        let config = EvolutionConfig { max_iterations: 200, seed: 42, ..Default::default() };
        let a = evolve(&seed, &fitness, &config);
        let b = evolve(&seed, &fitness, &config);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_fitness, b.best_fitness);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn parallel_matches_sequential() {
        let nl = array_multiplier(2);
        let seed =
            Chromosome::from_netlist(&nl, &FunctionSet::standard(), nl.gate_count() + 8).unwrap();
        let fitness = exactness_area_fitness(2);
        let base = EvolutionConfig { max_iterations: 150, seed: 21, ..Default::default() };
        let seq = evolve(&seed, &fitness, &base);
        let par = evolve(&seed, &fitness, &EvolutionConfig { parallel: true, ..base });
        assert_eq!(seq.best, par.best);
        assert_eq!(seq.best_fitness, par.best_fitness);
    }

    #[test]
    fn target_fitness_stops_early() {
        let nl = array_multiplier(2);
        let seed =
            Chromosome::from_netlist(&nl, &FunctionSet::standard(), nl.gate_count() + 8).unwrap();
        let fitness = exactness_area_fitness(2);
        let result = evolve(
            &seed,
            &fitness,
            &EvolutionConfig {
                max_iterations: 10_000,
                target_fitness: Some(fitness(&seed)),
                seed: 1,
                ..Default::default()
            },
        );
        assert_eq!(result.iterations, 0, "seed already meets the target");
        assert_eq!(result.evaluations, 1);
    }

    #[test]
    fn history_is_monotone_decreasing() {
        let nl = array_multiplier(2);
        let seed =
            Chromosome::from_netlist(&nl, &FunctionSet::standard(), nl.gate_count() + 10).unwrap();
        let fitness = exactness_area_fitness(2);
        let result = evolve(
            &seed,
            &fitness,
            &EvolutionConfig { max_iterations: 1500, seed: 3, ..Default::default() },
        );
        for pair in result.history.windows(2) {
            assert!(pair[1].1 < pair[0].1, "history must strictly improve");
            assert!(pair[1].0 > pair[0].0);
        }
        assert_eq!(result.evaluations, 1 + 4 * result.iterations);
    }

    #[test]
    fn parallel_fitness_panic_names_the_task() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let nl = array_multiplier(2);
        let seed =
            Chromosome::from_netlist(&nl, &FunctionSet::standard(), nl.gate_count() + 8).unwrap();
        // The parent evaluation (call 0) must succeed; a later offspring
        // evaluation panics inside the pool.
        let calls = AtomicU64::new(0);
        let fitness = |_: &Chromosome| {
            assert!(calls.fetch_add(1, Ordering::Relaxed) < 3, "fitness exploded");
            1.0
        };
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            evolve(
                &seed,
                fitness,
                &EvolutionConfig { parallel: true, max_iterations: 5, ..Default::default() },
            )
        }))
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .unwrap_or_default();
        assert!(msg.contains("task") && msg.contains("fitness exploded"), "message was: {msg}");
    }

    #[test]
    fn empty_seed_list_reproduces_plain_evolve_bit_for_bit() {
        let nl = array_multiplier(2);
        let seed =
            Chromosome::from_netlist(&nl, &FunctionSet::standard(), nl.gate_count() + 8).unwrap();
        let fitness = exactness_area_fitness(2);
        let config = EvolutionConfig { max_iterations: 300, seed: 11, ..Default::default() };
        let plain = evolve(&seed, &fitness, &config);
        let seeded = evolve_seeded(&seed, &[], &fitness, &config);
        assert_eq!(plain.best, seeded.best);
        assert_eq!(plain.best_fitness, seeded.best_fitness);
        assert_eq!(plain.history, seeded.history);
        assert_eq!(plain.evaluations, seeded.evaluations);
        assert_eq!(seeded.initial_seed, None);
    }

    #[test]
    fn strictly_better_seed_wins_the_initial_parent_selection() {
        let nl = array_multiplier(2);
        let funcs = FunctionSet::standard();
        let parent = Chromosome::from_netlist(&nl, &funcs, nl.gate_count() + 8).unwrap();
        let fitness = exactness_area_fitness(2);
        // Shrink the grid's spare columns: an already-evolved, smaller
        // exact multiplier (different cols on purpose) seeds the run.
        let better = evolve(
            &parent,
            &fitness,
            &EvolutionConfig { max_iterations: 3000, seed: 7, ..Default::default() },
        )
        .best;
        assert!(fitness(&better) < fitness(&parent), "evolution found a smaller circuit");
        // A worthless seed (ties lose) and the genuinely better one.
        let result = evolve_seeded(
            &parent,
            &[parent.clone(), better.clone()],
            &fitness,
            &EvolutionConfig { max_iterations: 1, seed: 3, ..Default::default() },
        );
        assert_eq!(result.initial_seed, Some(1), "the strictly better seed must win");
        assert!(result.best_fitness <= fitness(&better));
        assert_eq!(result.evaluations, 1 + 2 + 4, "parent + 2 seeds + lambda");
        // Infeasible (infinite-fitness) seeds never displace the parent.
        let rejected = evolve_seeded(
            &parent,
            &[better],
            |c: &Chromosome| if fitness(c) < fitness(&parent) { f64::INFINITY } else { fitness(c) },
            &EvolutionConfig { max_iterations: 1, seed: 3, ..Default::default() },
        );
        assert_eq!(rejected.initial_seed, None);
    }

    #[test]
    fn rebase_tracks_every_parent_change() {
        use std::sync::Mutex;

        /// Wraps a closure fitness and checks the incremental contract:
        /// every evaluated offspring differs from the latest rebased parent
        /// in at most `3·mutations` genes (a mutation redraws whole genes
        /// of the parent), and every promotion is announced via `rebase`
        /// before the next generation is scored.
        struct Spy<F> {
            inner: F,
            state: std::sync::Arc<Mutex<SpyState>>,
        }
        #[derive(Default)]
        struct SpyState {
            base: Option<Chromosome>,
            rebases: usize,
            evals_since_rebase: usize,
        }
        impl<F: Fn(&Chromosome) -> f64 + Sync> FitnessFn for Spy<F> {
            fn eval(&self, c: &Chromosome) -> f64 {
                let mut st = self.state.lock().unwrap();
                if let Some(base) = &st.base {
                    let diff = base.genes().iter().zip(c.genes()).filter(|(a, b)| a != b).count();
                    assert!(diff <= 3 * 5, "offspring drifted {diff} genes from rebased parent");
                }
                st.evals_since_rebase += 1;
                (self.inner)(c)
            }
            fn rebase(&self, parent: &Chromosome) {
                let mut st = self.state.lock().unwrap();
                st.base = Some(parent.clone());
                st.rebases += 1;
                st.evals_since_rebase = 0;
            }
        }

        let nl = array_multiplier(2);
        let seed =
            Chromosome::from_netlist(&nl, &FunctionSet::standard(), nl.gate_count() + 8).unwrap();
        let state = std::sync::Arc::new(Mutex::new(SpyState::default()));
        let spy = Spy { inner: exactness_area_fitness(2), state: state.clone() };
        let result = evolve(
            &seed,
            spy,
            &EvolutionConfig { max_iterations: 300, seed: 5, ..Default::default() },
        );
        let st = state.lock().unwrap();
        // One initial rebase plus one per promotion; promotions include
        // neutral drift, so there are at least as many as strict
        // improvements (history also counts the iteration-0 entry).
        assert!(st.rebases >= result.history.len(), "{} < {}", st.rebases, result.history.len());
        assert_eq!(st.base.as_ref(), Some(&result.best), "last rebase is the final parent");
        // Same trajectory as the plain closure.
        let plain = evolve(
            &seed,
            exactness_area_fitness(2),
            &EvolutionConfig { max_iterations: 300, seed: 5, ..Default::default() },
        );
        assert_eq!(plain.best, result.best);
        assert_eq!(plain.best_fitness, result.best_fitness);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn zero_lambda_panics() {
        let nl = array_multiplier(2);
        let seed =
            Chromosome::from_netlist(&nl, &FunctionSet::standard(), nl.gate_count()).unwrap();
        let _ = evolve(
            &seed,
            |_: &Chromosome| 0.0,
            &EvolutionConfig { lambda: 0, ..Default::default() },
        );
    }
}
