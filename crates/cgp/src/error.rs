//! CGP error type.

use apx_gates::GateKind;
use std::fmt;

/// Error raised by chromosome construction or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CgpError {
    /// A seed netlist uses a gate kind missing from the function set.
    UnsupportedGate(GateKind),
    /// The grid has fewer columns than the seed netlist has gates.
    GridTooSmall {
        /// Gates required by the seed.
        needed: usize,
        /// Columns available.
        cols: usize,
    },
    /// The function set is empty.
    EmptyFunctionSet,
    /// A textual chromosome failed to parse.
    Parse(String),
}

impl fmt::Display for CgpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CgpError::UnsupportedGate(kind) => {
                write!(f, "gate kind `{kind}` is not in the function set")
            }
            CgpError::GridTooSmall { needed, cols } => {
                write!(f, "seed needs {needed} columns but the grid has only {cols}")
            }
            CgpError::EmptyFunctionSet => write!(f, "function set is empty"),
            CgpError::Parse(msg) => write!(f, "chromosome parse error: {msg}"),
        }
    }
}

impl std::error::Error for CgpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = CgpError::GridTooSmall { needed: 100, cols: 50 };
        assert!(e.to_string().contains("100"));
        assert!(CgpError::UnsupportedGate(GateKind::Xor).to_string().contains("xor"));
    }
}
