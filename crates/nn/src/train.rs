//! SGD training with momentum and weight decay.

use crate::Network;
use apx_datasets::Dataset;
use apx_rng::Xoshiro256;

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Global L2 gradient-norm clip (`None` disables). Keeps SGD with
    /// momentum stable on convolutional nets at higher learning rates.
    pub clip_norm: Option<f32>,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 5,
            batch_size: 32,
            lr: 0.02,
            momentum: 0.9,
            weight_decay: 1e-4,
            clip_norm: Some(4.0),
            seed: 0,
        }
    }
}

/// Per-layer gradient / momentum buffers.
pub(crate) struct ParamBuffers {
    pub(crate) w: Vec<Vec<f32>>,
    pub(crate) b: Vec<Vec<f32>>,
}

impl ParamBuffers {
    pub(crate) fn zeros_like(net: &Network) -> Self {
        let mut w = Vec::new();
        let mut b = Vec::new();
        for layer in net.layers() {
            match layer.params() {
                Some((lw, lb)) => {
                    w.push(vec![0.0; lw.len()]);
                    b.push(vec![0.0; lb.len()]);
                }
                None => {
                    w.push(Vec::new());
                    b.push(Vec::new());
                }
            }
        }
        ParamBuffers { w, b }
    }

    pub(crate) fn clear(&mut self) {
        for v in self.w.iter_mut().chain(self.b.iter_mut()) {
            v.iter_mut().for_each(|g| *g = 0.0);
        }
    }
}

/// Softmax cross-entropy: returns `(loss, dlogits)`.
pub(crate) fn softmax_ce(logits: &[f32], label: usize) -> (f64, Vec<f32>) {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f64> = logits.iter().map(|&l| ((l - max) as f64).exp()).collect();
    let total: f64 = exps.iter().sum();
    let mut dl = Vec::with_capacity(logits.len());
    for (i, &e) in exps.iter().enumerate() {
        let p = e / total;
        dl.push((p - if i == label { 1.0 } else { 0.0 }) as f32);
    }
    let loss = -(exps[label] / total).ln();
    (loss, dl)
}

/// Backpropagates one sample through `net`, accumulating gradients.
/// Returns the loss. `trace` must be `net.forward_trace(x)` (or an
/// approximate-forward surrogate with identical shapes — the STE hook the
/// fine-tuner uses).
pub(crate) fn backprop_sample(
    net: &Network,
    trace: &[Vec<f32>],
    label: usize,
    grads: &mut ParamBuffers,
) -> f64 {
    let logits = trace.last().expect("trace is non-empty");
    let (loss, mut dy) = softmax_ce(logits, label);
    for (idx, layer) in net.layers().iter().enumerate().rev() {
        let x = &trace[idx];
        dy = layer.backward(x, &dy, &mut grads.w[idx], &mut grads.b[idx]);
    }
    loss
}

/// Applies one SGD-with-momentum step from accumulated gradients.
pub(crate) fn sgd_step(
    net: &mut Network,
    grads: &ParamBuffers,
    velocity: &mut ParamBuffers,
    batch: usize,
    cfg: &TrainConfig,
) {
    let mut scale = 1.0 / batch as f32;
    if let Some(clip) = cfg.clip_norm {
        let sq_sum: f64 = grads
            .w
            .iter()
            .chain(grads.b.iter())
            .flat_map(|v| v.iter())
            .map(|&g| (g as f64 * scale as f64).powi(2))
            .sum();
        let norm = sq_sum.sqrt() as f32;
        if norm > clip {
            scale *= clip / norm;
        }
    }
    for (idx, layer) in net.layers_mut().iter_mut().enumerate() {
        let Some((w, b)) = layer.params_mut() else { continue };
        for ((wi, gi), vi) in w.iter_mut().zip(&grads.w[idx]).zip(velocity.w[idx].iter_mut()) {
            let g = gi * scale + cfg.weight_decay * *wi;
            *vi = cfg.momentum * *vi - cfg.lr * g;
            *wi += *vi;
        }
        for ((bi, gi), vi) in b.iter_mut().zip(&grads.b[idx]).zip(velocity.b[idx].iter_mut()) {
            *vi = cfg.momentum * *vi - cfg.lr * (gi * scale);
            *bi += *vi;
        }
    }
}

/// Trains `net` on `data`; returns the mean loss per epoch.
///
/// # Panics
///
/// Panics if `data` is empty or `batch_size == 0`.
pub fn train(net: &mut Network, data: &Dataset, cfg: &TrainConfig) -> Vec<f64> {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    assert!(cfg.batch_size > 0, "batch size must be positive");
    let mut rng = Xoshiro256::from_seed(cfg.seed);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut grads = ParamBuffers::zeros_like(net);
    let mut velocity = ParamBuffers::zeros_like(net);
    let mut losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        rng.shuffle(&mut order);
        let mut epoch_loss = 0.0;
        for chunk in order.chunks(cfg.batch_size) {
            grads.clear();
            for &i in chunk {
                let trace = net.forward_trace(data.image(i));
                epoch_loss += backprop_sample(net, &trace, data.label(i) as usize, &mut grads);
            }
            sgd_step(net, &grads, &mut velocity, chunk.len(), cfg);
        }
        losses.push(epoch_loss / data.len() as f64);
    }
    losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_datasets::mnist_like;

    #[test]
    fn softmax_ce_gradient_sums_to_zero() {
        let (loss, dl) = softmax_ce(&[1.0, 2.0, 3.0], 2);
        assert!(loss > 0.0);
        let sum: f32 = dl.iter().sum();
        assert!(sum.abs() < 1e-6);
        assert!(dl[2] < 0.0, "true class gradient is negative");
    }

    #[test]
    fn training_reduces_loss_and_learns() {
        let data = mnist_like(300, 7);
        let mut rng = Xoshiro256::from_seed(1);
        let mut net = Network::mlp(784, 32, 10, &mut rng);
        let before = net.accuracy(&data);
        let losses =
            train(&mut net, &data, &TrainConfig { epochs: 30, lr: 0.03, ..Default::default() });
        println!("losses: {losses:?}");
        assert!(losses.last().unwrap() < losses.first().unwrap(), "loss should drop: {losses:?}");
        let after = net.accuracy(&data);
        assert!(after > before + 0.3, "accuracy {before} -> {after}");
        assert!(after > 0.7, "final train accuracy {after}");
    }

    #[test]
    fn training_is_deterministic() {
        let data = mnist_like(60, 3);
        let make = || {
            let mut rng = Xoshiro256::from_seed(9);
            let mut net = Network::mlp(784, 16, 10, &mut rng);
            train(&mut net, &data, &TrainConfig { epochs: 2, ..Default::default() });
            net
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn generalizes_to_fresh_samples() {
        let train_data = mnist_like(800, 50);
        let test_data = mnist_like(200, 51);
        let mut rng = Xoshiro256::from_seed(2);
        let mut net = Network::mlp(784, 48, 10, &mut rng);
        train(&mut net, &train_data, &TrainConfig { epochs: 20, lr: 0.03, ..Default::default() });
        let acc = net.accuracy(&test_data);
        assert!(acc > 0.75, "test accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let data = mnist_like(10, 1).split(0).0;
        let mut rng = Xoshiro256::from_seed(1);
        let mut net = Network::mlp(784, 8, 10, &mut rng);
        let _ = train(&mut net, &data, &TrainConfig::default());
    }
}
