//! Feed-forward networks and the reference architectures.

use crate::Layer;
use apx_datasets::Dataset;
use apx_rng::Xoshiro256;

/// A sequential feed-forward network.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    input_dim: usize,
    layers: Vec<Layer>,
}

impl Network {
    /// Builds a network from layers; validates that shapes chain.
    ///
    /// # Panics
    ///
    /// Panics if consecutive layer shapes are inconsistent.
    #[must_use]
    pub fn new(input_dim: usize, layers: Vec<Layer>) -> Self {
        let mut dim = input_dim;
        for layer in &layers {
            dim = layer.out_len(dim); // panics on mismatch
        }
        Network { input_dim, layers }
    }

    /// The paper's MNIST classifier: a multi-layer perceptron with a
    /// 300-neuron hidden layer (`input → 300 → 10`).
    #[must_use]
    pub fn mlp(input_dim: usize, hidden: usize, classes: usize, rng: &mut Xoshiro256) -> Self {
        Network::new(
            input_dim,
            vec![
                Layer::dense(input_dim, hidden, rng),
                Layer::Relu,
                Layer::dense(hidden, classes, rng),
            ],
        )
    }

    /// The paper's SVHN classifier: LeNet-5 modified for single-channel
    /// `32 × 32` inputs — three 5×5 convolutions (6, 16, 120 channels)
    /// interleaved with two 2×2 poolings, then a fully connected
    /// `120 → 10` layer.
    #[must_use]
    pub fn lenet5(rng: &mut Xoshiro256) -> Self {
        Network::new(
            32 * 32,
            vec![
                Layer::conv(1, 32, 32, 6, 5, rng), // -> 6x28x28
                Layer::Relu,
                Layer::Pool { c: 6, in_h: 28, in_w: 28 }, // -> 6x14x14
                Layer::conv(6, 14, 14, 16, 5, rng),       // -> 16x10x10
                Layer::Relu,
                Layer::Pool { c: 16, in_h: 10, in_w: 10 }, // -> 16x5x5
                Layer::conv(16, 5, 5, 120, 5, rng),        // -> 120x1x1
                Layer::Relu,
                Layer::dense(120, 10, rng),
            ],
        )
    }

    /// Input dimension.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// The layer stack.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable layer access (used by the trainer / fine-tuner).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Total number of weight parameters.
    #[must_use]
    pub fn weight_count(&self) -> usize {
        self.layers.iter().map(Layer::weight_count).sum()
    }

    /// Number of multiplications one inference performs in MAC hardware
    /// (weights × activations; biases excluded).
    #[must_use]
    pub fn mult_count(&self) -> usize {
        let mut dim = self.input_dim;
        let mut total = 0usize;
        for layer in &self.layers {
            let out = layer.out_len(dim);
            match layer {
                Layer::Dense { in_dim, out_dim, .. } => total += in_dim * out_dim,
                Layer::Conv { in_c, out_c, k, .. } => {
                    // out spatial positions × kernel volume per position.
                    let spatial = out / out_c;
                    total += spatial * out_c * in_c * k * k;
                }
                _ => {}
            }
            dim = out;
        }
        total
    }

    /// Forward pass to logits.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != input_dim`.
    #[must_use]
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.input_dim, "input size mismatch");
        let mut act = x.to_vec();
        for layer in &self.layers {
            act = layer.forward(&act);
        }
        act
    }

    /// Forward pass returning every layer boundary (`layers.len() + 1`
    /// activation vectors, the first being the input).
    #[must_use]
    pub fn forward_trace(&self, x: &[f32]) -> Vec<Vec<f32>> {
        assert_eq!(x.len(), self.input_dim, "input size mismatch");
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.to_vec());
        for layer in &self.layers {
            let next = layer.forward(acts.last().expect("non-empty"));
            acts.push(next);
        }
        acts
    }

    /// Class prediction (argmax logit).
    #[must_use]
    pub fn predict(&self, x: &[f32]) -> usize {
        argmax(&self.forward(x))
    }

    /// Classification accuracy on a dataset.
    #[must_use]
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        let correct =
            data.iter().filter(|(img, label)| self.predict(img) == *label as usize).count();
        correct as f64 / data.len().max(1) as f64
    }
}

/// Index of the maximum element (first on ties).
#[must_use]
pub(crate) fn argmax(v: &[f32]) -> usize {
    let mut best = 0;
    for i in 1..v.len() {
        if v[i] > v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_shapes() {
        let mut rng = Xoshiro256::from_seed(1);
        let net = Network::mlp(784, 300, 10, &mut rng);
        assert_eq!(net.forward(&vec![0.0; 784]).len(), 10);
        assert_eq!(net.weight_count(), 784 * 300 + 300 * 10);
        assert_eq!(net.mult_count(), 784 * 300 + 300 * 10);
    }

    #[test]
    fn lenet_shapes_and_mult_count() {
        let mut rng = Xoshiro256::from_seed(2);
        let net = Network::lenet5(&mut rng);
        assert_eq!(net.forward(&vec![0.0; 1024]).len(), 10);
        // conv1: 28*28*6*25 = 117600; conv2: 10*10*16*150 = 240000;
        // conv3: 1*120*400 = 48000; fc: 1200. Total = 406800 — the same
        // order as the paper's "more than 278 thousand" for its LeNet.
        assert_eq!(net.mult_count(), 117_600 + 240_000 + 48_000 + 1200);
    }

    #[test]
    fn forward_trace_has_all_boundaries() {
        let mut rng = Xoshiro256::from_seed(3);
        let net = Network::mlp(10, 6, 3, &mut rng);
        let trace = net.forward_trace(&[0.5; 10]);
        assert_eq!(trace.len(), 4);
        assert_eq!(trace[0].len(), 10);
        assert_eq!(trace[3].len(), 3);
        assert_eq!(trace[3], net.forward(&[0.5; 10]));
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "input size")]
    fn wrong_input_size_panics() {
        let mut rng = Xoshiro256::from_seed(4);
        let _ = Network::mlp(8, 4, 2, &mut rng).forward(&[0.0; 7]);
    }
}
