//! Neural-network substrate for the approximate-MAC case study.
//!
//! Reproduces the software side of the paper's §V:
//!
//! * [`Network`] — float32 feed-forward networks with the two reference
//!   architectures: [`Network::mlp`] (784-300-10, the MNIST classifier)
//!   and [`Network::lenet5`] (three 5×5 conv layers, two pools, one FC —
//!   the SVHN classifier), trained with SGD + momentum
//!   ([`train`] / [`TrainConfig`]);
//! * [`QuantizedNetwork`] — Ristretto-style dynamic fixed-point 8-bit
//!   quantization (per-layer power-of-two scales chosen by range
//!   analysis), with inference executed through an arbitrary multiplier
//!   [`apx_arith::OpTable`] — the software twin of a systolic array of
//!   approximate MAC units;
//! * [`finetune`] — straight-through-estimator retraining that lets the
//!   network *learn around* an approximate multiplier (the paper's
//!   Table I "after finetuning" column);
//! * [`weight_pmf`] — the measured weight distribution that defines the
//!   WMED metric for the circuit search (Fig. 6 top).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod finetune;
mod layers;
mod network;
mod quant;
mod train;

pub use finetune::{finetune, FinetuneConfig};
pub use layers::Layer;
pub use network::Network;
pub use quant::{QuantizedNetwork, INPUT_FRAC};
pub use train::{train, TrainConfig};

use apx_dist::Pmf;

/// Measures the distribution of all quantized weights of a network — the
/// `D` of the paper's WMED for the NN case study (Fig. 6 top).
///
/// # Panics
///
/// Panics if the network has no weights (cannot happen for the provided
/// architectures).
#[must_use]
pub fn weight_pmf(qnet: &QuantizedNetwork) -> Pmf {
    Pmf::from_samples_i64(8, &qnet.all_weights(), true).expect("network has weights")
}
