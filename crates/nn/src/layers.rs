//! Feed-forward layers with explicit forward/backward passes.

use apx_rng::Xoshiro256;

/// One layer of a [`crate::Network`].
///
/// Activations are flat `Vec<f32>` buffers; convolutional layers carry
/// their spatial dimensions so tensor shapes never need to be threaded
/// through call sites. All layers are stateless in forward/backward — the
/// caller supplies the cached input.
#[derive(Debug, Clone, PartialEq)]
pub enum Layer {
    /// Fully connected: `y = W·x + b` with `W` stored row-major
    /// (`out_dim × in_dim`).
    Dense {
        /// Weights, `out_dim × in_dim` row-major.
        w: Vec<f32>,
        /// Biases, `out_dim`.
        b: Vec<f32>,
        /// Input dimension.
        in_dim: usize,
        /// Output dimension.
        out_dim: usize,
    },
    /// Valid 2-D convolution, stride 1, square `k × k` kernels. Input is
    /// `in_c × in_h × in_w` (channel-major), weights
    /// `out_c × in_c × k × k`.
    Conv {
        /// Kernels, `out_c × in_c × k × k`.
        w: Vec<f32>,
        /// Biases, `out_c`.
        b: Vec<f32>,
        /// Input channels.
        in_c: usize,
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
        /// Output channels.
        out_c: usize,
        /// Kernel size.
        k: usize,
    },
    /// 2×2 max pooling, stride 2 (floor semantics on odd sizes).
    Pool {
        /// Channels.
        c: usize,
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
    },
    /// Element-wise rectifier.
    Relu,
}

impl Layer {
    /// He-initialized dense layer.
    #[must_use]
    pub fn dense(in_dim: usize, out_dim: usize, rng: &mut Xoshiro256) -> Self {
        let std = (2.0 / in_dim as f64).sqrt();
        let w = (0..in_dim * out_dim).map(|_| rng.normal(0.0, std) as f32).collect();
        Layer::Dense { w, b: vec![0.0; out_dim], in_dim, out_dim }
    }

    /// He-initialized convolution layer.
    #[must_use]
    pub fn conv(
        in_c: usize,
        in_h: usize,
        in_w: usize,
        out_c: usize,
        k: usize,
        rng: &mut Xoshiro256,
    ) -> Self {
        let fan_in = in_c * k * k;
        let std = (2.0 / fan_in as f64).sqrt();
        let w = (0..out_c * fan_in).map(|_| rng.normal(0.0, std) as f32).collect();
        Layer::Conv { w, b: vec![0.0; out_c], in_c, in_h, in_w, out_c, k }
    }

    /// Output dimension given `input_len` (which must match the layer's
    /// expectations).
    ///
    /// # Panics
    ///
    /// Panics if `input_len` is inconsistent with the layer shape.
    #[must_use]
    pub fn out_len(&self, input_len: usize) -> usize {
        match self {
            Layer::Dense { in_dim, out_dim, .. } => {
                assert_eq!(input_len, *in_dim, "dense input size");
                *out_dim
            }
            Layer::Conv { in_c, in_h, in_w, out_c, k, .. } => {
                assert_eq!(input_len, in_c * in_h * in_w, "conv input size");
                let oh = in_h - k + 1;
                let ow = in_w - k + 1;
                out_c * oh * ow
            }
            Layer::Pool { c, in_h, in_w } => {
                assert_eq!(input_len, c * in_h * in_w, "pool input size");
                c * (in_h / 2) * (in_w / 2)
            }
            Layer::Relu => input_len,
        }
    }

    /// Number of weight parameters (0 for parameter-free layers).
    #[must_use]
    pub fn weight_count(&self) -> usize {
        match self {
            Layer::Dense { w, .. } | Layer::Conv { w, .. } => w.len(),
            _ => 0,
        }
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong length.
    #[must_use]
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        match self {
            Layer::Dense { w, b, in_dim, out_dim } => {
                assert_eq!(x.len(), *in_dim, "dense input size");
                let mut y = Vec::with_capacity(*out_dim);
                for o in 0..*out_dim {
                    let row = &w[o * in_dim..(o + 1) * in_dim];
                    let mut acc = b[o];
                    for (wi, xi) in row.iter().zip(x) {
                        acc += wi * xi;
                    }
                    y.push(acc);
                }
                y
            }
            Layer::Conv { w, b, in_c, in_h, in_w, out_c, k } => {
                assert_eq!(x.len(), in_c * in_h * in_w, "conv input size");
                let (oh, ow) = (in_h - k + 1, in_w - k + 1);
                let mut y = vec![0.0f32; out_c * oh * ow];
                for oc in 0..*out_c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut acc = b[oc];
                            for ic in 0..*in_c {
                                for ky in 0..*k {
                                    let xrow = (ic * in_h + oy + ky) * in_w + ox;
                                    let wrow = ((oc * in_c + ic) * k + ky) * k;
                                    for kx in 0..*k {
                                        acc += w[wrow + kx] * x[xrow + kx];
                                    }
                                }
                            }
                            y[(oc * oh + oy) * ow + ox] = acc;
                        }
                    }
                }
                y
            }
            Layer::Pool { c, in_h, in_w } => {
                assert_eq!(x.len(), c * in_h * in_w, "pool input size");
                let (oh, ow) = (in_h / 2, in_w / 2);
                let mut y = vec![0.0f32; c * oh * ow];
                for ch in 0..*c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut m = f32::NEG_INFINITY;
                            for dy in 0..2 {
                                for dx in 0..2 {
                                    let v = x[(ch * in_h + 2 * oy + dy) * in_w + 2 * ox + dx];
                                    m = m.max(v);
                                }
                            }
                            y[(ch * oh + oy) * ow + ox] = m;
                        }
                    }
                }
                y
            }
            Layer::Relu => x.iter().map(|&v| v.max(0.0)).collect(),
        }
    }

    /// Backward pass: given the cached input `x` and the gradient `dy`
    /// w.r.t. the output, returns the gradient w.r.t. `x` and accumulates
    /// parameter gradients into `gw`/`gb` (which must be sized like the
    /// layer's `w`/`b`; pass empty slices for parameter-free layers).
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    #[must_use]
    pub fn backward(&self, x: &[f32], dy: &[f32], gw: &mut [f32], gb: &mut [f32]) -> Vec<f32> {
        match self {
            Layer::Dense { w, in_dim, out_dim, .. } => {
                assert_eq!(x.len(), *in_dim);
                assert_eq!(dy.len(), *out_dim);
                assert_eq!(gw.len(), w.len());
                let mut dx = vec![0.0f32; *in_dim];
                for o in 0..*out_dim {
                    let g = dy[o];
                    gb[o] += g;
                    let row = &w[o * in_dim..(o + 1) * in_dim];
                    let grow = &mut gw[o * in_dim..(o + 1) * in_dim];
                    for i in 0..*in_dim {
                        grow[i] += g * x[i];
                        dx[i] += g * row[i];
                    }
                }
                dx
            }
            Layer::Conv { w, in_c, in_h, in_w, out_c, k, .. } => {
                let (oh, ow) = (in_h - k + 1, in_w - k + 1);
                assert_eq!(dy.len(), out_c * oh * ow);
                assert_eq!(gw.len(), w.len());
                let mut dx = vec![0.0f32; x.len()];
                for oc in 0..*out_c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let g = dy[(oc * oh + oy) * ow + ox];
                            if g == 0.0 {
                                continue;
                            }
                            gb[oc] += g;
                            for ic in 0..*in_c {
                                for ky in 0..*k {
                                    let xrow = (ic * in_h + oy + ky) * in_w + ox;
                                    let wrow = ((oc * in_c + ic) * k + ky) * k;
                                    for kx in 0..*k {
                                        gw[wrow + kx] += g * x[xrow + kx];
                                        dx[xrow + kx] += g * w[wrow + kx];
                                    }
                                }
                            }
                        }
                    }
                }
                dx
            }
            Layer::Pool { c, in_h, in_w } => {
                let (oh, ow) = (in_h / 2, in_w / 2);
                assert_eq!(dy.len(), c * oh * ow);
                let mut dx = vec![0.0f32; x.len()];
                for ch in 0..*c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            // Route the gradient to the argmax position.
                            let (mut best, mut bi) = (f32::NEG_INFINITY, 0);
                            for dy2 in 0..2 {
                                for dx2 in 0..2 {
                                    let idx = (ch * in_h + 2 * oy + dy2) * in_w + 2 * ox + dx2;
                                    if x[idx] > best {
                                        best = x[idx];
                                        bi = idx;
                                    }
                                }
                            }
                            dx[bi] += dy[(ch * oh + oy) * ow + ox];
                        }
                    }
                }
                dx
            }
            Layer::Relu => {
                x.iter().zip(dy).map(|(&xi, &g)| if xi > 0.0 { g } else { 0.0 }).collect()
            }
        }
    }

    /// Mutable access to parameters `(w, b)`; `None` for parameter-free
    /// layers.
    pub fn params_mut(&mut self) -> Option<(&mut Vec<f32>, &mut Vec<f32>)> {
        match self {
            Layer::Dense { w, b, .. } | Layer::Conv { w, b, .. } => Some((w, b)),
            _ => None,
        }
    }

    /// Shared access to parameters `(w, b)`; `None` for parameter-free
    /// layers.
    #[must_use]
    pub fn params(&self) -> Option<(&[f32], &[f32])> {
        match self {
            Layer::Dense { w, b, .. } | Layer::Conv { w, b, .. } => Some((w, b)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad_check(layer: &Layer, in_len: usize, seed: u64) {
        let mut rng = Xoshiro256::from_seed(seed);
        let x: Vec<f32> = (0..in_len).map(|_| rng.normal(0.0, 1.0) as f32).collect();
        let out_len = layer.out_len(in_len);
        let dy: Vec<f32> = (0..out_len).map(|_| rng.normal(0.0, 1.0) as f32).collect();
        let wlen = layer.weight_count();
        let blen = layer.params().map_or(0, |(_, b)| b.len());
        let mut gw = vec![0.0f32; wlen];
        let mut gb = vec![0.0f32; blen];
        let dx = layer.backward(&x, &dy, &mut gw, &mut gb);

        // Loss = dy · forward(x): its gradient wrt x must equal dx.
        let loss = |l: &Layer, xs: &[f32]| -> f64 {
            l.forward(xs).iter().zip(&dy).map(|(&y, &g)| y as f64 * g as f64).sum()
        };
        let eps = 1e-3f32;
        for i in (0..in_len).step_by((in_len / 7).max(1)) {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let num = (loss(layer, &xp) - loss(layer, &xm)) / (2.0 * eps as f64);
            assert!(
                (num - dx[i] as f64).abs() < 1e-2 * (1.0 + num.abs()),
                "dx[{i}]: numeric {num} vs analytic {}",
                dx[i]
            );
        }
        // Weight gradients.
        if wlen > 0 {
            let mut layer2 = layer.clone();
            for i in (0..wlen).step_by((wlen / 7).max(1)) {
                let orig = layer2.params().unwrap().0[i];
                layer2.params_mut().unwrap().0[i] = orig + eps;
                let lp = loss(&layer2, &x);
                layer2.params_mut().unwrap().0[i] = orig - eps;
                let lm = loss(&layer2, &x);
                layer2.params_mut().unwrap().0[i] = orig;
                let num = (lp - lm) / (2.0 * eps as f64);
                assert!(
                    (num - gw[i] as f64).abs() < 1e-2 * (1.0 + num.abs()),
                    "gw[{i}]: numeric {num} vs analytic {}",
                    gw[i]
                );
            }
        }
    }

    #[test]
    fn dense_gradients_check_out() {
        let mut rng = Xoshiro256::from_seed(1);
        let layer = Layer::dense(12, 7, &mut rng);
        grad_check(&layer, 12, 10);
    }

    #[test]
    fn conv_gradients_check_out() {
        let mut rng = Xoshiro256::from_seed(2);
        let layer = Layer::conv(2, 6, 6, 3, 3, &mut rng);
        grad_check(&layer, 2 * 6 * 6, 11);
    }

    #[test]
    fn pool_gradients_check_out() {
        let layer = Layer::Pool { c: 2, in_h: 4, in_w: 4 };
        grad_check(&layer, 32, 12);
    }

    #[test]
    fn relu_gradients_check_out() {
        let layer = Layer::Relu;
        grad_check(&layer, 9, 13);
    }

    #[test]
    fn dense_forward_known_values() {
        let layer =
            Layer::Dense { w: vec![1.0, 2.0, 3.0, 4.0], b: vec![0.5, -0.5], in_dim: 2, out_dim: 2 };
        let y = layer.forward(&[10.0, 20.0]);
        assert_eq!(y, vec![10.0 + 40.0 + 0.5, 30.0 + 80.0 - 0.5]);
    }

    #[test]
    fn conv_forward_known_values() {
        // 1 channel 3x3 input, single 2x2 kernel of ones, bias 1.
        let layer = Layer::Conv {
            w: vec![1.0; 4],
            b: vec![1.0],
            in_c: 1,
            in_h: 3,
            in_w: 3,
            out_c: 1,
            k: 2,
        };
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let y = layer.forward(&x);
        assert_eq!(y, vec![13.0, 17.0, 25.0, 29.0]);
    }

    #[test]
    fn pool_forward_takes_maxima() {
        let layer = Layer::Pool { c: 1, in_h: 2, in_w: 4 };
        let y = layer.forward(&[1.0, 5.0, 2.0, 0.0, 3.0, 4.0, 8.0, 7.0]);
        assert_eq!(y, vec![5.0, 8.0]);
    }

    #[test]
    fn relu_clamps_negative() {
        let y = Layer::Relu.forward(&[-1.0, 0.0, 2.5]);
        assert_eq!(y, vec![0.0, 0.0, 2.5]);
    }

    #[test]
    fn out_len_shapes() {
        let mut rng = Xoshiro256::from_seed(3);
        assert_eq!(Layer::dense(10, 4, &mut rng).out_len(10), 4);
        assert_eq!(Layer::conv(1, 32, 32, 6, 5, &mut rng).out_len(1024), 6 * 28 * 28);
        assert_eq!(Layer::Pool { c: 6, in_h: 28, in_w: 28 }.out_len(6 * 28 * 28), 6 * 14 * 14);
        assert_eq!(Layer::Relu.out_len(42), 42);
    }
}
