//! Ristretto-style dynamic fixed-point quantization and approximate
//! inference.
//!
//! The paper quantizes both networks to 8-bit signed fixed point with the
//! Ristretto tool (§V-B): every layer gets power-of-two scales chosen by
//! range analysis ("dynamic fixed point"). Inference then runs on a
//! systolic array of 8-bit MACs. [`QuantizedNetwork`] mirrors that
//! pipeline in software: weights and activations are `i8`, every
//! `weight × activation` product is looked up in an [`OpTable`] — the
//! approximate multiplier under study — and accumulation is exact integer
//! arithmetic, as in the paper's MAC units (the accumulator has enough
//! guard bits by construction).

use crate::{Layer, Network};
use apx_arith::OpTable;
use apx_datasets::Dataset;

/// Fractional bits used for input pixels (pixels are in `0..=1`).
pub const INPUT_FRAC: i32 = 7;

/// Saturating 8-bit quantization of `v * 2^frac`.
#[inline]
fn quantize8(v: f32, frac: i32) -> i8 {
    let scaled = (v as f64 * (frac as f64).exp2()).round();
    scaled.clamp(-128.0, 127.0) as i8
}

/// Largest fractional-bit count `f` such that `max_abs · 2^f ≤ 127`,
/// clamped to `-16..=15`. Degenerate (all-zero) ranges get 7.
fn frac_for_max(max_abs: f64) -> i32 {
    if max_abs <= 0.0 {
        return 7;
    }
    let mut f = 15i32;
    while f > -16 && max_abs * (f as f64).exp2() > 127.0 {
        f -= 1;
    }
    f
}

/// Rounding arithmetic shift: `round(acc / 2^s)` (left shift for `s < 0`).
#[inline]
fn rshift_round(acc: i64, s: i32) -> i64 {
    match s.cmp(&0) {
        std::cmp::Ordering::Greater => (acc + (1i64 << (s - 1))) >> s,
        std::cmp::Ordering::Equal => acc,
        std::cmp::Ordering::Less => acc << (-s),
    }
}

#[inline]
fn sat8(v: i64) -> i8 {
    v.clamp(-128, 127) as i8
}

/// One quantized layer.
#[derive(Debug, Clone, PartialEq)]
enum QLayer {
    Dense {
        wq: Vec<i8>,
        bq: Vec<i64>,
        in_dim: usize,
        out_dim: usize,
        shift: i32,
    },
    Conv {
        wq: Vec<i8>,
        bq: Vec<i64>,
        in_c: usize,
        in_h: usize,
        in_w: usize,
        out_c: usize,
        k: usize,
        shift: i32,
    },
    Pool {
        c: usize,
        in_h: usize,
        in_w: usize,
    },
    Relu,
}

/// An 8-bit dynamic-fixed-point twin of a [`Network`], executable through
/// any multiplier [`OpTable`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedNetwork {
    input_dim: usize,
    layers: Vec<QLayer>,
    /// Fractional bits of each activation boundary (`layers.len() + 1`).
    act_fracs: Vec<i32>,
    /// Fractional bits of each layer's weights (0 for parameter-free).
    w_fracs: Vec<i32>,
}

impl QuantizedNetwork {
    /// Quantizes `net`, calibrating activation ranges on `calib`
    /// (a few dozen representative samples suffice — this is Ristretto's
    /// trimming analysis).
    ///
    /// # Panics
    ///
    /// Panics if `calib` is empty or its image size mismatches the net.
    #[must_use]
    pub fn quantize(net: &Network, calib: &Dataset) -> Self {
        assert!(!calib.is_empty(), "calibration set must be non-empty");
        // Range analysis: max |activation| at every layer boundary.
        let boundaries = net.layers().len() + 1;
        let mut max_abs = vec![0.0f64; boundaries];
        for (img, _) in calib.iter() {
            let trace = net.forward_trace(img);
            for (m, act) in max_abs.iter_mut().zip(&trace) {
                for &v in act {
                    *m = m.max(v.abs() as f64);
                }
            }
        }
        // Boundary fracs: fixed for the input; computed after Dense/Conv;
        // propagated unchanged through Relu/Pool (they copy i8 values).
        let mut act_fracs = vec![INPUT_FRAC; boundaries];
        for (i, layer) in net.layers().iter().enumerate() {
            act_fracs[i + 1] = match layer {
                Layer::Dense { .. } | Layer::Conv { .. } => frac_for_max(max_abs[i + 1]),
                Layer::Pool { .. } | Layer::Relu => act_fracs[i],
            };
        }
        let mut qnet = QuantizedNetwork {
            input_dim: net.input_dim(),
            layers: Vec::with_capacity(net.layers().len()),
            act_fracs,
            w_fracs: vec![0; net.layers().len()],
        };
        qnet.build_layers(net);
        qnet
    }

    /// (Re)quantizes weights and biases from `net`, keeping the activation
    /// scales fixed — the per-batch refresh of the fine-tuning loop.
    ///
    /// # Panics
    ///
    /// Panics if `net`'s architecture differs from the one quantized.
    pub fn requantize_weights(&mut self, net: &Network) {
        assert_eq!(net.layers().len(), self.w_fracs.len(), "architecture mismatch");
        self.build_layers(net);
    }

    fn build_layers(&mut self, net: &Network) {
        self.layers.clear();
        for (i, layer) in net.layers().iter().enumerate() {
            let in_frac = self.act_fracs[i];
            let out_frac = self.act_fracs[i + 1];
            let qlayer = match layer {
                Layer::Dense { w, b, in_dim, out_dim } => {
                    let (wq, bq, w_frac) = quantize_params(w, b, in_frac);
                    self.w_fracs[i] = w_frac;
                    QLayer::Dense {
                        wq,
                        bq,
                        in_dim: *in_dim,
                        out_dim: *out_dim,
                        shift: w_frac + in_frac - out_frac,
                    }
                }
                Layer::Conv { w, b, in_c, in_h, in_w, out_c, k } => {
                    let (wq, bq, w_frac) = quantize_params(w, b, in_frac);
                    self.w_fracs[i] = w_frac;
                    QLayer::Conv {
                        wq,
                        bq,
                        in_c: *in_c,
                        in_h: *in_h,
                        in_w: *in_w,
                        out_c: *out_c,
                        k: *k,
                        shift: w_frac + in_frac - out_frac,
                    }
                }
                Layer::Pool { c, in_h, in_w } => QLayer::Pool { c: *c, in_h: *in_h, in_w: *in_w },
                Layer::Relu => QLayer::Relu,
            };
            self.layers.push(qlayer);
        }
    }

    /// Quantizes an input image to `i8` activations.
    #[must_use]
    pub fn quantize_input(&self, img: &[f32]) -> Vec<i8> {
        img.iter().map(|&p| quantize8(p, INPUT_FRAC)).collect()
    }

    /// All quantized weights of the network — the sample set whose
    /// distribution defines WMED (Fig. 6 top).
    #[must_use]
    pub fn all_weights(&self) -> Vec<i64> {
        let mut out = Vec::new();
        for layer in &self.layers {
            match layer {
                QLayer::Dense { wq, .. } | QLayer::Conv { wq, .. } => {
                    out.extend(wq.iter().map(|&w| w as i64));
                }
                _ => {}
            }
        }
        out
    }

    /// Forward pass computing every product through `table`; returns the
    /// dequantized logits.
    ///
    /// # Panics
    ///
    /// Panics unless `table` is a signed 8-bit operator and the input size
    /// matches.
    #[must_use]
    pub fn forward_with(&self, img: &[f32], table: &OpTable) -> Vec<f32> {
        let trace = self.forward_trace_with(img, table);
        trace.into_iter().next_back().expect("at least the input boundary")
    }

    /// Forward pass returning the *dequantized* activation at every layer
    /// boundary (`layers.len() + 1` vectors). This is the surrogate trace
    /// the straight-through fine-tuner backpropagates through.
    ///
    /// # Panics
    ///
    /// Panics unless `table` is a signed 8-bit operator and the input size
    /// matches.
    #[must_use]
    pub fn forward_trace_with(&self, img: &[f32], table: &OpTable) -> Vec<Vec<f32>> {
        assert_eq!(table.width(), 8, "MAC multipliers are 8-bit");
        assert!(table.is_signed(), "MAC multipliers are signed");
        assert_eq!(img.len(), self.input_dim, "input size mismatch");
        let mut act = self.quantize_input(img);
        let mut trace = Vec::with_capacity(self.layers.len() + 1);
        trace.push(dequantize(&act, self.act_fracs[0]));
        for (i, layer) in self.layers.iter().enumerate() {
            act = match layer {
                QLayer::Dense { wq, bq, in_dim, out_dim, shift } => {
                    let mut y = Vec::with_capacity(*out_dim);
                    for o in 0..*out_dim {
                        let row = &wq[o * in_dim..(o + 1) * in_dim];
                        let mut acc = bq[o];
                        for (&w, &a) in row.iter().zip(&act) {
                            acc += table.get(w as i64, a as i64);
                        }
                        y.push(sat8(rshift_round(acc, *shift)));
                    }
                    y
                }
                QLayer::Conv { wq, bq, in_c, in_h, in_w, out_c, k, shift } => {
                    let (oh, ow) = (in_h - k + 1, in_w - k + 1);
                    let mut y = vec![0i8; out_c * oh * ow];
                    for oc in 0..*out_c {
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let mut acc = bq[oc];
                                for ic in 0..*in_c {
                                    for ky in 0..*k {
                                        let xrow = (ic * in_h + oy + ky) * in_w + ox;
                                        let wrow = ((oc * in_c + ic) * k + ky) * k;
                                        for kx in 0..*k {
                                            acc += table
                                                .get(wq[wrow + kx] as i64, act[xrow + kx] as i64);
                                        }
                                    }
                                }
                                y[(oc * oh + oy) * ow + ox] = sat8(rshift_round(acc, *shift));
                            }
                        }
                    }
                    y
                }
                QLayer::Pool { c, in_h, in_w } => {
                    let (oh, ow) = (in_h / 2, in_w / 2);
                    let mut y = vec![0i8; c * oh * ow];
                    for ch in 0..*c {
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let mut m = i8::MIN;
                                for dy in 0..2 {
                                    for dx in 0..2 {
                                        m = m.max(
                                            act[(ch * in_h + 2 * oy + dy) * in_w + 2 * ox + dx],
                                        );
                                    }
                                }
                                y[(ch * oh + oy) * ow + ox] = m;
                            }
                        }
                    }
                    y
                }
                QLayer::Relu => act.iter().map(|&v| v.max(0)).collect(),
            };
            trace.push(dequantize(&act, self.act_fracs[i + 1]));
        }
        trace
    }

    /// Class prediction through `table`.
    #[must_use]
    pub fn predict_with(&self, img: &[f32], table: &OpTable) -> usize {
        crate::network::argmax(&self.forward_with(img, table))
    }

    /// Classification accuracy through `table`.
    #[must_use]
    pub fn accuracy_with(&self, data: &Dataset, table: &OpTable) -> f64 {
        let correct = data
            .iter()
            .filter(|(img, label)| self.predict_with(img, table) == *label as usize)
            .count();
        correct as f64 / data.len().max(1) as f64
    }
}

fn dequantize(act: &[i8], frac: i32) -> Vec<f32> {
    let scale = (-(frac as f64)).exp2() as f32;
    act.iter().map(|&v| v as f32 * scale).collect()
}

/// Quantizes one layer's parameters: returns `(wq, bq, w_frac)` where the
/// bias is aligned to the product scale `w_frac + in_frac`.
fn quantize_params(w: &[f32], b: &[f32], in_frac: i32) -> (Vec<i8>, Vec<i64>, i32) {
    let max_abs = w.iter().fold(0.0f64, |m, &v| m.max(v.abs() as f64));
    let w_frac = frac_for_max(max_abs);
    let wq = w.iter().map(|&v| quantize8(v, w_frac)).collect();
    let bias_scale = ((w_frac + in_frac) as f64).exp2();
    let bq = b.iter().map(|&v| (v as f64 * bias_scale).round() as i64).collect();
    (wq, bq, w_frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{train, TrainConfig};
    use apx_datasets::mnist_like;
    use apx_rng::Xoshiro256;

    #[test]
    fn rshift_round_behaviour() {
        assert_eq!(rshift_round(10, 1), 5);
        assert_eq!(rshift_round(11, 1), 6); // round half up
        assert_eq!(rshift_round(-10, 1), -5);
        assert_eq!(rshift_round(7, 0), 7);
        assert_eq!(rshift_round(3, -2), 12);
        assert_eq!(rshift_round(255, 4), 16);
    }

    #[test]
    fn frac_for_max_picks_largest_legal() {
        assert_eq!(frac_for_max(1.0), 6); // 1.0 * 2^6 = 64 <= 127 < 2^7
        assert_eq!(frac_for_max(0.5), 7);
        assert_eq!(frac_for_max(100.0), 0);
        assert_eq!(frac_for_max(1000.0), -3);
        assert_eq!(frac_for_max(0.0), 7);
    }

    #[test]
    fn quantize8_saturates() {
        assert_eq!(quantize8(1.0, 7), 127); // 128 saturates
        assert_eq!(quantize8(-2.0, 7), -128);
        assert_eq!(quantize8(0.5, 7), 64);
    }

    #[test]
    fn known_dense_network_quantizes_correctly() {
        // y = 0.5*x0 - 0.25*x1 on inputs ~0.5 -> easily representable.
        let net = Network::new(
            2,
            vec![Layer::Dense { w: vec![0.5, -0.25], b: vec![0.125], in_dim: 2, out_dim: 1 }],
        );
        let calib = Dataset::new(2, 1, vec![vec![0.5, 0.5]], vec![0]);
        let qnet = QuantizedNetwork::quantize(&net, &calib);
        let exact = OpTable::exact_mul(8, true);
        let y = qnet.forward_with(&[0.5, 0.5], &exact);
        let expect = net.forward(&[0.5, 0.5]);
        assert!((y[0] - expect[0]).abs() < 0.02, "quantized {} vs float {}", y[0], expect[0]);
    }

    fn trained_mlp() -> (Network, Dataset, Dataset) {
        let data = mnist_like(500, 77);
        let (train_set, test_set) = data.split(400);
        let mut rng = Xoshiro256::from_seed(5);
        let mut net = Network::mlp(784, 32, 10, &mut rng);
        train(&mut net, &train_set, &TrainConfig { epochs: 20, lr: 0.03, ..Default::default() });
        (net, train_set, test_set)
    }

    #[test]
    fn quantization_preserves_accuracy_with_exact_multiplier() {
        let (net, train_set, test_set) = trained_mlp();
        let float_acc = net.accuracy(&test_set);
        let (calib, _) = train_set.split(64);
        let qnet = QuantizedNetwork::quantize(&net, &calib);
        let exact = OpTable::exact_mul(8, true);
        let q_acc = qnet.accuracy_with(&test_set, &exact);
        // Paper: 8-bit quantization costs ~0.01-0.1 %. Allow a few % here
        // (our nets are much smaller).
        assert!(q_acc >= float_acc - 0.05, "float {float_acc} vs quantized {q_acc}");
        assert!(q_acc > 0.6, "quantized accuracy {q_acc}");
    }

    #[test]
    fn weight_histogram_is_zero_centred() {
        let (net, train_set, _) = trained_mlp();
        let (calib, _) = train_set.split(64);
        let qnet = QuantizedNetwork::quantize(&net, &calib);
        let weights = qnet.all_weights();
        assert_eq!(weights.len(), net.weight_count());
        let near_zero = weights.iter().filter(|w| w.abs() <= 16).count();
        assert!(
            near_zero as f64 / weights.len() as f64 > 0.5,
            "trained weight distributions concentrate near zero"
        );
        let pmf = crate::weight_pmf(&qnet);
        assert!(pmf.prob_of(0) > pmf.prob_of(100));
    }

    #[test]
    fn harsher_multipliers_hurt_more() {
        let (net, train_set, test_set) = trained_mlp();
        let (calib, _) = train_set.split(64);
        let qnet = QuantizedNetwork::quantize(&net, &calib);
        let exact = OpTable::exact_mul(8, true);
        let mild =
            OpTable::from_netlist(&apx_arith::baugh_wooley_broken(8, 8, 4), 8, true).unwrap();
        let harsh =
            OpTable::from_netlist(&apx_arith::baugh_wooley_broken(8, 8, 12), 8, true).unwrap();
        let a_exact = qnet.accuracy_with(&test_set, &exact);
        let a_mild = qnet.accuracy_with(&test_set, &mild);
        let a_harsh = qnet.accuracy_with(&test_set, &harsh);
        assert!(a_mild >= a_harsh, "mild {a_mild} vs harsh {a_harsh}");
        assert!(a_exact >= a_harsh, "exact {a_exact} vs harsh {a_harsh}");
    }

    #[test]
    fn requantize_tracks_weight_changes() {
        let (mut net, train_set, _) = trained_mlp();
        let (calib, _) = train_set.split(64);
        let mut qnet = QuantizedNetwork::quantize(&net, &calib);
        let before = qnet.all_weights();
        // Perturb the float weights, requantize, observe the change.
        if let Some((w, _)) = net.layers_mut()[0].params_mut() {
            for v in w.iter_mut() {
                *v = -*v;
            }
        }
        qnet.requantize_weights(&net);
        assert_ne!(before, qnet.all_weights());
    }

    #[test]
    #[should_panic(expected = "signed")]
    fn unsigned_table_is_rejected() {
        let (net, train_set, _) = trained_mlp();
        let qnet = QuantizedNetwork::quantize(&net, &train_set.split(16).0);
        let _ = qnet.forward_with(&vec![0.0; 784], &OpTable::exact_mul(8, false));
    }
}
