//! Straight-through-estimator fine-tuning against an approximate
//! multiplier.
//!
//! Table I of the paper shows that retraining the quantized network *with
//! the approximate multiplier in the loop* recovers most of the accuracy
//! lost to deep approximations (e.g. −62.99 % → −5.04 % at WMED 10 % on
//! SVHN). The mechanism here is the standard straight-through estimator:
//! the forward pass runs through the quantized network with the
//! approximate [`OpTable`], while gradients are computed from the float
//! master weights using the approximate activations as layer caches.

use crate::train::{backprop_sample, sgd_step, ParamBuffers, TrainConfig};
use crate::{Network, QuantizedNetwork};
use apx_arith::OpTable;
use apx_datasets::Dataset;
use apx_rng::Xoshiro256;

/// Fine-tuning hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FinetuneConfig {
    /// Retraining passes over the data (the paper uses 10).
    pub iterations: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate (smaller than initial training).
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for FinetuneConfig {
    fn default() -> Self {
        FinetuneConfig { iterations: 10, batch_size: 32, lr: 0.01, momentum: 0.9, seed: 0 }
    }
}

/// Fine-tunes the float master weights of `net` so the *quantized* network
/// performs well when its products run through `table`.
///
/// `calib` fixes the activation scales (Ristretto range analysis); weights
/// are re-quantized before every mini-batch so the forward pass always
/// sees the current parameters. Returns the final quantized network.
///
/// # Panics
///
/// Panics if `data`/`calib` are empty or `table` is not a signed 8-bit
/// operator.
pub fn finetune(
    net: &mut Network,
    calib: &Dataset,
    table: &OpTable,
    data: &Dataset,
    cfg: &FinetuneConfig,
) -> QuantizedNetwork {
    assert!(!data.is_empty(), "cannot fine-tune on an empty dataset");
    assert!(cfg.batch_size > 0, "batch size must be positive");
    let mut qnet = QuantizedNetwork::quantize(net, calib);
    let mut rng = Xoshiro256::from_seed(cfg.seed);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut grads = ParamBuffers::zeros_like(net);
    let mut velocity = ParamBuffers::zeros_like(net);
    let sgd_cfg = TrainConfig {
        epochs: 1,
        batch_size: cfg.batch_size,
        lr: cfg.lr,
        momentum: cfg.momentum,
        weight_decay: 0.0,
        clip_norm: Some(4.0),
        seed: cfg.seed,
    };
    for _ in 0..cfg.iterations {
        rng.shuffle(&mut order);
        for chunk in order.chunks(cfg.batch_size) {
            qnet.requantize_weights(net);
            grads.clear();
            for &i in chunk {
                // STE: approximate quantized forward, float backward.
                let trace = qnet.forward_trace_with(data.image(i), table);
                let _ = backprop_sample(net, &trace, data.label(i) as usize, &mut grads);
            }
            sgd_step(net, &grads, &mut velocity, chunk.len(), &sgd_cfg);
        }
    }
    qnet.requantize_weights(net);
    qnet
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{train, TrainConfig};
    use apx_arith::baugh_wooley_broken;
    use apx_datasets::mnist_like;

    #[test]
    fn finetuning_recovers_accuracy_under_harsh_multiplier() {
        let data = mnist_like(400, 123);
        let (train_set, test_set) = data.split(300);
        let mut rng = Xoshiro256::from_seed(9);
        let mut net = Network::mlp(784, 24, 10, &mut rng);
        train(&mut net, &train_set, &TrainConfig { epochs: 20, lr: 0.03, ..Default::default() });
        let (calib, _) = train_set.split(48);
        let qnet = QuantizedNetwork::quantize(&net, &calib);
        let exact = OpTable::exact_mul(8, true);
        let harsh = OpTable::from_netlist(&baugh_wooley_broken(8, 8, 8), 8, true).unwrap();
        let acc_exact = qnet.accuracy_with(&test_set, &exact);
        let acc_before = qnet.accuracy_with(&test_set, &harsh);
        let tuned = finetune(
            &mut net,
            &calib,
            &harsh,
            &train_set,
            &FinetuneConfig { iterations: 4, lr: 0.02, ..Default::default() },
        );
        let acc_after = tuned.accuracy_with(&test_set, &harsh);
        assert!(
            acc_after > acc_before + 0.02,
            "fine-tuning should help: before {acc_before}, after {acc_after} (exact {acc_exact})"
        );
    }

    #[test]
    fn finetuning_with_exact_multiplier_does_not_destroy_accuracy() {
        let data = mnist_like(200, 321);
        let (train_set, test_set) = data.split(150);
        let mut rng = Xoshiro256::from_seed(10);
        let mut net = Network::mlp(784, 16, 10, &mut rng);
        train(&mut net, &train_set, &TrainConfig { epochs: 15, lr: 0.03, ..Default::default() });
        let (calib, _) = train_set.split(32);
        let exact = OpTable::exact_mul(8, true);
        let before = QuantizedNetwork::quantize(&net, &calib).accuracy_with(&test_set, &exact);
        let tuned = finetune(
            &mut net,
            &calib,
            &exact,
            &train_set,
            &FinetuneConfig { iterations: 2, ..Default::default() },
        );
        let after = tuned.accuracy_with(&test_set, &exact);
        assert!(after >= before - 0.05, "before {before}, after {after}");
    }

    #[test]
    fn finetune_is_deterministic() {
        let data = mnist_like(80, 55);
        let mut rng = Xoshiro256::from_seed(3);
        let base = Network::mlp(784, 8, 10, &mut rng);
        let table = OpTable::from_netlist(&baugh_wooley_broken(8, 7, 6), 8, true).unwrap();
        let run = || {
            let mut net = base.clone();
            let q = finetune(
                &mut net,
                &data,
                &table,
                &data,
                &FinetuneConfig { iterations: 1, ..Default::default() },
            );
            (net, q)
        };
        let (n1, q1) = run();
        let (n2, q2) = run();
        assert_eq!(n1, n2);
        assert_eq!(q1, q2);
    }
}
