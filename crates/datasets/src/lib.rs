//! Synthetic digit-classification datasets.
//!
//! The paper evaluates its approximate MAC units on MNIST (MLP) and SVHN
//! (LeNet-5). Neither dataset can be downloaded in this offline
//! reproduction, so this crate synthesizes equivalents (see ARCHITECTURE.md):
//! digits 0–9 are rendered from vector strokes with randomized pose,
//! thickness and noise.
//!
//! * [`mnist_like`] — 28×28, clean white-on-black digits (easy, like
//!   MNIST's ~98 % MLP accuracy regime);
//! * [`svhn_like`] — 32×32, digits over cluttered backgrounds with
//!   distractor fragments and heavier noise (harder, like SVHN's ~91 %
//!   LeNet regime).
//!
//! Every image is deterministic in the seed, so experiments reproduce
//! exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod digits;

use apx_rng::Xoshiro256;
pub use digits::render_digit;

/// A labelled image-classification dataset (pixels normalized to `0..=1`).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    width: usize,
    height: usize,
    images: Vec<Vec<f32>>,
    labels: Vec<u8>,
}

impl Dataset {
    /// Builds a dataset from parallel image/label vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors disagree in length or an image has the wrong
    /// number of pixels.
    #[must_use]
    pub fn new(width: usize, height: usize, images: Vec<Vec<f32>>, labels: Vec<u8>) -> Self {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        for img in &images {
            assert_eq!(img.len(), width * height, "image size mismatch");
        }
        Dataset { width, height, images, labels }
    }

    /// Image width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the dataset has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Pixels of sample `i` (row-major, `0..=1`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn image(&self, i: usize) -> &[f32] {
        &self.images[i]
    }

    /// Label (0–9) of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn label(&self, i: usize) -> u8 {
        self.labels[i]
    }

    /// Iterates over `(pixels, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f32], u8)> {
        self.images.iter().map(Vec::as_slice).zip(self.labels.iter().copied())
    }

    /// Splits off the first `n` samples as a new dataset (train/test).
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    #[must_use]
    pub fn split(&self, n: usize) -> (Dataset, Dataset) {
        assert!(n <= self.len(), "split point beyond dataset");
        let head = Dataset {
            width: self.width,
            height: self.height,
            images: self.images[..n].to_vec(),
            labels: self.labels[..n].to_vec(),
        };
        let tail = Dataset {
            width: self.width,
            height: self.height,
            images: self.images[n..].to_vec(),
            labels: self.labels[n..].to_vec(),
        };
        (head, tail)
    }

    /// Count of samples per class label.
    #[must_use]
    pub fn class_counts(&self) -> [usize; 10] {
        let mut counts = [0usize; 10];
        for &l in &self.labels {
            counts[l as usize] += 1;
        }
        counts
    }
}

/// Generates an MNIST-like dataset: `n` samples of 28×28 white-on-black
/// digits with randomized pose and light noise; labels cycle 0–9 so
/// classes stay balanced.
#[must_use]
pub fn mnist_like(n: usize, seed: u64) -> Dataset {
    let mut rng = Xoshiro256::from_seed(seed ^ 0x0A11CE);
    let (w, h) = (28, 28);
    let mut images = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let digit = (i % 10) as u8;
        let mut sub = rng.fork(i as u64);
        let pose = digits::Pose {
            scale: 0.62 + sub.f64() * 0.25,
            rotation: (sub.f64() - 0.5) * 0.45,
            dx: (sub.f64() - 0.5) * 4.0,
            dy: (sub.f64() - 0.5) * 4.0,
            thickness: 0.050 + sub.f64() * 0.045,
        };
        let mut img = digits::render_digit_posed(digit, w, h, &pose);
        let sigma = 0.01 + sub.f64() * 0.03;
        for p in &mut img {
            *p = (*p + sub.normal(0.0, sigma) as f32).clamp(0.0, 1.0);
        }
        images.push(img);
        labels.push(digit);
    }
    Dataset::new(w, h, images, labels)
}

/// Generates an SVHN-like dataset: `n` samples of 32×32 digits over
/// cluttered gradient backgrounds with distractor digit fragments and
/// heavier noise — measurably harder than [`mnist_like`], mirroring the
/// MNIST-vs-SVHN difficulty gap of the paper.
#[must_use]
pub fn svhn_like(n: usize, seed: u64) -> Dataset {
    let mut rng = Xoshiro256::from_seed(seed ^ 0x54E11);
    let (w, h) = (32, 32);
    let mut images = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let digit = (i % 10) as u8;
        let mut sub = rng.fork(i as u64);
        // Background: oriented gradient with random intensity band.
        let base = 0.15 + sub.f64() as f32 * 0.35;
        let gx = (sub.f64() as f32 - 0.5) * 0.02;
        let gy = (sub.f64() as f32 - 0.5) * 0.02;
        let mut img: Vec<f32> = (0..w * h)
            .map(|idx| {
                let (x, y) = ((idx % w) as f32, (idx / w) as f32);
                (base + gx * x + gy * y).clamp(0.0, 1.0)
            })
            .collect();
        // Distractor fragment: a partial neighbouring digit at the edge.
        let distractor = sub.gen_range(10) as u8;
        let dpose = digits::Pose {
            scale: 0.5 + sub.f64() * 0.2,
            rotation: (sub.f64() - 0.5) * 0.4,
            dx: if sub.bernoulli(0.5) { -13.0 } else { 13.0 },
            dy: (sub.f64() - 0.5) * 6.0,
            thickness: 0.05 + sub.f64() * 0.03,
        };
        let frag = digits::render_digit_posed(distractor, w, h, &dpose);
        let frag_gain = 0.25 + sub.f64() as f32 * 0.25;
        for (p, f) in img.iter_mut().zip(&frag) {
            *p = (*p + frag_gain * f).clamp(0.0, 1.0);
        }
        // The labelled digit, centred, brighter than the background.
        let pose = digits::Pose {
            scale: 0.55 + sub.f64() * 0.2,
            rotation: (sub.f64() - 0.5) * 0.35,
            dx: (sub.f64() - 0.5) * 3.0,
            dy: (sub.f64() - 0.5) * 3.0,
            thickness: 0.055 + sub.f64() * 0.04,
        };
        let glyph = digits::render_digit_posed(digit, w, h, &pose);
        let gain = 0.55 + sub.f64() as f32 * 0.35;
        for (p, g) in img.iter_mut().zip(&glyph) {
            *p = (*p + gain * g).clamp(0.0, 1.0);
        }
        // Heavier sensor noise.
        let sigma = 0.04 + sub.f64() * 0.05;
        for p in &mut img {
            *p = (*p + sub.normal(0.0, sigma) as f32).clamp(0.0, 1.0);
        }
        images.push(img);
        labels.push(digit);
    }
    Dataset::new(w, h, images, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Nearest-centroid accuracy — a crude classifier proving the classes
    /// are separable (and how separable).
    fn centroid_accuracy(train: &Dataset, test: &Dataset) -> f64 {
        let dim = train.width() * train.height();
        let mut centroids = vec![vec![0.0f64; dim]; 10];
        let counts = train.class_counts();
        for (img, label) in train.iter() {
            for (c, &p) in centroids[label as usize].iter_mut().zip(img) {
                *c += p as f64;
            }
        }
        for (c, &n) in centroids.iter_mut().zip(&counts) {
            for v in c.iter_mut() {
                *v /= n.max(1) as f64;
            }
        }
        let mut correct = 0usize;
        for (img, label) in test.iter() {
            let best = (0..10)
                .min_by(|&a, &b| {
                    let da: f64 =
                        centroids[a].iter().zip(img).map(|(c, &p)| (c - p as f64).powi(2)).sum();
                    let db: f64 =
                        centroids[b].iter().zip(img).map(|(c, &p)| (c - p as f64).powi(2)).sum();
                    da.total_cmp(&db)
                })
                .unwrap();
            if best as u8 == label {
                correct += 1;
            }
        }
        correct as f64 / test.len() as f64
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(mnist_like(20, 5), mnist_like(20, 5));
        assert_eq!(svhn_like(20, 5), svhn_like(20, 5));
        assert_ne!(mnist_like(20, 5), mnist_like(20, 6));
    }

    #[test]
    fn shapes_and_ranges() {
        let m = mnist_like(30, 1);
        assert_eq!((m.width(), m.height()), (28, 28));
        let s = svhn_like(30, 1);
        assert_eq!((s.width(), s.height()), (32, 32));
        for ds in [&m, &s] {
            for (img, label) in ds.iter() {
                assert!(label < 10);
                assert!(img.iter().all(|&p| (0.0..=1.0).contains(&p)));
            }
        }
    }

    #[test]
    fn labels_are_balanced() {
        let ds = mnist_like(200, 3);
        for (digit, &count) in ds.class_counts().iter().enumerate() {
            assert_eq!(count, 20, "digit {digit}");
        }
    }

    #[test]
    fn split_partitions_in_order() {
        let ds = mnist_like(50, 2);
        let (train, test) = ds.split(40);
        assert_eq!(train.len(), 40);
        assert_eq!(test.len(), 10);
        assert_eq!(train.image(0), ds.image(0));
        assert_eq!(test.label(0), ds.label(40));
    }

    #[test]
    fn mnist_like_is_linearly_separable_enough() {
        let train = mnist_like(600, 11);
        let test = mnist_like(200, 12);
        let acc = centroid_accuracy(&train, &test);
        assert!(acc > 0.6, "centroid accuracy {acc} too low — classes not separable");
    }

    #[test]
    fn svhn_like_is_harder_than_mnist_like() {
        let m_train = mnist_like(600, 21);
        let m_test = mnist_like(200, 22);
        let s_train = svhn_like(600, 21);
        let s_test = svhn_like(200, 22);
        let m_acc = centroid_accuracy(&m_train, &m_test);
        let s_acc = centroid_accuracy(&s_train, &s_test);
        assert!(s_acc < m_acc, "svhn-like ({s_acc}) should be harder than mnist-like ({m_acc})");
        assert!(s_acc > 0.2, "svhn-like must still be learnable, got {s_acc}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_labels_panic() {
        let _ = Dataset::new(2, 2, vec![vec![0.0; 4]], vec![]);
    }
}
