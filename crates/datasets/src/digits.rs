//! Vector-stroke digit glyphs and rasterization.

/// Pose parameters for rendering a glyph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pose {
    /// Glyph size relative to the canvas (1.0 fills it).
    pub scale: f64,
    /// Rotation in radians (positive = counter-clockwise).
    pub rotation: f64,
    /// Horizontal translation in pixels.
    pub dx: f64,
    /// Vertical translation in pixels.
    pub dy: f64,
    /// Stroke half-width relative to the canvas (e.g. 0.06).
    pub thickness: f64,
}

impl Default for Pose {
    fn default() -> Self {
        Pose { scale: 0.8, rotation: 0.0, dx: 0.0, dy: 0.0, thickness: 0.06 }
    }
}

/// Polyline strokes of the ten digits in the unit square
/// (x right, y down, glyph roughly centred at (0.5, 0.5)).
fn strokes(digit: u8) -> Vec<Vec<(f64, f64)>> {
    let oval = |cx: f64, cy: f64, rx: f64, ry: f64| -> Vec<(f64, f64)> {
        (0..=16)
            .map(|i| {
                let t = i as f64 / 16.0 * std::f64::consts::TAU;
                (cx + rx * t.cos(), cy + ry * t.sin())
            })
            .collect()
    };
    let arc = |cx: f64, cy: f64, rx: f64, ry: f64, a0: f64, a1: f64| -> Vec<(f64, f64)> {
        (0..=10)
            .map(|i| {
                let t = a0 + (a1 - a0) * i as f64 / 10.0;
                (cx + rx * t.cos(), cy + ry * t.sin())
            })
            .collect()
    };
    match digit {
        0 => vec![oval(0.5, 0.5, 0.26, 0.38)],
        1 => vec![vec![(0.35, 0.28), (0.52, 0.12), (0.52, 0.88)]],
        2 => vec![{
            let mut s = arc(0.5, 0.30, 0.24, 0.19, -std::f64::consts::PI, 0.35);
            s.extend([(0.26, 0.88), (0.76, 0.88)]);
            s
        }],
        3 => vec![arc(0.46, 0.31, 0.24, 0.20, -2.6, 1.25), arc(0.46, 0.69, 0.26, 0.22, -1.25, 2.6)],
        4 => vec![vec![(0.62, 0.12), (0.24, 0.62), (0.80, 0.62)], vec![(0.62, 0.12), (0.62, 0.88)]],
        5 => vec![{
            let mut s = vec![(0.72, 0.12), (0.30, 0.12), (0.28, 0.47)];
            s.extend(arc(0.47, 0.65, 0.26, 0.24, -1.35, 2.5));
            s
        }],
        6 => vec![{
            let mut s = vec![(0.62, 0.10), (0.34, 0.48)];
            s.extend(oval(0.5, 0.66, 0.22, 0.22));
            s
        }],
        7 => vec![vec![(0.24, 0.12), (0.78, 0.12), (0.42, 0.88)], vec![(0.34, 0.50), (0.66, 0.50)]],
        8 => vec![oval(0.5, 0.30, 0.20, 0.18), oval(0.5, 0.68, 0.24, 0.21)],
        9 => vec![{
            let mut s = oval(0.5, 0.34, 0.22, 0.22);
            s.extend([(0.72, 0.34), (0.66, 0.88)]);
            s
        }],
        _ => panic!("digit must be 0..=9"),
    }
}

fn dist_to_segment(p: (f64, f64), a: (f64, f64), b: (f64, f64)) -> f64 {
    let (px, py) = (p.0 - a.0, p.1 - a.1);
    let (vx, vy) = (b.0 - a.0, b.1 - a.1);
    let len2 = vx * vx + vy * vy;
    let t = if len2 > 0.0 { ((px * vx + py * vy) / len2).clamp(0.0, 1.0) } else { 0.0 };
    let (ex, ey) = (px - t * vx, py - t * vy);
    (ex * ex + ey * ey).sqrt()
}

/// Renders digit `digit` with `pose` onto a `width × height` canvas.
///
/// Returns row-major intensities in `0..=1` (1 = stroke core) with a soft
/// anti-aliased edge.
///
/// # Panics
///
/// Panics if `digit > 9` or a canvas dimension is zero.
#[must_use]
pub fn render_digit_posed(digit: u8, width: usize, height: usize, pose: &Pose) -> Vec<f32> {
    assert!(width > 0 && height > 0, "canvas dimensions must be positive");
    let glyph = strokes(digit);
    let (sin, cos) = pose.rotation.sin_cos();
    let cx = width as f64 / 2.0 + pose.dx;
    let cy = height as f64 / 2.0 + pose.dy;
    let size = width.min(height) as f64 * pose.scale;
    // Transform glyph points from unit space to canvas space.
    let tf = |(gx, gy): (f64, f64)| -> (f64, f64) {
        let (ux, uy) = (gx - 0.5, gy - 0.5);
        let (rx, ry) = (ux * cos - uy * sin, ux * sin + uy * cos);
        (cx + rx * size, cy + ry * size)
    };
    let segments: Vec<((f64, f64), (f64, f64))> = glyph
        .iter()
        .flat_map(|poly| poly.windows(2).map(|w| (tf(w[0]), tf(w[1]))).collect::<Vec<_>>())
        .collect();
    let half_width = pose.thickness * width.min(height) as f64;
    let soft = half_width * 0.8 + 0.5;
    let mut out = vec![0.0f32; width * height];
    for y in 0..height {
        for x in 0..width {
            let p = (x as f64 + 0.5, y as f64 + 0.5);
            let mut d = f64::INFINITY;
            for &(a, b) in &segments {
                d = d.min(dist_to_segment(p, a, b));
                if d <= half_width {
                    break;
                }
            }
            let v = if d <= half_width {
                1.0
            } else if d < half_width + soft {
                1.0 - (d - half_width) / soft
            } else {
                0.0
            };
            out[y * width + x] = v as f32;
        }
    }
    out
}

/// Renders digit `digit` centred with the default pose.
///
/// # Panics
///
/// Panics if `digit > 9` or a canvas dimension is zero.
#[must_use]
pub fn render_digit(digit: u8, width: usize, height: usize) -> Vec<f32> {
    render_digit_posed(digit, width, height, &Pose::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_digits_render_nonempty() {
        for d in 0..10u8 {
            let img = render_digit(d, 28, 28);
            let ink: f32 = img.iter().sum();
            assert!(ink > 10.0, "digit {d} almost empty ({ink})");
            assert!(ink < (28 * 28) as f32 * 0.6, "digit {d} floods the canvas ({ink})");
        }
    }

    #[test]
    fn digits_are_pairwise_distinct() {
        let renders: Vec<Vec<f32>> = (0..10).map(|d| render_digit(d, 28, 28)).collect();
        for i in 0..10 {
            for j in i + 1..10 {
                let diff: f32 =
                    renders[i].iter().zip(&renders[j]).map(|(a, b)| (a - b).abs()).sum();
                assert!(diff > 20.0, "digits {i} and {j} too similar (diff {diff})");
            }
        }
    }

    #[test]
    fn pose_translation_moves_ink() {
        let centre = render_digit_posed(1, 28, 28, &Pose::default());
        let shifted = render_digit_posed(1, 28, 28, &Pose { dx: 6.0, ..Pose::default() });
        assert_ne!(centre, shifted);
        let com = |img: &[f32]| -> f64 {
            let total: f32 = img.iter().sum();
            img.iter().enumerate().map(|(i, &v)| (i % 28) as f64 * v as f64).sum::<f64>()
                / total as f64
        };
        assert!(com(&shifted) > com(&centre) + 3.0);
    }

    #[test]
    fn rotation_changes_render() {
        let a = render_digit_posed(7, 28, 28, &Pose::default());
        let b = render_digit_posed(7, 28, 28, &Pose { rotation: 0.5, ..Pose::default() });
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "0..=9")]
    fn bad_digit_panics() {
        let _ = render_digit(10, 28, 28);
    }
}
