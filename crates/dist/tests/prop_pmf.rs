//! Property-based tests on PMF invariants: every constructor yields a
//! normalized distribution over the full `2^width` domain, and the
//! derived quantities (entropy, mixtures, samples) respect their bounds.

use apx_dist::Pmf;
use apx_rng::Xoshiro256;
use proptest::prelude::*;

/// Sigma bounded away from zero relative to the domain so the discretized
/// Gaussian tails never underflow to exact 0.0 (constructors then have
/// full support, which is what the analytic distributions guarantee
/// mathematically).
fn safe_sigma(width: u32, raw: f64) -> f64 {
    let n = (1u64 << width) as f64;
    n / 16.0 + raw * n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn constructors_are_normalized_with_full_support(
        width in 1u32..=8,
        sigma_raw in 0.0f64..4.0,
        mean_raw in 0.0f64..1.0,
    ) {
        let n = 1usize << width;
        let sigma = safe_sigma(width, sigma_raw);
        let mean = mean_raw * n as f64;
        let signed_mean = (mean_raw - 0.5) * n as f64 / 2.0;
        for pmf in [
            Pmf::uniform(width),
            Pmf::half_normal(width, sigma),
            Pmf::normal(width, mean, sigma),
            Pmf::signed_normal(width, signed_mean, sigma),
        ] {
            prop_assert_eq!(pmf.width(), width);
            prop_assert_eq!(pmf.len(), n);
            prop_assert_eq!(pmf.support_size(), 1usize << pmf.width());
            let total: f64 = pmf.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "sum {total}");
            prop_assert!(pmf.iter().all(|p| p > 0.0 && p <= 1.0));
            prop_assert!(pmf.entropy() >= 0.0);
            prop_assert!(pmf.entropy() <= width as f64 + 1e-9, "entropy <= width bits");
            prop_assert!(pmf.mean_raw() >= 0.0);
            prop_assert!(pmf.mean_raw() <= (n - 1) as f64);
        }
    }

    #[test]
    fn from_weights_is_proportional_normalization(
        weights in proptest::collection::vec(0.0f64..5.0, 16),
    ) {
        let total: f64 = weights.iter().sum();
        prop_assume!(total > 0.0);
        let pmf = Pmf::from_weights(4, weights.clone()).unwrap();
        prop_assert_eq!(pmf.len(), 16);
        let sum: f64 = pmf.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for (x, &w) in weights.iter().enumerate() {
            prop_assert!((pmf.prob(x) - w / total).abs() < 1e-12);
        }
        prop_assert_eq!(pmf.support_size(), weights.iter().filter(|&&w| w > 0.0).count());
    }

    #[test]
    fn from_samples_matches_counts(
        signed_samples in proptest::collection::vec(-128i64..128, 1..200),
        unsigned_samples in proptest::collection::vec(0i64..256, 1..200),
    ) {
        for (samples, signed) in [(&signed_samples, true), (&unsigned_samples, false)] {
            let pmf = Pmf::from_samples_i64(8, samples, signed).unwrap();
            let sum: f64 = pmf.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            // Signed values fold into their raw two's-complement encoding,
            // so compare through the raw index.
            for raw in 0..256usize {
                let raw_count =
                    samples.iter().filter(|&&s| (s as u64 & 0xFF) as usize == raw).count();
                prop_assert!(
                    (pmf.prob(raw) - raw_count as f64 / samples.len() as f64).abs() < 1e-12
                );
            }
        }
    }

    #[test]
    fn from_samples_rejects_the_other_encoding(
        high in 128i64..256,
        low in -128i64..0,
    ) {
        // Each encoding's exclusive range must be rejected by the other.
        prop_assert!(matches!(
            Pmf::from_samples_i64(8, &[0, high], true),
            Err(apx_dist::PmfError::SampleOutOfRange { index: 1, .. })
        ));
        prop_assert!(matches!(
            Pmf::from_samples_i64(8, &[0, low], false),
            Err(apx_dist::PmfError::SampleOutOfRange { index: 1, .. })
        ));
    }

    #[test]
    fn mix_is_normalized_and_linear(
        wa in proptest::collection::vec(0.1f64..5.0, 16),
        wb in proptest::collection::vec(0.1f64..5.0, 16),
        t in 0.0f64..=1.0,
    ) {
        let a = Pmf::from_weights(4, wa).unwrap();
        let b = Pmf::from_weights(4, wb).unwrap();
        let m = a.mix(&b, t);
        let sum: f64 = m.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for x in 0..16 {
            let expect = (1.0 - t) * a.prob(x) + t * b.prob(x);
            prop_assert!((m.prob(x) - expect).abs() < 1e-15);
        }
        // Mixing cannot push entropy below the minimum of the parts by
        // concavity; just check the bounds hold.
        prop_assert!(m.entropy() >= 0.0 && m.entropy() <= 4.0 + 1e-9);
    }

    #[test]
    fn sampler_only_emits_support_values(
        weights in proptest::collection::vec(0.0f64..1.0, 16),
        seed in 0u64..1000,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let pmf = Pmf::from_weights(4, weights).unwrap();
        let sampler = pmf.sampler();
        let mut rng = Xoshiro256::from_seed(seed);
        for _ in 0..256 {
            let x = sampler.sample(&mut rng);
            prop_assert!(x < 16);
            prop_assert!(pmf.prob(x) > 0.0, "sampled zero-probability value {x}");
        }
    }

    #[test]
    fn sampler_never_draws_interior_zero_probability_values(
        gap_at in 1usize..15,
        gap_len in 1usize..6,
        seed in proptest::prelude::any::<u64>(),
    ) {
        // A distribution with a run of interior zeros: the CDF has a flat
        // step exactly at the boundary shared with the preceding
        // positive-probability value. 10^5 draws must never produce a
        // zero-probability value, even when `u` lands exactly on a step.
        let mut weights = vec![1.0f64; 16];
        for w in &mut weights[gap_at..(gap_at + gap_len).min(15)] {
            *w = 0.0;
        }
        let pmf = Pmf::from_weights(4, weights).unwrap();
        let sampler = pmf.sampler();
        let mut rng = Xoshiro256::from_seed(seed);
        for _ in 0..100_000 {
            let x = sampler.sample(&mut rng);
            prop_assert!(pmf.prob(x) > 0.0, "drew zero-probability value {x}");
        }
    }

    #[test]
    fn prob_of_agrees_with_raw_indexing(width in 1u32..=8, sigma_raw in 0.0f64..2.0) {
        let pmf = Pmf::half_normal(width, safe_sigma(width, sigma_raw));
        let n = 1i64 << width;
        for raw in 0..n {
            prop_assert!((pmf.prob_of(raw) - pmf.prob(raw as usize)).abs() < 1e-15);
        }
        for v in -(n / 2)..0 {
            let raw = (v + n) as usize;
            prop_assert!((pmf.prob_of(v) - pmf.prob(raw)).abs() < 1e-15);
        }
        prop_assert_eq!(pmf.prob_of(n), 0.0);
        prop_assert_eq!(pmf.prob_of(-(n / 2) - 1), 0.0);
    }
}
