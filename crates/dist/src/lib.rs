//! Input probability mass functions — the `D` of the paper's WMED metric.
//!
//! "Automated Circuit Approximation Method Driven by Data Distribution"
//! (Vasicek, Mrazek, Sekanina — DATE 2019) replaces the conventional mean
//! error distance with a **weighted** mean error distance in which every
//! input vector contributes proportionally to how often the target
//! application feeds it to the circuit. For a `w`-bit operand `x` drawn
//! from a distribution `D` and a second, uniformly distributed operand
//! `y`, the metric evaluated by `apx_metrics` is
//!
//! ```text
//!             Σ_x D(x) · Σ_y | O(x, y) − O*(x, y) |
//! WMED(D)  =  ─────────────────────────────────────        (Eq. WMED)
//!                      2^w · 2^(2w)
//! ```
//!
//! where `O` is the approximate operator, `O*` the exact one, and the
//! denominator normalizes by the number of `y` values and the output
//! range. [`Pmf`] is the `D` in that equation: a normalized probability
//! mass function over the `2^w` raw encodings of a `w`-bit operand.
//!
//! Distributions can be analytic (the paper's D1 [`Pmf::normal`] and D2
//! [`Pmf::half_normal`], the reference [`Pmf::uniform`], the signed
//! [`Pmf::signed_normal`] for two's-complement operands), given explicitly
//! ([`Pmf::from_weights`]), or *measured* from application data
//! ([`Pmf::from_samples_i64`] — e.g. the quantized weights of a neural
//! network, Fig. 6 of the paper).
//!
//! Signedness is a matter of interpretation, not representation: the PMF
//! always stores probabilities indexed by the **raw** (two's-complement)
//! encoding `0..2^w`, and [`Pmf::prob_of`] accepts signed values by
//! wrapping them into that encoding.
//!
//! # Examples
//!
//! ```
//! use apx_dist::Pmf;
//!
//! // The paper's D2: half-normal, concentrated on small operands.
//! let d2 = Pmf::half_normal(8, 48.0);
//! assert_eq!(d2.width(), 8);
//! assert_eq!(d2.len(), 256);
//! assert!((d2.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! assert!(d2.prob(0) > d2.prob(255));
//!
//! // A measured distribution (e.g. NN weights) over signed 8-bit values.
//! let measured = Pmf::from_samples_i64(8, &[-2, -1, 0, 0, 0, 1, 2], true)?;
//! assert!(measured.prob_of(0) > measured.prob_of(1));
//! assert_eq!(measured.prob_of(100), 0.0);
//! # Ok::<(), apx_dist::PmfError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use apx_rng::Xoshiro256;
use std::fmt;

/// Maximum supported operand width in bits (the PMF stores `2^w` entries).
pub const MAX_WIDTH: u32 = 16;

/// The standard FNV-1a 64-bit offset basis.
pub const FNV1A64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a, 64-bit, from the given offset basis — the workspace's one
/// dependency-free stable hash, shared by [`Pmf::content_digest`] and the
/// content-addressed cache keys built on top of it (`apx_core::cache`).
/// Stable by spec; both consumers pin the resulting digests with
/// golden-value tests.
#[must_use]
pub fn fnv1a64(bytes: &[u8], offset: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = offset;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h
}

/// Error constructing a [`Pmf`] from explicit weights or samples.
#[derive(Debug, Clone, PartialEq)]
pub enum PmfError {
    /// The weight vector length does not equal `2^width`.
    BadLength(usize),
    /// A weight is negative, NaN or infinite.
    InvalidWeight {
        /// Position of the offending weight.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// All weights are zero — no value has any probability mass.
    EmptySupport,
    /// An empty sample set was given.
    NoSamples,
    /// A sample is outside the requested encoding of the operand width:
    /// `0..2^w` unsigned, `-2^(w-1)..2^(w-1)` signed.
    SampleOutOfRange {
        /// Position of the offending sample.
        index: usize,
        /// The offending value.
        value: i64,
    },
}

impl fmt::Display for PmfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmfError::BadLength(n) => {
                write!(f, "weight vector has {n} entries, which is not 2^width for the requested operand width")
            }
            PmfError::InvalidWeight { index, value } => {
                write!(f, "weight at index {index} is {value}, expected finite and non-negative")
            }
            PmfError::EmptySupport => write!(f, "all weights are zero (empty support)"),
            PmfError::NoSamples => write!(f, "cannot estimate a distribution from zero samples"),
            PmfError::SampleOutOfRange { index, value } => {
                write!(f, "sample at index {index} is {value}, outside the operand range")
            }
        }
    }
}

impl std::error::Error for PmfError {}

/// A probability mass function over the `2^w` raw encodings of a `w`-bit
/// operand — the distribution `D` of the paper's WMED (Eq. WMED in the
/// crate docs).
///
/// Invariants, established by every constructor:
///
/// * `len() == 1 << width()`;
/// * every probability is finite and non-negative;
/// * the probabilities sum to 1 (up to floating-point rounding);
/// * at least one probability is strictly positive.
#[derive(Debug, Clone, PartialEq)]
pub struct Pmf {
    width: u32,
    probs: Vec<f64>,
}

fn domain_size(width: u32) -> usize {
    assert!((1..=MAX_WIDTH).contains(&width), "pmf width must be in 1..={MAX_WIDTH}, got {width}");
    1usize << width
}

impl Pmf {
    /// The uniform distribution — reduces WMED to the conventional MED.
    #[must_use]
    pub fn uniform(width: u32) -> Self {
        let n = domain_size(width);
        Self { width, probs: vec![1.0 / n as f64; n] }
    }

    /// Discretized half-normal distribution `D(x) ∝ exp(−x²/2σ²)` over the
    /// unsigned values `0..2^w` — the paper's D2, concentrated on small
    /// operands.
    ///
    /// # Panics
    ///
    /// Panics on an invalid width or a non-finite or non-positive `sigma`.
    #[must_use]
    pub fn half_normal(width: u32, sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma > 0.0, "sigma must be finite and positive");
        let n = domain_size(width);
        let weights: Vec<f64> = (0..n).map(|x| (-0.5 * (x as f64 / sigma).powi(2)).exp()).collect();
        Self::normalized(width, weights)
    }

    /// Discretized normal distribution `D(x) ∝ exp(−(x−μ)²/2σ²)` over the
    /// unsigned values `0..2^w` — the paper's D1.
    ///
    /// # Panics
    ///
    /// Panics on an invalid width, a non-finite `mean`, or a non-finite or
    /// non-positive `sigma`.
    #[must_use]
    pub fn normal(width: u32, mean: f64, sigma: f64) -> Self {
        assert!(mean.is_finite(), "mean must be finite");
        assert!(sigma.is_finite() && sigma > 0.0, "sigma must be finite and positive");
        let n = domain_size(width);
        let weights: Vec<f64> =
            (0..n).map(|x| (-0.5 * ((x as f64 - mean) / sigma).powi(2)).exp()).collect();
        Self::normalized(width, weights)
    }

    /// Discretized normal distribution over the **signed** values
    /// `−2^(w−1)..2^(w−1)`, stored by two's-complement raw encoding — the
    /// shape of measured NN weight distributions (Fig. 6 top).
    ///
    /// # Panics
    ///
    /// Panics on an invalid width, a non-finite `mean`, or a non-finite or
    /// non-positive `sigma`.
    #[must_use]
    pub fn signed_normal(width: u32, mean: f64, sigma: f64) -> Self {
        assert!(mean.is_finite(), "mean must be finite");
        assert!(sigma.is_finite() && sigma > 0.0, "sigma must be finite and positive");
        let n = domain_size(width);
        let half = (n / 2) as i64;
        let mut weights = vec![0.0; n];
        for v in -half..half {
            let raw = (v as u64 & (n as u64 - 1)) as usize;
            weights[raw] = (-0.5 * ((v as f64 - mean) / sigma).powi(2)).exp();
        }
        Self::normalized(width, weights)
    }

    /// A distribution proportional to the given `2^width` non-negative
    /// weights (they need not sum to 1 — they are normalized here).
    ///
    /// # Errors
    ///
    /// * [`PmfError::BadLength`] unless `weights.len() == 2^width`;
    /// * [`PmfError::InvalidWeight`] on a negative, NaN or infinite weight;
    /// * [`PmfError::EmptySupport`] when every weight is zero.
    ///
    /// # Panics
    ///
    /// Panics on an invalid width.
    pub fn from_weights(width: u32, weights: Vec<f64>) -> Result<Self, PmfError> {
        let n = domain_size(width);
        if weights.len() != n {
            return Err(PmfError::BadLength(weights.len()));
        }
        for (index, &value) in weights.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(PmfError::InvalidWeight { index, value });
            }
        }
        if weights.iter().sum::<f64>() <= 0.0 {
            return Err(PmfError::EmptySupport);
        }
        Ok(Self::normalized(width, weights))
    }

    /// The empirical distribution of `samples` — the *measured* `D` of the
    /// paper's application-driven flow (e.g. all quantized weights of a
    /// neural network).
    ///
    /// `signed` selects the encoding of the `w`-bit operand the samples
    /// use: two's-complement `−2^(w−1)..2^(w−1)` when `true` (values are
    /// folded into their raw encoding), unsigned `0..2^w` when `false`.
    /// A sample valid only under the *other* encoding is rejected — the
    /// two encodings overlap on `0..2^(w−1)`, and accepting their union
    /// silently aliased e.g. `−2^(w−1)` and `+2^(w−1)` to the same bucket
    /// when mixed-provenance sample sets were ingested.
    ///
    /// # Errors
    ///
    /// * [`PmfError::NoSamples`] when `samples` is empty;
    /// * [`PmfError::SampleOutOfRange`] when a sample is outside the
    ///   requested encoding's range.
    ///
    /// # Panics
    ///
    /// Panics on an invalid width.
    pub fn from_samples_i64(width: u32, samples: &[i64], signed: bool) -> Result<Self, PmfError> {
        let n = domain_size(width);
        if samples.is_empty() {
            return Err(PmfError::NoSamples);
        }
        let (lo, hi) = if signed { (-((n / 2) as i64), (n / 2) as i64) } else { (0, n as i64) };
        let mut counts = vec![0u64; n];
        for (index, &value) in samples.iter().enumerate() {
            if value < lo || value >= hi {
                return Err(PmfError::SampleOutOfRange { index, value });
            }
            counts[(value as u64 & (n as u64 - 1)) as usize] += 1;
        }
        let total = samples.len() as f64;
        let probs = counts.into_iter().map(|c| c as f64 / total).collect();
        Ok(Self { width, probs })
    }

    fn normalized(width: u32, mut weights: Vec<f64>) -> Self {
        // Two-stage normalization: dividing by the maximum first keeps the
        // intermediate sum in [1, 2^w], so it can neither overflow to
        // infinity (huge weights) nor denormalize — the final
        // probabilities are exact ratios of the inputs.
        let max = weights.iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(
            max > 0.0,
            "distribution mass underflowed to zero (parameters too extreme for width {width})"
        );
        for w in &mut weights {
            *w /= max;
        }
        let sum: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= sum;
        }
        Self { width, probs: weights }
    }

    /// Operand width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of entries, `2^width`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Always `false` — a PMF covers at least `2^1` values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Probability of the raw (unsigned) encoding `raw`.
    ///
    /// # Panics
    ///
    /// Panics if `raw >= len()`.
    #[must_use]
    pub fn prob(&self, raw: usize) -> f64 {
        self.probs[raw]
    }

    /// Probability of the value `v` under either operand interpretation:
    /// unsigned `0..2^w` or signed `−2^(w−1)..2^(w−1)` (folded to its
    /// two's-complement raw encoding). Values outside both ranges have
    /// probability zero.
    #[must_use]
    pub fn prob_of(&self, v: i64) -> f64 {
        let n = self.probs.len() as i64;
        if v < -(n / 2) || v >= n {
            return 0.0;
        }
        self.probs[(v as u64 & (n as u64 - 1)) as usize]
    }

    /// Number of values with strictly positive probability.
    #[must_use]
    pub fn support_size(&self) -> usize {
        self.probs.iter().filter(|&&p| p > 0.0).count()
    }

    /// Mean of the raw (unsigned) encoding, `Σ_x x·D(x)`.
    #[must_use]
    pub fn mean_raw(&self) -> f64 {
        self.probs.iter().enumerate().map(|(x, &p)| x as f64 * p).sum()
    }

    /// Shannon entropy in bits: 0 for a point mass, `width` for uniform.
    #[must_use]
    pub fn entropy(&self) -> f64 {
        -self.probs.iter().filter(|&&p| p > 0.0).map(|&p| p * p.log2()).sum::<f64>()
    }

    /// Iterates over the probabilities in raw-encoding order.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.probs.iter().copied()
    }

    /// The convex mixture `(1−t)·self + t·other` — WMED is linear in the
    /// distribution, so mixing PMFs mixes WMEDs.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ or `t` is not in `[0, 1]`.
    #[must_use]
    pub fn mix(&self, other: &Pmf, t: f64) -> Pmf {
        assert_eq!(self.width, other.width, "mix requires equal widths");
        assert!(t.is_finite() && (0.0..=1.0).contains(&t), "t must be in [0, 1]");
        let probs =
            self.probs.iter().zip(&other.probs).map(|(&a, &b)| (1.0 - t) * a + t * b).collect();
        Pmf { width: self.width, probs }
    }

    /// A stable 64-bit content digest of the distribution.
    ///
    /// The digest is FNV-1a over the operand width and the exact IEEE-754
    /// bit patterns of every probability, so it identifies the PMF *as
    /// content*: two `Pmf` values compare equal if and only if their
    /// digests were fed identical bytes, regardless of which constructor
    /// produced them. Downstream layers use it as the distribution
    /// component of content-addressed cache keys (`apx_core::cache`),
    /// which is why the digest must never depend on allocation, ordering
    /// of construction, or anything else that is not the distribution
    /// itself.
    ///
    /// The mapping is part of the crate's stability contract: changing it
    /// invalidates every persisted cache entry, so it is pinned by a
    /// golden-value test.
    #[must_use]
    pub fn content_digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(4 + 8 * self.probs.len());
        bytes.extend_from_slice(&self.width.to_le_bytes());
        for &p in &self.probs {
            bytes.extend_from_slice(&p.to_bits().to_le_bytes());
        }
        fnv1a64(&bytes, FNV1A64_OFFSET)
    }

    /// A reusable inverse-CDF sampler drawing raw encodings from `D` —
    /// used to generate application-distributed stimuli for switching-
    /// activity (power) estimation.
    #[must_use]
    pub fn sampler(&self) -> Sampler {
        // The CDF covers the *support only*: zero-probability values are
        // simply absent, so no draw — not even one landing exactly on a
        // flat CDF step shared with a zero-probability neighbour — can
        // ever produce them.
        let mut values = Vec::new();
        let mut cdf = Vec::new();
        let mut acc = 0.0f64;
        for (x, &p) in self.probs.iter().enumerate() {
            if p > 0.0 {
                acc += p;
                values.push(x);
                cdf.push(acc);
            }
        }
        // Guard the tail against rounding (Σp may be 1 − ε): the final
        // entry must dominate every u drawn from [0, 1).
        *cdf.last_mut().expect("constructors reject empty support") = 1.0;
        Sampler { values, cdf }
    }
}

/// Draws raw operand encodings distributed according to a [`Pmf`].
///
/// Built once via [`Pmf::sampler`]; sampling is `O(log support)` per draw
/// (inverse-CDF with binary search over the support values) and
/// deterministic given the RNG.
#[derive(Debug, Clone)]
pub struct Sampler {
    /// Raw encodings with strictly positive probability, ascending.
    values: Vec<usize>,
    /// Cumulative probability at each support value; final entry is 1.
    cdf: Vec<f64>,
}

impl Sampler {
    /// Draws one raw encoding in `0..2^w`.
    ///
    /// Values with zero probability are structurally unreachable: the
    /// sampler's CDF is built over the support only.
    #[must_use]
    pub fn sample(&self, rng: &mut Xoshiro256) -> usize {
        let u = rng.f64();
        let idx = self.cdf.partition_point(|&c| c <= u);
        self.values[idx.min(self.values.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_normalized(pmf: &Pmf) {
        assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pmf.iter().all(|p| (0.0..=1.0).contains(&p)));
        assert_eq!(pmf.len(), 1usize << pmf.width());
    }

    #[test]
    fn uniform_is_flat_and_normalized() {
        for width in 1..=10 {
            let pmf = Pmf::uniform(width);
            assert_normalized(&pmf);
            assert_eq!(pmf.support_size(), pmf.len());
            let expect = 1.0 / pmf.len() as f64;
            assert!(pmf.iter().all(|p| (p - expect).abs() < 1e-15));
            assert!((pmf.mean_raw() - (pmf.len() - 1) as f64 / 2.0).abs() < 1e-9);
            assert!((pmf.entropy() - width as f64).abs() < 1e-9, "uniform entropy = width");
        }
    }

    #[test]
    fn half_normal_decreases_monotonically() {
        let pmf = Pmf::half_normal(8, 48.0);
        assert_normalized(&pmf);
        for x in 1..pmf.len() {
            assert!(pmf.prob(x) < pmf.prob(x - 1), "strictly decreasing at {x}");
        }
        assert!(pmf.mean_raw() < 127.5, "mass concentrated below the uniform mean");
    }

    #[test]
    fn normal_peaks_at_the_mean() {
        let pmf = Pmf::normal(8, 127.0, 32.0);
        assert_normalized(&pmf);
        let peak = (0..256).max_by(|&a, &b| pmf.prob(a).total_cmp(&pmf.prob(b))).unwrap();
        assert_eq!(peak, 127);
        assert!((pmf.mean_raw() - 127.0).abs() < 0.5);
        // Entropy strictly below the uniform maximum.
        assert!(pmf.entropy() < 8.0);
    }

    #[test]
    fn signed_normal_is_symmetric_around_zero() {
        let pmf = Pmf::signed_normal(8, 0.0, 16.0);
        assert_normalized(&pmf);
        for v in 1..=127i64 {
            assert!((pmf.prob_of(v) - pmf.prob_of(-v)).abs() < 1e-15, "asymmetric at ±{v}");
        }
        assert!(pmf.prob_of(0) > pmf.prob_of(1));
        assert!(pmf.prob_of(0) > pmf.prob_of(-128));
    }

    #[test]
    fn prob_of_wraps_negative_values_to_raw_encoding() {
        let pmf = Pmf::signed_normal(4, 0.0, 3.0);
        assert!((pmf.prob_of(-1) - pmf.prob(15)).abs() < 1e-15);
        assert!((pmf.prob_of(-8) - pmf.prob(8)).abs() < 1e-15);
        // Out of range on both interpretations: zero probability.
        assert_eq!(pmf.prob_of(16), 0.0);
        assert_eq!(pmf.prob_of(-9), 0.0);
        assert_eq!(pmf.prob_of(i64::MIN), 0.0);
        assert_eq!(pmf.prob_of(i64::MAX), 0.0);
    }

    #[test]
    fn from_weights_normalizes_proportionally() {
        let pmf = Pmf::from_weights(2, vec![1.0, 3.0, 0.0, 4.0]).unwrap();
        assert_normalized(&pmf);
        assert!((pmf.prob(0) - 0.125).abs() < 1e-15);
        assert!((pmf.prob(1) - 0.375).abs() < 1e-15);
        assert_eq!(pmf.prob(2), 0.0);
        assert!((pmf.prob(3) - 0.5).abs() < 1e-15);
        assert_eq!(pmf.support_size(), 3);
    }

    #[test]
    fn from_weights_rejects_malformed_input() {
        assert_eq!(Pmf::from_weights(4, vec![1.0; 7]), Err(PmfError::BadLength(7)));
        assert_eq!(Pmf::from_weights(4, vec![0.0; 16]), Err(PmfError::EmptySupport));
        assert!(matches!(
            Pmf::from_weights(2, vec![1.0, -0.5, 1.0, 1.0]),
            Err(PmfError::InvalidWeight { index: 1, .. })
        ));
        assert!(matches!(
            Pmf::from_weights(2, vec![1.0, 1.0, f64::NAN, 1.0]),
            Err(PmfError::InvalidWeight { index: 2, .. })
        ));
        assert!(matches!(
            Pmf::from_weights(2, vec![f64::INFINITY, 1.0, 1.0, 1.0]),
            Err(PmfError::InvalidWeight { index: 0, .. })
        ));
    }

    #[test]
    fn from_samples_matches_empirical_frequencies() {
        let samples = [-2i64, -1, 0, 0, 0, 1, 2, 2];
        let pmf = Pmf::from_samples_i64(8, &samples, true).unwrap();
        assert_normalized(&pmf);
        assert!((pmf.prob_of(0) - 3.0 / 8.0).abs() < 1e-15);
        assert!((pmf.prob_of(2) - 2.0 / 8.0).abs() < 1e-15);
        assert!((pmf.prob_of(-2) - 1.0 / 8.0).abs() < 1e-15);
        assert_eq!(pmf.prob_of(3), 0.0);
        assert_eq!(pmf.support_size(), 5);
    }

    #[test]
    fn from_samples_rejects_bad_input() {
        assert_eq!(Pmf::from_samples_i64(8, &[], true), Err(PmfError::NoSamples));
        assert_eq!(Pmf::from_samples_i64(8, &[], false), Err(PmfError::NoSamples));
        assert!(matches!(
            Pmf::from_samples_i64(8, &[0, 1, 256], false),
            Err(PmfError::SampleOutOfRange { index: 2, value: 256 })
        ));
        assert!(matches!(
            Pmf::from_samples_i64(8, &[-129], true),
            Err(PmfError::SampleOutOfRange { index: 0, value: -129 })
        ));
    }

    #[test]
    fn from_samples_rejects_the_other_encodings_exclusive_range() {
        // Regression: the constructor used to accept the *union* range
        // [-2^(w-1), 2^w), so at width 4 the signed sample -8 and the
        // unsigned sample +8 silently aliased to the same raw bucket when
        // mixed-provenance sample sets were ingested.
        let signed = Pmf::from_samples_i64(4, &[-8, -8, 0], true).unwrap();
        assert!((signed.prob(8) - 2.0 / 3.0).abs() < 1e-15);
        let unsigned = Pmf::from_samples_i64(4, &[8, 8, 0], false).unwrap();
        assert!((unsigned.prob(8) - 2.0 / 3.0).abs() < 1e-15);
        // The aliasing pair can no longer coexist in one sample set.
        assert!(matches!(
            Pmf::from_samples_i64(4, &[-8, 8], true),
            Err(PmfError::SampleOutOfRange { index: 1, value: 8 })
        ));
        assert!(matches!(
            Pmf::from_samples_i64(4, &[8, -8], false),
            Err(PmfError::SampleOutOfRange { index: 1, value: -8 })
        ));
        // Boundaries of each encoding are still accepted.
        assert!(Pmf::from_samples_i64(4, &[-8, 7], true).is_ok());
        assert!(Pmf::from_samples_i64(4, &[0, 15], false).is_ok());
    }

    #[test]
    fn errors_display_and_implement_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>(e: &E) -> String {
            e.to_string()
        }
        for e in [
            PmfError::BadLength(7),
            PmfError::InvalidWeight { index: 3, value: f64::NAN },
            PmfError::EmptySupport,
            PmfError::NoSamples,
            PmfError::SampleOutOfRange { index: 0, value: 999 },
        ] {
            assert!(!assert_error(&e).is_empty());
        }
    }

    #[test]
    fn huge_weights_normalize_without_overflow() {
        // A naive Σw would overflow to +∞ and yield an all-zero PMF; the
        // two-stage normalization must keep the exact proportions.
        let pmf = Pmf::from_weights(1, vec![f64::MAX, f64::MAX]).unwrap();
        assert_normalized(&pmf);
        assert!((pmf.prob(0) - 0.5).abs() < 1e-15);
        let skewed = Pmf::from_weights(1, vec![f64::MAX / 4.0, f64::MAX / 2.0]).unwrap();
        assert!((skewed.prob(0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "underflowed to zero")]
    fn fully_underflowed_analytic_distribution_panics_loudly() {
        // Mean far outside the domain with a tiny sigma: every discretized
        // weight underflows to 0.0. This must be a clear panic, not a
        // silent NaN distribution.
        let _ = Pmf::normal(4, 1e6, 0.01);
    }

    #[test]
    fn entropy_of_point_mass_is_zero() {
        let mut weights = vec![0.0; 16];
        weights[5] = 2.0;
        let pmf = Pmf::from_weights(4, weights).unwrap();
        assert_eq!(pmf.entropy(), 0.0);
        assert_eq!(pmf.support_size(), 1);
        assert_eq!(pmf.mean_raw(), 5.0);
    }

    #[test]
    fn mix_is_convex_and_preserves_normalization() {
        let a = Pmf::half_normal(4, 2.0);
        let b = Pmf::uniform(4);
        for t in [0.0, 0.25, 0.5, 1.0] {
            let m = a.mix(&b, t);
            assert_normalized(&m);
            for x in 0..16 {
                let expect = (1.0 - t) * a.prob(x) + t * b.prob(x);
                assert!((m.prob(x) - expect).abs() < 1e-15);
            }
        }
        assert_eq!(a.mix(&b, 0.0), a);
        assert_eq!(a.mix(&b, 1.0), b);
    }

    #[test]
    #[should_panic(expected = "equal widths")]
    fn mix_rejects_width_mismatch() {
        let _ = Pmf::uniform(4).mix(&Pmf::uniform(5), 0.5);
    }

    #[test]
    #[should_panic(expected = "width must be in")]
    fn zero_width_is_rejected() {
        let _ = Pmf::uniform(0);
    }

    #[test]
    #[should_panic(expected = "sigma must be finite and positive")]
    fn non_positive_sigma_is_rejected() {
        let _ = Pmf::half_normal(4, 0.0);
    }

    #[test]
    fn sampler_is_deterministic_and_respects_support() {
        let mut weights = vec![0.0; 16];
        weights[3] = 1.0;
        weights[12] = 3.0;
        let pmf = Pmf::from_weights(4, weights).unwrap();
        let sampler = pmf.sampler();
        let mut rng = Xoshiro256::from_seed(7);
        let mut counts = [0u32; 16];
        for _ in 0..4000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for (x, &c) in counts.iter().enumerate() {
            if x == 3 || x == 12 {
                assert!(c > 0, "support value {x} never drawn");
            } else {
                assert_eq!(c, 0, "off-support value {x} drawn");
            }
        }
        // Frequencies track probabilities (loose statistical bound).
        let f12 = f64::from(counts[12]) / 4000.0;
        assert!((f12 - 0.75).abs() < 0.05, "P(12) ≈ 0.75, got {f12}");
        // Determinism: same seed, same stream.
        let mut r1 = Xoshiro256::from_seed(42);
        let mut r2 = Xoshiro256::from_seed(42);
        for _ in 0..100 {
            assert_eq!(sampler.sample(&mut r1), sampler.sample(&mut r2));
        }
    }

    #[test]
    fn content_digest_identifies_distribution_content() {
        // Equal content → equal digest, however the value was obtained.
        let a = Pmf::half_normal(8, 48.0);
        assert_eq!(a.content_digest(), a.clone().content_digest());
        assert_eq!(a.content_digest(), a.mix(&a, 0.0).content_digest());
        // Any change to width, shape or a single weight changes it.
        let mut seen = std::collections::HashSet::new();
        for pmf in [
            Pmf::uniform(8),
            Pmf::uniform(4),
            Pmf::half_normal(8, 48.0),
            Pmf::half_normal(8, 47.0),
            Pmf::normal(8, 127.0, 32.0),
            Pmf::signed_normal(8, 0.0, 32.0),
            Pmf::from_samples_i64(8, &[1, 2, 3], false).unwrap(),
            Pmf::from_samples_i64(8, &[1, 2, 4], false).unwrap(),
        ] {
            assert!(seen.insert(pmf.content_digest()), "digest collision for {pmf:?}");
        }
    }

    #[test]
    fn content_digest_is_stable_across_releases() {
        // Golden values: cache keys derived from the digest are persisted
        // on disk (`apx_core::cache`), so the mapping must never drift. If
        // this test fails the digest changed and every stored sweep cache
        // entry is silently orphaned — bump the cache format version
        // instead of updating these constants blindly.
        assert_eq!(Pmf::uniform(4).content_digest(), 0x2aee_f3c0_9345_04b1);
        assert_eq!(Pmf::half_normal(8, 48.0).content_digest(), 0xa530_88e9_13be_2b2e);
    }

    #[test]
    fn point_mass_sampler_always_returns_the_point() {
        let mut weights = vec![0.0; 8];
        weights[6] = 1.0;
        let pmf = Pmf::from_weights(3, weights).unwrap();
        let sampler = pmf.sampler();
        let mut rng = Xoshiro256::from_seed(1);
        for _ in 0..200 {
            assert_eq!(sampler.sample(&mut rng), 6);
        }
    }
}
