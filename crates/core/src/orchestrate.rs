//! Local multi-process sweep orchestration: spawn, supervise and relaunch
//! the shard processes of a design-space exploration.
//!
//! The cache layer ([`crate::cache`]) already lets `n` processes partition
//! one sweep grid (`APX_SHARD=i/n` over a shared `APX_CACHE_DIR`), but
//! until now a human was the supervisor: start `n` terminals, notice when
//! one dies overnight, rerun it, assemble at the end. This module is that
//! supervisor as code — the first piece of the multi-process serving
//! story:
//!
//! * [`orchestrate`] spawns `shards` copies of one figure binary, each
//!   with `APX_SHARD=i/n` and the shared `APX_CACHE_DIR` injected into
//!   its environment;
//! * progress is *observed through the filesystem*: the shared directory
//!   is polled with [`cache_dir_stats`], so supervision needs no IPC
//!   protocol with the workers — any binary that honors the two
//!   environment knobs can be orchestrated;
//! * a shard that dies (crash, OOM kill, power blip) is relaunched on the
//!   **whole** shard, which is cheap by construction: every task the dead
//!   process finished was checkpointed at completion, so the relaunch
//!   replays the finished prefix from cache in milliseconds and computes
//!   only the uncovered remainder;
//! * relaunches are bounded ([`OrchestratorConfig::max_relaunches`]) so a
//!   deterministically crashing workload cannot loop forever, and the
//!   final [`OrchestratorReport`] says exactly which shards succeeded and
//!   how many launches each one needed.
//!
//! The orchestrator deliberately does **not** assemble results itself —
//! a final unsharded run of the same binary is the assembly step (all
//! hits, bit-identical to a cold unsharded run), and a
//! [`gc_cache_dir`](crate::cache::gc_cache_dir) pass afterwards keeps the
//! directory sustainable instead of append-only. The `orchestrate` bench
//! binary wires all three together.

use crate::cache::{cache_dir_stats, CacheDirStats};
use crate::CoreError;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// What to run and how to supervise it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrchestratorConfig {
    /// The worker binary (typically a figure binary honoring `APX_SHARD`
    /// and `APX_CACHE_DIR`).
    pub program: PathBuf,
    /// Extra command-line arguments for every shard process.
    pub args: Vec<String>,
    /// Extra environment for every shard process (on top of the inherited
    /// environment; `APX_SHARD` / `APX_CACHE_DIR` are always overridden).
    pub env: Vec<(String, String)>,
    /// Number of shard processes (`APX_SHARD=0/n .. n-1/n`).
    pub shards: usize,
    /// The shared cache directory all shards checkpoint into (created up
    /// front so progress polling starts from an existing directory).
    pub cache_dir: PathBuf,
    /// How often to poll the directory for a progress snapshot.
    pub poll_interval: Duration,
    /// How many times one shard may be relaunched after dying before the
    /// orchestrator gives up on it.
    pub max_relaunches: usize,
}

impl OrchestratorConfig {
    /// A supervisor for `shards` copies of `program` over `cache_dir`,
    /// with defaults for the rest: no extra args/env, 500 ms polling, up
    /// to 2 relaunches per shard.
    #[must_use]
    pub fn new(program: impl Into<PathBuf>, shards: usize, cache_dir: impl Into<PathBuf>) -> Self {
        OrchestratorConfig {
            program: program.into(),
            args: Vec::new(),
            env: Vec::new(),
            shards,
            cache_dir: cache_dir.into(),
            poll_interval: Duration::from_millis(500),
            max_relaunches: 2,
        }
    }
}

/// How one shard ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardOutcome {
    /// The shard index (`APX_SHARD=index/count`).
    pub index: usize,
    /// Total launches this shard needed (1 = never died).
    pub launches: usize,
    /// Whether the final launch exited successfully.
    pub succeeded: bool,
}

/// Final report of one [`orchestrate`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrchestratorReport {
    /// Per-shard outcome, in shard order.
    pub shards: Vec<ShardOutcome>,
    /// Total relaunches across all shards.
    pub relaunches: usize,
    /// The shared directory's shape after every shard terminated.
    pub stats: CacheDirStats,
}

impl OrchestratorReport {
    /// Whether every shard eventually exited successfully — the
    /// precondition for the assembly run to be complete.
    #[must_use]
    pub fn all_succeeded(&self) -> bool {
        self.shards.iter().all(|s| s.succeeded)
    }
}

/// Supervision events, delivered to the observer callback of
/// [`orchestrate`] as they happen.
#[derive(Debug)]
pub enum OrchestratorEvent<'a> {
    /// Periodic snapshot of the shared directory (first one immediately
    /// after spawning, then every [`OrchestratorConfig::poll_interval`]).
    Progress {
        /// Current shape of the shared cache directory.
        stats: &'a CacheDirStats,
        /// Shard processes currently alive.
        running: usize,
    },
    /// A shard exited unsuccessfully and was relaunched on its (mostly
    /// already-cached) remainder.
    Relaunch {
        /// The dead shard's index.
        shard: usize,
        /// Its new launch ordinal (2 = first relaunch).
        launch: usize,
    },
    /// A shard exhausted its relaunch budget and was abandoned.
    GaveUp {
        /// The abandoned shard's index.
        shard: usize,
        /// Launches it burned through.
        launches: usize,
    },
    /// A shard exited successfully.
    ShardDone {
        /// The finished shard's index.
        shard: usize,
    },
}

/// One supervised shard slot. `child == None` means terminal (succeeded
/// or given up).
struct Slot {
    child: Option<Child>,
    launches: usize,
    succeeded: bool,
}

/// Kills and reaps every still-running child when the orchestrator exits
/// early (spawn error mid-run): no zombie shard keeps writing into the
/// directory after its supervisor is gone.
struct Supervisor {
    slots: Vec<Slot>,
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        for slot in &mut self.slots {
            if let Some(child) = &mut slot.child {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

/// Runs `cfg.shards` shard processes to completion, relaunching dead ones,
/// and reports how it went. `on_event` observes supervision as it happens
/// (progress snapshots, relaunches, terminal shard states).
///
/// The call returns when every shard is terminal — successful or
/// abandoned; inspect [`OrchestratorReport::all_succeeded`]. Worker
/// stdout is discarded (shards all print the same tables); stderr is
/// inherited so a crashing shard's panic message reaches the operator.
///
/// # Errors
///
/// [`CoreError::BadConfig`] for zero shards and
/// [`CoreError::Orchestrate`] when the cache directory cannot be created
/// or a shard process cannot be spawned at all (missing binary — distinct
/// from a shard that starts and then dies, which is relaunched).
pub fn orchestrate(
    cfg: &OrchestratorConfig,
    mut on_event: impl FnMut(&OrchestratorEvent<'_>),
) -> Result<OrchestratorReport, CoreError> {
    if cfg.shards == 0 {
        return Err(CoreError::BadConfig("orchestrator needs at least one shard".into()));
    }
    std::fs::create_dir_all(&cfg.cache_dir).map_err(|e| {
        CoreError::Orchestrate(format!(
            "cannot create cache directory {}: {e}",
            cfg.cache_dir.display()
        ))
    })?;

    let spawn_shard = |index: usize| -> Result<Child, CoreError> {
        let mut cmd = Command::new(&cfg.program);
        cmd.args(&cfg.args);
        for (k, v) in &cfg.env {
            cmd.env(k, v);
        }
        cmd.env("APX_SHARD", format!("{index}/{}", cfg.shards))
            .env("APX_CACHE_DIR", &cfg.cache_dir)
            .stdin(Stdio::null())
            .stdout(Stdio::null());
        cmd.spawn().map_err(|e| {
            CoreError::Orchestrate(format!(
                "cannot spawn shard {index}/{} ({}): {e}",
                cfg.shards,
                cfg.program.display()
            ))
        })
    };

    let mut sup = Supervisor { slots: Vec::with_capacity(cfg.shards) };
    for index in 0..cfg.shards {
        let child = spawn_shard(index)?;
        sup.slots.push(Slot { child: Some(child), launches: 1, succeeded: false });
    }

    let mut relaunches = 0usize;
    let mut next_poll = Instant::now();
    loop {
        for index in 0..sup.slots.len() {
            let Some(mut child) = sup.slots[index].child.take() else {
                continue;
            };
            match child.try_wait() {
                Ok(None) => sup.slots[index].child = Some(child), // still running
                Ok(Some(status)) if status.success() => {
                    sup.slots[index].succeeded = true;
                    on_event(&OrchestratorEvent::ShardDone { shard: index });
                }
                outcome => {
                    if outcome.is_err() {
                        // Unwaitable is not necessarily dead: make it so
                        // before replacing it, or the dropped handle would
                        // leave an untracked process racing its substitute
                        // on the same directory.
                        let _ = child.kill();
                        let _ = child.wait();
                    }
                    // Dead (nonzero exit, killed by a signal, or put down
                    // above). Relaunching the whole shard is cheap: its
                    // finished prefix replays from the cache.
                    if sup.slots[index].launches <= cfg.max_relaunches {
                        sup.slots[index].child = Some(spawn_shard(index)?);
                        sup.slots[index].launches += 1;
                        relaunches += 1;
                        on_event(&OrchestratorEvent::Relaunch {
                            shard: index,
                            launch: sup.slots[index].launches,
                        });
                    } else {
                        on_event(&OrchestratorEvent::GaveUp {
                            shard: index,
                            launches: sup.slots[index].launches,
                        });
                    }
                }
            }
        }
        let running = sup.slots.iter().filter(|s| s.child.is_some()).count();
        if running == 0 || Instant::now() >= next_poll {
            let stats = cache_dir_stats(&cfg.cache_dir);
            on_event(&OrchestratorEvent::Progress { stats: &stats, running });
            next_poll = Instant::now() + cfg.poll_interval;
        }
        if running == 0 {
            break;
        }
        std::thread::sleep(cfg.poll_interval.min(Duration::from_millis(25)));
    }

    Ok(OrchestratorReport {
        shards: sup
            .slots
            .iter()
            .enumerate()
            .map(|(index, s)| ShardOutcome { index, launches: s.launches, succeeded: s.succeeded })
            .collect(),
        relaunches,
        stats: cache_dir_stats(&cfg.cache_dir),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("apx_orch_test_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// An orchestrator over an inline `sh` script — the worker contract
    /// is just "honor `APX_SHARD` and `APX_CACHE_DIR`, exit 0 when your
    /// slice is covered", so a shell one-liner is a valid workload.
    fn sh(script: &str, shards: usize, dir: &Path) -> OrchestratorConfig {
        let mut cfg = OrchestratorConfig::new("/bin/sh", shards, dir);
        cfg.args = vec!["-c".into(), script.into()];
        cfg.poll_interval = Duration::from_millis(10);
        cfg
    }

    #[test]
    fn zero_shards_is_rejected() {
        let cfg = OrchestratorConfig::new("/bin/true", 0, scratch("zero"));
        assert!(matches!(orchestrate(&cfg, |_| {}), Err(CoreError::BadConfig(_))));
    }

    #[test]
    fn unspawnable_program_is_an_orchestrate_error() {
        let cfg = OrchestratorConfig::new("/definitely/not/a/binary", 1, scratch("nosuch"));
        match orchestrate(&cfg, |_| {}) {
            Err(CoreError::Orchestrate(msg)) => {
                assert!(msg.contains("shard 0/1"), "{msg}");
                assert!(msg.contains("/definitely/not/a/binary"), "{msg}");
            }
            other => panic!("expected an orchestrate error, got {other:?}"),
        }
    }

    #[test]
    #[cfg(unix)]
    fn healthy_shards_run_once_and_succeed() {
        let dir = scratch("healthy");
        // Each shard records the slice it was given.
        let cfg = sh(r#"echo "$APX_SHARD" > "$APX_CACHE_DIR/shard.${APX_SHARD%%/*}""#, 3, &dir);
        let mut progress = 0usize;
        let mut done = 0usize;
        let report = orchestrate(&cfg, |e| match e {
            OrchestratorEvent::Progress { .. } => progress += 1,
            OrchestratorEvent::ShardDone { .. } => done += 1,
            other => panic!("unexpected event {other:?}"),
        })
        .unwrap();
        assert!(report.all_succeeded());
        assert_eq!(report.relaunches, 0);
        assert_eq!(done, 3);
        assert!(progress >= 1, "at least the final snapshot is delivered");
        for (i, s) in report.shards.iter().enumerate() {
            assert_eq!((s.index, s.launches, s.succeeded), (i, 1, true));
            let slice = std::fs::read_to_string(dir.join(format!("shard.{i}"))).unwrap();
            assert_eq!(slice.trim(), format!("{i}/3"), "shard saw the wrong slice");
        }
    }

    #[test]
    #[cfg(unix)]
    fn dead_shards_are_relaunched_until_they_cover_their_slice() {
        let dir = scratch("relaunch");
        // First launch: leave a marker and die. Relaunch: marker present,
        // cover the slice and exit 0 — the checkpoint-resume pattern in
        // miniature.
        let script = r#"m="$APX_CACHE_DIR/marker.${APX_SHARD%%/*}"
if [ -e "$m" ]; then exit 0; else : > "$m"; exit 7; fi"#;
        let cfg = sh(script, 2, &dir);
        let mut relaunch_events = Vec::new();
        let report = orchestrate(&cfg, |e| {
            if let OrchestratorEvent::Relaunch { shard, launch } = e {
                relaunch_events.push((*shard, *launch));
            }
        })
        .unwrap();
        assert!(report.all_succeeded(), "{report:?}");
        assert_eq!(report.relaunches, 2);
        relaunch_events.sort_unstable();
        assert_eq!(relaunch_events, vec![(0, 2), (1, 2)]);
        for s in &report.shards {
            assert_eq!(s.launches, 2, "shard {} should die exactly once", s.index);
        }
    }

    #[test]
    #[cfg(unix)]
    fn a_permanently_crashing_shard_is_abandoned_not_looped() {
        let dir = scratch("giveup");
        let mut cfg = sh("exit 3", 1, &dir);
        cfg.max_relaunches = 1;
        let mut gave_up = None;
        let report = orchestrate(&cfg, |e| {
            if let OrchestratorEvent::GaveUp { shard, launches } = e {
                gave_up = Some((*shard, *launches));
            }
        })
        .unwrap();
        assert!(!report.all_succeeded());
        assert_eq!(report.shards[0].launches, 2, "initial launch + one relaunch");
        assert_eq!(report.relaunches, 1);
        assert_eq!(gave_up, Some((0, 2)));
    }
}
