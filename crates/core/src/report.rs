//! Text tables and CSV output for the figure-regeneration binaries.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple aligned text table with CSV export — enough to print every
/// row/series the paper's tables and figures report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn to_text(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}");
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.headers);
        for row in &self.rows {
            write_row(row);
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Formats a fraction as the percent string the paper uses
/// (e.g. `0.0005` → `"0.0500 %"`).
#[must_use]
pub fn percent(fraction: f64) -> String {
    format!("{:.4} %", fraction * 100.0)
}

/// Formats a signed relative delta as Table I does (`-55 %`, `+0.24 %`).
#[must_use]
pub fn signed_percent(fraction: f64) -> String {
    format!("{:+.2} %", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_aligns_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]).row(vec!["longer", "2.5"]);
        let s = t.to_text();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn csv_round_trips_to_disk() {
        let mut t = TextTable::new(vec!["k", "v"]);
        t.row(vec!["1", "2"]);
        // The directory must be unique per process: a fixed name raced
        // concurrent test runs (`cargo test` in two checkouts, or a test
        // runner re-invoking the binary), with one process deleting the
        // directory under the other.
        let dir = std::env::temp_dir().join(format!("apx_core_report_test_{}", std::process::id()));
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, t.to_csv());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(0.005), "0.5000 %");
        assert_eq!(signed_percent(-0.55), "-55.00 %");
        assert_eq!(signed_percent(0.0024), "+0.24 %");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        TextTable::new(vec!["a"]).row(vec!["1", "2"]);
    }
}
