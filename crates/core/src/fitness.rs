//! Eq. 1: area under a WMED budget.

use apx_cgp::{Chromosome, FitnessFn};
use apx_dist::Pmf;
use apx_metrics::{CircuitEvaluator, WmedState};
use apx_techlib::{area_of, TechLibrary};
use std::sync::{Arc, Mutex};

/// Cap on the cached-simulation footprint before the incremental protocol
/// is declined (the CGP inner loop then falls back to full evaluation).
const MAX_STATE_BYTES: usize = 32 << 20;

/// Cached incremental-evaluation context: the most recently rebased parent
/// and the simulation state describing it.
#[derive(Debug)]
struct IncrSlot {
    /// The chromosome the cached rows describe. May lag the evolution
    /// loop's current parent by neutral (dead-node) drift: deltas and
    /// shortcuts diff offspring against this base, which yields the same
    /// exact scores.
    base: Chromosome,
    /// Cached full-grid signal rows for `base.decode_full()`.
    state: WmedState,
    /// Per-signal activity of the base (`ni + k` for node `k`): mutations
    /// confined to inactive nodes cannot change the phenotype.
    base_active: Vec<bool>,
    /// The base's own fitness, for neutral-mutation shortcuts.
    base_fit: f64,
}

/// The paper's fitness function (Eq. 1):
///
/// ```text
/// F(M̃) = area(M̃)   if WMED_D(M̃) ≤ E_i
///        ∞          otherwise
/// ```
///
/// Evaluation decodes only the chromosome's active cone, runs the
/// early-abort WMED evaluator (most violating offspring are rejected after
/// a handful of high-weight blocks) and prices the survivors with the
/// technology library.
///
/// The evaluator is held behind an [`Arc`]: it is by far the most
/// expensive part to construct (exhaustive input enumeration and
/// weight-sorted blocks), so sweeps build it **once** per `(width,
/// signed, pmf)` and share it across every threshold and run via
/// [`Eq1Fitness::with_evaluator`].
///
/// # Incremental evaluation
///
/// When the evaluator [supports it](CircuitEvaluator::supports_incremental),
/// the [`FitnessFn`] implementation keeps a cached simulation state for
/// the current CGP parent (installed by [`FitnessFn::rebase`], which
/// `apx_cgp`'s evolution loop calls on every parent change). Offspring
/// are then scored by re-simulating only the mutated nodes' fanout cones
/// ([`CircuitEvaluator::wmed_bounded_delta`]), and mutations confined to
/// inactive genes short-circuit to the parent's fitness without touching
/// the simulator at all. Every score is bit-identical to the stateless
/// [`Eq1Fitness::of`], so search trajectories — and therefore sweep
/// caches — do not depend on whether the shortcut was available.
#[derive(Debug)]
pub struct Eq1Fitness {
    evaluator: Arc<CircuitEvaluator>,
    tech: TechLibrary,
    threshold: f64,
    /// Incremental context; `None` until the first [`FitnessFn::rebase`].
    incr: Mutex<Option<IncrSlot>>,
}

impl Clone for Eq1Fitness {
    /// Clones share the evaluator but start with a fresh (empty)
    /// incremental slot — cached state is tied to one search loop.
    fn clone(&self) -> Self {
        Eq1Fitness {
            evaluator: Arc::clone(&self.evaluator),
            tech: self.tech.clone(),
            threshold: self.threshold,
            incr: Mutex::new(None),
        }
    }
}

impl Eq1Fitness {
    /// Builds the fitness for a `width`-bit (optionally signed) multiplier
    /// under distribution `pmf` with WMED budget `threshold`. For other
    /// operators, build a [`CircuitEvaluator::for_operator`] evaluator and
    /// use [`Eq1Fitness::with_evaluator`].
    ///
    /// # Errors
    ///
    /// Propagates [`apx_metrics::EvaluatorError`] for bad width/PMF
    /// combinations.
    pub fn new(
        width: u32,
        signed: bool,
        pmf: &Pmf,
        tech: TechLibrary,
        threshold: f64,
    ) -> Result<Self, apx_metrics::EvaluatorError> {
        Ok(Self::with_evaluator(
            Arc::new(CircuitEvaluator::new(width, signed, pmf)?),
            tech,
            threshold,
        ))
    }

    /// Builds the fitness around an already-constructed, shared evaluator
    /// — infallible, and the constructor every sweep task uses.
    #[must_use]
    pub fn with_evaluator(
        evaluator: Arc<CircuitEvaluator>,
        tech: TechLibrary,
        threshold: f64,
    ) -> Self {
        Eq1Fitness { evaluator, tech, threshold, incr: Mutex::new(None) }
    }

    /// The WMED budget `E_i`.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Evaluates a chromosome; `f64::INFINITY` marks a budget violation.
    #[must_use]
    pub fn of(&self, chromosome: &Chromosome) -> f64 {
        let netlist = chromosome.decode_active();
        match self.evaluator.wmed_bounded(&netlist, self.threshold) {
            Some(_) => area_of(&netlist, &self.tech),
            None => f64::INFINITY,
        }
    }

    /// The underlying WMED evaluator (for post-hoc statistics).
    #[must_use]
    pub fn evaluator(&self) -> &CircuitEvaluator {
        &self.evaluator
    }

    /// Gene-level diff against `base`: the node indices whose gene triple
    /// differs (a safe superset of the functionally changed nodes —
    /// e.g. the unused second operand of a unary gate counts too), plus
    /// whether any output gene differs. Returns `None` on a shape
    /// mismatch, which forces the stateless path.
    fn diff_nodes(base: &Chromosome, child: &Chromosome) -> Option<(Vec<u32>, bool)> {
        if base.cols() != child.cols() || base.genes().len() != child.genes().len() {
            return None;
        }
        let (bg, cg) = (base.genes(), child.genes());
        let changed: Vec<u32> = (0..base.cols())
            .filter(|&k| bg[3 * k..3 * k + 3] != cg[3 * k..3 * k + 3])
            .map(|k| k as u32)
            .collect();
        let outputs_changed = bg[3 * base.cols()..] != cg[3 * base.cols()..];
        Some((changed, outputs_changed))
    }
}

impl FitnessFn for Eq1Fitness {
    /// Scores `chromosome`; bit-identical to [`Eq1Fitness::of`], but after
    /// a [`FitnessFn::rebase`] only the mutated fanout cone is
    /// re-simulated, and purely neutral mutations (inactive genes only,
    /// outputs untouched) return the cached parent fitness outright.
    fn eval(&self, chromosome: &Chromosome) -> f64 {
        // `try_lock`: under parallel offspring scoring the slot is a
        // single resource — a contended sibling just takes the (equally
        // correct) stateless path instead of serializing on the lock.
        let Ok(mut guard) = self.incr.try_lock() else { return self.of(chromosome) };
        let Some(slot) = guard.as_mut() else { return self.of(chromosome) };
        let Some((changed, outputs_changed)) = Self::diff_nodes(&slot.base, chromosome) else {
            return self.of(chromosome);
        };
        if !outputs_changed {
            // Inactive nodes are never read by the backward activity walk,
            // so mutating only them leaves the phenotype — and hence the
            // fitness — exactly the parent's.
            let ni = chromosome.num_inputs();
            if changed.iter().all(|&k| !slot.base_active[ni + k as usize]) {
                return slot.base_fit;
            }
        }
        let full = chromosome.decode_full();
        match self.evaluator.wmed_bounded_delta(&mut slot.state, &full, &changed, self.threshold) {
            // `area_of` prices the active cone only, in grid order — the
            // same terms, in the same order, as `of`'s compacted decode.
            Some(_) => area_of(&full, &self.tech),
            None => f64::INFINITY,
        }
    }

    /// Installs (or rebases) the cached simulation state onto `parent`,
    /// re-scoring the parent from the cache.
    ///
    /// The evolution loop calls [`FitnessFn::rebase_scored`] instead,
    /// which skips the re-score because the promotion already knows the
    /// parent's fitness.
    fn rebase(&self, parent: &Chromosome) {
        self.rebase_impl(parent, None);
    }

    /// [`rebase`](FitnessFn::rebase) with the parent's known fitness.
    fn rebase_scored(&self, parent: &Chromosome, fit: f64) {
        self.rebase_impl(parent, Some(fit));
    }
}

impl Eq1Fitness {
    /// Rebase workhorse: commits the cached rows onto `parent` (or keeps
    /// them, when the promotion was neutral dead-node drift) and records
    /// the parent's fitness — taken from `known_fit` when the evolution
    /// loop supplied it, re-scored from the cache otherwise.
    ///
    /// Skipped entirely — leaving subsequent [`eval`](FitnessFn::eval)
    /// calls on the stateless path — when the evaluator cannot run
    /// incrementally or the cached rows would exceed [`MAX_STATE_BYTES`].
    fn rebase_impl(&self, parent: &Chromosome, known_fit: Option<f64>) {
        if !self.evaluator.supports_incremental() {
            return;
        }
        let Ok(mut guard) = self.incr.lock() else { return };
        let full = parent.decode_full();
        if self.evaluator.state_bytes(&full) > MAX_STATE_BYTES {
            *guard = None;
            return;
        }
        let state = match guard.take() {
            // Rebase the existing state: re-simulate the changed cone in
            // place instead of rebuilding every cached row.
            Some(mut slot) => match Self::diff_nodes(&slot.base, parent) {
                Some((changed, outputs_changed)) => {
                    let ni = parent.num_inputs();
                    if !outputs_changed
                        && changed.iter().all(|&k| !slot.base_active[ni + k as usize])
                    {
                        // Neutral drift: the promotion changed only nodes
                        // that are inactive in the slot base, so the active
                        // cone — and with it `base_fit`/`base_active` — is
                        // untouched. The delta path diffs offspring against
                        // the slot base (not the parent), so the cached
                        // rows remain exactly right; committing here would
                        // re-simulate a dead fanout cone over every block
                        // for nothing. Keep the slot as is.
                        *guard = Some(slot);
                        return;
                    }
                    self.evaluator.commit_state(&mut slot.state, &full, &changed);
                    slot.state
                }
                None => self.evaluator.new_state(&full),
            },
            None => self.evaluator.new_state(&full),
        };
        let mut slot = IncrSlot {
            base: parent.clone(),
            state,
            base_active: full.active_mask(),
            base_fit: f64::INFINITY,
        };
        slot.base_fit = match known_fit {
            // The promotion's own score — bit-identical to what a re-score
            // from the (freshly committed) cache would produce.
            Some(fit) => fit,
            None => self.rescore(&mut slot.state, &full, &[]),
        };
        *guard = Some(slot);
    }

    /// Scores `full` from the cached state without perturbing it.
    fn rescore(&self, state: &mut WmedState, full: &apx_gates::Netlist, changed: &[u32]) -> f64 {
        match self.evaluator.wmed_bounded_delta(state, full, changed, self.threshold) {
            Some(_) => area_of(full, &self.tech),
            None => f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_arith::{array_multiplier, truncated_multiplier};
    use apx_cgp::FunctionSet;

    fn chrom_of(nl: &apx_gates::Netlist) -> Chromosome {
        Chromosome::from_netlist(nl, &FunctionSet::extended(), nl.gate_count() + 10).unwrap()
    }

    #[test]
    fn exact_seed_scores_its_area() {
        let nl = array_multiplier(4);
        let fit = Eq1Fitness::new(4, false, &Pmf::uniform(4), TechLibrary::unit(), 0.001).unwrap();
        let f = fit.of(&chrom_of(&nl));
        assert_eq!(f, nl.compact().gate_count() as f64);
        assert_eq!(fit.threshold(), 0.001);
    }

    #[test]
    fn violators_get_infinity() {
        // Truncating 6 of 8 columns of a 4-bit multiplier far exceeds a
        // 0.01% budget.
        let nl = truncated_multiplier(4, 6);
        let fit = Eq1Fitness::new(4, false, &Pmf::uniform(4), TechLibrary::unit(), 1e-4).unwrap();
        assert_eq!(fit.of(&chrom_of(&nl)), f64::INFINITY);
    }

    #[test]
    fn incremental_evolution_matches_stateless_closure() {
        // The whole point of the FitnessFn implementation: an evolution
        // run scored through the incremental slot (rebase + delta +
        // neutral shortcut) must reproduce the stateless `of` trajectory
        // bit for bit. Width 6 so the evaluator supports the protocol.
        use apx_cgp::{evolve, EvolutionConfig};
        let nl = apx_arith::array_multiplier(6);
        let pmf = Pmf::half_normal(6, 10.0);
        let fit = Eq1Fitness::new(6, false, &pmf, TechLibrary::nangate45(), 0.01).unwrap();
        assert!(fit.evaluator().supports_incremental());
        let seed = chrom_of(&nl);
        let cfg = EvolutionConfig {
            max_iterations: 120,
            seed: 42,
            keep_history: true,
            ..EvolutionConfig::default()
        };
        let stateless = fit.clone();
        let a = evolve(&seed, fit, &cfg);
        let b = evolve(&seed, move |c: &Chromosome| stateless.of(c), &cfg);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_fitness.to_bits(), b.best_fitness.to_bits());
        assert_eq!(a.evaluations, b.evaluations);
        let bits = |h: &[(u64, f64)]| h.iter().map(|&(i, f)| (i, f.to_bits())).collect::<Vec<_>>();
        assert_eq!(bits(&a.history), bits(&b.history));
    }

    #[test]
    fn clones_start_with_an_empty_incremental_slot() {
        let nl = array_multiplier(6);
        let fit = Eq1Fitness::new(6, false, &Pmf::uniform(6), TechLibrary::unit(), 0.01).unwrap();
        let parent = chrom_of(&nl);
        fit.rebase(&parent);
        assert!(fit.incr.lock().unwrap().is_some());
        let clone = fit.clone();
        assert!(clone.incr.lock().unwrap().is_none());
        // … and the clone still scores identically through the full path.
        assert_eq!(fit.eval(&parent).to_bits(), clone.of(&parent).to_bits());
    }

    #[test]
    #[ignore = "manual perf probe"]
    fn perf_breakdown() {
        use apx_cgp::{mutate, FunctionSet};
        use std::time::Instant;
        let w = 8u32;
        let nl = apx_arith::array_multiplier(w);
        let pmf = Pmf::half_normal(w, 20.0);
        let fit = Eq1Fitness::new(w, false, &pmf, TechLibrary::nangate45(), 1e-3).unwrap();
        let seed =
            Chromosome::from_netlist(&nl, &FunctionSet::extended(), nl.gate_count() + 60).unwrap();
        let mut rng = apx_rng::Xoshiro256::from_seed(7);
        let n = 2000usize;

        let t = Instant::now();
        for _ in 0..n {
            std::hint::black_box(seed.decode_full());
        }
        println!("decode_full      {:>8.2} us", t.elapsed().as_secs_f64() * 1e6 / n as f64);

        let t = Instant::now();
        for _ in 0..n {
            std::hint::black_box(seed.decode_active());
        }
        println!("decode_active    {:>8.2} us", t.elapsed().as_secs_f64() * 1e6 / n as f64);

        let t = Instant::now();
        fit.rebase(&seed);
        println!("rebase (cold)    {:>8.2} us", t.elapsed().as_secs_f64() * 1e6);
        let t = Instant::now();
        fit.rebase(&seed);
        println!("rebase (warm)    {:>8.2} us", t.elapsed().as_secs_f64() * 1e6);

        // Typical offspring evals against the rebased parent.
        let mut children = Vec::new();
        for _ in 0..n {
            let mut c = seed.clone();
            mutate(&mut c, 5, &mut rng);
            children.push(c);
        }
        for _ in 0..3 {
            let (mut t_inf, mut t_feas) = (0.0f64, 0.0f64);
            let (mut inf, mut feas) = (0usize, 0usize);
            for c in &children {
                let t = Instant::now();
                let f = fit.eval(c);
                let dt = t.elapsed().as_secs_f64();
                if f.is_infinite() {
                    inf += 1;
                    t_inf += dt;
                } else {
                    feas += 1;
                    t_feas += dt;
                }
            }
            println!(
                "eval (incr)      {:>8.2} us   [{inf} infeasible @ {:.2} us, {feas} feasible @ {:.2} us]",
                (t_inf + t_feas) * 1e6 / n as f64,
                t_inf * 1e6 / inf as f64,
                t_feas * 1e6 / feas as f64,
            );
        }
        let t = Instant::now();
        for c in children.iter().take(200) {
            std::hint::black_box(fit.of(c));
        }
        println!("eval (of)        {:>8.2} us", t.elapsed().as_secs_f64() * 1e6 / 200.0);

        let active = seed.decode_active();
        let t = Instant::now();
        for _ in 0..20 {
            std::hint::black_box(fit.evaluator().stats(&active));
        }
        println!("stats            {:>8.2} us", t.elapsed().as_secs_f64() * 1e6 / 20.0);

        // Per-threshold evolution cost (one 200-iteration run each), then
        // the eval mix against the *evolved* parent of that threshold.
        use apx_cgp::{evolve, EvolutionConfig};
        for thr in [5e-7, 1e-5, 1e-3, 2e-2, 2e-1] {
            let f = Eq1Fitness::new(w, false, &pmf, TechLibrary::nangate45(), thr).unwrap();
            let t = Instant::now();
            let r = evolve(
                &seed,
                f,
                &EvolutionConfig { max_iterations: 200, seed: 11, ..EvolutionConfig::default() },
            );
            let dt = t.elapsed().as_secs_f64();
            println!(
                "evolve thr={thr:<7} {:>7.1} ms  ({:.0} evals/s, best {:.1})",
                dt * 1e3,
                r.evaluations as f64 / dt,
                r.best_fitness
            );
            let f = Eq1Fitness::new(w, false, &pmf, TechLibrary::nangate45(), thr).unwrap();
            f.rebase(&r.best);
            let base_fit = f.eval(&r.best);
            let mut buckets = [(0usize, 0.0f64); 3]; // neutral, infeasible, feasible
            for _ in 0..2000 {
                let mut c = r.best.clone();
                mutate(&mut c, 5, &mut rng);
                let t = Instant::now();
                let v = f.eval(&c);
                let dt = t.elapsed().as_secs_f64();
                let b = if v == base_fit {
                    0
                } else if v.is_infinite() {
                    1
                } else {
                    2
                };
                buckets[b].0 += 1;
                buckets[b].1 += dt;
            }
            for (name, (cnt, tt)) in ["same-fit", "infeas  ", "feasible"].iter().zip(buckets) {
                println!(
                    "    {name} {cnt:>5}  @ {:>7.2} us  (total {:.1} ms)",
                    tt * 1e6 / cnt.max(1) as f64,
                    tt * 1e3
                );
            }
        }
    }

    #[test]
    fn loose_budget_admits_approximations() {
        let exact = array_multiplier(4);
        let approx = truncated_multiplier(4, 4);
        let fit = Eq1Fitness::new(4, false, &Pmf::uniform(4), TechLibrary::unit(), 0.05).unwrap();
        let f_exact = fit.of(&chrom_of(&exact));
        let f_approx = fit.of(&chrom_of(&approx));
        assert!(f_approx < f_exact, "approximation must be cheaper");
        assert!(f_approx.is_finite());
    }
}
