//! Eq. 1: area under a WMED budget.

use apx_cgp::Chromosome;
use apx_dist::Pmf;
use apx_metrics::MultEvaluator;
use apx_techlib::{area_of, TechLibrary};
use std::sync::Arc;

/// The paper's fitness function (Eq. 1):
///
/// ```text
/// F(M̃) = area(M̃)   if WMED_D(M̃) ≤ E_i
///        ∞          otherwise
/// ```
///
/// Evaluation decodes only the chromosome's active cone, runs the
/// early-abort WMED evaluator (most violating offspring are rejected after
/// a handful of high-weight blocks) and prices the survivors with the
/// technology library.
///
/// The evaluator is held behind an [`Arc`]: it is by far the most
/// expensive part to construct (exhaustive input enumeration and
/// weight-sorted blocks), so sweeps build it **once** per `(width,
/// signed, pmf)` and share it across every threshold and run via
/// [`Eq1Fitness::with_evaluator`].
#[derive(Debug, Clone)]
pub struct Eq1Fitness {
    evaluator: Arc<MultEvaluator>,
    tech: TechLibrary,
    threshold: f64,
}

impl Eq1Fitness {
    /// Builds the fitness for a `width`-bit (optionally signed) multiplier
    /// under distribution `pmf` with WMED budget `threshold`.
    ///
    /// # Errors
    ///
    /// Propagates [`apx_metrics::EvaluatorError`] for bad width/PMF
    /// combinations.
    pub fn new(
        width: u32,
        signed: bool,
        pmf: &Pmf,
        tech: TechLibrary,
        threshold: f64,
    ) -> Result<Self, apx_metrics::EvaluatorError> {
        Ok(Self::with_evaluator(Arc::new(MultEvaluator::new(width, signed, pmf)?), tech, threshold))
    }

    /// Builds the fitness around an already-constructed, shared evaluator
    /// — infallible, and the constructor every sweep task uses.
    #[must_use]
    pub fn with_evaluator(
        evaluator: Arc<MultEvaluator>,
        tech: TechLibrary,
        threshold: f64,
    ) -> Self {
        Eq1Fitness { evaluator, tech, threshold }
    }

    /// The WMED budget `E_i`.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Evaluates a chromosome; `f64::INFINITY` marks a budget violation.
    #[must_use]
    pub fn of(&self, chromosome: &Chromosome) -> f64 {
        let netlist = chromosome.decode_active();
        match self.evaluator.wmed_bounded(&netlist, self.threshold) {
            Some(_) => area_of(&netlist, &self.tech),
            None => f64::INFINITY,
        }
    }

    /// The underlying WMED evaluator (for post-hoc statistics).
    #[must_use]
    pub fn evaluator(&self) -> &MultEvaluator {
        &self.evaluator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_arith::{array_multiplier, truncated_multiplier};
    use apx_cgp::FunctionSet;

    fn chrom_of(nl: &apx_gates::Netlist) -> Chromosome {
        Chromosome::from_netlist(nl, &FunctionSet::extended(), nl.gate_count() + 10).unwrap()
    }

    #[test]
    fn exact_seed_scores_its_area() {
        let nl = array_multiplier(4);
        let fit = Eq1Fitness::new(4, false, &Pmf::uniform(4), TechLibrary::unit(), 0.001).unwrap();
        let f = fit.of(&chrom_of(&nl));
        assert_eq!(f, nl.compact().gate_count() as f64);
        assert_eq!(fit.threshold(), 0.001);
    }

    #[test]
    fn violators_get_infinity() {
        // Truncating 6 of 8 columns of a 4-bit multiplier far exceeds a
        // 0.01% budget.
        let nl = truncated_multiplier(4, 6);
        let fit = Eq1Fitness::new(4, false, &Pmf::uniform(4), TechLibrary::unit(), 1e-4).unwrap();
        assert_eq!(fit.of(&chrom_of(&nl)), f64::INFINITY);
    }

    #[test]
    fn loose_budget_admits_approximations() {
        let exact = array_multiplier(4);
        let approx = truncated_multiplier(4, 4);
        let fit = Eq1Fitness::new(4, false, &Pmf::uniform(4), TechLibrary::unit(), 0.05).unwrap();
        let f_exact = fit.of(&chrom_of(&exact));
        let f_approx = fit.of(&chrom_of(&approx));
        assert!(f_approx < f_exact, "approximation must be cheaper");
        assert!(f_approx.is_finite());
    }
}
