//! MAC-unit integration metrics (Table I's PDP/Power/Area columns).

use apx_arith::mac::mac_unit;
use apx_dist::Pmf;
use apx_gates::Netlist;
use apx_rng::Xoshiro256;
use apx_techlib::{estimate_under_pmf, CircuitEstimate, TechLibrary, DEFAULT_CLOCK_MHZ};

/// Physical metrics of a MAC unit built around an approximate multiplier,
/// relative to the exact-multiplier MAC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacMetrics {
    /// Absolute estimate of the approximate MAC.
    pub estimate: CircuitEstimate,
    /// Absolute estimate of the exact reference MAC.
    pub reference: CircuitEstimate,
    /// `(approx − exact) / exact` for the power-delay product (negative =
    /// saving, the sign convention of Table I).
    pub rel_pdp: f64,
    /// Relative power delta.
    pub rel_power: f64,
    /// Relative area delta.
    pub rel_area: f64,
}

/// Builds MAC units around `multiplier` and `exact` (both `width`-bit,
/// accumulator `acc_width`), estimates both under the application's weight
/// distribution (`pmf` drives operand A; activations and the accumulator
/// are uniform) and reports the relative deltas.
///
/// # Panics
///
/// Panics if the multipliers do not follow the `2·width` conventions or
/// `acc_width < 2·width`.
#[must_use]
#[allow(clippy::too_many_arguments)] // mirrors Table I's experiment knobs 1:1
pub fn mac_metrics(
    multiplier: &Netlist,
    exact: &Netlist,
    width: u32,
    acc_width: u32,
    signed: bool,
    pmf: &Pmf,
    activity_blocks: usize,
    seed: u64,
) -> MacMetrics {
    let tech = TechLibrary::nangate45();
    let approx_mac = mac_unit(multiplier, width, acc_width, signed);
    let exact_mac = mac_unit(exact, width, acc_width, signed);
    let mut rng_a = Xoshiro256::from_seed(seed);
    let mut rng_b = Xoshiro256::from_seed(seed);
    let estimate =
        estimate_under_pmf(&approx_mac, &tech, pmf, DEFAULT_CLOCK_MHZ, activity_blocks, &mut rng_a);
    let reference =
        estimate_under_pmf(&exact_mac, &tech, pmf, DEFAULT_CLOCK_MHZ, activity_blocks, &mut rng_b);
    let rel = |a: f64, e: f64| (a - e) / e;
    MacMetrics {
        estimate,
        reference,
        rel_pdp: rel(estimate.pdp_fj(), reference.pdp_fj()),
        rel_power: rel(estimate.power_uw(), reference.power_uw()),
        rel_area: rel(estimate.area_um2, reference.area_um2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_arith::{baugh_wooley_broken, baugh_wooley_multiplier};

    #[test]
    fn exact_vs_exact_is_zero() {
        let exact = baugh_wooley_multiplier(4);
        let pmf = Pmf::signed_normal(4, 0.0, 3.0);
        let m = mac_metrics(&exact, &exact, 4, 10, true, &pmf, 8, 1);
        assert!(m.rel_pdp.abs() < 1e-12);
        assert!(m.rel_power.abs() < 1e-12);
        assert!(m.rel_area.abs() < 1e-12);
    }

    #[test]
    fn broken_multiplier_saves_resources() {
        let exact = baugh_wooley_multiplier(6);
        let approx = baugh_wooley_broken(6, 5, 5);
        let pmf = Pmf::signed_normal(6, 0.0, 8.0);
        let m = mac_metrics(&approx, &exact, 6, 14, true, &pmf, 16, 2);
        assert!(m.rel_area < 0.0, "area delta {}", m.rel_area);
        assert!(m.rel_power < 0.05, "power delta {}", m.rel_power);
        assert!(m.estimate.area_um2 < m.reference.area_um2);
    }

    #[test]
    fn metrics_are_deterministic() {
        let exact = baugh_wooley_multiplier(4);
        let approx = baugh_wooley_broken(4, 3, 3);
        let pmf = Pmf::signed_normal(4, 0.0, 3.0);
        let a = mac_metrics(&approx, &exact, 4, 10, true, &pmf, 8, 7);
        let b = mac_metrics(&approx, &exact, 4, 10, true, &pmf, 8, 7);
        assert_eq!(a, b);
    }
}
